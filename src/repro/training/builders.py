"""Factory helpers assembling complete trainers for the paper's setups.

These are the main high-level entry points of the library: given a dataset,
a model and a (scheme, attack, defense) combination, they wire together the
assignment graph, worker pool, Byzantine selector, aggregation pipeline,
parameter server and training loop.
"""

from __future__ import annotations


from repro.aggregation.base import Aggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.base import AssignmentScheme
from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.attacks.base import Attack
from repro.attacks.selection import (
    ByzantineSelector,
    OmniscientSelector,
    RandomSelector,
)
from repro.cluster.simulator import TrainingCluster
from repro.cluster.worker import WorkerPool
from repro.core.pipelines import (
    AggregationPipeline,
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    VanillaPipeline,
)
from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.nn.losses import Loss
from repro.nn.models import Sequential
from repro.training.config import TrainingConfig
from repro.training.gradients import ModelGradientComputer
from repro.training.trainer import DistributedTrainer

__all__ = [
    "make_selector",
    "build_byzshield_trainer",
    "build_detox_trainer",
    "build_draco_trainer",
    "build_vanilla_trainer",
]


def make_selector(
    kind: str, num_byzantine: int, seed: int | None = 0
) -> ByzantineSelector | None:
    """Create a Byzantine selector by name (``"omniscient"`` or ``"random"``).

    Returns ``None`` when ``num_byzantine`` is zero (no attack).
    """
    if num_byzantine == 0:
        return None
    if kind == "omniscient":
        return OmniscientSelector(num_byzantine, seed=seed)
    if kind == "random":
        return RandomSelector(num_byzantine)
    raise ConfigurationError(
        f"unknown selector kind {kind!r}; expected 'omniscient' or 'random'"
    )


def _build_trainer(
    assignment: BipartiteAssignment,
    pipeline: AggregationPipeline,
    model: Sequential,
    train_dataset: Dataset,
    test_dataset: Dataset,
    config: TrainingConfig,
    attack: Attack | None,
    selector: ByzantineSelector | None,
    loss: Loss | None,
    label: str,
) -> DistributedTrainer:
    gradient_computer = ModelGradientComputer(model, loss=loss)
    pool = WorkerPool(assignment, gradient_computer)
    cluster = TrainingCluster(
        assignment=assignment,
        worker_pool=pool,
        attack=attack,
        selector=selector,
        seed=config.seed,
    )
    return DistributedTrainer(
        cluster=cluster,
        pipeline=pipeline,
        gradient_computer=gradient_computer,
        train_dataset=train_dataset,
        test_dataset=test_dataset,
        config=config,
        label=label,
    )


def build_byzshield_trainer(
    scheme: AssignmentScheme,
    model: Sequential,
    train_dataset: Dataset,
    test_dataset: Dataset,
    config: TrainingConfig,
    attack: Attack | None = None,
    num_byzantine: int = 0,
    selection: str = "omniscient",
    aggregator: Aggregator | None = None,
    loss: Loss | None = None,
    label: str | None = None,
) -> DistributedTrainer:
    """ByzShield trainer: redundant expander assignment + vote + robust aggregation.

    Parameters
    ----------
    scheme:
        A redundant assignment scheme (MOLS or Ramanujan).
    attack, num_byzantine, selection:
        The adversary; ``num_byzantine=0`` (or ``attack=None``) trains without
        Byzantine workers.
    aggregator:
        Post-vote robust rule; defaults to the paper's coordinate-wise median.
    """
    if (attack is None) != (num_byzantine == 0):
        raise ConfigurationError(
            "provide both an attack and num_byzantine > 0, or neither"
        )
    assignment = scheme.assignment
    pipeline = ByzShieldPipeline(
        assignment, aggregator=aggregator or CoordinateWiseMedian()
    )
    selector = make_selector(selection, num_byzantine, seed=config.seed)
    return _build_trainer(
        assignment,
        pipeline,
        model,
        train_dataset,
        test_dataset,
        config,
        attack,
        selector,
        loss,
        label or f"byzshield[{assignment.name}]",
    )


def build_detox_trainer(
    num_workers: int,
    replication: int,
    model: Sequential,
    train_dataset: Dataset,
    test_dataset: Dataset,
    config: TrainingConfig,
    aggregator: Aggregator,
    attack: Attack | None = None,
    num_byzantine: int = 0,
    selection: str = "omniscient",
    loss: Loss | None = None,
    label: str | None = None,
) -> DistributedTrainer:
    """DETOX trainer: FRC grouping + per-group vote + second-stage robust rule."""
    if (attack is None) != (num_byzantine == 0):
        raise ConfigurationError(
            "provide both an attack and num_byzantine > 0, or neither"
        )
    scheme = FRCAssignment(num_workers, replication)
    assignment = scheme.assignment
    pipeline = DetoxPipeline(assignment, aggregator=aggregator)
    selector = make_selector(selection, num_byzantine, seed=config.seed)
    return _build_trainer(
        assignment,
        pipeline,
        model,
        train_dataset,
        test_dataset,
        config,
        attack,
        selector,
        loss,
        label or f"detox[K={num_workers},r={replication}]",
    )


def build_draco_trainer(
    num_workers: int,
    replication: int,
    model: Sequential,
    train_dataset: Dataset,
    test_dataset: Dataset,
    config: TrainingConfig,
    attack: Attack | None = None,
    num_byzantine: int = 0,
    selection: str = "omniscient",
    loss: Loss | None = None,
    label: str | None = None,
) -> DistributedTrainer:
    """DRACO trainer: FRC grouping with the exact-recovery requirement ``r >= 2q+1``."""
    if (attack is None) != (num_byzantine == 0):
        raise ConfigurationError(
            "provide both an attack and num_byzantine > 0, or neither"
        )
    scheme = FRCAssignment(num_workers, replication)
    assignment = scheme.assignment
    pipeline = DracoPipeline(assignment, num_byzantine=num_byzantine)
    selector = make_selector(selection, num_byzantine, seed=config.seed)
    return _build_trainer(
        assignment,
        pipeline,
        model,
        train_dataset,
        test_dataset,
        config,
        attack,
        selector,
        loss,
        label or f"draco[K={num_workers},r={replication}]",
    )


def build_vanilla_trainer(
    num_workers: int,
    model: Sequential,
    train_dataset: Dataset,
    test_dataset: Dataset,
    config: TrainingConfig,
    aggregator: Aggregator,
    attack: Attack | None = None,
    num_byzantine: int = 0,
    selection: str = "omniscient",
    loss: Loss | None = None,
    label: str | None = None,
) -> DistributedTrainer:
    """Baseline trainer: no redundancy, the robust rule sees the K worker gradients."""
    if (attack is None) != (num_byzantine == 0):
        raise ConfigurationError(
            "provide both an attack and num_byzantine > 0, or neither"
        )
    scheme = BaselineAssignment(num_workers)
    assignment = scheme.assignment
    pipeline = VanillaPipeline(assignment, aggregator=aggregator)
    selector = make_selector(selection, num_byzantine, seed=config.seed)
    return _build_trainer(
        assignment,
        pipeline,
        model,
        train_dataset,
        test_dataset,
        config,
        attack,
        selector,
        loss,
        label or f"vanilla[{aggregator.aggregator_name},K={num_workers}]",
    )
