"""Training history: the per-iteration records behind the paper's figures."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import DEFAULT_DTYPE
from repro.exceptions import TrainingError

__all__ = ["IterationRecord", "TrainingHistory"]


@dataclass(frozen=True)
class IterationRecord:
    """Metrics of a single training iteration.

    Attributes
    ----------
    iteration:
        Zero-based iteration index.
    train_loss:
        Mean loss over the iteration's files (honest view).
    distortion_fraction:
        Realized fraction of corrupted file majorities this iteration.
    test_accuracy:
        Top-1 test accuracy, when evaluated this iteration (NaN otherwise).
    test_loss:
        Test loss, when evaluated this iteration (NaN otherwise).
    learning_rate:
        Learning rate used for the update.
    """

    iteration: int
    train_loss: float
    distortion_fraction: float
    test_accuracy: float = float("nan")
    test_loss: float = float("nan")
    learning_rate: float = float("nan")


@dataclass
class TrainingHistory:
    """Accumulates per-iteration records and exposes the plotted series."""

    label: str = "run"
    records: list[IterationRecord] = field(default_factory=list)

    def append(self, record: IterationRecord) -> None:
        """Add one iteration's record (iterations must be appended in order)."""
        if self.records and record.iteration <= self.records[-1].iteration:
            raise TrainingError(
                "iteration records must be appended in strictly increasing order"
            )
        self.records.append(record)

    # -- series accessors -----------------------------------------------------
    @property
    def iterations(self) -> np.ndarray:
        """Iteration indices of all records."""
        return np.array([r.iteration for r in self.records], dtype=np.int64)

    @property
    def train_losses(self) -> np.ndarray:
        """Training loss per iteration."""
        return np.array([r.train_loss for r in self.records], dtype=DEFAULT_DTYPE)

    @property
    def distortion_fractions(self) -> np.ndarray:
        """Realized distortion fraction per iteration."""
        return np.array([r.distortion_fraction for r in self.records], dtype=DEFAULT_DTYPE)

    def accuracy_series(self) -> tuple[np.ndarray, np.ndarray]:
        """``(iterations, accuracies)`` restricted to evaluated iterations.

        This is the series plotted in the paper's Figures 2–11 (top-1 test
        accuracy versus iteration).
        """
        points = [
            (r.iteration, r.test_accuracy)
            for r in self.records
            if not np.isnan(r.test_accuracy)
        ]
        if not points:
            return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=DEFAULT_DTYPE)
        iterations, accuracies = zip(*points)
        return np.array(iterations, dtype=np.int64), np.array(accuracies, dtype=DEFAULT_DTYPE)

    @property
    def final_accuracy(self) -> float:
        """Last recorded test accuracy (NaN if never evaluated)."""
        _, accuracies = self.accuracy_series()
        return float(accuracies[-1]) if accuracies.size else float("nan")

    @property
    def best_accuracy(self) -> float:
        """Best recorded test accuracy (NaN if never evaluated)."""
        _, accuracies = self.accuracy_series()
        return float(accuracies.max()) if accuracies.size else float("nan")

    def mean_accuracy(self, last_k: int | None = None) -> float:
        """Mean of the recorded accuracies (optionally only the last ``last_k``)."""
        _, accuracies = self.accuracy_series()
        if accuracies.size == 0:
            return float("nan")
        if last_k is not None:
            accuracies = accuracies[-last_k:]
        return float(accuracies.mean())

    def summary(self) -> dict[str, float]:
        """Compact summary used by the experiment reports."""
        return {
            "iterations": int(self.records[-1].iteration + 1) if self.records else 0,
            "final_accuracy": self.final_accuracy,
            "best_accuracy": self.best_accuracy,
            "final_train_loss": float(self.train_losses[-1]) if self.records else float("nan"),
            "mean_distortion": float(self.distortion_fractions.mean()) if self.records else 0.0,
        }

    def __len__(self) -> int:
        return len(self.records)
