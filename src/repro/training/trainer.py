"""The synchronous distributed training loop (paper Algorithm 1).

Each iteration:

1. the PS samples a batch ``B_t`` and partitions it into ``f`` files;
2. the simulated workers compute their assigned file gradients at the
   broadcast parameters ``w_t`` (all ``f`` files in one pass through the
   stacked per-file gradient engine);
3. the Byzantine selector picks the compromised workers and the attack
   substitutes their returns;
4. the PS runs its aggregation pipeline (majority vote + robust aggregation
   for ByzShield/DETOX, plain robust aggregation for the baselines) and takes
   an SGD step;
5. periodically the test accuracy is evaluated, producing the series plotted
   in the paper's Figures 2–11.
"""

from __future__ import annotations

import numpy as np

from repro.cluster.server import ParameterServer
from repro.cluster.simulator import TrainingCluster
from repro.core.pipelines import AggregationPipeline
from repro.data.batching import (
    BatchSampler,
    ShardedBatchSampler,
    partition_batch_into_files,
)
from repro.data.datasets import Dataset
from repro.exceptions import ConfigurationError
from repro.nn.metrics import evaluate_model
from repro.nn.optim import SGD, StepDecaySchedule
from repro.training.config import TrainingConfig
from repro.training.gradients import ModelGradientComputer
from repro.training.history import IterationRecord, TrainingHistory

__all__ = ["DistributedTrainer"]


class DistributedTrainer:
    """Drives the full training loop for one (scheme, attack, defense) setup.

    Parameters
    ----------
    cluster:
        The simulated worker cluster (assignment + attack + selector).
    pipeline:
        Aggregation pipeline run by the PS.
    gradient_computer:
        Shared model/loss gradient oracle; also provides ``w₀``.
    train_dataset, test_dataset:
        Training data (batched every iteration) and held-out evaluation data.
    config:
        Hyper-parameters (batch size, iterations, learning-rate schedule...).
    label:
        Name attached to the resulting history (used in experiment reports).
    use_tensor_path:
        Run each round through the contiguous
        :class:`~repro.core.vote_tensor.VoteTensor` representation (default).
        The legacy dict-of-dicts path produces bit-identical updates and is
        kept for debugging and the equivalence tests.
    round_observer:
        Optional callback invoked after every optimizer step as
        ``observer(iteration, round_result, aggregate, server)``; the
        scenario engine uses it to record per-round traces without the
        trainer knowing anything about tracing.
    file_partition:
        Optional list of ``f`` shard index arrays (one per file, from
        :func:`repro.data.batching.build_file_partition`).  When given,
        every file's batch slice is drawn from its own shard through a
        :class:`~repro.data.batching.ShardedBatchSampler` — non-IID
        training.  ``None`` (default) keeps the paper's IID path, batching
        through the classic :class:`~repro.data.batching.BatchSampler`
        bit-identically to before this option existed.
    """

    def __init__(
        self,
        cluster: TrainingCluster,
        pipeline: AggregationPipeline,
        gradient_computer: ModelGradientComputer,
        train_dataset: Dataset,
        test_dataset: Dataset,
        config: TrainingConfig,
        label: str = "run",
        use_tensor_path: bool = True,
        round_observer=None,
        file_partition: "list[np.ndarray] | None" = None,
    ) -> None:
        assignment = cluster.assignment
        if config.batch_size % assignment.num_files != 0:
            raise ConfigurationError(
                f"batch_size={config.batch_size} must be divisible by the number "
                f"of files f={assignment.num_files}"
            )
        self.cluster = cluster
        self.pipeline = pipeline
        self.gradient_computer = gradient_computer
        self.train_dataset = train_dataset
        self.test_dataset = test_dataset
        self.config = config
        self.label = label
        self.use_tensor_path = bool(use_tensor_path)
        self.round_observer = round_observer

        schedule = StepDecaySchedule(
            config.learning_rate, config.lr_decay, config.lr_period
        )
        optimizer = SGD(
            schedule, momentum=config.momentum, weight_decay=config.weight_decay
        )
        self.server = ParameterServer(
            initial_params=gradient_computer.initial_params(),
            pipeline=pipeline,
            optimizer=optimizer,
        )
        if file_partition is not None:
            if len(file_partition) != assignment.num_files:
                raise ConfigurationError(
                    f"file_partition has {len(file_partition)} shards but the "
                    f"assignment has f={assignment.num_files} files"
                )
            self.sampler = ShardedBatchSampler(
                dataset=train_dataset,
                batch_size=config.batch_size,
                shards=file_partition,
                seed=config.seed,
            )
        else:
            self.sampler = BatchSampler(
                dataset=train_dataset, batch_size=config.batch_size, seed=config.seed
            )

    # -- single iteration -------------------------------------------------------
    def _next_file_indices(self) -> list[np.ndarray]:
        if isinstance(self.sampler, ShardedBatchSampler):
            return self.sampler.next_batch_files()
        return partition_batch_into_files(
            self.sampler.next_batch(), self.cluster.assignment.num_files
        )

    def _file_data(self, files: "list[np.ndarray]") -> dict[int, tuple[np.ndarray, np.ndarray]]:
        return {
            index: self.sampler.batch_data(file_indices)
            for index, file_indices in enumerate(files)
        }

    def run_iteration(self, iteration: int) -> IterationRecord:
        """Execute one synchronous iteration and return its metrics."""
        params = self.server.broadcast()
        file_data = self._file_data(self._next_file_indices())
        learning_rate = self.server.optimizer.schedule.rate(self.server.optimizer.iteration)
        if self.use_tensor_path:
            round_result = self.cluster.run_round_tensor(params, file_data, iteration)
            aggregate = self.server.update_tensor(
                round_result.vote_tensor, round_result.aggregation_mask
            )
        else:
            round_result = self.cluster.run_round(params, file_data, iteration)
            aggregate = self.server.update(round_result.file_votes)
        if self.round_observer is not None:
            self.round_observer(iteration, round_result, aggregate, self.server)
        return IterationRecord(
            iteration=iteration,
            train_loss=round_result.mean_file_loss,
            distortion_fraction=round_result.distortion_fraction,
            learning_rate=learning_rate,
        )

    def evaluate(self) -> dict[str, float]:
        """Test accuracy and loss of the current global model."""
        self.gradient_computer.model.set_flat_params(self.server.params)
        return evaluate_model(
            self.gradient_computer.model,
            self.test_dataset.inputs,
            self.test_dataset.labels,
        )

    # -- full loop ----------------------------------------------------------------
    def train(self, verbose: bool = False) -> TrainingHistory:
        """Run ``config.num_iterations`` iterations and return the history."""
        history = TrainingHistory(label=self.label)
        for iteration in range(self.config.num_iterations):
            record = self.run_iteration(iteration)
            evaluate_now = (
                (iteration + 1) % self.config.eval_every == 0
                or iteration == self.config.num_iterations - 1
            )
            if evaluate_now:
                metrics = self.evaluate()
                record = IterationRecord(
                    iteration=record.iteration,
                    train_loss=record.train_loss,
                    distortion_fraction=record.distortion_fraction,
                    learning_rate=record.learning_rate,
                    test_accuracy=metrics["accuracy"],
                    test_loss=metrics["loss"],
                )
                if verbose:  # pragma: no cover - console output
                    print(
                        f"[{self.label}] iter {iteration + 1}/{self.config.num_iterations} "
                        f"loss={record.train_loss:.4f} acc={record.test_accuracy:.3f} "
                        f"eps={record.distortion_fraction:.3f}"
                    )
            history.append(record)
        return history
