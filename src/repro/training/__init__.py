"""End-to-end distributed training harness.

Combines the data pipeline, the NN substrate, the cluster simulator and an
aggregation pipeline into the synchronous training loop of paper Algorithm 1,
and records the metrics the paper plots (top-1 test accuracy versus iteration,
training loss, realized distortion fraction).
"""

from repro.training.builders import (
    build_byzshield_trainer,
    build_detox_trainer,
    build_vanilla_trainer,
)
from repro.training.config import TrainingConfig
from repro.training.gradients import ModelGradientComputer
from repro.training.history import TrainingHistory, IterationRecord
from repro.training.trainer import DistributedTrainer

__all__ = [
    "ModelGradientComputer",
    "TrainingConfig",
    "TrainingHistory",
    "IterationRecord",
    "DistributedTrainer",
    "build_byzshield_trainer",
    "build_detox_trainer",
    "build_vanilla_trainer",
]
