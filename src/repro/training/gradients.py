"""Gradient oracle wrapping a model and a loss.

Workers (and the PS, for evaluation) need a function mapping
``(flat parameters, inputs, labels)`` to ``(flat gradient, loss)``.  The
computer temporarily loads the parameters into the shared model instance,
runs a forward/backward pass and extracts the flat gradient — the in-process
analogue of broadcasting ``w_t`` to a worker and having it compute its file
gradients.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TrainingError
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.models import Sequential

__all__ = ["ModelGradientComputer"]


class ModelGradientComputer:
    """Computes per-file gradients of a model at arbitrary parameter vectors.

    Parameters
    ----------
    model:
        The shared model instance (its parameters are overwritten on every
        call, which is safe because all callers pass explicit parameters).
    loss:
        Training loss; defaults to softmax cross entropy.
    """

    def __init__(self, model: Sequential, loss: Loss | None = None) -> None:
        self.model = model
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the flat gradient."""
        return self.model.num_parameters()

    def __call__(
        self, params: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Gradient and loss of the model at ``params`` on ``(inputs, labels)``."""
        if inputs.shape[0] == 0:
            raise TrainingError("cannot compute a gradient on an empty file")
        self.model.set_flat_params(params)
        value, gradient = self.model.loss_and_gradient(inputs, labels, self.loss)
        return gradient, value

    def initial_params(self) -> np.ndarray:
        """The model's current parameters (used as ``w₀``)."""
        return self.model.get_flat_params()
