"""Gradient oracle wrapping a model and a loss.

Workers (and the PS, for evaluation) need a function mapping
``(flat parameters, inputs, labels)`` to ``(flat gradient, loss)``.  The
computer temporarily loads the parameters into the shared model instance,
runs a forward/backward pass and extracts the flat gradient — the in-process
analogue of broadcasting ``w_t`` to a worker and having it compute its file
gradients.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TrainingError
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.models import Sequential

__all__ = ["ModelGradientComputer"]


class ModelGradientComputer:
    """Computes per-file gradients of a model at arbitrary parameter vectors.

    Parameters
    ----------
    model:
        The shared model instance (its parameters are overwritten on every
        call, which is safe because all callers pass explicit parameters).
    loss:
        Training loss; defaults to softmax cross entropy.
    """

    def __init__(self, model: Sequential, loss: Loss | None = None) -> None:
        self.model = model
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the flat gradient."""
        return self.model.num_parameters()

    def __call__(
        self, params: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Gradient and loss of the model at ``params`` on ``(inputs, labels)``."""
        if inputs.shape[0] == 0:
            raise TrainingError("cannot compute a gradient on an empty file")
        self.model.set_flat_params(params)
        value, gradient = self.model.loss_and_gradient(inputs, labels, self.loss)
        return gradient, value

    def batched(self, params: np.ndarray, files) -> tuple[np.ndarray, np.ndarray]:
        """Per-file gradients stacked along a leading axis.

        Parameters
        ----------
        params:
            Flat parameter vector, loaded into the model **once** for the
            whole call (the legacy path reloads it per file).
        files:
            Either a sequence of ``(inputs, labels)`` pairs, or a pair of
            stacked arrays ``(inputs, labels)`` with shapes ``(f, n, ...)``
            and ``(f, n)`` — files along the leading axis.

        Returns
        -------
        gradients, losses:
            ``(f, d)`` float64 gradient matrix (one contiguous allocation)
            and the ``(f,)`` per-file mean losses.  Each row is bit-identical
            to what :meth:`__call__` returns for that file.
        """
        if (
            isinstance(files, tuple)
            and len(files) == 2
            and isinstance(files[0], np.ndarray)
        ):
            files = list(zip(files[0], files[1]))
        else:
            files = list(files)
        if len(files) == 0:
            raise TrainingError("batched gradient computation needs >= 1 file")
        self.model.set_flat_params(params)
        gradients = np.empty((len(files), self.dim), dtype=np.float64)
        losses = np.empty(len(files), dtype=np.float64)
        for i, (inputs, labels) in enumerate(files):
            if inputs.shape[0] == 0:
                raise TrainingError("cannot compute a gradient on an empty file")
            value, gradient = self.model.loss_and_gradient(inputs, labels, self.loss)
            gradients[i] = gradient
            losses[i] = float(value)
        return gradients, losses

    def initial_params(self) -> np.ndarray:
        """The model's current parameters (used as ``w₀``)."""
        return self.model.get_flat_params()
