"""Gradient oracle wrapping a model and a loss.

Workers (and the PS, for evaluation) need a function mapping
``(flat parameters, inputs, labels)`` to ``(flat gradient, loss)``.  The
computer temporarily loads the parameters into the shared model instance,
runs a forward/backward pass and extracts the flat gradient — the in-process
analogue of broadcasting ``w_t`` to a worker and having it compute its file
gradients.

:meth:`ModelGradientComputer.batched` is the round's hot entry point: with
the default ``engine="stacked"`` it computes all ``f`` file gradients in one
stacked pass through the model (leading file axis, per-file parameter
gradients written into one ``(f, d)`` workspace) and falls back to ``f``
sequential passes for ragged files or layers without a stacked rule.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import TrainingError
from repro.nn.losses import Loss, SoftmaxCrossEntropy
from repro.nn.models import Sequential

__all__ = ["ModelGradientComputer"]


class ModelGradientComputer:
    """Computes per-file gradients of a model at arbitrary parameter vectors.

    Parameters
    ----------
    model:
        The shared model instance (its parameters are overwritten on every
        call, which is safe because all callers pass explicit parameters).
    loss:
        Training loss; defaults to softmax cross entropy.
    engine:
        Per-file engine used by :meth:`batched`: ``"stacked"`` (default)
        computes all file gradients in one pass through the model's per-file
        path whenever the files are uniform and every layer supports it,
        silently falling back to the looped path otherwise; ``"looped"``
        always runs ``f`` sequential passes.  Both engines are bit-identical.
    """

    ENGINES = ("stacked", "looped")

    def __init__(
        self, model: Sequential, loss: Loss | None = None, engine: str = "stacked"
    ) -> None:
        if engine not in self.ENGINES:
            raise TrainingError(
                f"unknown gradient engine {engine!r}; expected one of {self.ENGINES}"
            )
        self.model = model
        self.loss = loss if loss is not None else SoftmaxCrossEntropy()
        self.engine = engine
        #: engine actually used by the most recent :meth:`batched` call
        #: ("stacked" or "looped"); informational, for tests and tracing.
        self.last_engine: str | None = None

    @property
    def dim(self) -> int:
        """Dimensionality ``d`` of the flat gradient."""
        return self.model.num_parameters()

    def __call__(
        self, params: np.ndarray, inputs: np.ndarray, labels: np.ndarray
    ) -> tuple[np.ndarray, float]:
        """Gradient and loss of the model at ``params`` on ``(inputs, labels)``."""
        if inputs.shape[0] == 0:
            raise TrainingError("cannot compute a gradient on an empty file")
        self.model.set_flat_params(params)
        value, gradient = self.model.loss_and_gradient(inputs, labels, self.loss)
        return gradient, value

    def batched(self, params: np.ndarray, files) -> tuple[np.ndarray, np.ndarray]:
        """Per-file gradients stacked along a leading axis.

        Parameters
        ----------
        params:
            Flat parameter vector, loaded into the model **once** for the
            whole call (the legacy path reloads it per file).
        files:
            Either a sequence of ``(inputs, labels)`` pairs, or a pair of
            stacked arrays ``(inputs, labels)`` with shapes ``(f, n, ...)``
            and ``(f, n)`` — files along the leading axis.

        Returns
        -------
        gradients, losses:
            ``(f, d)`` gradient matrix in the model's working dtype (one
            contiguous allocation) and the ``(f,)`` per-file mean losses.
            Each row is bit-identical to what :meth:`__call__` returns for
            that file.

        Notes
        -----
        With ``engine="stacked"`` the call runs the model's single-pass
        per-file path (:meth:`Sequential.per_file_loss_and_gradients`) when
        every file has the same shape and every layer has a stacked rule;
        ragged files or unsupported layers fall back to the looped path.
        :attr:`last_engine` records which one ran.
        """
        if (
            isinstance(files, tuple)
            and len(files) == 2
            and isinstance(files[0], np.ndarray)
        ):
            files = list(zip(files[0], files[1]))
        else:
            files = list(files)
        if len(files) == 0:
            raise TrainingError("batched gradient computation needs >= 1 file")
        for inputs, _ in files:
            if inputs.shape[0] == 0:
                raise TrainingError("cannot compute a gradient on an empty file")
        self.model.set_flat_params(params)
        if self.engine == "stacked" and self._stackable(files):
            stacked_inputs = np.stack([inputs for inputs, _ in files])
            stacked_labels = np.stack([labels for _, labels in files])
            # One workspace per round (it escapes into the round result, so
            # it cannot be recycled across rounds); every layer writes its
            # per-file gradients straight into views of it.
            workspace = np.empty((len(files), self.dim), dtype=self.model.dtype)
            losses, gradients = self.model.per_file_loss_and_gradients(
                stacked_inputs, stacked_labels, self.loss, out=workspace
            )
            self.last_engine = "stacked"
            return gradients, losses
        gradients = np.empty((len(files), self.dim), dtype=self.model.dtype)
        losses = np.empty(len(files), dtype=self.model.dtype)
        for i, (inputs, labels) in enumerate(files):
            value, gradient = self.model.loss_and_gradient(inputs, labels, self.loss)
            gradients[i] = gradient
            losses[i] = float(value)
        self.last_engine = "looped"
        return gradients, losses

    def _stackable(self, files) -> bool:
        """True when the stacked engine applies: uniform files, capable model."""
        if not self.model.supports_per_file():
            return False
        first_inputs, first_labels = files[0]
        return all(
            inputs.shape == first_inputs.shape and labels.shape == first_labels.shape
            for inputs, labels in files[1:]
        )

    def initial_params(self) -> np.ndarray:
        """The model's current parameters (used as ``w₀``)."""
        return self.model.get_flat_params()
