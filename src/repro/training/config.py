"""Training configuration."""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import ConfigurationError

__all__ = ["TrainingConfig"]


@dataclass(frozen=True)
class TrainingConfig:
    """Hyper-parameters of a distributed training run.

    Attributes
    ----------
    batch_size:
        Global batch size ``b`` (the paper uses 750); must be divisible by
        the number of files of the chosen assignment.
    num_iterations:
        Number of synchronous SGD iterations ``T``.
    learning_rate:
        Initial learning rate ``x`` of the paper's ``(x, y, z)`` schedule.
    lr_decay:
        Multiplicative decay ``y`` applied every ``lr_period`` iterations.
    lr_period:
        Decay period ``z`` in iterations.
    momentum:
        SGD momentum (paper uses 0.9).
    weight_decay:
        Optional L2 regularization coefficient.
    eval_every:
        Evaluate test accuracy every this many iterations (and at the end).
    seed:
        Global seed driving batch order, Byzantine selection and attack noise.
    """

    batch_size: int = 100
    num_iterations: int = 100
    learning_rate: float = 0.05
    lr_decay: float = 0.96
    lr_period: int = 15
    momentum: float = 0.9
    weight_decay: float = 0.0
    eval_every: int = 10
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise ConfigurationError(f"batch_size must be positive, got {self.batch_size}")
        if self.num_iterations < 1:
            raise ConfigurationError(
                f"num_iterations must be positive, got {self.num_iterations}"
            )
        if self.learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {self.learning_rate}"
            )
        if self.lr_decay <= 0:
            raise ConfigurationError(f"lr_decay must be positive, got {self.lr_decay}")
        if self.lr_period < 1:
            raise ConfigurationError(f"lr_period must be >= 1, got {self.lr_period}")
        if not (0.0 <= self.momentum < 1.0):
            raise ConfigurationError(f"momentum must be in [0, 1), got {self.momentum}")
        if self.weight_decay < 0:
            raise ConfigurationError(
                f"weight_decay must be non-negative, got {self.weight_decay}"
            )
        if self.eval_every < 1:
            raise ConfigurationError(f"eval_every must be >= 1, got {self.eval_every}")
