"""Checkpointing: save and restore a training run's state.

Long ByzShield runs (the paper trains for 13 epochs / ~1000 iterations) need
resumable state.  A checkpoint stores the global model parameters, the
optimizer's momentum buffer and iteration counter, and the training history,
using a ``.npz`` archive plus a JSON sidecar for the scalar metadata.
"""

from __future__ import annotations

import json
import pathlib

import numpy as np

from repro.cluster.server import ParameterServer
from repro.core.backend import DEFAULT_DTYPE
from repro.exceptions import TrainingError
from repro.training.history import IterationRecord, TrainingHistory

__all__ = ["save_checkpoint", "load_checkpoint", "restore_server", "restore_history"]


def save_checkpoint(
    path: "str | pathlib.Path",
    server: ParameterServer,
    history: TrainingHistory | None = None,
) -> pathlib.Path:
    """Write the server state (and optionally the history) to ``path`` (.npz).

    Returns the path actually written (a ``.npz`` suffix is enforced).
    """
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    optimizer = server.optimizer
    arrays: dict[str, np.ndarray] = {
        "params": server.params,
        "velocity": optimizer._velocity
        if optimizer._velocity is not None
        else np.zeros(0, dtype=DEFAULT_DTYPE),
    }
    metadata = {
        "iteration": server.iteration,
        "optimizer_iteration": optimizer.iteration,
        "momentum": optimizer.momentum,
        "weight_decay": optimizer.weight_decay,
        "has_velocity": optimizer._velocity is not None,
        "history_label": history.label if history is not None else None,
    }
    if history is not None:
        arrays["history_records"] = np.array(
            [
                (
                    r.iteration,
                    r.train_loss,
                    r.distortion_fraction,
                    r.test_accuracy,
                    r.test_loss,
                    r.learning_rate,
                )
                for r in history.records
            ],
            dtype=DEFAULT_DTYPE,
        ).reshape(len(history.records), 6)
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    path.with_suffix(".json").write_text(json.dumps(metadata, indent=2))
    return path


def load_checkpoint(path: "str | pathlib.Path") -> dict:
    """Load a checkpoint into a plain dictionary of arrays and metadata."""
    path = pathlib.Path(path)
    if path.suffix != ".npz":
        path = path.with_suffix(".npz")
    if not path.exists():
        raise TrainingError(f"checkpoint {path} does not exist")
    sidecar = path.with_suffix(".json")
    if not sidecar.exists():
        raise TrainingError(f"checkpoint metadata {sidecar} does not exist")
    with np.load(path) as archive:
        arrays = {key: archive[key].copy() for key in archive.files}
    metadata = json.loads(sidecar.read_text())
    return {"arrays": arrays, "metadata": metadata}


def restore_server(server: ParameterServer, checkpoint: dict) -> None:
    """Restore a parameter server's model and optimizer state in place."""
    arrays = checkpoint["arrays"]
    metadata = checkpoint["metadata"]
    params = arrays["params"]
    if params.shape != server.params.shape:
        raise TrainingError(
            f"checkpoint has {params.size} parameters, server expects {server.params.size}"
        )
    server._params = params.copy()
    server.iteration = int(metadata["iteration"])
    optimizer = server.optimizer
    optimizer.iteration = int(metadata["optimizer_iteration"])
    if metadata.get("has_velocity"):
        optimizer._velocity = arrays["velocity"].copy()
    else:
        optimizer._velocity = None


def restore_history(checkpoint: dict) -> TrainingHistory:
    """Rebuild a :class:`TrainingHistory` from a checkpoint dictionary."""
    arrays = checkpoint["arrays"]
    metadata = checkpoint["metadata"]
    history = TrainingHistory(label=metadata.get("history_label") or "restored")
    records = arrays.get("history_records")
    if records is None:
        return history
    for row in records:
        history.append(
            IterationRecord(
                iteration=int(row[0]),
                train_loss=float(row[1]),
                distortion_fraction=float(row[2]),
                test_accuracy=float(row[3]),
                test_loss=float(row[4]),
                learning_rate=float(row[5]),
            )
        )
    return history
