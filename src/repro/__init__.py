"""ByzShield reproduction library.

A from-scratch reproduction of *ByzShield: An Efficient and Robust System for
Distributed Training* (Konstantinidis & Ramamoorthy, MLSys 2021): redundant
task assignment through bipartite expander graphs (MOLS and Ramanujan
bigraphs), majority voting plus robust aggregation at the parameter server,
an omniscient Byzantine adversary, and every substrate needed to run the
paper's evaluation offline (a numpy neural-network library, synthetic
datasets and a simulated PS/worker cluster).

Quick start::

    from repro import MOLSAssignment, max_distortion

    assignment = MOLSAssignment(load=5, replication=3).assignment
    result = max_distortion(assignment, num_byzantine=3)
    print(result.c_max, result.epsilon)   # 3 corrupted files out of 25

See ``examples/`` for end-to-end training under attack and ``benchmarks/``
for the scripts regenerating every table and figure of the paper.
"""

from repro.aggregation import (
    Aggregator,
    BulyanAggregator,
    CoordinateWiseMedian,
    GeometricMedianAggregator,
    KrumAggregator,
    MeanAggregator,
    MedianOfMeansAggregator,
    MultiKrumAggregator,
    SignSGDMajorityAggregator,
    TrimmedMeanAggregator,
)
from repro.assignment import (
    AssignmentScheme,
    BaselineAssignment,
    FRCAssignment,
    MOLSAssignment,
    RamanujanAssignment,
    RandomAssignment,
)
from repro.attacks import (
    ALIEAttack,
    Attack,
    ConstantAttack,
    FixedSelector,
    OmniscientSelector,
    RandomSelector,
    ReversedGradientAttack,
)
from repro.core import (
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    DistortionResult,
    VanillaPipeline,
    VoteTensor,
    max_distortion,
    distortion_comparison_table,
)
from repro.data import Dataset, make_gaussian_mixture, make_spirals, make_synthetic_images
from repro.graphs import BipartiteAssignment, second_eigenvalue
from repro.nn import SGD, Sequential, build_cnn, build_mlp, build_resnet_lite
from repro.training import (
    DistributedTrainer,
    TrainingConfig,
    TrainingHistory,
    build_byzshield_trainer,
    build_detox_trainer,
    build_vanilla_trainer,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # assignment schemes
    "AssignmentScheme",
    "MOLSAssignment",
    "RamanujanAssignment",
    "FRCAssignment",
    "BaselineAssignment",
    "RandomAssignment",
    # graphs
    "BipartiteAssignment",
    "second_eigenvalue",
    # aggregation
    "Aggregator",
    "MeanAggregator",
    "CoordinateWiseMedian",
    "TrimmedMeanAggregator",
    "MedianOfMeansAggregator",
    "KrumAggregator",
    "MultiKrumAggregator",
    "BulyanAggregator",
    "GeometricMedianAggregator",
    "SignSGDMajorityAggregator",
    # attacks
    "Attack",
    "ALIEAttack",
    "ConstantAttack",
    "ReversedGradientAttack",
    "FixedSelector",
    "RandomSelector",
    "OmniscientSelector",
    # core
    "ByzShieldPipeline",
    "DetoxPipeline",
    "DracoPipeline",
    "VanillaPipeline",
    "VoteTensor",
    "DistortionResult",
    "max_distortion",
    "distortion_comparison_table",
    # data
    "Dataset",
    "make_synthetic_images",
    "make_gaussian_mixture",
    "make_spirals",
    # nn
    "Sequential",
    "build_mlp",
    "build_cnn",
    "build_resnet_lite",
    "SGD",
    # training
    "TrainingConfig",
    "TrainingHistory",
    "DistributedTrainer",
    "build_byzshield_trainer",
    "build_detox_trainer",
    "build_vanilla_trainer",
]
