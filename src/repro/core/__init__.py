"""Core ByzShield logic: distortion analysis and robust training pipelines.

* :mod:`repro.core.distortion` — how many file gradients an omniscient
  adversary controlling ``q`` workers can corrupt (``c_max``, ``ε̂``, the
  ``γ`` bound and the paper's comparison tables).
* :mod:`repro.core.pipelines` — the gradient-aggregation pipelines evaluated
  in the paper: ByzShield (vote + coordinate-wise median), DETOX (vote +
  hierarchical robust aggregation), DRACO (vote with exact-recovery
  requirement) and the plain robust-aggregation baseline.
"""

from repro.core.distortion import (
    DistortionResult,
    majority_threshold,
    distorted_files,
    count_distorted,
    epsilon_hat,
    max_distortion,
    max_distortion_exhaustive,
    max_distortion_greedy,
    max_distortion_local_search,
    claim2_exact_c_max,
    distortion_comparison_table,
)
from repro.core.pipelines import (
    AggregationPipeline,
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    VanillaPipeline,
)
from repro.core.vote_tensor import VoteTensor

__all__ = [
    "DistortionResult",
    "majority_threshold",
    "distorted_files",
    "count_distorted",
    "epsilon_hat",
    "max_distortion",
    "max_distortion_exhaustive",
    "max_distortion_greedy",
    "max_distortion_local_search",
    "claim2_exact_c_max",
    "distortion_comparison_table",
    "AggregationPipeline",
    "ByzShieldPipeline",
    "DetoxPipeline",
    "DracoPipeline",
    "VanillaPipeline",
    "VoteTensor",
]
