"""Core ByzShield logic: distortion analysis and robust training pipelines.

* :mod:`repro.core.backend` — the dtype/backend seam: the supported working
  dtypes (``float32``/``float64``), resolution of user-facing dtype specs and
  the dtype-preserving coercion helpers every numeric kernel routes through.
* :mod:`repro.core.distortion` — how many file gradients an omniscient
  adversary controlling ``q`` workers can corrupt (``c_max``, ``ε̂``, the
  ``γ`` bound and the paper's comparison tables).
* :mod:`repro.core.pipelines` — the gradient-aggregation pipelines evaluated
  in the paper: ByzShield (vote + coordinate-wise median), DETOX (vote +
  hierarchical robust aggregation), DRACO (vote with exact-recovery
  requirement) and the plain robust-aggregation baseline.

The re-exports below resolve lazily (PEP 562) so that leaf modules — most
importantly :mod:`repro.core.backend`, which sits underneath
:mod:`repro.utils.arrays` — can be imported without pulling the whole
pipeline stack (and its aggregation/utils dependencies) into a cycle.
"""

import importlib

_EXPORTS = {
    "DistortionResult": "repro.core.distortion",
    "majority_threshold": "repro.core.distortion",
    "distorted_files": "repro.core.distortion",
    "count_distorted": "repro.core.distortion",
    "epsilon_hat": "repro.core.distortion",
    "max_distortion": "repro.core.distortion",
    "max_distortion_exhaustive": "repro.core.distortion",
    "max_distortion_greedy": "repro.core.distortion",
    "max_distortion_local_search": "repro.core.distortion",
    "claim2_exact_c_max": "repro.core.distortion",
    "distortion_comparison_table": "repro.core.distortion",
    "AggregationPipeline": "repro.core.pipelines",
    "ByzShieldPipeline": "repro.core.pipelines",
    "DetoxPipeline": "repro.core.pipelines",
    "DracoPipeline": "repro.core.pipelines",
    "VanillaPipeline": "repro.core.pipelines",
    "VoteTensor": "repro.core.vote_tensor",
    "DEFAULT_DTYPE": "repro.core.backend",
    "resolve_dtype": "repro.core.backend",
    "ensure_float": "repro.core.backend",
}

__all__ = list(_EXPORTS)


def __getattr__(name: str):
    try:
        module = _EXPORTS[name]
    except KeyError:
        raise AttributeError(
            f"module {__name__!r} has no attribute {name!r}"
        ) from None
    value = getattr(importlib.import_module(module), name)
    globals()[name] = value  # cache so __getattr__ runs once per name
    return value


def __dir__():
    return sorted(set(globals()) | set(__all__))
