"""Contiguous round representation of the per-(worker, file) returns.

The legacy round representation is ``file_votes``: a ``{file: {worker:
gradient}}`` dict-of-dicts.  It is convenient for tests but forces every
consumer — attacks, majority voting, the aggregation pipelines — into
per-file Python loops.  :class:`VoteTensor` replaces it on the hot path with
three contiguous arrays:

* ``values`` — ``(f, r, d)`` float: ``values[i, k]`` is the gradient
  returned for file ``i`` by its ``k``-th assigned worker;
* ``workers`` — ``(f, r)`` int64: ``workers[i, k]`` is that worker's index.
  Every row is strictly increasing, matching the ``sorted(votes)`` order the
  legacy pipelines iterate in, so the two representations aggregate
  bit-identically;
* ``byzantine_mask`` — ``(f, r)`` bool: simulator-side bookkeeping of which
  slots hold adversarial payloads (the PS never reads it).

Copy-on-write replication
-------------------------

Honest replicas of a file are bit-identical by construction (the paper's
exact-voting premise), so the round's ``(f, r, d)`` tensor carries only
``f`` distinct rows until an attack or fault rewrites a slot.
:meth:`VoteTensor.from_honest` therefore builds a *lazy* tensor: one shared
``(f, d)`` base matrix plus a per-(file, slot) override store that
materializes rows only when they are actually written
(:meth:`write_slots` / :meth:`set_vote` and friends).  A clean round — and
the ``q = 0`` iterations of any attacked run — never copies a single
replica.  Consumers that need the full dense cube can still read
:attr:`values`; doing so materializes the tensor **once** and permanently
switches it to dense mode so subsequent in-place writes through the array
are never lost.  The vectorized majority kernel instead uses
:meth:`touched_files` / :meth:`materialize_files` to densify only the files
an adversary actually touched.

Adapters (:meth:`VoteTensor.from_file_votes` / :meth:`VoteTensor.to_file_votes`)
convert between the tensor and the legacy representation so existing
dict-based code keeps working while the trainer, simulator and benchmarks
use the tensor path.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.core.backend import ensure_float
from repro.exceptions import AggregationError, ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = ["VoteTensor"]


class VoteTensor:
    """One round's worth of (worker, file) gradient returns, densely packed.

    Parameters
    ----------
    values:
        ``(f, r, d)`` float array of returned gradients (``float32`` and
        ``float64`` are kept as-is; any other dtype is coerced to the
        backend default).
    workers:
        ``(f, r)`` int64 matrix of the sending workers; rows must be strictly
        increasing (slot order == ascending worker index).
    byzantine_mask:
        Optional ``(f, r)`` bool bookkeeping mask; defaults to all-honest.
    """

    __slots__ = (
        "workers",
        "byzantine_mask",
        "_dense",
        "_base",
        "_slot_map",
        "_store",
        "_num_overrides",
    )

    def __init__(
        self,
        values: np.ndarray,
        workers: np.ndarray,
        byzantine_mask: np.ndarray | None = None,
    ) -> None:
        values = np.ascontiguousarray(ensure_float(values))
        workers = np.asarray(workers, dtype=np.int64)
        if values.ndim != 3:
            raise ConfigurationError(
                f"vote tensor values must be (f, r, d), got ndim={values.ndim}"
            )
        if workers.shape != values.shape[:2]:
            raise ConfigurationError(
                f"workers matrix has shape {workers.shape}, expected "
                f"{values.shape[:2]}"
            )
        self.workers = workers
        self.byzantine_mask = self._checked_mask(byzantine_mask)
        self._check_workers()
        self._dense: np.ndarray | None = values
        self._base: np.ndarray | None = None
        self._slot_map: np.ndarray | None = None
        self._store: np.ndarray | None = None
        self._num_overrides = 0

    def _check_workers(self) -> None:
        workers = self.workers
        if workers.shape[1] > 1 and not np.all(workers[:, 1:] > workers[:, :-1]):
            raise ConfigurationError(
                "workers matrix rows must be strictly increasing (slot order "
                "is ascending worker index)"
            )

    def _checked_mask(self, byzantine_mask: np.ndarray | None) -> np.ndarray:
        if byzantine_mask is None:
            return np.zeros(self.workers.shape, dtype=bool)
        byzantine_mask = np.asarray(byzantine_mask, dtype=bool)
        if byzantine_mask.shape != self.workers.shape:
            raise ConfigurationError(
                f"byzantine mask has shape {byzantine_mask.shape}, "
                f"expected {self.workers.shape}"
            )
        return byzantine_mask

    # -- basic properties ----------------------------------------------------
    @property
    def num_files(self) -> int:
        """Number of files ``f``."""
        return int(self.workers.shape[0])

    @property
    def replication(self) -> int:
        """Votes per file ``r``."""
        return int(self.workers.shape[1])

    @property
    def dim(self) -> int:
        """Gradient dimensionality ``d``."""
        if self._dense is not None:
            return int(self._dense.shape[2])
        assert self._base is not None
        return int(self._base.shape[1])

    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(f, r, d)`` shape triple."""
        return (self.num_files, self.replication, self.dim)

    @property
    def dtype(self) -> np.dtype:
        """Working float dtype of the vote payloads."""
        if self._dense is not None:
            return self._dense.dtype
        assert self._base is not None
        return self._base.dtype

    # -- copy-on-write observables ------------------------------------------
    @property
    def is_lazy(self) -> bool:
        """True while the tensor is still base + overrides (never densified)."""
        return self._dense is None

    @property
    def num_overridden_slots(self) -> int:
        """How many (file, slot) rows have been materialized by writes.

        Always 0 for dense tensors; for lazy tensors this counts the
        copy-on-write rows an attack/fault actually allocated — the ``q = 0``
        fast path keeps it at zero for the whole round.
        """
        if self._dense is not None:
            return 0
        assert self._slot_map is not None
        return int((self._slot_map >= 0).sum())

    @property
    def values(self) -> np.ndarray:
        """The dense ``(f, r, d)`` cube.

        On a lazy tensor this materializes the replicas **once** and
        permanently switches the tensor to dense mode, so in-place writes
        through the returned array (``tensor.values[mask] = x``) keep
        working exactly as before copy-on-write existed.
        """
        if self._dense is None:
            self._materialize()
        assert self._dense is not None
        return self._dense

    def _materialize(self) -> None:
        assert self._base is not None and self._slot_map is not None
        dense = np.repeat(self._base[:, None, :], self.replication, axis=1)
        idx = self._slot_map
        files, slots = np.nonzero(idx >= 0)
        if files.size:
            assert self._store is not None
            dense[files, slots] = self._store[idx[files, slots]]
        self._dense = dense
        self._base = None
        self._slot_map = None
        self._store = None
        self._num_overrides = 0

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_honest(
        cls, assignment: BipartiteAssignment, honest_matrix: np.ndarray
    ) -> "VoteTensor":
        """Replicate the ``(f, d)`` honest gradients into every assigned slot.

        This is what the worker pool produces before any attack runs: each of
        file ``i``'s ``r`` workers returns a bit-identical copy of row ``i``.
        The result is a *lazy* copy-on-write tensor — the honest rows are
        shared, not copied, and per-replica storage appears only for the
        slots an attack or fault rewrites.
        """
        matrix = np.ascontiguousarray(ensure_float(honest_matrix))
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"honest matrix must be (f, d), got ndim={matrix.ndim}"
            )
        if matrix.shape[0] != assignment.num_files:
            raise ConfigurationError(
                f"honest matrix has {matrix.shape[0]} rows, assignment has "
                f"{assignment.num_files} files"
            )
        workers = assignment.worker_slot_matrix()
        tensor = object.__new__(cls)
        tensor.workers = workers
        tensor.byzantine_mask = np.zeros(workers.shape, dtype=bool)
        tensor._dense = None
        tensor._base = matrix
        tensor._slot_map = np.full(workers.shape, -1, dtype=np.int64)
        tensor._store = np.empty((0, matrix.shape[1]), dtype=matrix.dtype)
        tensor._num_overrides = 0
        return tensor

    @classmethod
    def from_file_votes(
        cls,
        assignment: BipartiteAssignment,
        file_votes: Mapping[int, Mapping[int, np.ndarray]],
        byzantine_workers: tuple[int, ...] = (),
    ) -> "VoteTensor":
        """Pack a legacy ``{file: {worker: gradient}}`` dict into a tensor.

        Validates the same invariants as the dict pipelines: every file of
        the assignment is covered by exactly its assigned workers.
        """
        if len(file_votes) != assignment.num_files:
            raise AggregationError(
                f"expected votes for {assignment.num_files} files, got "
                f"{len(file_votes)}"
            )
        workers = assignment.worker_slot_matrix()
        f, r = workers.shape
        values: np.ndarray | None = None
        for i in range(f):
            try:
                votes = file_votes[i]
            except KeyError:
                raise AggregationError(f"missing votes for file {i}") from None
            got = sorted(int(w) for w in votes)
            if got != [int(w) for w in workers[i]]:
                raise AggregationError(
                    f"file {i}: votes came from workers {got} but the "
                    f"assignment expects {[int(w) for w in workers[i]]}"
                )
            for k, w in enumerate(got):
                vector = ensure_float(votes[w]).ravel()
                if values is None:
                    # Inherit the votes' working dtype (float32 stays float32).
                    values = np.empty((f, r, vector.size), dtype=vector.dtype)
                if vector.size != values.shape[2]:
                    raise AggregationError(
                        f"file {i}, worker {w}: vote has dimension "
                        f"{vector.size}, expected {values.shape[2]}"
                    )
                values[i, k] = vector
        assert values is not None  # f >= 1 is guaranteed by the assignment
        tensor = cls(values, workers)
        if byzantine_workers:
            tensor.mark_byzantine(byzantine_workers)
        return tensor

    # -- adapters ------------------------------------------------------------
    def to_file_votes(self, copy: bool = False) -> dict[int, dict[int, np.ndarray]]:
        """Unpack into the legacy ``{file: {worker: gradient}}`` dict.

        The returned gradients are views into ``values`` unless ``copy``.
        """
        out: dict[int, dict[int, np.ndarray]] = {}
        for i in range(self.num_files):
            row = self.values[i]
            out[i] = {
                int(self.workers[i, k]): (row[k].copy() if copy else row[k])
                for k in range(self.replication)
            }
        return out

    # -- slot access (copy-on-write aware) -----------------------------------
    def _override_rows(self, files: np.ndarray, slots: np.ndarray) -> np.ndarray:
        """Store indices of the given lazy slots, allocating rows for new ones."""
        assert self._slot_map is not None and self._store is not None
        idx = self._slot_map[files, slots]
        fresh = idx < 0
        if fresh.any():
            count = int(fresh.sum())
            needed = self._num_overrides + count
            if needed > self._store.shape[0]:
                capacity = max(needed, 2 * self._store.shape[0], 8)
                grown = np.empty((capacity, self.dim), dtype=self._store.dtype)
                grown[: self._num_overrides] = self._store[: self._num_overrides]
                self._store = grown
            new_idx = np.arange(self._num_overrides, needed, dtype=np.int64)
            self._slot_map[files[fresh], slots[fresh]] = new_idx
            self._num_overrides = needed
            idx = self._slot_map[files, slots]
        return idx

    def write_slots(self, files, slots, rows) -> None:
        """Overwrite the given (file, slot) votes — the vectorized attack path.

        ``rows`` broadcasts against the ``(m, d)`` selection: a scalar fills
        every coordinate, a ``(d,)`` vector is written to every selected
        slot, an ``(m, d)`` matrix writes one row per slot.  On a lazy
        tensor only the selected slots are materialized (copy-on-write);
        the shared honest base is never touched.
        """
        files = np.asarray(files, dtype=np.int64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if files.size == 0:
            return
        if self._dense is not None:
            self._dense[files, slots] = rows
            return
        assert self._store is not None
        idx = self._override_rows(files, slots)
        self._store[idx] = rows

    def read_slots(self, files, slots) -> np.ndarray:
        """The ``(m, d)`` payloads of the given (file, slot) pairs (a copy)."""
        files = np.asarray(files, dtype=np.int64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if self._dense is not None:
            return self._dense[files, slots]
        assert self._base is not None and self._slot_map is not None
        out = self._base[files]
        idx = self._slot_map[files, slots]
        overridden = idx >= 0
        if overridden.any():
            assert self._store is not None
            out[overridden] = self._store[idx[overridden]]
        return out

    def add_to_slots(self, files, slots, rows) -> None:
        """Add ``rows`` to the given slots (read-modify-write, COW aware)."""
        files = np.asarray(files, dtype=np.int64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if files.size == 0:
            return
        if self._dense is not None:
            self._dense[files, slots] += rows
            return
        self.write_slots(files, slots, self.read_slots(files, slots) + rows)

    def scale_slots(self, files, slots, factor: float) -> None:
        """Multiply the given slots by ``factor`` (read-modify-write, COW aware)."""
        files = np.asarray(files, dtype=np.int64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if files.size == 0:
            return
        if self._dense is not None:
            self._dense[files, slots] *= factor
            return
        self.write_slots(files, slots, self.read_slots(files, slots) * factor)

    def zero_slots(self, files, slots) -> None:
        """Zero the given slots (crash/timeout faults), COW aware."""
        self.write_slots(files, slots, 0.0)

    def slot_rows(self, slot: int) -> np.ndarray:
        """The ``(f, d)`` matrix of one slot column (``values[:, slot, :]``).

        Dense tensors return a view; lazy tensors return the shared base
        (read-only view) when the column is untouched, otherwise a copy with
        the overridden rows patched in.  The vanilla ``r = 1`` pipeline feeds
        this straight to its robust aggregator without ever densifying.
        """
        if self._dense is not None:
            return self._dense[:, slot, :]
        assert self._base is not None and self._slot_map is not None
        idx = self._slot_map[:, slot]
        overridden = idx >= 0
        if not overridden.any():
            view = self._base.view()
            view.setflags(write=False)
            return view
        assert self._store is not None
        out = self._base.copy()
        out[overridden] = self._store[idx[overridden]]
        return out

    def overridden_slots(self) -> tuple[np.ndarray, np.ndarray]:
        """``(files, slots)`` of every copy-on-write override, row-major order.

        Only defined for lazy tensors: the pairs an attack or fault actually
        wrote, sorted by (file, slot).  The exact-voting kernel uses this to
        vote the touched files against the shared base without ever
        materializing their replicas.
        """
        if self._dense is not None:
            raise ConfigurationError(
                "overridden_slots() is only defined for lazy (copy-on-write) "
                "tensors"
            )
        assert self._slot_map is not None
        files, slots = np.nonzero(self._slot_map >= 0)
        return files, slots

    def touched_files(self) -> np.ndarray:
        """Sorted file indices with at least one overridden slot.

        Dense tensors report every file (any slot may have been written
        through :attr:`values`); the majority kernel only calls this on lazy
        tensors, where it bounds the work to the attacked/faulted files.
        """
        if self._dense is not None:
            return np.arange(self.num_files, dtype=np.int64)
        assert self._slot_map is not None
        return np.nonzero((self._slot_map >= 0).any(axis=1))[0]

    def materialize_files(self, files) -> np.ndarray:
        """Dense ``(t, r, d)`` sub-tensor of the given files (always a copy)."""
        files = np.asarray(files, dtype=np.int64).ravel()
        if self._dense is not None:
            return self._dense[files]
        assert self._base is not None and self._slot_map is not None
        sub = np.repeat(self._base[files][:, None, :], self.replication, axis=1)
        idx = self._slot_map[files]
        fi, sl = np.nonzero(idx >= 0)
        if fi.size:
            assert self._store is not None
            sub[fi, sl] = self._store[idx[fi, sl]]
        return sub

    def base_rows(self) -> np.ndarray:
        """Read-only view of the shared honest base (lazy tensors only)."""
        if self._base is None:
            raise ConfigurationError(
                "base_rows() is only defined for lazy (copy-on-write) tensors"
            )
        view = self._base.view()
        view.setflags(write=False)
        return view

    # -- coordinate-block views (blockwise kernels) --------------------------
    def base_block(self, lo: int, hi: int) -> np.ndarray:
        """Read-only ``(f, hi - lo)`` view of base columns ``[lo, hi)``.

        Lazy tensors only.  The blockwise vote kernels stream coordinate
        blocks through a fixed workspace; this is the zero-copy source for
        the honest side of each block comparison.
        """
        if self._base is None:
            raise ConfigurationError(
                "base_block() is only defined for lazy (copy-on-write) tensors"
            )
        view = self._base[:, lo:hi]
        view.setflags(write=False)
        return view

    def read_slots_block(self, files, slots, lo: int, hi: int) -> np.ndarray:
        """``(m, hi - lo)`` coordinate block of the given (file, slot) pairs.

        The blockwise counterpart of :meth:`read_slots`: only columns
        ``[lo, hi)`` of each selected row are gathered, so peak memory is
        O(m · block) no matter how large ``d`` grows.
        """
        files = np.asarray(files, dtype=np.int64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        if self._dense is not None:
            return self._dense[files, slots, lo:hi]
        assert self._base is not None and self._slot_map is not None
        out = self._base[files, lo:hi]
        idx = self._slot_map[files, slots]
        overridden = idx >= 0
        if overridden.any():
            assert self._store is not None
            out[overridden] = self._store[idx[overridden], lo:hi]
        return out

    def slot_subset(self, files, slots) -> "VoteTensor":
        """Sub-tensor of ``files`` × ``slots`` — a group's share of the round.

        ``files`` selects rows and ``slots`` selects vote columns (the same
        columns for every selected file).  Lazy tensors stay lazy: the
        subset shares the override store and only gathers the selected base
        rows and slot-map entries, so no replica cube is ever built.  The
        hierarchical topology uses this to hand each group its local
        sub-VoteTensor without densifying.  Lazy subsets share the parent's
        override store and are meant to be read (voted over), not written.
        """
        files = np.asarray(files, dtype=np.int64).ravel()
        slots = np.asarray(slots, dtype=np.int64).ravel()
        workers = self.workers[np.ix_(files, slots)]
        mask = self.byzantine_mask[np.ix_(files, slots)]
        if self._dense is not None:
            return VoteTensor(self._dense[np.ix_(files, slots)], workers, mask)
        assert self._base is not None and self._slot_map is not None
        assert self._store is not None
        all_files = files.size == self.num_files and bool(
            np.all(files == np.arange(self.num_files))
        )
        sub = object.__new__(VoteTensor)
        sub.workers = workers
        sub.byzantine_mask = mask
        sub._dense = None
        sub._base = self._base if all_files else np.ascontiguousarray(self._base[files])
        sub._slot_map = np.ascontiguousarray(self._slot_map[np.ix_(files, slots)])
        sub._store = self._store
        sub._num_overrides = self._num_overrides
        return sub

    # -- mutation ------------------------------------------------------------
    def slot_of(self, file: int, worker: int) -> int:
        """Slot index ``k`` of ``worker`` in ``file``'s row (binary search)."""
        row = self.workers[file]
        k = int(np.searchsorted(row, worker))
        if k >= row.size or row[k] != worker:
            raise ConfigurationError(
                f"worker {worker} is not assigned file {file}"
            )
        return k

    def set_vote(self, file: int, worker: int, vector: np.ndarray) -> None:
        """Overwrite the vote of ``(worker, file)`` — the attack scatter path."""
        vec = ensure_float(vector).ravel()
        if vec.size != self.dim:
            raise ConfigurationError(
                f"vote has dimension {vec.size}, expected {self.dim}"
            )
        slot = self.slot_of(file, worker)
        self.write_slots(
            np.array([file], dtype=np.int64), np.array([slot], dtype=np.int64), vec
        )

    def mark_byzantine(self, byzantine_workers) -> None:
        """Set the bookkeeping mask to the slots owned by these workers."""
        byz = np.asarray(sorted(int(w) for w in byzantine_workers), dtype=np.int64)
        if byz.size == 0:
            self.byzantine_mask[:] = False
        else:
            self.byzantine_mask[:] = np.isin(self.workers, byz)

    # -- misc ----------------------------------------------------------------
    def copy(self) -> "VoteTensor":
        """Deep copy (values, workers view is shared — it is read-only).

        A lazy tensor stays lazy: the clone shares the immutable honest base
        and copies only the override bookkeeping, so copying a clean round
        still costs O(f·r) instead of O(f·r·d).
        """
        if self._dense is not None:
            return VoteTensor(self._dense.copy(), self.workers, self.byzantine_mask.copy())
        assert self._base is not None and self._slot_map is not None
        assert self._store is not None
        clone = object.__new__(VoteTensor)
        clone.workers = self.workers
        clone.byzantine_mask = self.byzantine_mask.copy()
        clone._dense = None
        clone._base = self._base
        clone._slot_map = self._slot_map.copy()
        clone._store = self._store[: self._num_overrides].copy()
        clone._num_overrides = self._num_overrides
        return clone

    def __repr__(self) -> str:  # pragma: no cover - trivial
        f, r, d = self.shape
        mode = "lazy" if self.is_lazy else "dense"
        return f"VoteTensor(f={f}, r={r}, d={d}, {mode})"
