"""Contiguous round representation of the per-(worker, file) returns.

The legacy round representation is ``file_votes``: a ``{file: {worker:
gradient}}`` dict-of-dicts.  It is convenient for tests but forces every
consumer — attacks, majority voting, the aggregation pipelines — into
per-file Python loops.  :class:`VoteTensor` replaces it on the hot path with
three contiguous arrays:

* ``values`` — ``(f, r, d)`` float64: ``values[i, k]`` is the gradient
  returned for file ``i`` by its ``k``-th assigned worker;
* ``workers`` — ``(f, r)`` int64: ``workers[i, k]`` is that worker's index.
  Every row is strictly increasing, matching the ``sorted(votes)`` order the
  legacy pipelines iterate in, so the two representations aggregate
  bit-identically;
* ``byzantine_mask`` — ``(f, r)`` bool: simulator-side bookkeeping of which
  slots hold adversarial payloads (the PS never reads it).

Adapters (:meth:`VoteTensor.from_file_votes` / :meth:`VoteTensor.to_file_votes`)
convert between the two representations so existing dict-based code keeps
working while the trainer, simulator and benchmarks use the tensor path.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.exceptions import AggregationError, ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = ["VoteTensor"]


class VoteTensor:
    """One round's worth of (worker, file) gradient returns, densely packed.

    Parameters
    ----------
    values:
        ``(f, r, d)`` float64 array of returned gradients.
    workers:
        ``(f, r)`` int64 matrix of the sending workers; rows must be strictly
        increasing (slot order == ascending worker index).
    byzantine_mask:
        Optional ``(f, r)`` bool bookkeeping mask; defaults to all-honest.
    """

    __slots__ = ("values", "workers", "byzantine_mask")

    def __init__(
        self,
        values: np.ndarray,
        workers: np.ndarray,
        byzantine_mask: np.ndarray | None = None,
    ) -> None:
        values = np.ascontiguousarray(values, dtype=np.float64)
        workers = np.asarray(workers, dtype=np.int64)
        if values.ndim != 3:
            raise ConfigurationError(
                f"vote tensor values must be (f, r, d), got ndim={values.ndim}"
            )
        if workers.shape != values.shape[:2]:
            raise ConfigurationError(
                f"workers matrix has shape {workers.shape}, expected "
                f"{values.shape[:2]}"
            )
        if workers.shape[1] > 1 and not np.all(workers[:, 1:] > workers[:, :-1]):
            raise ConfigurationError(
                "workers matrix rows must be strictly increasing (slot order "
                "is ascending worker index)"
            )
        if byzantine_mask is None:
            byzantine_mask = np.zeros(workers.shape, dtype=bool)
        else:
            byzantine_mask = np.asarray(byzantine_mask, dtype=bool)
            if byzantine_mask.shape != workers.shape:
                raise ConfigurationError(
                    f"byzantine mask has shape {byzantine_mask.shape}, "
                    f"expected {workers.shape}"
                )
        self.values = values
        self.workers = workers
        self.byzantine_mask = byzantine_mask

    # -- basic properties ----------------------------------------------------
    @property
    def num_files(self) -> int:
        """Number of files ``f``."""
        return int(self.values.shape[0])

    @property
    def replication(self) -> int:
        """Votes per file ``r``."""
        return int(self.values.shape[1])

    @property
    def dim(self) -> int:
        """Gradient dimensionality ``d``."""
        return int(self.values.shape[2])

    @property
    def shape(self) -> tuple[int, int, int]:
        """The ``(f, r, d)`` shape triple."""
        return (self.num_files, self.replication, self.dim)

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_honest(
        cls, assignment: BipartiteAssignment, honest_matrix: np.ndarray
    ) -> "VoteTensor":
        """Broadcast the ``(f, d)`` honest gradients into every assigned slot.

        This is what the worker pool produces before any attack runs: each of
        file ``i``'s ``r`` workers returns a bit-identical copy of row ``i``.
        """
        matrix = np.asarray(honest_matrix, dtype=np.float64)
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"honest matrix must be (f, d), got ndim={matrix.ndim}"
            )
        if matrix.shape[0] != assignment.num_files:
            raise ConfigurationError(
                f"honest matrix has {matrix.shape[0]} rows, assignment has "
                f"{assignment.num_files} files"
            )
        workers = assignment.worker_slot_matrix()
        values = np.repeat(matrix[:, None, :], workers.shape[1], axis=1)
        return cls(values, workers)

    @classmethod
    def from_file_votes(
        cls,
        assignment: BipartiteAssignment,
        file_votes: Mapping[int, Mapping[int, np.ndarray]],
        byzantine_workers: tuple[int, ...] = (),
    ) -> "VoteTensor":
        """Pack a legacy ``{file: {worker: gradient}}`` dict into a tensor.

        Validates the same invariants as the dict pipelines: every file of
        the assignment is covered by exactly its assigned workers.
        """
        if len(file_votes) != assignment.num_files:
            raise AggregationError(
                f"expected votes for {assignment.num_files} files, got "
                f"{len(file_votes)}"
            )
        workers = assignment.worker_slot_matrix()
        f, r = workers.shape
        values: np.ndarray | None = None
        for i in range(f):
            try:
                votes = file_votes[i]
            except KeyError:
                raise AggregationError(f"missing votes for file {i}") from None
            got = sorted(int(w) for w in votes)
            if got != [int(w) for w in workers[i]]:
                raise AggregationError(
                    f"file {i}: votes came from workers {got} but the "
                    f"assignment expects {[int(w) for w in workers[i]]}"
                )
            for k, w in enumerate(got):
                vector = np.asarray(votes[w], dtype=np.float64).ravel()
                if values is None:
                    values = np.empty((f, r, vector.size), dtype=np.float64)
                if vector.size != values.shape[2]:
                    raise AggregationError(
                        f"file {i}, worker {w}: vote has dimension "
                        f"{vector.size}, expected {values.shape[2]}"
                    )
                values[i, k] = vector
        assert values is not None  # f >= 1 is guaranteed by the assignment
        tensor = cls(values, workers)
        if byzantine_workers:
            tensor.mark_byzantine(byzantine_workers)
        return tensor

    # -- adapters ------------------------------------------------------------
    def to_file_votes(self, copy: bool = False) -> dict[int, dict[int, np.ndarray]]:
        """Unpack into the legacy ``{file: {worker: gradient}}`` dict.

        The returned gradients are views into ``values`` unless ``copy``.
        """
        out: dict[int, dict[int, np.ndarray]] = {}
        for i in range(self.num_files):
            row = self.values[i]
            out[i] = {
                int(self.workers[i, k]): (row[k].copy() if copy else row[k])
                for k in range(self.replication)
            }
        return out

    # -- mutation ------------------------------------------------------------
    def slot_of(self, file: int, worker: int) -> int:
        """Slot index ``k`` of ``worker`` in ``file``'s row (binary search)."""
        row = self.workers[file]
        k = int(np.searchsorted(row, worker))
        if k >= row.size or row[k] != worker:
            raise ConfigurationError(
                f"worker {worker} is not assigned file {file}"
            )
        return k

    def set_vote(self, file: int, worker: int, vector: np.ndarray) -> None:
        """Overwrite the vote of ``(worker, file)`` — the attack scatter path."""
        vec = np.asarray(vector, dtype=np.float64).ravel()
        if vec.size != self.dim:
            raise ConfigurationError(
                f"vote has dimension {vec.size}, expected {self.dim}"
            )
        self.values[file, self.slot_of(file, worker)] = vec

    def mark_byzantine(self, byzantine_workers) -> None:
        """Set the bookkeeping mask to the slots owned by these workers."""
        byz = np.asarray(sorted(int(w) for w in byzantine_workers), dtype=np.int64)
        if byz.size == 0:
            self.byzantine_mask[:] = False
        else:
            self.byzantine_mask[:] = np.isin(self.workers, byz)

    # -- misc ----------------------------------------------------------------
    def copy(self) -> "VoteTensor":
        """Deep copy (values, workers view is shared — it is read-only)."""
        return VoteTensor(
            self.values.copy(), self.workers, self.byzantine_mask.copy()
        )

    def __repr__(self) -> str:  # pragma: no cover - trivial
        f, r, d = self.shape
        return f"VoteTensor(f={f}, r={r}, d={d})"
