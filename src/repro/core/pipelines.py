"""Gradient-aggregation pipelines evaluated in the paper.

A *pipeline* turns the raw per-(worker, file) gradients returned to the PS in
one iteration into the single gradient used for the model update.  The
returned gradients are represented as ``file_votes``: a mapping
``{file_index: {worker_index: gradient}}`` containing exactly the copies the
assignment graph prescribes.

Pipelines implemented:

* :class:`ByzShieldPipeline` — Algorithm 1: per-file majority vote followed by
  a robust aggregator (coordinate-wise median by default) over the ``f``
  winning gradients.
* :class:`DetoxPipeline` — FRC grouping with per-group majority vote followed
  by a second-stage robust aggregation (median-of-means, Multi-Krum, signSGD,
  ...) over the group winners.
* :class:`DracoPipeline` — FRC grouping with the DRACO exact-recovery
  requirement ``r >= 2q + 1``; refuses to run when the bound is violated and
  otherwise averages the group majority winners.
* :class:`VanillaPipeline` — no redundancy: the robust aggregator is applied
  directly to the ``K`` worker gradients.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.aggregation.base import Aggregator
from repro.aggregation.majority import (
    MajorityVote,
    majority_vote_votetensor,
    validate_block_size,
)
from repro.aggregation.mean import MeanAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import AggregationError, ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.arrays import stack_vectors

__all__ = [
    "FileVotes",
    "AggregationPipeline",
    "ByzShieldPipeline",
    "DetoxPipeline",
    "DracoPipeline",
    "VanillaPipeline",
]

#: type alias for the per-iteration returns: file index -> worker index -> gradient
FileVotes = Mapping[int, Mapping[int, np.ndarray]]


def _validate_file_votes(assignment: BipartiteAssignment, file_votes: FileVotes) -> None:
    """Check the votes cover every file with exactly its assigned workers."""
    if len(file_votes) != assignment.num_files:
        raise AggregationError(
            f"expected votes for {assignment.num_files} files, got {len(file_votes)}"
        )
    for file_index, votes in file_votes.items():
        expected = set(assignment.workers_of_file(int(file_index)))
        got = set(int(w) for w in votes)
        if expected != got:
            raise AggregationError(
                f"file {file_index}: votes came from workers {sorted(got)} but the "
                f"assignment expects {sorted(expected)}"
            )


def _validate_vote_tensor(expected: np.ndarray, tensor: VoteTensor) -> None:
    """Check the tensor's slot layout matches the expected ``(f, r)`` matrix."""
    if tensor.workers.shape != expected.shape or not np.array_equal(
        tensor.workers, expected
    ):
        raise AggregationError(
            f"vote tensor slot layout {tensor.workers.shape} does not match "
            f"the assignment ({expected.shape[0]} files x {expected.shape[1]} "
            "replicas)"
        )


def _check_topology_vote(topology, vote_tolerance: float) -> None:
    """Hierarchical voting is exact-equality only (histograms merge by content)."""
    if topology is not None and vote_tolerance > 0:
        raise ConfigurationError(
            "hierarchical aggregation supports exact voting only; a group "
            f"topology cannot be combined with vote_tolerance={vote_tolerance}"
        )


def _checked_arrival_mask(tensor: VoteTensor, arrived: np.ndarray) -> np.ndarray:
    """Validate a partial-aggregation ``(f, r)`` arrival mask."""
    arrived = np.asarray(arrived, dtype=bool)
    if arrived.shape != tensor.workers.shape:
        raise AggregationError(
            f"arrival mask has shape {arrived.shape}, expected "
            f"{tensor.workers.shape}"
        )
    return arrived


class AggregationPipeline:
    """Base class: defines the pipeline interface and shared vote handling.

    Parameters
    ----------
    assignment:
        Worker/file assignment graph the votes must conform to.
    validate:
        Whether :meth:`aggregate` verifies that the votes match the
        assignment (disable in tight loops once the driver is trusted).
    topology:
        Optional :class:`~repro.cluster.topology.GroupTopology`.  Voting
        pipelines then run the hierarchical two-level majority vote (per
        group, then a root merge) instead of the flat kernel — bit-identical
        output, but bounded per-group working sets.  Requires exact voting
        (``vote_tolerance == 0``); the vanilla pipeline has no vote stage
        and rejects a topology.
    block_size:
        Optional coordinate-block width streamed through the majority-vote
        kernels (flat or hierarchical), capping their peak temporaries at
        ``O(rows . block)`` while staying bit-identical.
    """

    pipeline_name = "abstract"

    def __init__(
        self,
        assignment: BipartiteAssignment,
        validate: bool = True,
        topology=None,
        block_size: int | None = None,
    ) -> None:
        self.assignment = assignment
        self.validate = bool(validate)
        self.topology = topology
        self.block_size = validate_block_size(block_size)
        if topology is not None and topology.num_workers != assignment.num_workers:
            raise ConfigurationError(
                f"topology spans {topology.num_workers} workers but the "
                f"assignment has {assignment.num_workers}"
            )
        self._expected_slots: np.ndarray | None = None

    def _expected_slot_matrix(self) -> np.ndarray:
        """The assignment's ``(f, r)`` slot layout, pinned on the pipeline.

        Resolved once on first validation; per-round validation then touches
        only this local reference (no assignment lookup or regularity check).
        """
        if self._expected_slots is None:
            self._expected_slots = self.assignment.worker_slot_matrix()
        return self._expected_slots

    # -- interface -------------------------------------------------------------
    def aggregate(self, file_votes: FileVotes) -> np.ndarray:
        """Aggregate one iteration's returned gradients into an update direction."""
        if self.validate:
            _validate_file_votes(self.assignment, file_votes)
        return self._aggregate(file_votes)

    def aggregate_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        """Aggregate one iteration's returns from the packed tensor (hot path).

        Produces a result bit-identical to :meth:`aggregate` on the
        equivalent ``file_votes`` dict, without per-file Python loops.

        ``arrived`` enables the event runtime's *partial aggregation* mode:
        an ``(f, r)`` bool mask of the copies the PS actually accepted this
        round.  Voting pipelines then vote each file over its arrived copies
        only (a file with no arrivals contributes a zero winner); the vanilla
        pipeline drops missing worker rows from the robust stage.  ``None``
        (the default, and the whole synchronous path) treats every slot as
        present — missing contributions appear as the zero votes the fault
        injectors wrote.
        """
        if self.validate:
            _validate_vote_tensor(self._expected_slot_matrix(), tensor)
        if arrived is not None:
            arrived = _checked_arrival_mask(tensor, arrived)
        return self._aggregate_tensor(tensor, arrived)

    def _aggregate(self, file_votes: FileVotes) -> np.ndarray:
        raise NotImplementedError

    def _aggregate_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None
    ) -> np.ndarray:
        raise NotImplementedError

    def post_vote_matrix(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        """The ``(n, d)`` matrix the second-stage aggregator sees.

        For voting pipelines these are the per-file majority winners; for the
        vanilla pipeline the raw worker gradients.  Scenario traces digest
        this matrix per round to pin the voting stage independently of the
        robust aggregation that follows.  ``arrived`` applies the partial-
        aggregation mask (see :meth:`aggregate_tensor`).  Every concrete
        pipeline must override this explicitly.
        """
        raise NotImplementedError

    def _majority_matrix(
        self,
        tensor: VoteTensor,
        voter: MajorityVote,
        arrived: np.ndarray | None = None,
    ) -> np.ndarray:
        """Shared post-vote matrix of the majority-voting pipelines.

        Without a mask every slot votes (the synchronous semantics).  With a
        partial-aggregation mask, files whose copies all arrived keep the
        vectorized winner; each incomplete file is re-voted over its arrived
        copies only, and a file with no arrivals contributes a zero winner —
        the same "missing = zero gradient" convention the fault injectors
        use, so the robust stage sees a consistent shape every round.

        With a group topology the complete files vote hierarchically (per
        group, then a root histogram merge — bit-identical to the flat
        kernel, so the incomplete-file re-vote below stays valid unchanged).
        """
        if self.topology is not None and voter.tolerance == 0.0:
            # Imported lazily: repro.cluster pulls in this module at import
            # time, so a top-level import would be circular.
            from repro.cluster.topology import hierarchical_majority_vote

            winners, _ = hierarchical_majority_vote(
                tensor, self.topology, block_size=self.block_size
            )
        else:
            winners, _ = majority_vote_votetensor(
                tensor, voter.tolerance, block_size=self.block_size
            )
        if arrived is None:
            return winners
        incomplete = np.nonzero(~arrived.all(axis=1))[0]
        if incomplete.size == 0:
            return winners
        sub = tensor.materialize_files(incomplete)
        for pos, i in enumerate(incomplete):
            slots = np.nonzero(arrived[i])[0]
            if slots.size == 0:
                winners[i] = 0.0
            else:
                winners[i] = voter(sub[pos, slots])
        return winners

    # -- helpers -----------------------------------------------------------------
    def _voted_file_gradients(
        self, file_votes: FileVotes, voter: MajorityVote
    ) -> np.ndarray:
        """Majority-vote every file and stack the winners into an ``(f, d)`` matrix."""
        winners = []
        for file_index in range(self.assignment.num_files):
            votes = file_votes[file_index]
            ordered = [votes[w] for w in sorted(votes)]
            winners.append(voter(ordered))
        return stack_vectors(winners)

    def describe(self) -> dict[str, str]:
        """Short description used in experiment reports."""
        out = {
            "pipeline": self.pipeline_name,
            "assignment": self.assignment.name,
        }
        if self.topology is not None:
            out["topology"] = (
                f"groups={self.topology.num_groups}, "
                f"q_group={self.topology.q_group}, q_root={self.topology.q_root}"
            )
        return out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(assignment={self.assignment.name!r})"


class ByzShieldPipeline(AggregationPipeline):
    """Paper Algorithm 1: per-file majority vote + robust aggregation.

    Parameters
    ----------
    assignment:
        Any redundant assignment (MOLS, Ramanujan, ...); replication must be
        odd so the majority cannot tie.
    aggregator:
        Robust rule applied to the ``f`` voted gradients; the paper uses
        coordinate-wise median, but Bulyan / Multi-Krum are supported too.
    vote_tolerance:
        Tolerance forwarded to :class:`MajorityVote` (0 = exact equality).
    """

    pipeline_name = "byzshield"

    def __init__(
        self,
        assignment: BipartiteAssignment,
        aggregator: Aggregator | None = None,
        vote_tolerance: float = 0.0,
        validate: bool = True,
        topology=None,
        block_size: int | None = None,
    ) -> None:
        _check_topology_vote(topology, vote_tolerance)
        super().__init__(
            assignment, validate=validate, topology=topology, block_size=block_size
        )
        if assignment.replication % 2 == 0:
            raise ConfigurationError(
                "ByzShield majority voting requires an odd replication factor, "
                f"got r={assignment.replication}"
            )
        self.aggregator = aggregator if aggregator is not None else CoordinateWiseMedian()
        self.voter = MajorityVote(tolerance=vote_tolerance)

    def _aggregate(self, file_votes: FileVotes) -> np.ndarray:
        voted = self._voted_file_gradients(file_votes, self.voter)
        return self.aggregator(voted)

    def _aggregate_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None
    ) -> np.ndarray:
        return self.aggregator(self._majority_matrix(tensor, self.voter, arrived))

    def voted_gradients(self, file_votes: FileVotes) -> np.ndarray:
        """Expose the post-vote ``(f, d)`` matrix (useful for analysis/tests)."""
        if self.validate:
            _validate_file_votes(self.assignment, file_votes)
        return self._voted_file_gradients(file_votes, self.voter)

    def voted_gradients_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        """Tensor analogue of :meth:`voted_gradients`."""
        if self.validate:
            _validate_vote_tensor(self._expected_slot_matrix(), tensor)
        if arrived is not None:
            arrived = _checked_arrival_mask(tensor, arrived)
        return self._majority_matrix(tensor, self.voter, arrived)

    def post_vote_matrix(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        return self._majority_matrix(tensor, self.voter, arrived)


class DetoxPipeline(AggregationPipeline):
    """DETOX: FRC grouping, per-group vote, then hierarchical robust aggregation.

    Parameters
    ----------
    assignment:
        An FRC assignment (each worker holds exactly one file and each file is
        held by one group of ``r`` workers).
    aggregator:
        Second-stage robust rule over the group winners (median-of-means in
        the paper's "DETOX-MoM", Multi-Krum in "DETOX-Multi-Krum", ...).
    """

    pipeline_name = "detox"

    def __init__(
        self,
        assignment: BipartiteAssignment,
        aggregator: Aggregator | None = None,
        vote_tolerance: float = 0.0,
        validate: bool = True,
        topology=None,
        block_size: int | None = None,
    ) -> None:
        _check_topology_vote(topology, vote_tolerance)
        super().__init__(
            assignment, validate=validate, topology=topology, block_size=block_size
        )
        if assignment.computational_load != 1:
            raise ConfigurationError(
                "DETOX expects an FRC assignment where every worker holds exactly "
                f"one file; got load={assignment.computational_load}"
            )
        if assignment.replication % 2 == 0:
            raise ConfigurationError(
                f"DETOX majority voting requires odd group size, got r={assignment.replication}"
            )
        self.aggregator = aggregator if aggregator is not None else CoordinateWiseMedian()
        self.voter = MajorityVote(tolerance=vote_tolerance)

    def _aggregate(self, file_votes: FileVotes) -> np.ndarray:
        voted = self._voted_file_gradients(file_votes, self.voter)
        return self.aggregator(voted)

    def _aggregate_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None
    ) -> np.ndarray:
        return self.aggregator(self._majority_matrix(tensor, self.voter, arrived))

    def post_vote_matrix(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        return self._majority_matrix(tensor, self.voter, arrived)


class DracoPipeline(AggregationPipeline):
    """DRACO: FRC grouping with the information-theoretic ``r >= 2q + 1`` bound.

    DRACO guarantees *exact* recovery (the output equals the attack-free
    gradient) but only when every group has an honest majority of at least
    ``q + 1``, i.e. ``r >= 2q + 1``.  :meth:`aggregate` raises when the
    declared Byzantine budget violates the bound, reproducing the paper's
    observation that DRACO "is not applicable if it is violated".
    """

    pipeline_name = "draco"

    def __init__(
        self,
        assignment: BipartiteAssignment,
        num_byzantine: int,
        vote_tolerance: float = 0.0,
        validate: bool = True,
        topology=None,
        block_size: int | None = None,
    ) -> None:
        _check_topology_vote(topology, vote_tolerance)
        super().__init__(
            assignment, validate=validate, topology=topology, block_size=block_size
        )
        if assignment.computational_load != 1:
            raise ConfigurationError(
                "DRACO expects an FRC assignment (one file per worker); got load="
                f"{assignment.computational_load}"
            )
        if num_byzantine < 0:
            raise ConfigurationError(
                f"num_byzantine must be non-negative, got {num_byzantine}"
            )
        self.num_byzantine = int(num_byzantine)
        self.voter = MajorityVote(tolerance=vote_tolerance)
        self._mean = MeanAggregator()

    @property
    def is_applicable(self) -> bool:
        """True when ``r >= 2q + 1`` so exact recovery is guaranteed."""
        return self.assignment.replication >= 2 * self.num_byzantine + 1

    def _check_applicable(self) -> None:
        if not self.is_applicable:
            raise AggregationError(
                f"DRACO requires r >= 2q+1 (r={self.assignment.replication}, "
                f"q={self.num_byzantine}); the scheme is not applicable"
            )

    def _aggregate(self, file_votes: FileVotes) -> np.ndarray:
        self._check_applicable()
        voted = self._voted_file_gradients(file_votes, self.voter)
        return self._mean(voted)

    def _aggregate_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None
    ) -> np.ndarray:
        self._check_applicable()
        return self._mean(self._majority_matrix(tensor, self.voter, arrived))

    def post_vote_matrix(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        return self._majority_matrix(tensor, self.voter, arrived)


class VanillaPipeline(AggregationPipeline):
    """No redundancy: the robust aggregator sees the ``K`` raw worker gradients."""

    pipeline_name = "vanilla"

    def __init__(
        self,
        assignment: BipartiteAssignment,
        aggregator: Aggregator,
        validate: bool = True,
        topology=None,
        block_size: int | None = None,
    ) -> None:
        if topology is not None:
            raise ConfigurationError(
                "the vanilla pipeline has no vote stage; a group topology "
                "requires a voting pipeline (byzshield, detox or draco)"
            )
        if block_size is not None:
            raise ConfigurationError(
                "the vanilla pipeline runs no vote kernel; pass block_size to "
                "the robust aggregator instead (aggregator_params)"
            )
        super().__init__(assignment, validate=validate)
        if assignment.replication != 1 or assignment.computational_load != 1:
            raise ConfigurationError(
                "VanillaPipeline expects the baseline assignment with l = r = 1"
            )
        self.aggregator = aggregator

    def _aggregate(self, file_votes: FileVotes) -> np.ndarray:
        gradients = []
        for file_index in range(self.assignment.num_files):
            votes = file_votes[file_index]
            (worker,) = votes.keys()
            gradients.append(votes[worker])
        return self.aggregator(stack_vectors(gradients))

    def _aggregate_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None
    ) -> np.ndarray:
        # r == 1: slot 0 holds each file's single worker return; slot_rows
        # avoids materializing a lazily replicated tensor.
        rows = self.post_vote_matrix(tensor, arrived)
        if rows.shape[0] == 0:
            # No worker beat the deadline: the round contributes no update.
            return np.zeros(tensor.dim, dtype=tensor.dtype)
        return self.aggregator(rows)

    def post_vote_matrix(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        # No vote stage: the aggregator sees the raw (K, d) worker returns;
        # partial mode keeps only the rows that actually arrived.
        rows = tensor.slot_rows(0)
        if arrived is None:
            return rows
        return rows[arrived[:, 0]]
