"""Dtype/backend seam for the numeric substrate.

Every tensor on the hot path — model parameters, per-file gradients, the
:class:`~repro.core.vote_tensor.VoteTensor`, the aggregation kernels — used to
hard-code ``np.float64``.  This module centralizes the floating-point policy
so the same round loop runs in ``float32`` or ``float64`` end to end:

* :func:`resolve_dtype` maps a user-facing dtype spec (``None``, a name such
  as ``"float32"``, a NumPy dtype or scalar type) onto one of the supported
  working dtypes, defaulting to ``float64`` — the paper's exact-arithmetic
  baseline, which all golden traces pin bit-exactly.
* :func:`ensure_float` coerces arbitrary array-likes onto a supported float
  dtype while *preserving* ``float32``/``float64`` inputs instead of silently
  promoting everything to ``float64``.  Generic kernels (majority voting,
  robust aggregators, the optimizer) route their input normalization through
  it so a ``float32`` round stays ``float32`` from the worker's backward pass
  to the PS update.
* :func:`bit_view_dtype` names the unsigned-integer view used for bit-exact
  equality (``uint64`` for ``float64`` payloads, ``uint32`` for ``float32``),
  which the vectorized majority-vote kernel relies on.

Components with their own parameter storage (layers, ``VoteTensor``) accept a
``dtype`` argument resolved here once at construction and then coerce external
inputs to *their* dtype; free-standing helpers preserve whatever supported
float dtype they are handed.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = [
    "DEFAULT_DTYPE",
    "SUPPORTED_DTYPES",
    "resolve_dtype",
    "dtype_name",
    "is_supported_float",
    "ensure_float",
    "bit_view_dtype",
]

#: the repo-wide default working dtype (the paper baseline; golden traces
#: are recorded at this dtype and replay bit-exactly)
DEFAULT_DTYPE: np.dtype = np.dtype(np.float64)

#: name -> dtype of the working dtypes the round loop supports end to end
SUPPORTED_DTYPES: dict[str, np.dtype] = {
    "float32": np.dtype(np.float32),
    "float64": np.dtype(np.float64),
}

#: float dtype -> unsigned integer dtype of the same width (bit-exact views)
_BIT_VIEWS: dict[np.dtype, np.dtype] = {
    np.dtype(np.float32): np.dtype(np.uint32),
    np.dtype(np.float64): np.dtype(np.uint64),
}


def resolve_dtype(dtype: object | None = None) -> np.dtype:
    """Resolve a dtype spec to a supported working dtype.

    ``None`` selects :data:`DEFAULT_DTYPE`; otherwise the spec may be a name
    (``"float32"``/``"float64"``), a NumPy dtype or a scalar type.  Anything
    else raises :class:`~repro.exceptions.ConfigurationError` — the seam
    supports exactly the two IEEE binary formats the kernels are written for.
    """
    if dtype is None:
        return DEFAULT_DTYPE
    if isinstance(dtype, str):
        try:
            return SUPPORTED_DTYPES[dtype]
        except KeyError:
            raise ConfigurationError(
                f"unsupported dtype {dtype!r}; expected one of "
                f"{sorted(SUPPORTED_DTYPES)}"
            ) from None
    try:
        resolved = np.dtype(dtype)
    except TypeError as exc:
        raise ConfigurationError(f"unsupported dtype {dtype!r}: {exc}") from exc
    if resolved not in _BIT_VIEWS:
        raise ConfigurationError(
            f"unsupported dtype {resolved}; expected one of "
            f"{sorted(SUPPORTED_DTYPES)}"
        )
    return resolved


def dtype_name(dtype: object | None = None) -> str:
    """Canonical name (``"float32"``/``"float64"``) of a resolved dtype."""
    return resolve_dtype(dtype).name


def is_supported_float(dtype: object) -> bool:
    """True when ``dtype`` already is one of the supported working dtypes."""
    try:
        return np.dtype(dtype) in _BIT_VIEWS
    except TypeError:
        return False


def ensure_float(array: object, dtype: object | None = None) -> np.ndarray:
    """Coerce ``array`` onto a supported float dtype.

    With an explicit ``dtype`` the array is converted to it.  Without one,
    ``float32``/``float64`` inputs are passed through unchanged (no copy, no
    promotion) and everything else — ints, bools, Python lists — is coerced
    to :data:`DEFAULT_DTYPE`, matching the legacy hard-coded behavior.
    """
    if dtype is not None:
        return np.asarray(array, dtype=resolve_dtype(dtype))
    arr = np.asarray(array)
    if arr.dtype in _BIT_VIEWS:
        return arr
    return arr.astype(DEFAULT_DTYPE)


def bit_view_dtype(dtype: object) -> np.dtype:
    """Unsigned integer dtype whose bits mirror the given float dtype."""
    return _BIT_VIEWS[resolve_dtype(dtype)]
