"""Worst-case distortion analysis (paper Section 5).

Given an assignment graph and a Byzantine worker set ``S``, a file's majority
vote is corrupted exactly when at least ``r' = (r + 1) / 2`` of its ``r``
copies are held by workers in ``S``.  The adversary of the paper is
*omniscient*: it chooses the ``q`` workers that corrupt the largest number of
files, and the resulting maximum ``c_max^(q)`` (and the fraction
``ε̂ = c_max / f``) is what Tables 3–6 report.

The module provides three optimizers for ``c_max``:

* :func:`max_distortion_exhaustive` — exact, enumerates all ``C(K, q)``
  Byzantine sets in vectorized chunks (used for every table row where the
  paper itself ran exhaustive search);
* :func:`max_distortion_greedy` — picks workers one at a time maximizing the
  number of corrupted files, breaking ties by "almost corrupted" copies;
* :func:`max_distortion_local_search` — greedy start plus swap-based hill
  climbing with random restarts, for regimes where exhaustive search is
  intractable (the paper notes the same intractability for Table 5).
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass

import numpy as np

from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.graphs.expansion import gamma_upper_bound
from repro.graphs.spectral import second_eigenvalue
from repro.utils.rng import as_generator

__all__ = [
    "DistortionResult",
    "majority_threshold",
    "distorted_files",
    "count_distorted",
    "epsilon_hat",
    "max_distortion_exhaustive",
    "max_distortion_greedy",
    "max_distortion_local_search",
    "max_distortion",
    "claim2_exact_c_max",
    "distortion_comparison_table",
]


def majority_threshold(replication: int) -> int:
    """Votes needed to corrupt a file: ``r' = (r + 1) // 2`` for odd ``r``.

    ``r = 1`` (no redundancy) degenerates to ``r' = 1``: a single Byzantine
    copy corrupts the file, as in the baseline schemes.
    """
    if replication < 1:
        raise ConfigurationError(f"replication must be >= 1, got {replication}")
    if replication > 1 and replication % 2 == 0:
        raise ConfigurationError(
            f"majority voting requires an odd replication factor, got {replication}"
        )
    return (replication + 1) // 2


def distorted_files(
    assignment: BipartiteAssignment, byzantine_workers: "set[int] | list[int] | tuple[int, ...]"
) -> np.ndarray:
    """Indices of files whose majority vote is corrupted by ``byzantine_workers``."""
    counts = assignment.file_copy_counts(byzantine_workers)
    threshold = majority_threshold(assignment.replication)
    return np.nonzero(counts >= threshold)[0]


def count_distorted(
    assignment: BipartiteAssignment, byzantine_workers: "set[int] | list[int] | tuple[int, ...]"
) -> int:
    """Number of corrupted file gradients for a concrete Byzantine set."""
    return int(distorted_files(assignment, byzantine_workers).size)


def epsilon_hat(
    assignment: BipartiteAssignment, byzantine_workers: "set[int] | list[int] | tuple[int, ...]"
) -> float:
    """Distortion fraction ``ε̂ = (number of corrupted files) / f``."""
    return count_distorted(assignment, byzantine_workers) / assignment.num_files


@dataclass(frozen=True)
class DistortionResult:
    """Outcome of a worst-case distortion search.

    Attributes
    ----------
    c_max:
        Maximum number of corrupted files found.
    epsilon:
        ``c_max / f``.
    byzantine_workers:
        A worker set achieving ``c_max``.
    num_byzantine:
        The budget ``q`` that was searched.
    method:
        ``"exhaustive"``, ``"greedy"`` or ``"local_search"``.
    exact:
        True when the search provably found the optimum (exhaustive search).
    gamma:
        The expansion upper bound γ of Claim 1, when computable
        (odd ``r >= 3``); NaN otherwise.
    """

    c_max: int
    epsilon: float
    byzantine_workers: tuple[int, ...]
    num_byzantine: int
    method: str
    exact: bool
    gamma: float = float("nan")


def _check_q(assignment: BipartiteAssignment, q: int) -> int:
    q = int(q)
    if q < 0:
        raise ConfigurationError(f"q must be non-negative, got {q}")
    if q > assignment.num_workers:
        raise ConfigurationError(
            f"q={q} exceeds the number of workers K={assignment.num_workers}"
        )
    return q


def _gamma_or_nan(assignment: BipartiteAssignment, q: int) -> float:
    r = assignment.replication
    if r < 3 or r % 2 == 0 or q == 0:
        return float("nan")
    mu1 = second_eigenvalue(assignment)
    return gamma_upper_bound(
        q,
        assignment.computational_load,
        r,
        assignment.num_workers,
        mu1,
    )


def max_distortion_exhaustive(
    assignment: BipartiteAssignment,
    num_byzantine: int,
    chunk_size: int = 200_000,
) -> DistortionResult:
    """Exact ``c_max`` by enumerating every set of ``q`` workers.

    Combinations are materialized in chunks of ``chunk_size`` and evaluated as
    one matrix product against the bi-adjacency matrix, so the inner loop is
    entirely inside numpy.
    """
    q = _check_q(assignment, num_byzantine)
    K = assignment.num_workers
    H = assignment.biadjacency.astype(np.int32)
    threshold = majority_threshold(assignment.replication)
    if q == 0:
        return DistortionResult(0, 0.0, (), 0, "exhaustive", True, _gamma_or_nan(assignment, 0))

    best_count = -1
    best_set: tuple[int, ...] = ()
    combo_iter = itertools.combinations(range(K), q)
    while True:
        chunk = list(itertools.islice(combo_iter, chunk_size))
        if not chunk:
            break
        idx = np.asarray(chunk, dtype=np.int64)  # (batch, q)
        #

        # counts[b, i] = number of Byzantine copies of file i under set b.
        counts = H[idx].sum(axis=1)
        corrupted = (counts >= threshold).sum(axis=1)
        arg = int(np.argmax(corrupted))
        if int(corrupted[arg]) > best_count:
            best_count = int(corrupted[arg])
            best_set = tuple(int(w) for w in idx[arg])
    return DistortionResult(
        c_max=best_count,
        epsilon=best_count / assignment.num_files,
        byzantine_workers=best_set,
        num_byzantine=q,
        method="exhaustive",
        exact=True,
        gamma=_gamma_or_nan(assignment, q),
    )


def _corrupted_count_from_copy_counts(counts: np.ndarray, threshold: int) -> int:
    return int(np.count_nonzero(counts >= threshold))


def max_distortion_greedy(
    assignment: BipartiteAssignment, num_byzantine: int
) -> DistortionResult:
    """Greedy ``c_max`` heuristic: add the worker with the best marginal gain.

    Ties in the number of newly corrupted files are broken in favour of the
    worker that pushes the most files closest to the corruption threshold,
    which matters in the early rounds when no single worker can corrupt
    anything on its own.
    """
    q = _check_q(assignment, num_byzantine)
    H = assignment.biadjacency.astype(np.int64)
    K, f = H.shape
    threshold = majority_threshold(assignment.replication)
    chosen: list[int] = []
    counts = np.zeros(f, dtype=np.int64)
    remaining = set(range(K))
    for _ in range(q):
        best_worker = None
        best_key: tuple[int, float] | None = None
        for w in remaining:
            new_counts = counts + H[w]
            corrupted = _corrupted_count_from_copy_counts(new_counts, threshold)
            # Secondary objective: total progress toward the threshold,
            # capped so already-corrupted files do not dominate.
            progress = float(np.minimum(new_counts, threshold).sum())
            key = (corrupted, progress)
            if best_key is None or key > best_key:
                best_key = key
                best_worker = w
        assert best_worker is not None
        chosen.append(best_worker)
        counts += H[best_worker]
        remaining.discard(best_worker)
    c_max = _corrupted_count_from_copy_counts(counts, threshold)
    return DistortionResult(
        c_max=c_max,
        epsilon=c_max / f,
        byzantine_workers=tuple(chosen),
        num_byzantine=q,
        method="greedy",
        exact=False,
        gamma=_gamma_or_nan(assignment, q),
    )


def _randomized_greedy_set(
    H: np.ndarray, q: int, threshold: int, rng: np.random.Generator, top_k: int = 3
) -> np.ndarray:
    """Greedy construction that breaks near-ties randomly (for restart diversity)."""
    K, f = H.shape
    chosen: list[int] = []
    counts = np.zeros(f, dtype=np.int64)
    remaining = list(range(K))
    for _ in range(q):
        keys = []
        for w in remaining:
            new_counts = counts + H[w]
            corrupted = _corrupted_count_from_copy_counts(new_counts, threshold)
            progress = float(np.minimum(new_counts, threshold).sum())
            keys.append((corrupted, progress))
        order = sorted(range(len(remaining)), key=lambda i: keys[i], reverse=True)
        pick = order[int(rng.integers(0, min(top_k, len(order))))]
        worker = remaining.pop(pick)
        chosen.append(worker)
        counts += H[worker]
    return np.asarray(chosen, dtype=np.int64)


def _hill_climb_single_swaps(
    H: np.ndarray,
    current: np.ndarray,
    current_count: int,
    threshold: int,
    max_rounds: int,
) -> tuple[np.ndarray, int]:
    """Best-improvement 1-swap hill climbing."""
    K = H.shape[0]
    for _ in range(max_rounds):
        inside = set(int(w) for w in current)
        outside = [w for w in range(K) if w not in inside]
        base_counts = H[current].sum(axis=0)
        best_move: tuple[int, int] | None = None
        best_move_count = current_count
        for pos, w_in in enumerate(current):
            without = base_counts - H[w_in]
            for w_out in outside:
                cand = _corrupted_count_from_copy_counts(without + H[w_out], threshold)
                if cand > best_move_count:
                    best_move_count = cand
                    best_move = (pos, w_out)
        if best_move is None:
            break
        pos, w_out = best_move
        current = current.copy()
        current[pos] = w_out
        current_count = best_move_count
    return current, current_count


def _hill_climb_pair_swap_once(
    H: np.ndarray,
    current: np.ndarray,
    current_count: int,
    threshold: int,
) -> tuple[np.ndarray, int, bool]:
    """One pass of first-improvement 2-swap (escape 1-swap local optima)."""
    K = H.shape[0]
    q = current.size
    inside = set(int(w) for w in current)
    outside = [w for w in range(K) if w not in inside]
    base_counts = H[current].sum(axis=0)
    for a in range(q):
        for b in range(a + 1, q):
            without = base_counts - H[current[a]] - H[current[b]]
            for i, w_out_1 in enumerate(outside):
                partial = without + H[w_out_1]
                for w_out_2 in outside[i + 1 :]:
                    cand = _corrupted_count_from_copy_counts(
                        partial + H[w_out_2], threshold
                    )
                    if cand > current_count:
                        updated = current.copy()
                        updated[a] = w_out_1
                        updated[b] = w_out_2
                        return updated, cand, True
    return current, current_count, False


def max_distortion_local_search(
    assignment: BipartiteAssignment,
    num_byzantine: int,
    seed: int | np.random.Generator | None = 0,
    restarts: int = 12,
    max_rounds: int = 60,
    use_pair_swaps: bool = True,
) -> DistortionResult:
    """Greedy construction plus 1-swap / 2-swap hill climbing with restarts.

    The search starts from the deterministic greedy set and from
    ``restarts - 1`` randomized-greedy sets (ties broken randomly), runs
    best-improvement single-swap hill climbing on each, and escapes single-swap
    local optima with a first-improvement pair swap.  On every paper instance
    where the exhaustive optimum is computable, this heuristic recovers it
    (validated by the tests and the benchmark harness).
    """
    q = _check_q(assignment, num_byzantine)
    if q == 0:
        return DistortionResult(0, 0.0, (), 0, "local_search", True, _gamma_or_nan(assignment, 0))
    rng = as_generator(seed)
    H = assignment.biadjacency.astype(np.int64)
    K, f = H.shape
    threshold = majority_threshold(assignment.replication)

    def evaluate(indices: np.ndarray) -> int:
        return _corrupted_count_from_copy_counts(H[indices].sum(axis=0), threshold)

    greedy = max_distortion_greedy(assignment, q)
    best_set = np.asarray(greedy.byzantine_workers, dtype=np.int64)
    best_count = greedy.c_max

    starts: list[np.ndarray] = [best_set.copy()]
    for _ in range(max(0, restarts - 1)):
        starts.append(_randomized_greedy_set(H, q, threshold, rng))

    for start in starts:
        current = start.copy()
        current_count = evaluate(current)
        while True:
            current, current_count = _hill_climb_single_swaps(
                H, current, current_count, threshold, max_rounds
            )
            if not use_pair_swaps or q < 2 or K - q < 2:
                break
            current, current_count, improved = _hill_climb_pair_swap_once(
                H, current, current_count, threshold
            )
            if not improved:
                break
        if current_count > best_count:
            best_count = current_count
            best_set = current.copy()

    return DistortionResult(
        c_max=int(best_count),
        epsilon=best_count / f,
        byzantine_workers=tuple(int(w) for w in best_set),
        num_byzantine=q,
        method="local_search",
        exact=False,
        gamma=_gamma_or_nan(assignment, q),
    )


def max_distortion(
    assignment: BipartiteAssignment,
    num_byzantine: int,
    method: str = "auto",
    exhaustive_limit: int = 2_000_000,
    seed: int | np.random.Generator | None = 0,
) -> DistortionResult:
    """Dispatch to the appropriate ``c_max`` optimizer.

    ``method="auto"`` runs the exhaustive search when the number of Byzantine
    sets ``C(K, q)`` does not exceed ``exhaustive_limit`` and falls back to
    the local-search heuristic otherwise (mirroring the paper, which reports
    exhaustive numbers only where tractable).
    """
    q = _check_q(assignment, num_byzantine)
    if method == "exhaustive":
        return max_distortion_exhaustive(assignment, q)
    if method == "greedy":
        return max_distortion_greedy(assignment, q)
    if method == "local_search":
        return max_distortion_local_search(assignment, q, seed=seed)
    if method != "auto":
        raise ConfigurationError(
            f"unknown method {method!r}; expected auto, exhaustive, greedy or local_search"
        )
    if math.comb(assignment.num_workers, q) <= exhaustive_limit:
        return max_distortion_exhaustive(assignment, q)
    return max_distortion_local_search(assignment, q, seed=seed)


def claim2_exact_c_max(q: int, replication: int) -> int:
    """Exact ``c_max`` of Claim 2 for the small-Byzantine regime ``q <= r``.

    For ``r = 3``: 0 / 1 / 3 corrupted files for ``q < 2``, ``q = 2``,
    ``q = 3``.  For ``r > 3``: 0 for ``q < r'``, 1 for ``r' <= q < r`` and 2
    for ``q = r``.
    """
    r = int(replication)
    q = int(q)
    if q < 0 or q > r:
        raise ConfigurationError(f"Claim 2 covers 0 <= q <= r, got q={q}, r={r}")
    if r < 3 or r % 2 == 0:
        raise ConfigurationError(f"Claim 2 requires odd r >= 3, got r={r}")
    r_prime = majority_threshold(r)
    if r == 3:
        if q < 2:
            return 0
        return 1 if q == 2 else 3
    if q < r_prime:
        return 0
    if q < r:
        return 1
    return 2


def distortion_comparison_table(
    assignment: BipartiteAssignment,
    q_values: "list[int] | range",
    method: str = "auto",
    exhaustive_limit: int = 2_000_000,
    seed: int | np.random.Generator | None = 0,
) -> list[dict[str, float]]:
    """Rows matching the layout of paper Tables 3–6.

    Each row contains ``q``, the optimal ``c_max`` for the given assignment,
    ``ε̂`` for ByzShield, the baseline (``q / K``), the worst-case FRC fraction
    of Section 5.3.1 computed for the same ``K`` and ``r``, and the γ bound.
    """
    K = assignment.num_workers
    r = assignment.replication
    rows: list[dict[str, float]] = []
    for q in q_values:
        result = max_distortion(
            assignment, q, method=method, exhaustive_limit=exhaustive_limit, seed=seed
        )
        rows.append(
            {
                "q": int(q),
                "c_max": int(result.c_max),
                "epsilon_byzshield": result.epsilon,
                "epsilon_baseline": BaselineAssignment.worst_case_epsilon(q, K),
                "epsilon_frc": FRCAssignment.worst_case_epsilon(q, K, r),
                "gamma": result.gamma,
                "exact": bool(result.exact),
            }
        )
    return rows
