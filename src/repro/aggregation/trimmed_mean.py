"""Trimmed mean / mean-around-median (Xie et al., 2018; Yin et al., 2018).

For every coordinate the votes are sorted and the ``trim`` largest and
``trim`` smallest values are discarded before averaging — equivalently, the
average of the values closest to the median is returned.  With ``trim >= q``
a single corrupted coordinate cannot move the estimate outside the range of
the honest values.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.aggregation.majority import validate_block_size
from repro.exceptions import AggregationError
from repro.utils.arrays import block_ranges

__all__ = ["TrimmedMeanAggregator"]


class TrimmedMeanAggregator(Aggregator):
    """Coordinate-wise mean after trimming ``trim`` extremes on each side.

    Parameters
    ----------
    trim:
        Number of values removed from each end of every coordinate's sorted
        list; usually set to the number of Byzantine workers ``q``.
    block_size:
        ``None`` (default) sorts all ``d`` coordinates at once.  A positive
        width streams coordinate blocks through an O(n · block) sort
        workspace instead of the O(n · d) full-matrix sort.  The surviving
        middle values are assembled into the same contiguous ``(n − 2·trim,
        d)`` operand the monolithic path averages, so the final reduction is
        bit-identical by construction (NumPy's reduction tree is sensitive
        to operand width, so averaging per block would NOT be — measured,
        not hypothetical).
    """

    aggregator_name = "trimmed_mean"

    def __init__(self, trim: int, block_size: int | None = None) -> None:
        if trim < 0:
            raise AggregationError(f"trim must be non-negative, got {trim}")
        self.trim = int(trim)
        self.block_size = validate_block_size(block_size)

    def minimum_votes(self, num_byzantine: int) -> int:
        return 2 * self.trim + 1

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        n, d = matrix.shape
        if n <= 2 * self.trim:
            raise AggregationError(
                f"trimmed mean with trim={self.trim} needs more than "
                f"{2 * self.trim} votes, got {n}"
            )
        if self.trim == 0:
            return matrix.mean(axis=0)
        if self.block_size is None or self.block_size >= d:
            ordered = np.sort(matrix, axis=0)
            return ordered[self.trim : n - self.trim].mean(axis=0)
        trimmed = np.empty((n - 2 * self.trim, d), dtype=matrix.dtype)
        for lo, hi in block_ranges(d, self.block_size):
            ordered = np.sort(matrix[:, lo:hi], axis=0)
            trimmed[:, lo:hi] = ordered[self.trim : n - self.trim]
        return trimmed.mean(axis=0)
