"""Median-of-means (Minsker, 2015; used by DETOX as its robust stage).

Votes are partitioned into ``num_groups`` buckets, each bucket is averaged,
and the coordinate-wise median of the bucket means is returned.  DETOX applies
this to the majority-voted group gradients; the baseline version applies it
directly to the worker gradients.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.exceptions import AggregationError
from repro.utils.validation import check_positive_int

__all__ = ["MedianOfMeansAggregator"]


class MedianOfMeansAggregator(Aggregator):
    """Coordinate-wise median of per-bucket means.

    Parameters
    ----------
    num_groups:
        Number of buckets; the votes are dealt into buckets round-robin in
        their given order.  Values larger than the number of votes degrade
        gracefully to one vote per bucket.
    """

    aggregator_name = "median_of_means"

    def __init__(self, num_groups: int) -> None:
        self.num_groups = check_positive_int(num_groups, "num_groups")

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        n, d = matrix.shape
        groups = min(self.num_groups, n)
        means = np.empty((groups, d), dtype=matrix.dtype)
        for g in range(groups):
            bucket = matrix[g::groups]
            means[g] = bucket.mean(axis=0)
        return np.median(means, axis=0)
