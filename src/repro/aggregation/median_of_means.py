"""Median-of-means (Minsker, 2015; used by DETOX as its robust stage).

Votes are partitioned into ``num_groups`` buckets, each bucket is averaged,
and the coordinate-wise median of the bucket means is returned.  DETOX applies
this to the majority-voted group gradients; the baseline version applies it
directly to the worker gradients.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.aggregation.majority import validate_block_size
from repro.utils.arrays import block_ranges
from repro.utils.validation import check_positive_int

__all__ = ["MedianOfMeansAggregator"]


class MedianOfMeansAggregator(Aggregator):
    """Coordinate-wise median of per-bucket means.

    Parameters
    ----------
    num_groups:
        Number of buckets; the votes are dealt into buckets round-robin in
        their given order.  Values larger than the number of votes degrade
        gracefully to one vote per bucket.
    block_size:
        ``None`` (default) takes the median over all ``d`` coordinates at
        once; a positive width streams the median's partition workspace in
        O(groups · block) coordinate blocks.  The bucket means themselves
        are computed exactly as in monolithic mode (same operands, same
        reduction) because NumPy's mean tree is sensitive to operand width;
        the median is a per-coordinate selection plus an elementwise
        midpoint, so streaming it is bit-identical by construction.
    """

    aggregator_name = "median_of_means"

    def __init__(self, num_groups: int, block_size: int | None = None) -> None:
        self.num_groups = check_positive_int(num_groups, "num_groups")
        self.block_size = validate_block_size(block_size)

    @staticmethod
    def _bucket_means(matrix: np.ndarray, groups: int) -> np.ndarray:
        """``(groups, d)`` round-robin bucket means of an ``(n, d)`` matrix.

        The per-bucket reduction is deliberate: batching the buckets into a
        single ``(m, groups, d)`` reduction changes NumPy's pairwise-summation
        tree and perturbs the means in the last ulp (measured, not
        hypothetical — ``m = 8, d = 1`` already differs), which would break
        the recorded golden traces.  ``groups`` is tiny, so the loop costs
        nothing; the heavy ``d`` axis streams through :meth:`_aggregate`'s
        coordinate blocks instead.
        """
        means = np.empty((groups, matrix.shape[1]), dtype=matrix.dtype)
        for g in range(groups):
            means[g] = matrix[g::groups].mean(axis=0)
        return means

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        n, d = matrix.shape
        groups = min(self.num_groups, n)
        means = self._bucket_means(matrix, groups)
        if self.block_size is None or self.block_size >= d:
            return np.median(means, axis=0)
        out = np.empty(d, dtype=matrix.dtype)
        for lo, hi in block_ranges(d, self.block_size):
            out[lo:hi] = np.median(means[:, lo:hi], axis=0)
        return out
