"""Registry of aggregation rules, keyed by name for experiment configs."""

from __future__ import annotations

from typing import Type

from repro.aggregation.auror import AurorAggregator
from repro.aggregation.base import Aggregator
from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.geometric_median import GeometricMedianAggregator
from repro.aggregation.krum import KrumAggregator, MultiKrumAggregator
from repro.aggregation.mean import MeanAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.median_of_means import MedianOfMeansAggregator
from repro.aggregation.sign_sgd import SignSGDMajorityAggregator
from repro.aggregation.trimmed_mean import TrimmedMeanAggregator
from repro.exceptions import ConfigurationError

__all__ = [
    "register_aggregator",
    "get_aggregator",
    "create_aggregator",
    "available_aggregators",
]

_REGISTRY: dict[str, Type[Aggregator]] = {}


def register_aggregator(
    name: str, cls: Type[Aggregator], overwrite: bool = False
) -> None:
    """Register an aggregator class under ``name``."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"aggregator {name!r} is already registered")
    if not issubclass(cls, Aggregator):
        raise ConfigurationError(
            f"{cls!r} does not subclass Aggregator and cannot be registered"
        )
    _REGISTRY[key] = cls


def get_aggregator(name: str) -> Type[Aggregator]:
    """Look up an aggregator class by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown aggregator {name!r}; available: {available_aggregators()}"
        )
    return _REGISTRY[key]


def create_aggregator(name: str, **kwargs) -> Aggregator:
    """Instantiate a registered aggregator with keyword arguments."""
    return get_aggregator(name)(**kwargs)


def available_aggregators() -> list[str]:
    """Sorted list of registered aggregator names."""
    return sorted(_REGISTRY)


for _name, _cls in (
    ("mean", MeanAggregator),
    ("median", CoordinateWiseMedian),
    ("trimmed_mean", TrimmedMeanAggregator),
    ("median_of_means", MedianOfMeansAggregator),
    ("krum", KrumAggregator),
    ("multi_krum", MultiKrumAggregator),
    ("bulyan", BulyanAggregator),
    ("geometric_median", GeometricMedianAggregator),
    ("signsgd", SignSGDMajorityAggregator),
    ("auror", AurorAggregator),
):
    register_aggregator(_name, _cls)
