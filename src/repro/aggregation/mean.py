"""Plain averaging — the non-robust reference aggregator.

Blanchard et al. (2017) showed that no linear rule, averaging included, can
tolerate even a single Byzantine worker; the mean is included as the
no-attack reference and as the building block of median-of-means.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator

__all__ = ["MeanAggregator"]


class MeanAggregator(Aggregator):
    """Coordinate-wise arithmetic mean of all votes."""

    aggregator_name = "mean"

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        return matrix.mean(axis=0)
