"""Aggregator interface."""

from __future__ import annotations

import abc

import numpy as np

from repro.core.backend import ensure_float
from repro.exceptions import AggregationError
from repro.utils.arrays import stack_vectors

__all__ = ["Aggregator"]


class Aggregator(abc.ABC):
    """A rule turning ``n`` candidate gradients into one.

    Subclasses implement :meth:`_aggregate` on a validated ``(n, d)`` float
    matrix; :meth:`__call__` handles input normalization (lists of vectors are
    accepted) and sanity checks.  ``float32``/``float64`` inputs keep their
    dtype through the rule; everything else is coerced to the backend default.
    """

    #: registry name; subclasses override
    aggregator_name: str = "abstract"

    #: minimum number of votes the rule needs to be well defined given q
    def minimum_votes(self, num_byzantine: int) -> int:
        """Smallest number of candidate gradients for which the rule is defined.

        The default is ``1``; Krum-family rules override this with their
        breakdown-point requirements (e.g. Bulyan needs ``4q + 3`` votes).
        """
        return 1

    def __call__(self, votes) -> np.ndarray:
        if isinstance(votes, np.ndarray):
            if votes.ndim != 2:
                raise AggregationError(
                    f"votes must form a 2-D (n, d) matrix, got ndim={votes.ndim}"
                )
            if votes.shape[0] == 0:
                raise AggregationError("cannot aggregate zero votes")
            matrix = votes
        else:
            try:
                matrix = stack_vectors(votes)
            except ValueError as exc:
                raise AggregationError(str(exc)) from exc
        matrix = ensure_float(matrix)
        if not np.all(np.isfinite(matrix)):
            # Byzantine workers may send NaN/Inf; robust rules must not crash,
            # so replace non-finite entries by large-magnitude finite values
            # that the robust statistics will discard.
            matrix = np.nan_to_num(matrix, nan=0.0, posinf=1e30, neginf=-1e30)
        return self._aggregate(matrix)

    @abc.abstractmethod
    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        """Aggregate a validated ``(n, d)`` matrix into a ``(d,)`` vector."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"
