"""Coordinate-wise median (Yin et al., 2018/2019).

This is the robust aggregator ByzShield pairs with its majority vote
(Algorithm 1, lines 14–17 followed by the model update).  Each gradient
dimension is treated independently and the median of the ``n`` votes is
returned; it tolerates strictly fewer than half corrupted votes per
coordinate.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator

__all__ = ["CoordinateWiseMedian"]


class CoordinateWiseMedian(Aggregator):
    """Per-dimension median of the votes."""

    aggregator_name = "median"

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        return np.median(matrix, axis=0)
