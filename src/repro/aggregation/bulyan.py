"""Bulyan (El Mhamdi et al., 2018).

Bulyan runs a selection rule (Krum here, as in the original paper) repeatedly
to build a selection set of ``theta = n − 2q`` votes, then applies a
coordinate-wise trimmed average around the median of that set (keeping
``beta = theta − 2q`` values per coordinate).  It defends against the
"hidden vulnerability" of Krum — a huge change in a single coordinate with
small Lp-norm footprint — but needs ``n >= 4q + 3`` votes, which makes it
inapplicable for the larger ``q`` regimes ByzShield still survives (a point
the paper's Figures 3 and 7 make explicitly).
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.aggregation.krum import krum_scores
from repro.aggregation.majority import validate_block_size
from repro.exceptions import AggregationError
from repro.utils.arrays import block_ranges

__all__ = ["BulyanAggregator"]


class BulyanAggregator(Aggregator):
    """Krum-based selection followed by a trimmed coordinate-wise average.

    Parameters
    ----------
    num_byzantine:
        Assumed number of Byzantine votes ``q``; the rule requires
        ``n >= 4q + 3`` candidates.
    block_size:
        ``None`` (default) runs the monolithic trimming pass, whose
        deviation/argsort temporaries cost ~3 full ``(theta, d)`` matrices
        (one of them int64).  A positive width streams them in
        O(theta · block) coordinate blocks; the kept values are assembled
        into the same contiguous ``(beta, d)`` operand the monolithic path
        averages, so the aggregate is bit-identical by construction (median,
        deviation, argsort and take are all per-coordinate).  The Krum
        selection stage accumulates its distances per block, which can only
        shift a distance by an ulp and never the ranking-based selection.
    """

    aggregator_name = "bulyan"

    def __init__(self, num_byzantine: int, block_size: int | None = None) -> None:
        if num_byzantine < 0:
            raise AggregationError(
                f"num_byzantine must be non-negative, got {num_byzantine}"
            )
        self.num_byzantine = int(num_byzantine)
        self.block_size = validate_block_size(block_size)

    def minimum_votes(self, num_byzantine: int | None = None) -> int:
        q = self.num_byzantine if num_byzantine is None else num_byzantine
        return 4 * q + 3

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        n, d = matrix.shape
        q = self.num_byzantine
        if n < 4 * q + 3:
            raise AggregationError(
                f"Bulyan requires at least 4q+3={4 * q + 3} votes, got {n}"
            )
        theta = n - 2 * q
        remaining = list(range(n))
        selected: list[int] = []
        while len(selected) < theta:
            sub = matrix[remaining]
            # The Krum scoring needs at least 2q'+3 votes; late in the selection
            # fewer than 2q+3 remain, so the effective q' is clamped (standard
            # practice in Bulyan implementations).
            effective_q = min(q, max((len(remaining) - 3) // 2, 0))
            scores = krum_scores(sub, effective_q, block_size=self.block_size)
            winner_local = int(np.argmin(scores))
            winner = remaining.pop(winner_local)
            selected.append(winner)
        sel = matrix[selected]
        beta = theta - 2 * q
        # For each coordinate keep the beta values closest to the median.
        if self.block_size is None or self.block_size >= d:
            median = np.median(sel, axis=0)
            deviation = np.abs(sel - median)
            order = np.argsort(deviation, axis=0)[:beta]
            closest = np.take_along_axis(sel, order, axis=0)
        else:
            closest = np.empty((beta, d), dtype=sel.dtype)
            for lo, hi in block_ranges(d, self.block_size):
                sel_b = sel[:, lo:hi]
                median = np.median(sel_b, axis=0)
                deviation = np.abs(sel_b - median)
                order = np.argsort(deviation, axis=0)[:beta]
                closest[:, lo:hi] = np.take_along_axis(sel_b, order, axis=0)
        return closest.mean(axis=0)
