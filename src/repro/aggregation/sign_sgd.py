"""signSGD with coordinate-wise majority vote (Bernstein et al., 2019).

Workers transmit only the sign of each gradient coordinate; the PS outputs the
majority sign per coordinate, optionally scaled by a fixed magnitude.  The
model update then moves every parameter by ``±scale`` regardless of gradient
magnitude, which is why the paper pairs this defense with the *constant*
attack (sign flips alone rarely flip a coordinate's majority).
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.exceptions import AggregationError

__all__ = ["SignSGDMajorityAggregator"]


class SignSGDMajorityAggregator(Aggregator):
    """Coordinate-wise majority of gradient signs.

    Parameters
    ----------
    scale:
        Magnitude given to the output signs (the effective per-coordinate step
        is ``learning_rate * scale``).
    """

    aggregator_name = "signsgd"

    def __init__(self, scale: float = 1.0) -> None:
        if not np.isfinite(scale) or scale <= 0:
            raise AggregationError(f"scale must be positive and finite, got {scale}")
        self.scale = float(scale)

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        signs = np.sign(matrix)
        vote = np.sign(signs.sum(axis=0))
        return self.scale * vote
