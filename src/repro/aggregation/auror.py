"""Auror-style clustering defense (Shen et al., 2016).

Auror partitions the values of each gradient dimension into two clusters with
1-D k-means; if the clusters are far apart (relative to the overall spread)
the smaller cluster is treated as malicious and discarded, and the mean of the
larger cluster is returned.  When the separation is small all values are
averaged.  This is the "variant of trimmed median" described in the paper's
related-work discussion.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.core.backend import ensure_float
from repro.exceptions import AggregationError

__all__ = ["AurorAggregator", "two_means_1d"]


def two_means_1d(values: np.ndarray, max_iterations: int = 50) -> tuple[np.ndarray, float, float]:
    """1-D 2-means clustering (exact enough for a per-coordinate defense).

    Returns ``(labels, center_low, center_high)`` where ``labels`` marks
    membership in the higher-mean cluster.  Initialization uses the min and
    max, which for one dimension makes Lloyd's algorithm deterministic.
    """
    values = ensure_float(values).ravel()
    low, high = float(values.min()), float(values.max())
    if low == high:
        return np.zeros(values.size, dtype=bool), low, high
    for _ in range(max_iterations):
        labels = np.abs(values - high) < np.abs(values - low)
        new_low = float(values[~labels].mean()) if np.any(~labels) else low
        new_high = float(values[labels].mean()) if np.any(labels) else high
        if new_low == low and new_high == high:
            break
        low, high = new_low, new_high
    return labels, low, high


class AurorAggregator(Aggregator):
    """Per-coordinate two-cluster filtering followed by averaging.

    Parameters
    ----------
    distance_threshold:
        Clusters whose centers differ by more than ``distance_threshold``
        times the coordinate's standard deviation trigger discarding of the
        smaller cluster.
    """

    aggregator_name = "auror"

    def __init__(self, distance_threshold: float = 2.0) -> None:
        if distance_threshold <= 0:
            raise AggregationError(
                f"distance_threshold must be positive, got {distance_threshold}"
            )
        self.distance_threshold = float(distance_threshold)

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        n, d = matrix.shape
        output = np.empty(d, dtype=matrix.dtype)
        stds = matrix.std(axis=0)
        for dim in range(d):
            column = matrix[:, dim]
            std = stds[dim]
            if std == 0.0:
                output[dim] = column[0]
                continue
            labels, low, high = two_means_1d(column)
            if abs(high - low) > self.distance_threshold * std:
                keep = labels if labels.sum() >= (n - labels.sum()) else ~labels
                output[dim] = column[keep].mean()
            else:
                output[dim] = column.mean()
        return output
