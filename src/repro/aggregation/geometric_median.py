"""Geometric median via Weiszfeld's algorithm (Chen et al., 2017; Minsker, 2015).

The geometric median minimizes the sum of Euclidean distances to the votes
and has a breakdown point of 1/2.  The smoothed Weiszfeld iteration below is
the standard fixed-point scheme with a small regularizer to avoid division by
zero when the iterate lands on a data point.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.core.backend import ensure_float
from repro.exceptions import AggregationError

__all__ = ["GeometricMedianAggregator", "geometric_median"]


def geometric_median(
    matrix: np.ndarray,
    max_iterations: int = 200,
    tolerance: float = 1e-10,
    smoothing: float = 1e-12,
) -> np.ndarray:
    """Weiszfeld fixed-point iteration for the geometric median of the rows."""
    matrix = ensure_float(matrix)
    if matrix.ndim != 2 or matrix.shape[0] == 0:
        raise AggregationError("geometric median needs a non-empty (n, d) matrix")
    estimate = matrix.mean(axis=0)
    for _ in range(max_iterations):
        distances = np.linalg.norm(matrix - estimate, axis=1)
        weights = 1.0 / np.maximum(distances, smoothing)
        new_estimate = (weights[:, None] * matrix).sum(axis=0) / weights.sum()
        if np.linalg.norm(new_estimate - estimate) <= tolerance * (
            1.0 + np.linalg.norm(estimate)
        ):
            return new_estimate
        estimate = new_estimate
    return estimate


class GeometricMedianAggregator(Aggregator):
    """Geometric median of the votes (1/2 breakdown point, rotation invariant).

    Parameters
    ----------
    max_iterations, tolerance:
        Weiszfeld iteration controls.
    """

    aggregator_name = "geometric_median"

    def __init__(self, max_iterations: int = 200, tolerance: float = 1e-10) -> None:
        if max_iterations < 1:
            raise AggregationError(
                f"max_iterations must be >= 1, got {max_iterations}"
            )
        self.max_iterations = int(max_iterations)
        self.tolerance = float(tolerance)

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        return geometric_median(
            matrix, max_iterations=self.max_iterations, tolerance=self.tolerance
        )
