"""Gradient aggregation rules (robust and otherwise).

All aggregators consume a matrix of candidate gradients with one row per vote
(shape ``(n, d)``) and return a single aggregated gradient of shape ``(d,)``.
They are used in two places:

* as the *final* aggregation applied to the ``f`` majority-voted file
  gradients (ByzShield pairs the vote with coordinate-wise median; DETOX with
  median-of-means, Multi-Krum or signSGD), and
* as the plain defense of the non-redundant baselines, applied directly to the
  ``K`` worker gradients.
"""

from repro.aggregation.auror import AurorAggregator
from repro.aggregation.base import Aggregator
from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.geometric_median import GeometricMedianAggregator
from repro.aggregation.krum import KrumAggregator, MultiKrumAggregator
from repro.aggregation.majority import (
    MajorityVote,
    majority_vote,
    majority_vote_tensor,
)
from repro.aggregation.mean import MeanAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.median_of_means import MedianOfMeansAggregator
from repro.aggregation.registry import (
    available_aggregators,
    create_aggregator,
    get_aggregator,
    register_aggregator,
)
from repro.aggregation.sign_sgd import SignSGDMajorityAggregator
from repro.aggregation.trimmed_mean import TrimmedMeanAggregator

__all__ = [
    "Aggregator",
    "MeanAggregator",
    "CoordinateWiseMedian",
    "TrimmedMeanAggregator",
    "MedianOfMeansAggregator",
    "KrumAggregator",
    "MultiKrumAggregator",
    "BulyanAggregator",
    "GeometricMedianAggregator",
    "SignSGDMajorityAggregator",
    "AurorAggregator",
    "MajorityVote",
    "majority_vote",
    "majority_vote_tensor",
    "available_aggregators",
    "create_aggregator",
    "get_aggregator",
    "register_aggregator",
]
