"""Per-file majority vote over replicated gradients (paper Eq. (3)).

Each file's gradient is computed by ``r`` workers; the PS picks the value that
appears the largest number of times.  Honest workers return bit-identical
gradients for the same file (the simulator guarantees this, matching the
paper's implementation note), so exact-equality voting suffices; a tolerance
is supported for robustness against floating-point jitter, implemented by
clustering votes whose distance is below the tolerance.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import AggregationError
from repro.utils.arrays import stack_vectors

__all__ = ["majority_vote", "MajorityVote"]


def _exact_majority(matrix: np.ndarray) -> tuple[np.ndarray, int]:
    """Majority by exact byte equality; returns (winner, count)."""
    counts: dict[bytes, int] = {}
    first_index: dict[bytes, int] = {}
    for idx in range(matrix.shape[0]):
        key = matrix[idx].tobytes()
        counts[key] = counts.get(key, 0) + 1
        first_index.setdefault(key, idx)
    # Deterministic tie-break: highest count, then earliest appearance.
    best_key = max(counts, key=lambda k: (counts[k], -first_index[k]))
    return matrix[first_index[best_key]].copy(), counts[best_key]


def _clustered_majority(matrix: np.ndarray, tolerance: float) -> tuple[np.ndarray, int]:
    """Majority by tolerance clustering (union of within-`tolerance` votes)."""
    n = matrix.shape[0]
    assigned = np.full(n, -1, dtype=np.int64)
    clusters: list[list[int]] = []
    for idx in range(n):
        placed = False
        for cid, members in enumerate(clusters):
            representative = matrix[members[0]]
            if np.linalg.norm(matrix[idx] - representative) <= tolerance:
                members.append(idx)
                assigned[idx] = cid
                placed = True
                break
        if not placed:
            assigned[idx] = len(clusters)
            clusters.append([idx])
    sizes = [len(members) for members in clusters]
    winner = int(np.argmax(sizes))
    members = clusters[winner]
    return matrix[members].mean(axis=0), len(members)


def majority_vote(
    votes, tolerance: float = 0.0
) -> tuple[np.ndarray, int]:
    """Return ``(winning gradient, vote count)`` among the replicated copies.

    Parameters
    ----------
    votes:
        The ``r`` gradients returned for one file (sequence of vectors or an
        ``(r, d)`` matrix).
    tolerance:
        Zero (default) selects exact-equality voting; a positive value groups
        votes within Euclidean distance ``tolerance`` of a cluster
        representative and returns the mean of the winning cluster.
    """
    matrix = votes if isinstance(votes, np.ndarray) and votes.ndim == 2 else stack_vectors(votes)
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.shape[0] == 0:
        raise AggregationError("majority vote needs at least one vote")
    if tolerance < 0:
        raise AggregationError(f"tolerance must be non-negative, got {tolerance}")
    if tolerance == 0.0:
        return _exact_majority(matrix)
    return _clustered_majority(matrix, tolerance)


class MajorityVote:
    """Callable wrapper around :func:`majority_vote` returning only the gradient."""

    def __init__(self, tolerance: float = 0.0) -> None:
        if tolerance < 0:
            raise AggregationError(f"tolerance must be non-negative, got {tolerance}")
        self.tolerance = float(tolerance)

    def __call__(self, votes) -> np.ndarray:
        winner, _ = majority_vote(votes, tolerance=self.tolerance)
        return winner

    def with_count(self, votes) -> tuple[np.ndarray, int]:
        """Return both the winning gradient and how many votes it received."""
        return majority_vote(votes, tolerance=self.tolerance)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MajorityVote(tolerance={self.tolerance})"
