"""Per-file majority vote over replicated gradients (paper Eq. (3)).

Each file's gradient is computed by ``r`` workers; the PS picks the value that
appears the largest number of times.  Honest workers return bit-identical
gradients for the same file (the simulator guarantees this, matching the
paper's implementation note), so exact-equality voting suffices; a tolerance
is supported for robustness against floating-point jitter, implemented by
greedy leader clustering of votes whose distance is below the tolerance.

The module exposes two entry points backed by one vectorized kernel:

* :func:`majority_vote_tensor` — votes all ``f`` files of a round at once
  from an ``(f, r, d)`` tensor, without per-file Python loops.  Both voting
  modes start from a shared bit-equality *label matrix*: one vectorized
  anchor sweep comparing every slot to its file's slot 0 (which alone settles
  a fully honest round), plus 64-bit positional hashing of the few slots that
  mismatch their anchor, each group verified against its first member so a
  hash collision can never corrupt the result.  Exact voting resolves
  winners directly from the tiny ``(f, r)`` label matrix; tolerance voting
  runs greedy leader clustering over the per-file *unique* values only
  (typically one or two classes instead of ``r`` slots).
* :func:`majority_vote` — the legacy single-file API, now a thin wrapper
  over the tensor kernel on an ``(1, r, d)`` view.

``_reference_exact_majority`` / ``_reference_clustered_majority`` keep the
original pure-Python implementations; the equivalence tests and the benchmark
regression harness use them as the semantic and performance baseline.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import bit_view_dtype, ensure_float
from repro.exceptions import AggregationError
from repro.utils.arrays import block_ranges, stack_vectors
from repro.utils.rng import as_generator

__all__ = [
    "majority_vote",
    "majority_vote_tensor",
    "majority_vote_votetensor",
    "MajorityVote",
    "validate_tolerance",
    "validate_block_size",
]


def validate_tolerance(tolerance: float) -> float:
    """Single validation point for the voting tolerance (shared by all APIs)."""
    if tolerance < 0:
        raise AggregationError(f"tolerance must be non-negative, got {tolerance}")
    return float(tolerance)


def validate_block_size(block_size: int | None) -> int | None:
    """Single validation point for the coordinate-block width (all kernels)."""
    if block_size is None:
        return None
    block_size = int(block_size)
    if block_size <= 0:
        raise AggregationError(
            f"block_size must be a positive integer or None, got {block_size}"
        )
    return block_size


#: streaming loop helper shared with the robust aggregators
_block_ranges = block_ranges


# --------------------------------------------------------------------------- #
# Reference (legacy) single-file implementations — kept as the baseline the
# vectorized kernel is tested and benchmarked against.
# --------------------------------------------------------------------------- #
def _reference_exact_majority(matrix: np.ndarray) -> tuple[np.ndarray, int]:
    """Majority by exact byte equality; returns (winner, count)."""
    counts: dict[bytes, int] = {}
    first_index: dict[bytes, int] = {}
    for idx in range(matrix.shape[0]):
        key = matrix[idx].tobytes()
        counts[key] = counts.get(key, 0) + 1
        first_index.setdefault(key, idx)
    # Deterministic tie-break: highest count, then earliest appearance.
    best_key = max(counts, key=lambda k: (counts[k], -first_index[k]))
    return matrix[first_index[best_key]].copy(), counts[best_key]


def _reference_clustered_majority(
    matrix: np.ndarray, tolerance: float
) -> tuple[np.ndarray, int]:
    """Majority by greedy leader clustering (first within-`tolerance` cluster)."""
    n = matrix.shape[0]
    clusters: list[list[int]] = []
    for idx in range(n):
        placed = False
        for members in clusters:
            representative = matrix[members[0]]
            if np.linalg.norm(matrix[idx] - representative) <= tolerance:
                members.append(idx)
                placed = True
                break
        if not placed:
            clusters.append([idx])
    sizes = [len(members) for members in clusters]
    winner = int(np.argmax(sizes))
    members = clusters[winner]
    return matrix[members].mean(axis=0), len(members)


# --------------------------------------------------------------------------- #
# Vectorized kernel
# --------------------------------------------------------------------------- #
#: cache of per-dimension positional hash weights (odd, so they are units
#: modulo 2**64 and single-coordinate differences always change the hash)
_HASH_WEIGHTS: dict[int, np.ndarray] = {}


def _hash_weights(d: int) -> np.ndarray:
    weights = _HASH_WEIGHTS.get(d)
    if weights is None:
        rng = as_generator(0xB125_517D)
        weights = rng.integers(1, 2**63, size=d, dtype=np.uint64) | np.uint64(1)
        _HASH_WEIGHTS[d] = weights
    return weights


def _accumulate_hashes(gather_block, count: int, d: int, block_size: int | None) -> np.ndarray:
    """64-bit positional hashes of ``count`` rows, optionally streamed.

    ``gather_block(lo, hi)`` must return the ``(count, hi - lo)`` unsigned
    bit view of the rows' coordinate block.  Because the hash is a sum of
    per-coordinate products modulo 2**64 (uint64 wraparound), accumulating
    per-block partial sums is *exactly* — not just approximately — equal to
    the monolithic einsum, so blockwise mode stays bit-identical.
    """
    weights = _hash_weights(d)
    if block_size is None or block_size >= d:
        bits = gather_block(0, d)
        hashed = bits if bits.dtype == np.uint64 else bits.astype(np.uint64)
        return np.einsum("md,d->m", hashed, weights)
    hashes = np.zeros(count, dtype=np.uint64)
    for lo, hi in _block_ranges(d, block_size):
        bits = gather_block(lo, hi)
        hashed = bits if bits.dtype == np.uint64 else bits.astype(np.uint64)
        hashes += np.einsum("mb,b->m", hashed, weights[lo:hi])
    return hashes


def _rows_equal(gather_a, gather_b, count: int, d: int, block_size: int | None) -> np.ndarray:
    """``(count,)`` bool: rows bitwise equal, AND-accumulated per block.

    ``gather_a`` / ``gather_b`` return the two sides' ``(count, hi - lo)``
    bit blocks; with ``block_size`` set the peak temporary is O(count · block).
    """
    if block_size is None or block_size >= d:
        return (gather_a(0, d) == gather_b(0, d)).all(axis=1)
    equal = np.ones(count, dtype=bool)
    for lo, hi in _block_ranges(d, block_size):
        if not equal.any():
            break
        equal &= (gather_a(lo, hi) == gather_b(lo, hi)).all(axis=1)
    return equal


def _bit_label_matrix(values: np.ndarray, block_size: int | None = None) -> np.ndarray:
    """Label each (file, slot) by bit-exact content: ``labels[i, k]`` is the
    smallest slot index of file ``i`` holding the same bytes as slot ``k``.

    Equality is on raw bit patterns (an unsigned-integer view of the same
    width — ``uint64`` for float64 payloads, ``uint32`` for float32),
    matching the reference's ``tobytes()`` semantics exactly: NaN payloads
    with equal bits count as equal and ``-0.0 != +0.0``.  One vectorized
    anchor sweep compares every slot to slot 0; the (typically few)
    mismatching slots are grouped by a 64-bit positional hash, with every
    group member verified against the group's first slot — a hash collision
    therefore never corrupts the labels, it only demotes the affected files
    to a per-file fallback.

    With ``block_size`` set, the anchor sweep, the hashes and the group
    verification all stream coordinate blocks of width ``block_size``
    through fixed-size workspaces, so the peak temporary is O(f · r · block)
    instead of O(f · r · d) — and every stage is bit-identical to the
    monolithic pass (boolean AND and uint64 sums are order-independent).
    """
    f, r, d = values.shape
    bits = np.ascontiguousarray(values).view(bit_view_dtype(values.dtype))
    labels = np.zeros((f, r), dtype=np.int64)
    if block_size is None or block_size >= d:
        eq0 = (bits[:, 1:, :] == bits[:, :1, :]).all(axis=2)  # (f, r-1)
    else:
        eq0 = np.ones((f, r - 1), dtype=bool)
        for lo, hi in _block_ranges(d, block_size):
            eq0 &= (bits[:, 1:, lo:hi] == bits[:, :1, lo:hi]).all(axis=2)
    mism_file, mism_slot = np.nonzero(~eq0)
    if mism_file.size == 0:  # honest round: everything matches its anchor
        return labels
    mism_slot = mism_slot + 1  # eq0 starts at slot 1
    hashes = _accumulate_hashes(
        lambda lo, hi: bits[mism_file, mism_slot, lo:hi],
        mism_file.size,
        d,
        block_size,
    )
    order = np.lexsort((hashes, mism_file))  # stable: slot-ascending in ties
    sf, sh, ss = mism_file[order], hashes[order], mism_slot[order]
    starts = np.empty(order.size, dtype=bool)
    starts[0] = True
    starts[1:] = (sf[1:] != sf[:-1]) | (sh[1:] != sh[:-1])
    group = np.cumsum(starts) - 1  # group id of each sorted mismatch slot
    first_of_group = np.nonzero(starts)[0]
    member = ~starts  # slots that must be verified against their group anchor
    verified = np.ones(order.size, dtype=bool)
    if member.any():
        anchor = order[first_of_group][group]  # M-index of each slot's anchor
        mem_file, mem_slot = sf[member], ss[member]
        anc_file, anc_slot = mism_file[anchor[member]], mism_slot[anchor[member]]
        verified[member] = _rows_equal(
            lambda lo, hi: bits[mem_file, mem_slot, lo:hi],
            lambda lo, hi: bits[anc_file, anc_slot, lo:hi],
            mem_file.size,
            d,
            block_size,
        )
    labels[sf, ss] = ss[first_of_group][group]  # anchor slot of each group
    if not verified.all():
        # 64-bit hash collision (adversarially crafted payloads): label the
        # affected files one by one with tobytes() keys instead.
        for i in np.unique(sf[~verified]):
            seen: dict[bytes, int] = {}
            for k in range(r):
                labels[i, k] = seen.setdefault(values[i, k].tobytes(), k)
    return labels


def _class_sizes(labels: np.ndarray) -> np.ndarray:
    """``sizes[i, s]``: members of file ``i``'s class anchored at slot ``s``."""
    r = labels.shape[1]
    return (labels[:, :, None] == np.arange(r)[None, None, :]).sum(axis=1)


def _winners_from_slots(
    values: np.ndarray, best_slot: np.ndarray
) -> np.ndarray:
    """Gather ``values[i, best_slot[i]]`` cheaply (slot 0 is the common case)."""
    winners = values[:, 0, :].copy()
    fix = np.nonzero(best_slot != 0)[0]
    if fix.size:
        winners[fix] = values[fix, best_slot[fix]]
    return winners


def _exact_majority_tensor(
    values: np.ndarray, block_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Exact-equality winners of every file: ``(f, d)`` winners, ``(f,)`` counts."""
    f, r, d = values.shape
    if r == 1:
        return values[:, 0, :].copy(), np.ones(f, dtype=np.int64)
    if d == 0:
        return np.zeros((f, 0), dtype=values.dtype), np.full(f, r, dtype=np.int64)
    labels = _bit_label_matrix(values, block_size=block_size)
    sizes = _class_sizes(labels)
    # Lexicographic (count desc, anchor-slot asc): counts differ by >= 1
    # which outweighs any slot difference (< r); empty classes score <= 0
    # and real classes score >= 1, so non-anchors never win.
    score = sizes * r - np.arange(r)[None, :]
    best_slot = score.argmax(axis=1)
    rows = np.arange(f)
    return _winners_from_slots(values, best_slot), sizes[rows, best_slot]


def _clustered_majority_tensor(
    values: np.ndarray, tolerance: float, block_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Greedy leader clustering of every file at once.

    Replicates the reference semantics: scanning slots in order, a vote joins
    the first existing cluster whose *leader* (first member) is within
    ``tolerance``; otherwise it founds a new cluster.  Because bit-identical
    slots always travel together (distance 0 to each other's leader), the
    greedy scan runs over each file's *unique* values — the bit-equality
    classes, typically one or two per file — instead of all ``r`` slots, and
    distance checks batch over files.  The winner is the largest cluster
    (earliest founded on ties) and its mean is taken over the original
    member slots in slot order, bit-identical to the reference.
    """
    f, r, _ = values.shape
    labels = _bit_label_matrix(values, block_size=block_size)
    sizes = _class_sizes(labels)
    is_anchor = labels == np.arange(r)[None, :]  # class representatives
    # cluster_of[i, s]: cluster id (= leader's anchor slot) of the class
    # anchored at slot s; -1 for non-anchor slots.
    cluster_of = np.full((f, r), -1, dtype=np.int64)
    cluster_of[:, 0] = 0
    for k in range(1, r):
        anchors_k = is_anchor[:, k]
        if not anchors_k.any():
            continue
        unassigned = anchors_k.copy()
        for j in range(k):
            # Class k may join cluster j only where slot j leads a cluster.
            candidate = unassigned & (cluster_of[:, j] == j)
            idx = np.nonzero(candidate)[0]
            if idx.size == 0:
                continue
            if idx.size * 4 < f:
                # Sparse candidates: gather just those files instead of a
                # full-width (f, d) pass.
                diff = values[idx, k, :] - values[idx, j, :]
                dist = np.sqrt(np.einsum("fd,fd->f", diff, diff))
                joins_idx = idx[dist <= tolerance]
            else:
                diff = values[:, k, :] - values[:, j, :]
                dist = np.sqrt(np.einsum("fd,fd->f", diff, diff))
                joins_idx = idx[dist[idx] <= tolerance]
            cluster_of[joins_idx, k] = j
            unassigned[joins_idx] = False
        cluster_of[unassigned, k] = k
    # Member mask per slot: a slot belongs to the winning cluster iff its
    # class's cluster is the winner.  Cluster sizes sum member class sizes.
    cluster_sizes = np.zeros((f, r), dtype=np.int64)
    rows = np.arange(f)
    for s in range(r):
        anchored = np.nonzero(cluster_of[:, s] >= 0)[0]
        if anchored.size:
            cluster_sizes[anchored, cluster_of[anchored, s]] += sizes[anchored, s]
    # Earliest-founded cluster wins ties: founding order equals leader slot
    # order, and empty clusters (size 0) never beat real ones.
    win_score = cluster_sizes * r - np.arange(r)[None, :]
    win = win_score.argmax(axis=1)
    member = cluster_of[rows[:, None], labels] == win[:, None]  # (f, r) slots
    counts = cluster_sizes[rows, win]
    # Mean over the member slots in slot order.  Files whose winning cluster
    # contains every slot (the common case) take the plain axis mean; the
    # rest sum +0.0 for non-members, which is bit-identical to skipping them
    # (IEEE x + 0.0 == x) while staying vectorized.
    winners = values.mean(axis=1)
    partial = np.nonzero(counts != r)[0]
    if partial.size:
        part_vals = values[partial]
        part_member = member[partial]
        totals = np.where(part_member[:, :, None], part_vals, 0.0).sum(axis=1)
        winners[partial] = totals / counts[partial, None]
    return winners, counts.astype(np.int64)


def majority_vote_tensor(
    values: np.ndarray, tolerance: float = 0.0, block_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Majority-vote every file of a round in one vectorized pass.

    Parameters
    ----------
    values:
        ``(f, r, d)`` tensor of the returned gradients (``r`` votes per file).
    tolerance:
        Zero (default) selects exact byte-equality voting; a positive value
        groups votes within Euclidean distance ``tolerance`` of a cluster
        leader and returns the mean of each file's winning cluster.
    block_size:
        ``None`` (default) runs the monolithic kernel.  A positive width
        streams the bit-equality labeling in coordinate blocks, capping the
        peak temporary at O(f · r · block) instead of O(f · r · d) while
        staying bit-identical; tolerance voting streams only the labeling
        (its cluster means are full-width reductions by definition).

    Returns
    -------
    winners, counts:
        ``(f, d)`` winning gradients and the ``(f,)`` vote counts they won by.
        The winners keep the input's working dtype (float32 stays float32).
    """
    values = ensure_float(values)
    if values.ndim != 3:
        raise AggregationError(
            f"vote tensor must be (f, r, d), got ndim={values.ndim}"
        )
    if values.shape[1] == 0:
        raise AggregationError("majority vote needs at least one vote")
    tolerance = validate_tolerance(tolerance)
    block_size = validate_block_size(block_size)
    if tolerance == 0.0:
        return _exact_majority_tensor(values, block_size=block_size)
    return _clustered_majority_tensor(values, tolerance, block_size=block_size)


def majority_vote_votetensor(
    tensor, tolerance: float = 0.0, block_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Majority-vote a round straight from a :class:`VoteTensor`.

    This is the pipelines' entry point.  Dense tensors go through
    :func:`majority_vote_tensor` unchanged.  Lazy (copy-on-write) tensors
    exploit the redundancy structure under exact voting: every file whose
    slots were never overwritten holds ``r`` bit-identical copies of its
    honest base row, so its winner *is* that row with count ``r``, and a
    touched file's slots differ from the base only at its ``M`` overridden
    (file, slot) pairs.  The kernel therefore compares just those ``M``
    override payloads against the base (plus hash-grouping among
    themselves, collision-verified exactly like the dense kernel), builds
    the same smallest-slot bit-equality labels the dense kernel would, and
    resolves winners from them — no ``(f, r, d)`` replica cube ever exists.

    Tolerance-based voting averages each winning cluster, whose floating-
    point reduction depends on the full slot layout; lazy tensors densify
    first in that mode to stay bit-identical with the dense kernel.

    ``block_size`` streams the base comparison, the override hashes and the
    group verification in coordinate blocks (via the tensor's block views),
    capping the peak temporary at O(M · block) for ``M`` overridden slots —
    bit-identical to the monolithic pass for the same reason as the dense
    kernel.
    """
    tolerance = validate_tolerance(tolerance)
    block_size = validate_block_size(block_size)
    if not getattr(tensor, "is_lazy", False) or tolerance != 0.0:
        return majority_vote_tensor(
            tensor.values,  # repro-lint: disable=COW-001 (dense fallback: .values is a no-copy view for non-lazy tensors)
            tolerance=tolerance,
            block_size=block_size,
        )
    f, r, d = tensor.shape
    if r == 0:
        raise AggregationError("majority vote needs at least one vote")
    base = tensor.base_rows()
    winners = base.copy()
    counts = np.full(f, r, dtype=np.int64)
    o_files, o_slots = tensor.overridden_slots()
    if o_files.size == 0:
        return winners, counts
    view = bit_view_dtype(tensor.dtype)

    def _slots_bits(files, slots):
        return lambda lo, hi: tensor.read_slots_block(files, slots, lo, hi).view(view)

    eq_base = _rows_equal(
        _slots_bits(o_files, o_slots),
        lambda lo, hi: np.ascontiguousarray(tensor.base_block(lo, hi)[o_files]).view(view),
        o_files.size,
        d,
        block_size,
    )

    touched = tensor.touched_files()
    t = touched.size
    file_pos = np.empty(f, dtype=np.int64)
    file_pos[touched] = np.arange(t)
    # content id per (touched file, slot): 0 = the honest base content,
    # 1 + hash-group otherwise (group ids increase globally, so they are
    # unique within every file).
    cid = np.zeros((t, r), dtype=np.int64)
    ne = np.nonzero(~eq_base)[0]
    if ne.size:
        sf, ss = o_files[ne], o_slots[ne]
        hashes = _accumulate_hashes(_slots_bits(sf, ss), ne.size, d, block_size)
        # stable sort by (file, hash); ties keep the row-major (file, slot)
        # input order, so each group's first member is its smallest slot —
        # the dense kernel's anchor.
        order = np.lexsort((hashes, sf))
        of, oh = sf[order], hashes[order]
        starts = np.empty(order.size, dtype=bool)
        starts[0] = True
        starts[1:] = (of[1:] != of[:-1]) | (oh[1:] != oh[:-1])
        group = np.cumsum(starts) - 1
        first_of_group = np.nonzero(starts)[0]
        member = ~starts
        verified = np.ones(order.size, dtype=bool)
        if member.any():
            anchor = order[first_of_group][group]
            verified[member] = _rows_equal(
                _slots_bits(sf[order[member]], ss[order[member]]),
                _slots_bits(sf[anchor[member]], ss[anchor[member]]),
                int(member.sum()),
                d,
                block_size,
            )
        cid[file_pos[of], ss[order]] = 1 + group
        if not verified.all():
            # 64-bit hash collision: relabel the affected files' overrides
            # with tobytes() keys, mirroring the dense kernel's fallback.
            for i in np.unique(of[~verified]):
                seen: dict[bytes, int] = {}
                for j in np.nonzero(sf == i)[0]:
                    key = tensor.read_slots(sf[j : j + 1], ss[j : j + 1])[0].tobytes()
                    cid[file_pos[i], ss[j]] = seen.setdefault(key, group.size + j + 1)
    # labels[i, k]: smallest slot of the file holding slot k's content —
    # identical to the dense kernel's _bit_label_matrix on these files.
    labels = np.zeros((t, r), dtype=np.int64)
    for k in range(1, r):
        eq = cid[:, :k] == cid[:, k : k + 1]
        labels[:, k] = np.where(eq.any(axis=1), eq.argmax(axis=1), k)
    sizes = _class_sizes(labels)
    score = sizes * r - np.arange(r)[None, :]
    best_slot = score.argmax(axis=1)
    counts[touched] = sizes[np.arange(t), best_slot]
    # files where an override class out-votes the base keep that payload
    fix = np.nonzero(cid[np.arange(t), best_slot] != 0)[0]
    if fix.size:
        winners[touched[fix]] = tensor.read_slots(touched[fix], best_slot[fix])
    return winners, counts


def majority_vote(votes, tolerance: float = 0.0) -> tuple[np.ndarray, int]:
    """Return ``(winning gradient, vote count)`` among the replicated copies.

    Parameters
    ----------
    votes:
        The ``r`` gradients returned for one file (sequence of vectors or an
        ``(r, d)`` matrix).
    tolerance:
        Zero (default) selects exact-equality voting; a positive value groups
        votes within Euclidean distance ``tolerance`` of a cluster
        representative and returns the mean of the winning cluster.
    """
    matrix = votes if isinstance(votes, np.ndarray) and votes.ndim == 2 else stack_vectors(votes)
    matrix = ensure_float(matrix)
    if matrix.shape[0] == 0:
        raise AggregationError("majority vote needs at least one vote")
    winners, counts = majority_vote_tensor(matrix[None, :, :], tolerance=tolerance)
    return winners[0], int(counts[0])


class MajorityVote:
    """Callable wrapper around :func:`majority_vote` returning only the gradient."""

    def __init__(self, tolerance: float = 0.0) -> None:
        self.tolerance = validate_tolerance(tolerance)

    def __call__(self, votes) -> np.ndarray:
        winner, _ = majority_vote(votes, tolerance=self.tolerance)
        return winner

    def with_count(self, votes) -> tuple[np.ndarray, int]:
        """Return both the winning gradient and how many votes it received."""
        return majority_vote(votes, tolerance=self.tolerance)

    def tensor(self, values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vote all files of an ``(f, r, d)`` tensor at this tolerance."""
        return majority_vote_tensor(values, tolerance=self.tolerance)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"MajorityVote(tolerance={self.tolerance})"
