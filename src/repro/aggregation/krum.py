"""Krum and Multi-Krum (Blanchard et al., 2017; Damaskinos et al., 2019).

Krum scores each vote by the sum of squared distances to its ``n − q − 2``
nearest neighbours and selects the vote with the lowest score — intuitively
the gradient sitting in the densest honest cluster.  Multi-Krum selects the
``m`` best-scored votes and averages them, trading a little robustness for
lower variance.  Both require ``n >= 2q + 3`` candidates, which is why DETOX
cannot pair them with large ``q`` in the paper's experiments.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.exceptions import AggregationError
from repro.utils.arrays import pairwise_squared_distances

__all__ = ["KrumAggregator", "MultiKrumAggregator", "krum_scores"]


def krum_scores(matrix: np.ndarray, num_byzantine: int) -> np.ndarray:
    """Krum score of each vote: sum of its ``n − q − 2`` smallest squared distances.

    Raises
    ------
    AggregationError
        If ``n < 2q + 3`` (the selection rule is then undefined).
    """
    n = matrix.shape[0]
    q = int(num_byzantine)
    if q < 0:
        raise AggregationError(f"num_byzantine must be non-negative, got {q}")
    if n < 2 * q + 3:
        raise AggregationError(
            f"Krum requires at least 2q+3={2 * q + 3} votes, got {n}"
        )
    closest = n - q - 2
    distances = pairwise_squared_distances(matrix)
    # Exclude self-distance (diagonal zero) by ignoring the first sorted column.
    ordered = np.sort(distances, axis=1)[:, 1 : closest + 1]
    return ordered.sum(axis=1)


class KrumAggregator(Aggregator):
    """Select the single vote with the smallest Krum score.

    Parameters
    ----------
    num_byzantine:
        Assumed number of Byzantine votes ``q`` among the candidates.
    """

    aggregator_name = "krum"

    def __init__(self, num_byzantine: int) -> None:
        if num_byzantine < 0:
            raise AggregationError(
                f"num_byzantine must be non-negative, got {num_byzantine}"
            )
        self.num_byzantine = int(num_byzantine)

    def minimum_votes(self, num_byzantine: int | None = None) -> int:
        q = self.num_byzantine if num_byzantine is None else num_byzantine
        return 2 * q + 3

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        scores = krum_scores(matrix, self.num_byzantine)
        return matrix[int(np.argmin(scores))].copy()


class MultiKrumAggregator(Aggregator):
    """Average of the ``multi_k`` best-scored votes.

    Parameters
    ----------
    num_byzantine:
        Assumed number of Byzantine votes ``q``.
    multi_k:
        How many of the best-scored votes to average; the common choice
        (and the default) is ``n − q − 2`` computed at call time, which the
        AggregaThor implementation uses.
    """

    aggregator_name = "multi_krum"

    def __init__(self, num_byzantine: int, multi_k: int | None = None) -> None:
        if num_byzantine < 0:
            raise AggregationError(
                f"num_byzantine must be non-negative, got {num_byzantine}"
            )
        if multi_k is not None and multi_k < 1:
            raise AggregationError(f"multi_k must be >= 1, got {multi_k}")
        self.num_byzantine = int(num_byzantine)
        self.multi_k = None if multi_k is None else int(multi_k)

    def minimum_votes(self, num_byzantine: int | None = None) -> int:
        q = self.num_byzantine if num_byzantine is None else num_byzantine
        return 2 * q + 3

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        scores = krum_scores(matrix, self.num_byzantine)
        n = matrix.shape[0]
        k = self.multi_k if self.multi_k is not None else max(1, n - self.num_byzantine - 2)
        k = min(k, n)
        selected = np.argsort(scores)[:k]
        return matrix[selected].mean(axis=0)
