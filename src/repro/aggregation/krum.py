"""Krum and Multi-Krum (Blanchard et al., 2017; Damaskinos et al., 2019).

Krum scores each vote by the sum of squared distances to its ``n − q − 2``
nearest neighbours and selects the vote with the lowest score — intuitively
the gradient sitting in the densest honest cluster.  Multi-Krum selects the
``m`` best-scored votes and averages them, trading a little robustness for
lower variance.  Both require ``n >= 2q + 3`` candidates, which is why DETOX
cannot pair them with large ``q`` in the paper's experiments.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.aggregation.majority import validate_block_size
from repro.exceptions import AggregationError
from repro.utils.arrays import pairwise_squared_distances

__all__ = ["KrumAggregator", "MultiKrumAggregator", "krum_scores"]


def krum_scores(
    matrix: np.ndarray, num_byzantine: int, block_size: int | None = None
) -> np.ndarray:
    """Krum score of each vote: sum of its ``n − q − 2`` smallest squared distances.

    With ``block_size`` set, the pairwise distances accumulate over
    coordinate blocks (O(n² + n · block) workspace); the block partial sums
    can shift a distance by an ulp, but Krum only *ranks* the distances, so
    the selected rows — and therefore the aggregate — do not move.

    Raises
    ------
    AggregationError
        If ``n < 2q + 3`` (the selection rule is then undefined).
    """
    n = matrix.shape[0]
    q = int(num_byzantine)
    if q < 0:
        raise AggregationError(f"num_byzantine must be non-negative, got {q}")
    if n < 2 * q + 3:
        raise AggregationError(
            f"Krum requires at least 2q+3={2 * q + 3} votes, got {n}"
        )
    closest = n - q - 2
    distances = pairwise_squared_distances(matrix, block_size=block_size)
    # Exclude self-distance (diagonal zero) by ignoring the first sorted column.
    ordered = np.sort(distances, axis=1)[:, 1 : closest + 1]
    return ordered.sum(axis=1)


class KrumAggregator(Aggregator):
    """Select the single vote with the smallest Krum score.

    Parameters
    ----------
    num_byzantine:
        Assumed number of Byzantine votes ``q`` among the candidates.
    block_size:
        Optional coordinate-block width for the distance accumulation
        (see :func:`krum_scores`); ``None`` keeps the monolithic pass.
    """

    aggregator_name = "krum"

    def __init__(self, num_byzantine: int, block_size: int | None = None) -> None:
        if num_byzantine < 0:
            raise AggregationError(
                f"num_byzantine must be non-negative, got {num_byzantine}"
            )
        self.num_byzantine = int(num_byzantine)
        self.block_size = validate_block_size(block_size)

    def minimum_votes(self, num_byzantine: int | None = None) -> int:
        q = self.num_byzantine if num_byzantine is None else num_byzantine
        return 2 * q + 3

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        scores = krum_scores(matrix, self.num_byzantine, block_size=self.block_size)
        return matrix[int(np.argmin(scores))].copy()


class MultiKrumAggregator(Aggregator):
    """Average of the ``multi_k`` best-scored votes.

    Parameters
    ----------
    num_byzantine:
        Assumed number of Byzantine votes ``q``.
    multi_k:
        How many of the best-scored votes to average; the common choice
        (and the default) is ``n − q − 2`` computed at call time, which the
        AggregaThor implementation uses.
    block_size:
        Optional coordinate-block width for the distance accumulation
        (see :func:`krum_scores`); the final average runs on the same
        gathered ``(k, d)`` operand either way, so equal selections give
        bit-identical aggregates.
    """

    aggregator_name = "multi_krum"

    def __init__(
        self,
        num_byzantine: int,
        multi_k: int | None = None,
        block_size: int | None = None,
    ) -> None:
        if num_byzantine < 0:
            raise AggregationError(
                f"num_byzantine must be non-negative, got {num_byzantine}"
            )
        if multi_k is not None and multi_k < 1:
            raise AggregationError(f"multi_k must be >= 1, got {multi_k}")
        self.num_byzantine = int(num_byzantine)
        self.multi_k = None if multi_k is None else int(multi_k)
        self.block_size = validate_block_size(block_size)

    def minimum_votes(self, num_byzantine: int | None = None) -> int:
        q = self.num_byzantine if num_byzantine is None else num_byzantine
        return 2 * q + 3

    def _aggregate(self, matrix: np.ndarray) -> np.ndarray:
        scores = krum_scores(matrix, self.num_byzantine, block_size=self.block_size)
        n = matrix.shape[0]
        k = self.multi_k if self.multi_k is not None else max(1, n - self.num_byzantine - 2)
        k = min(k, n)
        selected = np.argsort(scores)[:k]
        return matrix[selected].mean(axis=0)
