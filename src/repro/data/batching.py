"""Batch sampling and batch-to-file partitioning (paper Section 2).

Every training iteration draws a batch ``B_t`` of ``b`` samples and splits it
into ``f`` disjoint files ``B_{t,0}, ..., B_{t,f-1}`` of ``b/f`` samples each;
the files are the unit of assignment, gradient computation and majority
voting.

The paper's experiments shard IID; this module also provides the standard
non-IID partitions of the federated/Byzantine literature — Dirichlet
label-skew (Hsu et al., 2019) and quantity skew — plus a
:class:`ShardedBatchSampler` that draws every file's samples from its own
fixed shard.  All partitions are pure functions of ``(labels, seed)`` with
seed-derived per-class/per-shard streams, so they are digest-stable across
processes (pinned in the test suite).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_generator, derive_seed

__all__ = [
    "BatchSampler",
    "partition_batch_into_files",
    "dirichlet_label_partition",
    "quantity_skew_partition",
    "partition_digest",
    "build_file_partition",
    "ShardedBatchSampler",
    "PARTITION_KINDS",
]

PARTITION_KINDS = ("dirichlet", "quantity_skew")


def partition_batch_into_files(batch_indices: np.ndarray, num_files: int) -> list[np.ndarray]:
    """Split a batch's sample indices into ``num_files`` equal disjoint files.

    Raises
    ------
    DataError
        If the batch size is not divisible by ``num_files`` (the paper always
        picks ``b`` as a multiple of ``f``).
    """
    batch_indices = np.asarray(batch_indices, dtype=np.int64)
    if num_files < 1:
        raise DataError(f"num_files must be positive, got {num_files}")
    if batch_indices.size % num_files != 0:
        raise DataError(
            f"batch size {batch_indices.size} is not divisible by f={num_files}"
        )
    per_file = batch_indices.size // num_files
    return [
        batch_indices[i * per_file : (i + 1) * per_file] for i in range(num_files)
    ]


@dataclass
class BatchSampler:
    """Samples batches of indices from a dataset, deterministically per seed.

    Parameters
    ----------
    dataset:
        The training dataset.
    batch_size:
        Batch size ``b``; must not exceed the dataset size.
    seed:
        Seed controlling the batch sequence.
    with_replacement:
        If True every batch is an independent uniform draw; otherwise the
        sampler cycles through epoch permutations (classic SGD epochs).
    """

    dataset: Dataset
    batch_size: int
    seed: int | np.random.Generator | None = 0
    with_replacement: bool = False

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise DataError(f"batch_size must be positive, got {self.batch_size}")
        if self.batch_size > self.dataset.num_samples:
            raise DataError(
                f"batch_size {self.batch_size} exceeds dataset size "
                f"{self.dataset.num_samples}"
            )
        self._rng = as_generator(self.seed)
        self._permutation = self._rng.permutation(self.dataset.num_samples)
        self._cursor = 0

    def next_batch(self) -> np.ndarray:
        """Indices of the next batch ``B_t``."""
        n = self.dataset.num_samples
        if self.with_replacement:
            return self._rng.integers(0, n, size=self.batch_size)
        if self._cursor + self.batch_size > n:
            self._permutation = self._rng.permutation(n)
            self._cursor = 0
        batch = self._permutation[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return batch.copy()

    def next_batch_files(self, num_files: int) -> list[np.ndarray]:
        """Next batch already partitioned into ``num_files`` files."""
        return partition_batch_into_files(self.next_batch(), num_files)

    def batch_data(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(inputs, labels)`` for a set of sample indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.dataset.inputs[indices], self.dataset.labels[indices]


# -- non-IID partitions ------------------------------------------------------


def _apportion(proportions: np.ndarray, total: int) -> np.ndarray:
    """Integer counts summing to ``total``, by largest-remainder rounding."""
    raw = proportions * total
    counts = np.floor(raw).astype(np.int64)
    shortfall = int(total - counts.sum())
    if shortfall > 0:
        order = np.argsort(-(raw - counts), kind="stable")
        counts[order[:shortfall]] += 1
    return counts


def _rebalanced(shards: list[list[int]], min_per_shard: int) -> list[np.ndarray]:
    """Move samples from the largest shards until every shard has the floor.

    Deterministic: the deficient shards are filled in index order, each time
    taking the last sample of the currently largest shard (ties broken by
    lowest shard index).  Raises :class:`DataError` when there are not
    enough samples for every shard to reach ``min_per_shard``.
    """
    total = sum(len(shard) for shard in shards)
    if total < min_per_shard * len(shards):
        raise DataError(
            f"{total} samples cannot give each of {len(shards)} shards "
            f"at least {min_per_shard}"
        )
    sizes = np.asarray([len(shard) for shard in shards], dtype=np.int64)
    for index in range(len(shards)):
        while sizes[index] < min_per_shard:
            donor = int(np.argmax(sizes))
            shards[index].append(shards[donor].pop())
            sizes[donor] -= 1
            sizes[index] += 1
    return [np.sort(np.asarray(shard, dtype=np.int64)) for shard in shards]


def _check_partition_args(num_shards: int, alpha: float, min_per_shard: int) -> None:
    if num_shards < 1:
        raise DataError(f"num_shards must be positive, got {num_shards}")
    if not np.isfinite(alpha) or alpha <= 0:
        raise DataError(f"alpha must be positive and finite, got {alpha}")
    if min_per_shard < 0:
        raise DataError(f"min_per_shard must be non-negative, got {min_per_shard}")


def dirichlet_label_partition(
    labels: np.ndarray,
    num_shards: int,
    alpha: float,
    seed: int = 0,
    min_per_shard: int = 1,
) -> list[np.ndarray]:
    """Dirichlet label-skew shards (Hsu et al., 2019).

    For every class the per-shard proportions are drawn from
    ``Dirichlet(alpha)`` — small ``alpha`` concentrates each class on few
    shards (strong skew), large ``alpha`` approaches IID.  Each class uses
    its own seed-derived stream, so the split of one class is independent
    of which other classes exist, and the result is a pure function of
    ``(labels, num_shards, alpha, seed)``.

    Returns sorted, disjoint index arrays covering every sample exactly
    once; shards are topped up to ``min_per_shard`` samples from the
    largest shards (degenerate draws would otherwise leave a file with no
    data to compute a gradient from).
    """
    labels = np.asarray(labels).ravel()
    _check_partition_args(num_shards, alpha, min_per_shard)
    shards: list[list[int]] = [[] for _ in range(num_shards)]
    for cls in np.unique(labels):
        class_rng = as_generator(derive_seed(seed, "dirichlet", int(cls)))
        indices = np.nonzero(labels == cls)[0]
        indices = indices[class_rng.permutation(indices.size)]
        counts = _apportion(class_rng.dirichlet(np.full(num_shards, alpha)), indices.size)
        start = 0
        for shard, count in zip(shards, counts):
            shard.extend(int(i) for i in indices[start : start + count])
            start += count
    return _rebalanced(shards, min_per_shard)


def quantity_skew_partition(
    num_samples: int,
    num_shards: int,
    alpha: float,
    seed: int = 0,
    min_per_shard: int = 1,
) -> list[np.ndarray]:
    """Quantity-skew shards: Dirichlet-distributed shard *sizes*, IID labels.

    A single ``Dirichlet(alpha)`` draw sets how many samples each shard
    gets; a seeded permutation then deals the samples out.  Label marginals
    stay IID — only the per-file batch "weight" varies, which is the other
    standard heterogeneity axis of the federated-learning literature.
    """
    if num_samples < 1:
        raise DataError(f"num_samples must be positive, got {num_samples}")
    _check_partition_args(num_shards, alpha, min_per_shard)
    rng = as_generator(derive_seed(seed, "quantity_skew"))
    counts = _apportion(rng.dirichlet(np.full(num_shards, alpha)), num_samples)
    permutation = rng.permutation(num_samples)
    shards: list[list[int]] = []
    start = 0
    for count in counts:
        shards.append([int(i) for i in permutation[start : start + count]])
        start += count
    return _rebalanced(shards, min_per_shard)


def partition_digest(shards: list[np.ndarray]) -> str:
    """Content digest of a partition (sha256 over sizes and index bytes).

    Stable across processes and platforms for the same shards; the non-IID
    determinism tests pin these digests so any drift in the partition
    functions is caught immediately.
    """
    digest = hashlib.sha256()
    digest.update(len(shards).to_bytes(8, "little"))
    for shard in shards:
        arr = np.ascontiguousarray(np.asarray(shard, dtype=np.int64))
        digest.update(arr.size.to_bytes(8, "little"))
        digest.update(arr.tobytes())
    return digest.hexdigest()


def build_file_partition(
    dataset: Dataset,
    num_files: int,
    kind: str,
    alpha: float = 0.5,
    seed: int = 0,
    min_per_shard: int = 1,
) -> list[np.ndarray]:
    """One shard of ``dataset`` per file, by partition ``kind``."""
    if kind == "dirichlet":
        return dirichlet_label_partition(
            dataset.labels, num_files, alpha, seed=seed, min_per_shard=min_per_shard
        )
    if kind == "quantity_skew":
        return quantity_skew_partition(
            dataset.num_samples, num_files, alpha, seed=seed, min_per_shard=min_per_shard
        )
    raise DataError(
        f"unknown partition kind {kind!r}; expected one of {PARTITION_KINDS}"
    )


@dataclass
class ShardedBatchSampler:
    """Per-file batch sampling from fixed shards (non-IID training).

    Every file ``i`` draws its ``batch_size / num_files`` samples from shard
    ``i`` only, cycling through seed-derived epoch permutations of that
    shard.  Shards smaller than the per-file quota wrap around within a
    batch (their samples repeat), so all files always contribute
    equal-sized gradients — the stacked per-file gradient engine requires
    that.  Each shard's stream is derived as ``derive_seed(seed, "shard",
    i)``, so file ``i``'s sample sequence is independent of every other
    shard's layout.

    Parameters
    ----------
    dataset:
        The training dataset the shard indices point into.
    batch_size:
        Total batch size ``b``; must be divisible by the number of shards.
    shards:
        One index array per file (from :func:`build_file_partition`).
    seed:
        Base seed for the per-shard streams.
    """

    dataset: Dataset
    batch_size: int
    shards: list[np.ndarray] = field(default_factory=list)
    seed: int = 0

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise DataError(f"batch_size must be positive, got {self.batch_size}")
        if not self.shards:
            raise DataError("at least one shard is required")
        if self.batch_size % len(self.shards) != 0:
            raise DataError(
                f"batch_size {self.batch_size} is not divisible by "
                f"f={len(self.shards)} shards"
            )
        self.shards = [np.asarray(shard, dtype=np.int64) for shard in self.shards]
        for index, shard in enumerate(self.shards):
            if shard.size == 0:
                raise DataError(f"shard {index} is empty")
            if shard.min() < 0 or shard.max() >= self.dataset.num_samples:
                raise DataError(
                    f"shard {index} indexes outside the dataset "
                    f"(size {self.dataset.num_samples})"
                )
        self.num_files = len(self.shards)
        self.samples_per_file = self.batch_size // self.num_files
        self._rngs = [
            as_generator(derive_seed(self.seed, "shard", index))
            for index in range(self.num_files)
        ]
        self._permutations = [
            rng.permutation(shard.size)
            for rng, shard in zip(self._rngs, self.shards)
        ]
        self._cursors = [0] * self.num_files

    def _draw(self, index: int) -> np.ndarray:
        shard = self.shards[index]
        out = np.empty(self.samples_per_file, dtype=np.int64)
        filled = 0
        while filled < self.samples_per_file:
            cursor = self._cursors[index]
            if cursor >= shard.size:
                self._permutations[index] = self._rngs[index].permutation(shard.size)
                self._cursors[index] = cursor = 0
            take = min(self.samples_per_file - filled, shard.size - cursor)
            chosen = self._permutations[index][cursor : cursor + take]
            out[filled : filled + take] = shard[chosen]
            self._cursors[index] += take
            filled += take
        return out

    def next_batch_files(self) -> list[np.ndarray]:
        """The next batch as one per-file index array per shard."""
        return [self._draw(index) for index in range(self.num_files)]

    def next_batch(self) -> np.ndarray:
        """The next batch's indices, concatenated in file order."""
        return np.concatenate(self.next_batch_files())

    def batch_data(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(inputs, labels)`` for a set of sample indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.dataset.inputs[indices], self.dataset.labels[indices]
