"""Batch sampling and batch-to-file partitioning (paper Section 2).

Every training iteration draws a batch ``B_t`` of ``b`` samples and splits it
into ``f`` disjoint files ``B_{t,0}, ..., B_{t,f-1}`` of ``b/f`` samples each;
the files are the unit of assignment, gradient computation and majority
voting.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_generator

__all__ = ["BatchSampler", "partition_batch_into_files"]


def partition_batch_into_files(batch_indices: np.ndarray, num_files: int) -> list[np.ndarray]:
    """Split a batch's sample indices into ``num_files`` equal disjoint files.

    Raises
    ------
    DataError
        If the batch size is not divisible by ``num_files`` (the paper always
        picks ``b`` as a multiple of ``f``).
    """
    batch_indices = np.asarray(batch_indices, dtype=np.int64)
    if num_files < 1:
        raise DataError(f"num_files must be positive, got {num_files}")
    if batch_indices.size % num_files != 0:
        raise DataError(
            f"batch size {batch_indices.size} is not divisible by f={num_files}"
        )
    per_file = batch_indices.size // num_files
    return [
        batch_indices[i * per_file : (i + 1) * per_file] for i in range(num_files)
    ]


@dataclass
class BatchSampler:
    """Samples batches of indices from a dataset, deterministically per seed.

    Parameters
    ----------
    dataset:
        The training dataset.
    batch_size:
        Batch size ``b``; must not exceed the dataset size.
    seed:
        Seed controlling the batch sequence.
    with_replacement:
        If True every batch is an independent uniform draw; otherwise the
        sampler cycles through epoch permutations (classic SGD epochs).
    """

    dataset: Dataset
    batch_size: int
    seed: int | np.random.Generator | None = 0
    with_replacement: bool = False

    def __post_init__(self) -> None:
        if self.batch_size < 1:
            raise DataError(f"batch_size must be positive, got {self.batch_size}")
        if self.batch_size > self.dataset.num_samples:
            raise DataError(
                f"batch_size {self.batch_size} exceeds dataset size "
                f"{self.dataset.num_samples}"
            )
        self._rng = as_generator(self.seed)
        self._permutation = self._rng.permutation(self.dataset.num_samples)
        self._cursor = 0

    def next_batch(self) -> np.ndarray:
        """Indices of the next batch ``B_t``."""
        n = self.dataset.num_samples
        if self.with_replacement:
            return self._rng.integers(0, n, size=self.batch_size)
        if self._cursor + self.batch_size > n:
            self._permutation = self._rng.permutation(n)
            self._cursor = 0
        batch = self._permutation[self._cursor : self._cursor + self.batch_size]
        self._cursor += self.batch_size
        return batch.copy()

    def next_batch_files(self, num_files: int) -> list[np.ndarray]:
        """Next batch already partitioned into ``num_files`` files."""
        return partition_batch_into_files(self.next_batch(), num_files)

    def batch_data(self, indices: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Materialize ``(inputs, labels)`` for a set of sample indices."""
        indices = np.asarray(indices, dtype=np.int64)
        return self.dataset.inputs[indices], self.dataset.labels[indices]
