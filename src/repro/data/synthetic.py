"""Synthetic datasets standing in for CIFAR-10 (offline substitution).

Three generators are provided:

* :func:`make_synthetic_images` — class-conditional "images": each class has a
  smooth random spatial template (low-frequency structure, like natural image
  statistics) and samples are noisy, randomly shifted renditions of their
  class template.  This is the drop-in replacement for CIFAR-10 in the
  deep-learning experiments.
* :func:`make_gaussian_mixture` — a d-dimensional Gaussian mixture
  classification task; fast, convex-ish, used by unit tests and quick demos.
* :func:`make_spirals` — the classic interleaved-spirals task; small,
  non-linearly separable, good for verifying that the NN substrate actually
  learns non-trivial decision boundaries.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import DEFAULT_DTYPE
from repro.data.datasets import Dataset
from repro.exceptions import DataError
from repro.utils.rng import as_generator

__all__ = ["make_synthetic_images", "make_gaussian_mixture", "make_spirals"]


def _smooth_template(
    rng: np.random.Generator, channels: int, size: int, smoothing_passes: int = 4
) -> np.ndarray:
    """Low-frequency random template obtained by repeated box blurring."""
    template = rng.standard_normal((channels, size, size))
    for _ in range(smoothing_passes):
        padded = np.pad(template, ((0, 0), (1, 1), (1, 1)), mode="edge")
        template = (
            padded[:, :-2, 1:-1]
            + padded[:, 2:, 1:-1]
            + padded[:, 1:-1, :-2]
            + padded[:, 1:-1, 2:]
            + padded[:, 1:-1, 1:-1]
        ) / 5.0
    # Normalize each template to zero mean / unit variance for class balance.
    template -= template.mean()
    template /= template.std() + 1e-12
    return template


def make_synthetic_images(
    num_samples: int = 2000,
    num_classes: int = 10,
    image_size: int = 8,
    channels: int = 3,
    noise_scale: float = 0.9,
    max_shift: int = 1,
    seed: int | np.random.Generator | None = 0,
    flatten: bool = False,
) -> Dataset:
    """Class-conditional synthetic image classification dataset.

    Parameters
    ----------
    num_samples:
        Total number of samples (classes are balanced up to rounding).
    num_classes:
        Number of classes (CIFAR-10 uses 10).
    image_size, channels:
        Spatial size and channel count of each image.
    noise_scale:
        Standard deviation of the additive Gaussian pixel noise; larger values
        make the task harder so accuracy improves gradually over training
        (mimicking the paper's multi-hundred-iteration accuracy curves).
    max_shift:
        Samples are randomly translated by up to this many pixels (with edge
        padding), adding intra-class variation.
    flatten:
        Return inputs of shape ``(n, c*h*w)`` instead of ``(n, c, h, w)``.
    """
    if num_samples < num_classes:
        raise DataError("need at least one sample per class")
    if image_size < 2 or channels < 1:
        raise DataError("image_size must be >= 2 and channels >= 1")
    rng = as_generator(seed)
    templates = np.stack(
        [_smooth_template(rng, channels, image_size) for _ in range(num_classes)]
    )
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    images = np.empty((num_samples, channels, image_size, image_size), dtype=DEFAULT_DTYPE)
    for idx in range(num_samples):
        template = templates[labels[idx]]
        if max_shift > 0:
            dy = int(rng.integers(-max_shift, max_shift + 1))
            dx = int(rng.integers(-max_shift, max_shift + 1))
            shifted = np.roll(np.roll(template, dy, axis=1), dx, axis=2)
        else:
            shifted = template
        images[idx] = shifted + noise_scale * rng.standard_normal(template.shape)
    inputs = images.reshape(num_samples, -1) if flatten else images
    return Dataset(
        inputs=inputs,
        labels=labels,
        num_classes=num_classes,
        name=f"synthetic_images(classes={num_classes}, size={image_size})",
    )


def make_gaussian_mixture(
    num_samples: int = 2000,
    num_classes: int = 4,
    dim: int = 16,
    separation: float = 2.0,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Isotropic Gaussian blobs, one per class, with controllable separation."""
    if num_samples < num_classes:
        raise DataError("need at least one sample per class")
    if separation <= 0:
        raise DataError(f"separation must be positive, got {separation}")
    rng = as_generator(seed)
    centers = rng.standard_normal((num_classes, dim)) * separation
    labels = np.arange(num_samples) % num_classes
    rng.shuffle(labels)
    inputs = centers[labels] + rng.standard_normal((num_samples, dim))
    return Dataset(
        inputs=inputs,
        labels=labels,
        num_classes=num_classes,
        name=f"gaussian_mixture(classes={num_classes}, dim={dim})",
    )


def make_spirals(
    num_samples: int = 1500,
    num_classes: int = 3,
    noise: float = 0.1,
    turns: float = 1.25,
    seed: int | np.random.Generator | None = 0,
) -> Dataset:
    """Interleaved 2-D spirals — a compact non-linearly separable benchmark."""
    if num_samples < num_classes:
        raise DataError("need at least one sample per class")
    if noise < 0:
        raise DataError(f"noise must be non-negative, got {noise}")
    rng = as_generator(seed)
    per_class = num_samples // num_classes
    inputs_list = []
    labels_list = []
    for c in range(num_classes):
        count = per_class + (1 if c < num_samples - per_class * num_classes else 0)
        radius = np.linspace(0.1, 1.0, count)
        angle = (
            np.linspace(0.0, turns * 2 * np.pi, count)
            + 2 * np.pi * c / num_classes
            + rng.standard_normal(count) * noise
        )
        points = np.stack([radius * np.cos(angle), radius * np.sin(angle)], axis=1)
        inputs_list.append(points)
        labels_list.append(np.full(count, c, dtype=np.int64))
    inputs = np.concatenate(inputs_list, axis=0)
    labels = np.concatenate(labels_list, axis=0)
    perm = rng.permutation(inputs.shape[0])
    return Dataset(
        inputs=inputs[perm],
        labels=labels[perm],
        num_classes=num_classes,
        name=f"spirals(classes={num_classes})",
    )
