"""Dataset container and splitting utilities."""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.backend import DEFAULT_DTYPE
from repro.exceptions import DataError
from repro.utils.rng import as_generator

__all__ = ["Dataset", "train_test_split"]


@dataclass(frozen=True)
class Dataset:
    """An in-memory supervised dataset.

    Attributes
    ----------
    inputs:
        Feature array; first axis indexes samples.  Shapes may be
        ``(n, d)`` for dense models or ``(n, c, h, w)`` for CNNs.
    labels:
        Integer class labels of shape ``(n,)``.
    num_classes:
        Number of distinct classes (labels are in ``[0, num_classes)``).
    name:
        Human-readable dataset label.
    """

    inputs: np.ndarray
    labels: np.ndarray
    num_classes: int
    name: str = "dataset"

    def __post_init__(self) -> None:
        inputs = np.asarray(self.inputs, dtype=DEFAULT_DTYPE)
        labels = np.asarray(self.labels, dtype=np.int64)
        if inputs.shape[0] != labels.shape[0]:
            raise DataError(
                f"inputs have {inputs.shape[0]} rows but labels have {labels.shape[0]}"
            )
        if labels.ndim != 1:
            raise DataError(f"labels must be 1-D, got shape {labels.shape}")
        if inputs.shape[0] == 0:
            raise DataError("dataset must contain at least one sample")
        if self.num_classes < 1:
            raise DataError(f"num_classes must be positive, got {self.num_classes}")
        if labels.min() < 0 or labels.max() >= self.num_classes:
            raise DataError(
                f"labels must lie in [0, {self.num_classes}), got range "
                f"[{labels.min()}, {labels.max()}]"
            )
        object.__setattr__(self, "inputs", inputs)
        object.__setattr__(self, "labels", labels)

    # -- basic views ----------------------------------------------------------
    @property
    def num_samples(self) -> int:
        """Number of samples ``n``."""
        return int(self.inputs.shape[0])

    @property
    def feature_shape(self) -> tuple[int, ...]:
        """Shape of a single input sample."""
        return tuple(self.inputs.shape[1:])

    @property
    def flat_feature_dim(self) -> int:
        """Total number of features per sample (product of feature_shape)."""
        return int(np.prod(self.feature_shape)) if self.feature_shape else 1

    def subset(self, indices: np.ndarray) -> "Dataset":
        """A new dataset restricted to ``indices`` (copy)."""
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size == 0:
            raise DataError("cannot build an empty subset")
        if indices.min() < 0 or indices.max() >= self.num_samples:
            raise DataError("subset indices out of range")
        return Dataset(
            inputs=self.inputs[indices].copy(),
            labels=self.labels[indices].copy(),
            num_classes=self.num_classes,
            name=self.name,
        )

    def shuffled(self, seed: int | np.random.Generator | None = 0) -> "Dataset":
        """A new dataset with rows permuted deterministically by ``seed``."""
        rng = as_generator(seed)
        perm = rng.permutation(self.num_samples)
        return self.subset(perm)

    def flattened(self) -> "Dataset":
        """A copy with inputs reshaped to ``(n, d)`` (for dense models)."""
        return Dataset(
            inputs=self.inputs.reshape(self.num_samples, -1),
            labels=self.labels.copy(),
            num_classes=self.num_classes,
            name=self.name,
        )

    def class_counts(self) -> np.ndarray:
        """Number of samples in each class."""
        return np.bincount(self.labels, minlength=self.num_classes)


def train_test_split(
    dataset: Dataset,
    test_fraction: float = 0.2,
    seed: int | np.random.Generator | None = 0,
) -> tuple[Dataset, Dataset]:
    """Random split into train and test subsets.

    Parameters
    ----------
    test_fraction:
        Fraction of samples assigned to the test split (strictly between 0
        and 1, and both splits must end up non-empty).
    """
    if not (0.0 < test_fraction < 1.0):
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    rng = as_generator(seed)
    n = dataset.num_samples
    n_test = int(round(n * test_fraction))
    if n_test == 0 or n_test == n:
        raise DataError(
            f"test_fraction={test_fraction} produces an empty split for n={n}"
        )
    perm = rng.permutation(n)
    test_idx, train_idx = perm[:n_test], perm[n_test:]
    return dataset.subset(train_idx), dataset.subset(test_idx)
