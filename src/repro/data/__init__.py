"""Datasets and batching.

The paper trains on CIFAR-10; offline we substitute deterministic synthetic
datasets (see DESIGN.md) that exercise the same code path: mini-batch
sampling, splitting every batch into ``f`` equally sized files, per-file
gradient computation and aggregation.
"""

from repro.data.batching import (
    BatchSampler,
    ShardedBatchSampler,
    build_file_partition,
    dirichlet_label_partition,
    partition_batch_into_files,
    partition_digest,
    quantity_skew_partition,
)
from repro.data.datasets import Dataset, train_test_split
from repro.data.synthetic import (
    make_synthetic_images,
    make_gaussian_mixture,
    make_spirals,
)

__all__ = [
    "Dataset",
    "train_test_split",
    "make_synthetic_images",
    "make_gaussian_mixture",
    "make_spirals",
    "BatchSampler",
    "ShardedBatchSampler",
    "build_file_partition",
    "dirichlet_label_partition",
    "partition_batch_into_files",
    "partition_digest",
    "quantity_skew_partition",
]
