"""Registry mapping scheme names to their classes.

Experiment configuration files refer to assignment schemes by name
(``"mols"``, ``"ramanujan"``, ``"frc"``, ``"baseline"``, ``"random"``); the
registry resolves the name and forwards keyword arguments to the constructor.
Users can register their own schemes for ablations.
"""

from __future__ import annotations

from typing import Type

from repro.assignment.base import AssignmentScheme
from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.assignment.random_scheme import RandomAssignment
from repro.exceptions import ConfigurationError

__all__ = ["register_scheme", "get_scheme", "available_schemes", "create_scheme"]

_REGISTRY: dict[str, Type[AssignmentScheme]] = {}


def register_scheme(name: str, cls: Type[AssignmentScheme], overwrite: bool = False) -> None:
    """Register ``cls`` under ``name``.

    Raises
    ------
    ConfigurationError
        If the name is already taken and ``overwrite`` is False.
    """
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(f"assignment scheme {name!r} is already registered")
    if not issubclass(cls, AssignmentScheme):
        raise ConfigurationError(
            f"{cls!r} does not subclass AssignmentScheme and cannot be registered"
        )
    _REGISTRY[key] = cls


def get_scheme(name: str) -> Type[AssignmentScheme]:
    """Look up a scheme class by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown assignment scheme {name!r}; available: {available_schemes()}"
        )
    return _REGISTRY[key]


def create_scheme(name: str, **kwargs) -> AssignmentScheme:
    """Instantiate a registered scheme with keyword arguments."""
    return get_scheme(name)(**kwargs)


def available_schemes() -> list[str]:
    """Sorted list of registered scheme names."""
    return sorted(_REGISTRY)


for _name, _cls in (
    ("mols", MOLSAssignment),
    ("ramanujan", RamanujanAssignment),
    ("frc", FRCAssignment),
    ("baseline", BaselineAssignment),
    ("random", RandomAssignment),
):
    register_scheme(_name, _cls)
