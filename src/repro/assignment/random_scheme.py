"""Random biregular assignment (ablation baseline).

DETOX's guarantees rely on the task assignment and the Byzantine set both
being random.  To quantify how much of ByzShield's advantage comes from the
*structured* expander placement, this scheme draws a uniformly random
biregular bipartite graph with the same ``(K, f, l, r)`` as a given MOLS /
Ramanujan configuration and is then subjected to the same omniscient attack.
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentScheme
from repro.exceptions import AssignmentError, ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.rng import as_generator
from repro.utils.validation import check_positive_int

__all__ = ["RandomAssignment"]


class RandomAssignment(AssignmentScheme):
    """Uniformly random biregular placement with given load and replication.

    Parameters
    ----------
    num_workers:
        Number of workers ``K``.
    num_files:
        Number of files ``f``; ``K * l == f * r`` must hold.
    replication:
        Copies per file ``r``.
    seed:
        Seed (or generator) controlling the random placement.
    max_attempts:
        The configuration-model sampler rejects placements that give a worker
        two copies of the same file; this bounds the number of redraws.
    """

    scheme_name = "random"

    def __init__(
        self,
        num_workers: int,
        num_files: int,
        replication: int,
        seed: int | np.random.Generator | None = 0,
        max_attempts: int = 2000,
    ) -> None:
        self.num_workers_total = check_positive_int(num_workers, "num_workers K")
        self.num_files_total = check_positive_int(num_files, "num_files f")
        self.replication_factor = check_positive_int(replication, "replication r")
        edges = num_files * replication
        if edges % num_workers != 0:
            raise ConfigurationError(
                f"f*r={edges} must be divisible by K={num_workers} for a "
                "biregular placement"
            )
        self.load = edges // num_workers
        if self.load > num_files:
            raise ConfigurationError(
                f"load l={self.load} exceeds the number of files f={num_files}"
            )
        self._rng = as_generator(seed)
        self.max_attempts = check_positive_int(max_attempts, "max_attempts")

    def build(self) -> BipartiteAssignment:
        """Sample a biregular graph via the configuration model with rejection."""
        K, f, r, l = (
            self.num_workers_total,
            self.num_files_total,
            self.replication_factor,
            self.load,
        )
        file_stubs = np.repeat(np.arange(f), r)
        for _ in range(self.max_attempts):
            perm = self._rng.permutation(file_stubs)
            H = np.zeros((K, f), dtype=np.int8)
            ok = True
            for worker in range(K):
                files = perm[worker * l : (worker + 1) * l]
                if np.unique(files).size != l:
                    ok = False
                    break
                H[worker, files] = 1
            if ok:
                return BipartiteAssignment(
                    H, name=f"random(K={K},f={f},l={l},r={r})"
                )
        raise AssignmentError(
            "failed to sample a simple biregular assignment within "
            f"{self.max_attempts} attempts; the parameters may be too tight"
        )
