"""Task-assignment schemes: how files are placed on workers.

Each scheme builds a :class:`repro.graphs.BipartiteAssignment`:

* :class:`MOLSAssignment` — paper Algorithm 2, mutually orthogonal Latin
  squares of prime degree ``l`` with replication ``r <= l - 1``.
* :class:`RamanujanAssignment` — paper Section 4.2, array-code Ramanujan
  bigraphs (Case 1: ``m < s``; Case 2: ``m >= s``).
* :class:`FRCAssignment` — the Fractional Repetition Code grouping used by
  DETOX and DRACO (workers split into ``K/r`` groups, each group replicates
  one file).
* :class:`RandomAssignment` — a random right-regular placement, used as an
  ablation of the "careful assignment" claim.
* :class:`BaselineAssignment` — no redundancy; each worker owns one file
  (``f = K``, ``r = 1``), modelling the plain robust-aggregation baselines.
"""

from repro.assignment.base import AssignmentScheme
from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment, ramanujan_biadjacency
from repro.assignment.random_scheme import RandomAssignment
from repro.assignment.registry import (
    available_schemes,
    get_scheme,
    register_scheme,
)

__all__ = [
    "AssignmentScheme",
    "MOLSAssignment",
    "RamanujanAssignment",
    "ramanujan_biadjacency",
    "FRCAssignment",
    "RandomAssignment",
    "BaselineAssignment",
    "available_schemes",
    "get_scheme",
    "register_scheme",
]
