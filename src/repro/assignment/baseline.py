"""Baseline assignment without redundancy.

Plain robust-aggregation schemes (median, Krum, Bulyan, signSGD, ...) do not
replicate work: each of the ``K`` workers computes the gradient of its own
slice of the batch, so ``f = K``, ``l = r = 1`` and the adversary corrupts
exactly ``q`` of the ``K`` gradients (``ε̂ = q / K``).
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentScheme
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.validation import check_positive_int

__all__ = ["BaselineAssignment"]


class BaselineAssignment(AssignmentScheme):
    """Identity assignment: worker ``j`` owns file ``j`` and nothing else."""

    scheme_name = "baseline"

    def __init__(self, num_workers: int) -> None:
        self.num_workers_total = check_positive_int(num_workers, "num_workers K")

    def build(self) -> BipartiteAssignment:
        """Materialize the ``K x K`` identity bi-adjacency matrix."""
        K = self.num_workers_total
        return BipartiteAssignment(np.eye(K, dtype=np.int8), name=f"baseline(K={K})")

    @staticmethod
    def worst_case_epsilon(q: int, num_workers: int) -> float:
        """Distortion fraction ``q / K`` — every Byzantine corrupts its own file."""
        return q / num_workers
