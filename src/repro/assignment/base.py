"""Abstract base class for task-assignment schemes."""

from __future__ import annotations

import abc

from repro.graphs.bipartite import BipartiteAssignment

__all__ = ["AssignmentScheme"]


class AssignmentScheme(abc.ABC):
    """A rule for placing ``f`` gradient files on ``K`` workers.

    Concrete schemes are immutable descriptions of a placement; calling
    :meth:`build` materializes the bipartite graph.  The graph is cached
    because it is queried repeatedly (distortion analysis, every training
    iteration), and all schemes in this library are deterministic given their
    construction arguments.
    """

    #: short identifier used by the registry and experiment configs
    scheme_name: str = "abstract"

    @abc.abstractmethod
    def build(self) -> BipartiteAssignment:
        """Construct and return the worker/file assignment graph."""

    # -- derived quantities --------------------------------------------------
    @property
    def assignment(self) -> BipartiteAssignment:
        """The (cached) assignment graph."""
        cached = getattr(self, "_cached_assignment", None)
        if cached is None:
            cached = self.build()
            self._cached_assignment = cached
        return cached

    @property
    def num_workers(self) -> int:
        """Number of workers ``K`` used by this scheme."""
        return self.assignment.num_workers

    @property
    def num_files(self) -> int:
        """Number of files ``f`` each batch is partitioned into."""
        return self.assignment.num_files

    @property
    def computational_load(self) -> int:
        """Files per worker ``l``."""
        return self.assignment.computational_load

    @property
    def replication(self) -> int:
        """Workers per file ``r``."""
        return self.assignment.replication

    def describe(self) -> dict[str, int | str]:
        """Summary dictionary ``{scheme, K, f, l, r}`` for reports."""
        return {
            "scheme": self.scheme_name,
            "num_workers": self.num_workers,
            "num_files": self.num_files,
            "load": self.computational_load,
            "replication": self.replication,
        }

    def __repr__(self) -> str:  # pragma: no cover - trivial
        d = self.describe()
        return (
            f"{type(self).__name__}(K={d['num_workers']}, f={d['num_files']}, "
            f"l={d['load']}, r={d['replication']})"
        )
