"""Fractional Repetition Code (FRC) assignment used by DETOX and DRACO.

The ``K`` workers are split into ``K / r`` groups of ``r`` consecutive
workers; the batch is split into ``f = K / r`` files and every worker of group
``g`` stores (only) file ``g``.  Majority voting then happens inside each
group.  Under the paper's omniscient adversary, placing ``r' = (r+1)/2``
Byzantines inside a group corrupts that group's vote, so the worst-case
distortion fraction is ``ε̂_FRC = floor(q / r') * r / K`` (Section 5.3.1).
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentScheme
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.validation import check_odd, check_positive_int

__all__ = ["FRCAssignment"]


class FRCAssignment(AssignmentScheme):
    """Grouped (fractional-repetition) placement of DETOX / DRACO.

    Parameters
    ----------
    num_workers:
        Total number of workers ``K``; must be divisible by ``replication``.
    replication:
        Group size ``r`` (each file is computed by all workers of one group);
        odd so that in-group majority voting cannot tie.
    """

    scheme_name = "frc"

    def __init__(self, num_workers: int, replication: int) -> None:
        self.num_workers_total = check_positive_int(num_workers, "num_workers K")
        self.replication_factor = check_positive_int(replication, "replication r")
        check_odd(replication, "replication r")
        if num_workers % replication != 0:
            raise ConfigurationError(
                f"FRC requires r | K, got K={num_workers}, r={replication}"
            )

    @property
    def num_groups(self) -> int:
        """Number of groups (= number of files) ``K / r``."""
        return self.num_workers_total // self.replication_factor

    def group_of_worker(self, worker: int) -> int:
        """Group index of a worker (workers are grouped consecutively)."""
        if not (0 <= worker < self.num_workers_total):
            raise ConfigurationError(
                f"worker {worker} out of range [0, {self.num_workers_total})"
            )
        return worker // self.replication_factor

    def workers_of_group(self, group: int) -> list[int]:
        """The ``r`` workers of ``group``."""
        if not (0 <= group < self.num_groups):
            raise ConfigurationError(
                f"group {group} out of range [0, {self.num_groups})"
            )
        r = self.replication_factor
        return list(range(group * r, (group + 1) * r))

    def build(self) -> BipartiteAssignment:
        """Materialize the grouped graph: worker ``j`` stores file ``j // r``."""
        K = self.num_workers_total
        r = self.replication_factor
        H = np.zeros((K, self.num_groups), dtype=np.int8)
        H[np.arange(K), np.arange(K) // r] = 1
        return BipartiteAssignment(H, name=f"frc(K={K},r={r})")

    @staticmethod
    def worst_case_epsilon(q: int, num_workers: int, replication: int) -> float:
        """Closed-form worst-case distortion fraction of Section 5.3.1.

        ``ε̂_FRC = floor(q / r') * r / K`` with ``r' = (r + 1) / 2``.
        """
        if q < 0:
            raise ConfigurationError(f"q must be non-negative, got {q}")
        r_prime = (replication + 1) // 2
        return (q // r_prime) * replication / num_workers
