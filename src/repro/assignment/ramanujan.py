"""Ramanujan-bigraph task assignment (paper Section 4.2).

The construction of Burnwal, Vidyasagar & Sinha builds the bi-adjacency matrix
from LDPC "array code" blocks.  With ``P`` the ``s x s`` cyclic-shift
permutation matrix, define the ``s² x m·s`` block matrix

``B = [ [I, I, ..., I], [I, P, P², ...], [I, P², P⁴, ...], ... ]``

whose block ``(a, b)`` is ``P^{a·b}``.  Then

* **Case 1** (``m < s``): ``H = Bᵀ`` — ``K = m·s`` workers, ``f = s²`` files,
  load ``l = s`` and replication ``r = m``;
* **Case 2** (``m >= s``): ``H = B`` — ``K = s²`` workers, ``f = m·s`` files,
  load ``l = m`` and replication ``r = s``.

Both graphs are Ramanujan bigraphs; Case 1 has the same ``(K, f, l, r)`` and
spectrum as a MOLS assignment with the same parameters (paper Lemma 2).
"""

from __future__ import annotations

import numpy as np

from repro.assignment.base import AssignmentScheme
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.validation import check_positive_int, check_prime

__all__ = ["RamanujanAssignment", "ramanujan_biadjacency", "cyclic_shift_matrix"]


def cyclic_shift_matrix(s: int) -> np.ndarray:
    """The ``s x s`` cyclic-shift permutation matrix ``P`` of paper Step 2.

    With 1-indexed entries the paper sets ``P[i, j] = 1`` iff
    ``j ≡ i − 1 (mod s)``; 0-indexed this is a one in column ``(i − 1) mod s``
    of each row ``i``.  Its ``k``-th power shifts by ``k``.
    """
    check_positive_int(s, "s")
    P = np.zeros((s, s), dtype=np.int8)
    rows = np.arange(s)
    P[rows, (rows - 1) % s] = 1
    return P


def ramanujan_biadjacency(m: int, s: int) -> np.ndarray:
    """Array-code block matrix ``B`` of shape ``(s², m·s)``; block ``(a,b)=P^{ab}``."""
    check_positive_int(m, "m")
    check_prime(s, "s")
    if m < 2:
        raise ConfigurationError(f"the construction requires m >= 2, got m={m}")
    # Vectorized construction: entry ((a, i), (b, j)) is 1 iff j ≡ i − a·b (mod s).
    a = np.arange(s)[:, None, None, None]  # block row
    i = np.arange(s)[None, :, None, None]  # row within block
    b = np.arange(m)[None, None, :, None]  # block column
    j = np.arange(s)[None, None, None, :]  # column within block
    B = (np.mod(i - a * b, s) == j).astype(np.int8)
    return B.reshape(s * s, m * s)


class RamanujanAssignment(AssignmentScheme):
    """Task placement from an array-code Ramanujan bigraph.

    Parameters
    ----------
    m:
        Number of block columns (``m >= 2``).
    s:
        Prime block size.
    require_odd_replication:
        Majority voting needs an odd replication factor (``m`` in Case 1,
        ``s`` in Case 2); set to False for purely structural studies.
    """

    scheme_name = "ramanujan"

    def __init__(self, m: int, s: int, require_odd_replication: bool = True) -> None:
        self.m = check_positive_int(m, "m")
        self.s = check_prime(s, "s")
        if m < 2:
            raise ConfigurationError(f"the construction requires m >= 2, got m={m}")
        self.case = 1 if m < s else 2
        replication = m if self.case == 1 else s
        if require_odd_replication and replication % 2 == 0:
            raise ConfigurationError(
                f"replication r={replication} must be odd for majority voting; "
                "pass require_odd_replication=False to build the graph anyway"
            )

    def build(self) -> BipartiteAssignment:
        """Materialize the bipartite graph (rows = workers, columns = files)."""
        B = ramanujan_biadjacency(self.m, self.s)
        H = B.T if self.case == 1 else B
        return BipartiteAssignment(
            H, name=f"ramanujan(m={self.m},s={self.s},case={self.case})"
        )

    # -- parameters of Eq. (6) -------------------------------------------------
    @property
    def expected_parameters(self) -> dict[str, int]:
        """``(K, f, l, r)`` per paper Eq. (6)."""
        if self.case == 1:
            return {
                "num_workers": self.m * self.s,
                "num_files": self.s * self.s,
                "load": self.s,
                "replication": self.m,
            }
        return {
            "num_workers": self.s * self.s,
            "num_files": self.m * self.s,
            "load": self.m,
            "replication": self.s,
        }
