"""MOLS-based task assignment (paper Algorithm 2, Section 4.1).

The batch is split into ``f = l²`` files identified with the cells ``(i, j)``
of an ``l x l`` grid (file index ``i*l + j``).  Given ``r`` mutually
orthogonal Latin squares ``L_1, ..., L_r`` of prime degree ``l``, worker
``U_{k*l + s}`` (the ``s``-th worker of the ``k``-th *parallel class*) stores
the files located at the cells of symbol ``s`` in ``L_{k+1}``.

Structural consequences used throughout the paper and verified by the tests:

* each worker stores exactly ``l`` files,
* two workers of the same parallel class share no file,
* two workers of different parallel classes share exactly one file,
* the resulting graph has ``µ₁ = 1/r`` (it is an optimal expander).
"""

from __future__ import annotations


from repro.assignment.base import AssignmentScheme
from repro.exceptions import ConfigurationError
from repro.fields.latin_squares import LatinSquare, mols_family
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.validation import check_odd, check_positive_int, check_prime

__all__ = ["MOLSAssignment"]


class MOLSAssignment(AssignmentScheme):
    """Worker/file placement driven by mutually orthogonal Latin squares.

    Parameters
    ----------
    load:
        Computational load ``l`` — prime degree of the Latin squares.  The
        scheme uses ``K = r*l`` workers and ``f = l²`` files.
    replication:
        Replication factor ``r``; must be odd (for majority voting),
        at least 3 and at most ``l - 1``.
    require_odd_replication:
        Majority voting needs an odd ``r``; set to False only for structural
        studies of the graph itself.
    """

    scheme_name = "mols"

    def __init__(
        self, load: int, replication: int, require_odd_replication: bool = True
    ) -> None:
        self.load = check_prime(load, "load l")
        self.replication_factor = check_positive_int(replication, "replication r")
        if replication > load - 1:
            raise ConfigurationError(
                f"MOLS supports at most l-1={load - 1} replicas, got r={replication}"
            )
        if replication < 2:
            raise ConfigurationError(
                f"redundancy requires r >= 2, got r={replication}"
            )
        if require_odd_replication:
            check_odd(replication, "replication r")

    # -- construction ---------------------------------------------------------
    def latin_squares(self) -> list[LatinSquare]:
        """The ``r`` MOLS ``L_1, ..., L_r`` used for the placement."""
        return mols_family(self.load, self.replication_factor)

    def worker_files(self) -> list[list[int]]:
        """Per-worker file lists — the rows of the paper's Table 2."""
        l = self.load
        squares = self.latin_squares()
        assignments: list[list[int]] = []
        for k, square in enumerate(squares):
            for s in range(l):
                cells = square.symbol_cells(s)
                files = sorted(i * l + j for i, j in cells)
                assignments.append(files)
        return assignments

    def build(self) -> BipartiteAssignment:
        """Materialize the bipartite graph with ``K = r*l`` workers, ``f = l²`` files."""
        l = self.load
        return BipartiteAssignment.from_worker_files(
            self.worker_files(),
            num_files=l * l,
            name=f"mols(l={l},r={self.replication_factor})",
        )

    # -- structural helpers ----------------------------------------------------
    def parallel_class_of_worker(self, worker: int) -> int:
        """Index ``k`` of the Latin square that populated ``worker`` (worker // l)."""
        if not (0 <= worker < self.replication_factor * self.load):
            raise ConfigurationError(
                f"worker {worker} out of range [0, {self.replication_factor * self.load})"
            )
        return worker // self.load

    def workers_of_parallel_class(self, k: int) -> list[int]:
        """The ``l`` workers populated from Latin square ``L_{k+1}``."""
        if not (0 <= k < self.replication_factor):
            raise ConfigurationError(
                f"parallel class {k} out of range [0, {self.replication_factor})"
            )
        return list(range(k * self.load, (k + 1) * self.load))

    def file_cell(self, file_index: int) -> tuple[int, int]:
        """Grid cell ``(i, j)`` corresponding to ``file_index = i*l + j``."""
        l = self.load
        if not (0 <= file_index < l * l):
            raise ConfigurationError(
                f"file {file_index} out of range [0, {l * l})"
            )
        return file_index // l, file_index % l
