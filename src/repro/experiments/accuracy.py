"""Deep-learning accuracy experiments (paper Figures 2–11).

Each figure compares ByzShield against baseline and DETOX defenses under one
attack and a set of Byzantine budgets ``q``.  A figure is described by a
:class:`FigureSpec` containing one :class:`RunSpec` per curve; calling
:func:`run_accuracy_figure` trains every curve on the shared synthetic dataset
(all curves start from the same ``w₀`` and see the same batch sequence) and
returns the accuracy-versus-iteration series of each.

Scales
------
The paper's experiments train ResNet-18 on CIFAR-10 for ~1000 iterations on
EC2; offline we provide three scales of the same experiment on the synthetic
substrate:

* ``"tiny"``   — seconds per curve; used by the unit tests;
* ``"small"``  — tens of seconds per figure; used by the benchmark harness;
* ``"medium"`` — minutes per figure; closer convergence behaviour for reports.
"""

from __future__ import annotations

from dataclasses import dataclass


from repro.aggregation.base import Aggregator
from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.krum import MultiKrumAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.median_of_means import MedianOfMeansAggregator
from repro.aggregation.sign_sgd import SignSGDMajorityAggregator
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.attacks.alie import ALIEAttack
from repro.attacks.base import Attack
from repro.attacks.constant import ConstantAttack
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.core.distortion import majority_threshold
from repro.data.datasets import Dataset, train_test_split
from repro.data.synthetic import make_gaussian_mixture, make_synthetic_images
from repro.exceptions import ConfigurationError
from repro.nn.models import Sequential, build_mlp
from repro.training.builders import (
    build_byzshield_trainer,
    build_detox_trainer,
    build_vanilla_trainer,
)
from repro.training.config import TrainingConfig
from repro.training.history import TrainingHistory

__all__ = [
    "RunSpec",
    "FigureSpec",
    "ScalePreset",
    "SCALE_PRESETS",
    "figure_spec",
    "available_figures",
    "run_accuracy_figure",
    "build_run_trainer",
]


# --------------------------------------------------------------------------- #
# Specs
# --------------------------------------------------------------------------- #
@dataclass(frozen=True)
class RunSpec:
    """One curve of a figure: a (pipeline, defense, attack, q) combination.

    Attributes
    ----------
    label:
        Curve label, e.g. ``"ByzShield, q=5"``.
    pipeline:
        ``"byzshield"``, ``"detox"`` or ``"vanilla"``.
    defense:
        ``"median"``, ``"median_of_means"``, ``"multi_krum"``, ``"bulyan"``
        or ``"signsgd"`` — the robust aggregation used by the pipeline.
    attack:
        ``"alie"``, ``"constant"``, ``"reversed_gradient"`` or ``None``.
    num_byzantine:
        Byzantine budget ``q``.
    """

    label: str
    pipeline: str
    defense: str
    attack: str | None
    num_byzantine: int


@dataclass(frozen=True)
class FigureSpec:
    """A full figure: cluster geometry plus the list of curves."""

    figure_id: str
    description: str
    cluster: str  # "k25" (Ramanujan case 2) or "k15" (MOLS l=5, r=3)
    runs: tuple[RunSpec, ...]


@dataclass(frozen=True)
class ScalePreset:
    """Dataset / model / schedule sizes for one experiment scale."""

    num_train: int
    num_test: int
    feature_kind: str  # "gaussian" or "images"
    hidden: tuple[int, ...]
    num_iterations: int
    batch_size: int
    eval_every: int
    learning_rate: float


SCALE_PRESETS: dict[str, ScalePreset] = {
    # Batch sizes are multiples of 75 so they divide evenly into files for
    # every cluster used by the figures (f = 25 for ByzShield, K = 15 or 25
    # for the baselines, K/r = 5 for DETOX).
    "tiny": ScalePreset(
        num_train=500,
        num_test=200,
        feature_kind="gaussian",
        hidden=(16,),
        num_iterations=10,
        batch_size=75,
        eval_every=5,
        learning_rate=0.05,
    ),
    "small": ScalePreset(
        num_train=1500,
        num_test=400,
        feature_kind="gaussian",
        hidden=(32,),
        num_iterations=60,
        batch_size=150,
        eval_every=10,
        learning_rate=0.05,
    ),
    "medium": ScalePreset(
        num_train=4000,
        num_test=1000,
        feature_kind="images",
        hidden=(64, 32),
        num_iterations=300,
        batch_size=300,
        eval_every=20,
        learning_rate=0.05,
    ),
}


def _curves_for_q(
    q_values: tuple[int, ...],
    pipeline: str,
    defense: str,
    attack: str,
    label_prefix: str,
) -> list[RunSpec]:
    return [
        RunSpec(
            label=f"{label_prefix}, q={q}",
            pipeline=pipeline,
            defense=defense,
            attack=attack,
            num_byzantine=q,
        )
        for q in q_values
    ]


def _figure_specs() -> dict[str, FigureSpec]:
    specs: dict[str, FigureSpec] = {}

    # Figure 2: ALIE, median-based defenses, K = 25.
    specs["fig2"] = FigureSpec(
        "fig2",
        "ALIE attack and median-based defenses",
        "k25",
        tuple(
            _curves_for_q((3, 5), "vanilla", "median", "alie", "Median")
            + _curves_for_q((3, 5), "byzshield", "median", "alie", "ByzShield")
            + _curves_for_q((3, 5), "detox", "median_of_means", "alie", "DETOX-MoM")
        ),
    )
    # Figure 3: ALIE, Bulyan defenses.
    specs["fig3"] = FigureSpec(
        "fig3",
        "ALIE attack and Bulyan-based defenses",
        "k25",
        tuple(
            _curves_for_q((3, 5), "vanilla", "bulyan", "alie", "Bulyan")
            + _curves_for_q((3, 5), "byzshield", "median", "alie", "ByzShield")
        ),
    )
    # Figure 4: ALIE, Multi-Krum defenses.
    specs["fig4"] = FigureSpec(
        "fig4",
        "ALIE attack and Multi-Krum-based defenses",
        "k25",
        tuple(
            _curves_for_q((3, 5), "vanilla", "multi_krum", "alie", "Multi-Krum")
            + _curves_for_q((3, 5), "byzshield", "median", "alie", "ByzShield")
            + _curves_for_q((3, 5), "detox", "multi_krum", "alie", "DETOX-Multi-Krum")
        ),
    )
    # Figure 5: constant attack, signSGD defenses.
    specs["fig5"] = FigureSpec(
        "fig5",
        "Constant attack and signSGD-based defenses",
        "k25",
        tuple(
            _curves_for_q((3, 5), "vanilla", "signsgd", "constant", "signSGD")
            + _curves_for_q((3, 5), "byzshield", "median", "constant", "ByzShield")
            + _curves_for_q((3, 5), "detox", "signsgd", "constant", "DETOX-signSGD")
        ),
    )
    # Figure 6: reversed gradient, median defenses, q in {3, 9}.
    specs["fig6"] = FigureSpec(
        "fig6",
        "Reversed-gradient attack and median-based defenses",
        "k25",
        tuple(
            _curves_for_q((3, 9), "vanilla", "median", "reversed_gradient", "Median")
            + _curves_for_q((3, 9), "byzshield", "median", "reversed_gradient", "ByzShield")
            + _curves_for_q((3, 9), "detox", "median_of_means", "reversed_gradient", "DETOX-MoM")
        ),
    )
    # Figure 7: reversed gradient, Bulyan defenses (Bulyan inapplicable at q=9).
    specs["fig7"] = FigureSpec(
        "fig7",
        "Reversed-gradient attack and Bulyan-based defenses",
        "k25",
        tuple(
            _curves_for_q((3, 5), "vanilla", "bulyan", "reversed_gradient", "Bulyan")
            + _curves_for_q(
                (3, 5, 9), "byzshield", "median", "reversed_gradient", "ByzShield"
            )
        ),
    )
    # Figure 8: reversed gradient, Multi-Krum defenses.
    specs["fig8"] = FigureSpec(
        "fig8",
        "Reversed-gradient attack and Multi-Krum-based defenses",
        "k25",
        tuple(
            _curves_for_q(
                (3, 5, 9), "vanilla", "multi_krum", "reversed_gradient", "Multi-Krum"
            )
            + _curves_for_q(
                (3, 5, 9), "byzshield", "median", "reversed_gradient", "ByzShield"
            )
            + _curves_for_q(
                (3, 5), "detox", "multi_krum", "reversed_gradient", "DETOX-Multi-Krum"
            )
        ),
    )
    # Figures 9-11: K = 15 (MOLS l=5, r=3), ALIE, q = 2.
    specs["fig9"] = FigureSpec(
        "fig9",
        "ALIE attack and median-based defenses, K=15",
        "k15",
        tuple(
            _curves_for_q((2,), "vanilla", "median", "alie", "Median")
            + _curves_for_q((2,), "byzshield", "median", "alie", "ByzShield")
            + _curves_for_q((2,), "detox", "median_of_means", "alie", "DETOX-MoM")
        ),
    )
    specs["fig10"] = FigureSpec(
        "fig10",
        "ALIE attack and Bulyan-based defenses, K=15",
        "k15",
        tuple(
            _curves_for_q((2,), "vanilla", "bulyan", "alie", "Bulyan")
            + _curves_for_q((2,), "byzshield", "median", "alie", "ByzShield")
        ),
    )
    specs["fig11"] = FigureSpec(
        "fig11",
        "ALIE attack and Multi-Krum-based defenses, K=15",
        "k15",
        tuple(
            _curves_for_q((2,), "vanilla", "multi_krum", "alie", "Multi-Krum")
            + _curves_for_q((2,), "byzshield", "median", "alie", "ByzShield")
            + _curves_for_q((2,), "detox", "multi_krum", "alie", "DETOX-Multi-Krum")
        ),
    )
    return specs


_FIGURE_SPECS = _figure_specs()


def available_figures() -> list[str]:
    """Names of the accuracy figures this module can regenerate."""
    return sorted(_FIGURE_SPECS)


def figure_spec(figure_id: str) -> FigureSpec:
    """Look up the specification of one figure (``"fig2"`` ... ``"fig11"``)."""
    key = figure_id.lower()
    if key not in _FIGURE_SPECS:
        raise ConfigurationError(
            f"unknown figure {figure_id!r}; available: {available_figures()}"
        )
    return _FIGURE_SPECS[key]


# --------------------------------------------------------------------------- #
# Cluster geometry and components
# --------------------------------------------------------------------------- #
_CLUSTERS: dict[str, dict[str, int]] = {
    # K = 25 workers: Ramanujan Case 2 with r = l = 5, f = 25 files.
    "k25": {"num_workers": 25, "replication": 5, "num_files": 25},
    # K = 15 workers: MOLS with l = 5, r = 3, f = 25 files.
    "k15": {"num_workers": 15, "replication": 3, "num_files": 25},
}


def _byzshield_scheme(cluster: str):
    if cluster == "k25":
        return RamanujanAssignment(m=5, s=5)
    if cluster == "k15":
        return MOLSAssignment(load=5, replication=3)
    raise ConfigurationError(f"unknown cluster {cluster!r}")


def _make_attack(name: str | None) -> Attack | None:
    if name is None:
        return None
    if name == "alie":
        return ALIEAttack()
    if name == "constant":
        return ConstantAttack(value=-1.0)
    if name == "reversed_gradient":
        return ReversedGradientAttack(scale=100.0)
    raise ConfigurationError(f"unknown attack {name!r}")


def _make_defense(
    defense: str, pipeline: str, cluster: dict[str, int], num_byzantine: int
) -> Aggregator:
    """Instantiate the robust rule with the vote-count-dependent parameters."""
    if defense == "median":
        return CoordinateWiseMedian()
    if defense == "median_of_means":
        if pipeline == "detox":
            # DETOX's second stage buckets the K/r group winners; an odd bucket
            # count >= 3 keeps the median well defined and tolerant of one
            # corrupted bucket (with 2 buckets the "median" is their average
            # and a single corrupted group poisons the update).
            groups = min(3, cluster["num_workers"] // cluster["replication"])
        else:
            groups = max(1, cluster["num_workers"] // 3)
        return MedianOfMeansAggregator(num_groups=groups)
    if defense == "signsgd":
        return SignSGDMajorityAggregator()
    if defense in ("multi_krum", "bulyan"):
        if pipeline == "detox":
            # After the per-group vote the adversary controls at most
            # floor(q / r') of the group gradients.
            corrupted = num_byzantine // majority_threshold(cluster["replication"])
        else:
            corrupted = num_byzantine
        corrupted = max(corrupted, 0)
        if defense == "multi_krum":
            return MultiKrumAggregator(num_byzantine=corrupted)
        return BulyanAggregator(num_byzantine=corrupted)
    raise ConfigurationError(f"unknown defense {defense!r}")


def _make_dataset(preset: ScalePreset, seed: int) -> tuple[Dataset, Dataset]:
    if preset.feature_kind == "gaussian":
        dataset = make_gaussian_mixture(
            num_samples=preset.num_train + preset.num_test,
            num_classes=10,
            dim=32,
            separation=1.0,
            seed=seed,
        )
    else:
        dataset = make_synthetic_images(
            num_samples=preset.num_train + preset.num_test,
            num_classes=10,
            image_size=8,
            channels=3,
            seed=seed,
            flatten=True,
        )
    test_fraction = preset.num_test / (preset.num_train + preset.num_test)
    return train_test_split(dataset, test_fraction=test_fraction, seed=seed + 1)


def _make_model(input_dim: int, preset: ScalePreset, seed: int) -> Sequential:
    return build_mlp(input_dim, num_classes=10, hidden=preset.hidden, seed=seed)


def build_run_trainer(
    run: RunSpec,
    cluster_name: str,
    train_dataset: Dataset,
    test_dataset: Dataset,
    preset: ScalePreset,
    seed: int,
):
    """Assemble the trainer for one curve of a figure."""
    cluster = _CLUSTERS[cluster_name]
    config = TrainingConfig(
        batch_size=preset.batch_size,
        num_iterations=preset.num_iterations,
        learning_rate=preset.learning_rate,
        lr_decay=0.96,
        lr_period=15,
        momentum=0.9,
        eval_every=preset.eval_every,
        seed=seed,
    )
    model = _make_model(train_dataset.flat_feature_dim, preset, seed)
    attack = _make_attack(run.attack)
    defense = _make_defense(run.defense, run.pipeline, cluster, run.num_byzantine)
    common = dict(
        model=model,
        train_dataset=train_dataset,
        test_dataset=test_dataset,
        config=config,
        attack=attack,
        num_byzantine=run.num_byzantine if attack is not None else 0,
        selection="omniscient",
        label=run.label,
    )
    if run.pipeline == "byzshield":
        return build_byzshield_trainer(
            scheme=_byzshield_scheme(cluster_name), aggregator=defense, **common
        )
    if run.pipeline == "detox":
        return build_detox_trainer(
            num_workers=cluster["num_workers"],
            replication=cluster["replication"],
            aggregator=defense,
            **common,
        )
    if run.pipeline == "vanilla":
        return build_vanilla_trainer(
            num_workers=cluster["num_workers"], aggregator=defense, **common
        )
    raise ConfigurationError(f"unknown pipeline {run.pipeline!r}")


def run_accuracy_figure(
    figure_id: str,
    scale: str = "small",
    seed: int = 0,
    run_filter: "list[str] | None" = None,
    verbose: bool = False,
) -> dict[str, TrainingHistory]:
    """Train every curve of a figure and return its history keyed by label.

    Parameters
    ----------
    figure_id:
        ``"fig2"`` ... ``"fig11"``.
    scale:
        One of :data:`SCALE_PRESETS` (``"tiny"``, ``"small"``, ``"medium"``).
    seed:
        Controls dataset generation, model initialization and batch order —
        shared by every curve so the comparison is paired.
    run_filter:
        Optional list of curve labels to run (others are skipped).
    """
    if scale not in SCALE_PRESETS:
        raise ConfigurationError(
            f"unknown scale {scale!r}; available: {sorted(SCALE_PRESETS)}"
        )
    spec = figure_spec(figure_id)
    preset = SCALE_PRESETS[scale]
    train_dataset, test_dataset = _make_dataset(preset, seed)
    histories: dict[str, TrainingHistory] = {}
    for run in spec.runs:
        if run_filter is not None and run.label not in run_filter:
            continue
        trainer = build_run_trainer(
            run, spec.cluster, train_dataset, test_dataset, preset, seed
        )
        histories[run.label] = trainer.train(verbose=verbose)
    return histories
