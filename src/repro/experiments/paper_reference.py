"""Numbers published in the paper, transcribed for comparison.

Tables 3–6 report, for each Byzantine budget ``q``: the simulated worst-case
number of corrupted files ``c_max``, the corresponding ByzShield distortion
fraction ``ε̂``, the baseline fraction ``q/K``, the worst-case FRC fraction and
the expansion bound ``γ``.  These are purely combinatorial quantities, so our
reproduction should match them exactly (up to the paper's two-decimal
rounding); the benchmarks assert this.

Known quirk: the paper's Table 6 row ``q = 10`` lists a baseline fraction of
0.52 whereas ``q/K = 10/21 = 0.476``; we treat this as a typo and compare the
baseline column with a loose tolerance.
"""

from __future__ import annotations

__all__ = [
    "TABLE3",
    "TABLE4",
    "TABLE5",
    "TABLE6",
    "TABLE_CONFIGS",
    "FIGURE_DESCRIPTIONS",
]

# Each row: q -> (c_max, eps_byzshield, eps_baseline, eps_frc, gamma)
TABLE3: dict[int, tuple[int, float, float, float, float]] = {
    2: (1, 0.04, 0.13, 0.2, 2.11),
    3: (3, 0.12, 0.20, 0.2, 4.29),
    4: (5, 0.20, 0.27, 0.4, 6.96),
    5: (8, 0.32, 0.33, 0.4, 10.00),
    6: (12, 0.48, 0.40, 0.6, 13.33),
    7: (14, 0.56, 0.47, 0.6, 16.90),
}

TABLE4: dict[int, tuple[int, float, float, float, float]] = {
    3: (1, 0.04, 0.12, 0.2, 2.43),
    4: (1, 0.04, 0.16, 0.2, 3.90),
    5: (2, 0.08, 0.20, 0.2, 5.56),
    6: (4, 0.16, 0.24, 0.4, 7.35),
    7: (5, 0.20, 0.28, 0.4, 9.25),
    8: (7, 0.28, 0.32, 0.4, 11.23),
    9: (9, 0.36, 0.36, 0.6, 13.28),
    10: (12, 0.48, 0.40, 0.6, 15.38),
    11: (14, 0.56, 0.44, 0.6, 17.54),
    12: (17, 0.68, 0.48, 0.8, 19.73),
}

TABLE5: dict[int, tuple[int, float, float, float, float]] = {
    3: (1, 0.02, 0.12, 0.14, 2.68),
    4: (1, 0.02, 0.16, 0.14, 4.39),
    5: (2, 0.04, 0.20, 0.14, 6.36),
    6: (4, 0.08, 0.24, 0.29, 8.54),
    7: (5, 0.10, 0.28, 0.29, 10.89),
    8: (8, 0.16, 0.32, 0.29, 13.37),
    9: (10, 0.20, 0.36, 0.43, 15.97),
    10: (11, 0.22, 0.40, 0.43, 18.67),
    11: (14, 0.29, 0.44, 0.43, 21.44),
    12: (16, 0.33, 0.48, 0.57, 24.29),
    13: (20, 0.41, 0.52, 0.57, 27.20),
}

TABLE6: dict[int, tuple[int, float, float, float, float]] = {
    2: (1, 0.02, 0.10, 0.14, 2.23),
    3: (3, 0.06, 0.14, 0.14, 4.67),
    4: (5, 0.10, 0.19, 0.29, 7.72),
    5: (8, 0.16, 0.24, 0.29, 11.29),
    6: (12, 0.24, 0.29, 0.43, 15.27),
    7: (16, 0.33, 0.33, 0.43, 19.60),
    8: (21, 0.43, 0.38, 0.57, 24.22),
    9: (25, 0.51, 0.43, 0.57, 29.08),
    10: (29, 0.59, 0.52, 0.71, 34.15),
}

#: cluster configuration of each table: (scheme, parameters, K, f, l, r)
TABLE_CONFIGS: dict[str, dict[str, object]] = {
    "table3": {"scheme": "mols", "load": 5, "replication": 3, "K": 15, "f": 25},
    "table4": {"scheme": "ramanujan", "m": 5, "s": 5, "K": 25, "f": 25},
    "table5": {"scheme": "mols", "load": 7, "replication": 5, "K": 35, "f": 49},
    "table6": {"scheme": "mols", "load": 7, "replication": 3, "K": 21, "f": 49},
}

#: short description of each figure, used in reports and EXPERIMENTS.md
FIGURE_DESCRIPTIONS: dict[str, str] = {
    "fig2": "ALIE attack, median-based defenses (baseline median, ByzShield, DETOX-MoM), K=25, q in {3, 5}",
    "fig3": "ALIE attack, Bulyan-based defenses (baseline Bulyan, ByzShield), K=25, q in {3, 5}",
    "fig4": "ALIE attack, Multi-Krum-based defenses (baseline, ByzShield, DETOX-Multi-Krum), K=25, q in {3, 5}",
    "fig5": "Constant attack, signSGD-based defenses (baseline signSGD, ByzShield, DETOX-signSGD), K=25, q in {3, 5}",
    "fig6": "Reversed-gradient attack, median-based defenses, K=25, q in {3, 9}",
    "fig7": "Reversed-gradient attack, Bulyan-based defenses, K=25, q in {3, 5, 9}",
    "fig8": "Reversed-gradient attack, Multi-Krum-based defenses, K=25, q in {3, 5, 9}",
    "fig9": "ALIE attack, median-based defenses, K=15 (MOLS l=5, r=3), q=2",
    "fig10": "ALIE attack, Bulyan-based defenses, K=15, q=2",
    "fig11": "ALIE attack, Multi-Krum-based defenses, K=15, q=2",
    "fig12": "Per-iteration time breakdown (computation / communication / aggregation) for baseline median, ByzShield and DETOX-MoM",
}

#: per-iteration wall-clock totals reported in the paper's Section 6.2 for the
#: ALIE / q=3 / K=25 experiment, in hours for the full 13-epoch training.
PAPER_TRAINING_HOURS: dict[str, float] = {
    "median": 3.14,
    "byzshield": 10.81,
    "detox_mom": 4.0,
}
