"""Checks of the analytic bounds (paper Sections 5.1 and 5.2).

Two small studies back the paper's theory section:

* :func:`bound_tightness_table` — how close the expansion bound ``γ`` (Claim 1
  via Lemma 1) is to the simulated worst-case ``c_max``; the paper concludes
  "γ is a very accurate worst-case approximation of c_max".
* :func:`claim2_verification_table` — the exact small-``q`` values of Claim 2
  (``q <= r``) versus simulation, for both the MOLS and Ramanujan schemes.
"""

from __future__ import annotations

from repro.assignment.base import AssignmentScheme
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.core.distortion import claim2_exact_c_max, max_distortion
from repro.graphs.expansion import (
    mols_epsilon_upper_bound,
    ramanujan_case2_epsilon_upper_bound,
)

__all__ = ["bound_tightness_table", "claim2_verification_table"]


def bound_tightness_table(
    scheme: AssignmentScheme | None = None,
    q_values: "list[int] | range | None" = None,
    method: str = "auto",
) -> list[dict[str, float]]:
    """Simulated ``c_max`` versus the ``γ`` bound and the closed-form ``ε̂`` bound.

    Defaults to the Table 3 configuration (MOLS ``l=5, r=3``).
    """
    scheme = scheme if scheme is not None else MOLSAssignment(load=5, replication=3)
    assignment = scheme.assignment
    if q_values is None:
        q_values = range(2, assignment.replication * 2 + 2)
    rows: list[dict[str, float]] = []
    for q in q_values:
        result = max_distortion(assignment, q, method=method)
        if isinstance(scheme, RamanujanAssignment) and scheme.case == 2:
            closed_form = ramanujan_case2_epsilon_upper_bound(q, assignment.replication)
        else:
            closed_form = mols_epsilon_upper_bound(
                q, assignment.computational_load, assignment.replication
            )
        rows.append(
            {
                "q": int(q),
                "c_max": int(result.c_max),
                "epsilon": result.epsilon,
                "gamma": result.gamma,
                "gamma_over_f": result.gamma / assignment.num_files,
                "closed_form_epsilon_bound": closed_form,
                "bound_satisfied": bool(result.c_max <= result.gamma + 1e-9),
            }
        )
    return rows


def claim2_verification_table(
    scheme: AssignmentScheme | None = None, method: str = "exhaustive"
) -> list[dict[str, float]]:
    """Claim 2's exact ``c_max`` for ``q <= r`` versus the simulated optimum."""
    scheme = scheme if scheme is not None else MOLSAssignment(load=5, replication=3)
    assignment = scheme.assignment
    r = assignment.replication
    rows: list[dict[str, float]] = []
    for q in range(0, r + 1):
        simulated = max_distortion(assignment, q, method=method)
        rows.append(
            {
                "q": q,
                "claim2_c_max": claim2_exact_c_max(q, r),
                "simulated_c_max": int(simulated.c_max),
                "match": bool(claim2_exact_c_max(q, r) == simulated.c_max),
            }
        )
    return rows
