"""Plain-text / CSV rendering of experiment results."""

from __future__ import annotations

import io
from typing import Iterable, Mapping, Sequence

__all__ = ["format_rows", "rows_to_csv", "format_series"]


def _format_value(value: object, precision: int) -> str:
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        return f"{value:.{precision}f}"
    return str(value)


def format_rows(
    rows: Sequence[Mapping[str, object]],
    columns: Sequence[str] | None = None,
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return "(empty table)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_format_value(row.get(col, ""), precision) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), max(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def rows_to_csv(
    rows: Sequence[Mapping[str, object]], columns: Sequence[str] | None = None
) -> str:
    """Render rows as CSV text (header + one line per row)."""
    if not rows:
        return ""
    if columns is None:
        columns = list(rows[0].keys())
    buffer = io.StringIO()
    buffer.write(",".join(str(c) for c in columns) + "\n")
    for row in rows:
        buffer.write(",".join(str(row.get(c, "")) for c in columns) + "\n")
    return buffer.getvalue()


def format_series(
    series: Mapping[str, tuple[Iterable[int], Iterable[float]]],
    precision: int = 3,
    title: str | None = None,
) -> str:
    """Render labelled (iteration, value) series as aligned text columns.

    Used to print the accuracy-versus-iteration curves of Figures 2–11 in a
    terminal-friendly format.
    """
    labels = list(series)
    if not labels:
        return "(no series)"
    rows: list[dict[str, object]] = []
    per_label = {
        label: dict(zip(list(xs), list(ys))) for label, (xs, ys) in series.items()
    }
    all_iterations = sorted({x for mapping in per_label.values() for x in mapping})
    for iteration in all_iterations:
        row: dict[str, object] = {"iteration": iteration}
        for label in labels:
            value = per_label[label].get(iteration)
            row[label] = float(value) if value is not None else ""
        rows.append(row)
    return format_rows(rows, columns=["iteration", *labels], precision=precision, title=title)
