"""Per-iteration time breakdown (paper Figure 12).

The paper reports, for the ALIE / q=3 / K=25 experiment, the average
per-iteration time split into computation, communication and aggregation for
baseline median, ByzShield and DETOX median-of-means.  The analytic cost
model of :mod:`repro.cluster.timing` reproduces the breakdown's *shape*:
ByzShield pays ``l×`` the communication (one message per file) and the largest
aggregation cost, and both redundancy schemes pay ``r×`` the baseline's
computation.
"""

from __future__ import annotations

from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.cluster.timing import CostModel, estimate_iteration_timing

__all__ = ["generate_figure12"]


def generate_figure12(
    batch_size: int = 750,
    model_dim: int = 11_173_962,
    num_byzantine: int = 3,
    cost_model: CostModel | None = None,
) -> list[dict[str, float]]:
    """Estimated per-iteration time breakdown for the paper's three schemes.

    Parameters
    ----------
    batch_size:
        Global batch size (the paper uses 750).
    model_dim:
        Number of model parameters; the default is ResNet-18's parameter
        count, matching the paper's workload even though our simulator trains
        a smaller stand-in model.
    num_byzantine:
        Byzantine budget (only affects Krum-like aggregation costs).
    """
    rows: list[dict[str, float]] = []

    baseline = BaselineAssignment(num_workers=25).assignment
    timing = estimate_iteration_timing(
        baseline,
        batch_size,
        model_dim,
        aggregator_name="median",
        uses_majority_vote=False,
        num_byzantine=num_byzantine,
        cost_model=cost_model,
    )
    rows.append({"scheme": "Median", **timing.as_dict()})

    byzshield = RamanujanAssignment(m=5, s=5).assignment
    timing = estimate_iteration_timing(
        byzshield,
        batch_size,
        model_dim,
        aggregator_name="median",
        uses_majority_vote=True,
        num_byzantine=num_byzantine,
        cost_model=cost_model,
    )
    rows.append({"scheme": "ByzShield", **timing.as_dict()})

    detox = FRCAssignment(num_workers=25, replication=5).assignment
    timing = estimate_iteration_timing(
        detox,
        batch_size,
        model_dim,
        aggregator_name="median_of_means",
        uses_majority_vote=True,
        num_byzantine=num_byzantine,
        cost_model=cost_model,
    )
    rows.append({"scheme": "DETOX-MoM", **timing.as_dict()})
    return rows
