"""Ablations motivated by the paper's design discussion.

Two questions the paper raises but does not isolate experimentally:

* **Does the structured expander placement matter, or is any redundancy
  enough?**  :func:`assignment_structure_ablation` compares the worst-case
  distortion fraction of the MOLS / Ramanujan placements against a *random*
  biregular placement with the same ``(K, f, l, r)`` and against FRC grouping,
  under the same omniscient adversary.
* **How much does the post-vote aggregator matter?**
  :func:`aggregator_ablation` trains ByzShield with different second-stage
  rules (median, trimmed mean, Multi-Krum, Bulyan, geometric median) under a
  fixed attack and reports the final accuracies — the "ByzShield can also be
  used with non-trivial aggregation schemes" remark of the conclusion.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.base import Aggregator
from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.geometric_median import GeometricMedianAggregator
from repro.aggregation.krum import MultiKrumAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.trimmed_mean import TrimmedMeanAggregator
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.assignment.random_scheme import RandomAssignment
from repro.attacks.alie import ALIEAttack
from repro.core.distortion import max_distortion
from repro.data.datasets import train_test_split
from repro.data.synthetic import make_gaussian_mixture
from repro.exceptions import ConfigurationError
from repro.nn.models import build_mlp
from repro.training.builders import build_byzshield_trainer
from repro.training.config import TrainingConfig

__all__ = ["assignment_structure_ablation", "aggregator_ablation"]


def assignment_structure_ablation(
    load: int = 5,
    replication: int = 3,
    q_values: "list[int] | range" = range(2, 8),
    num_random_draws: int = 5,
    seed: int = 0,
    method: str = "auto",
) -> list[dict[str, float]]:
    """Worst-case ``ε̂`` of MOLS vs Ramanujan vs random vs FRC placements.

    All schemes use the same number of workers ``K = r*l`` and (except FRC,
    whose geometry forces ``f = K/r``) the same number of files ``f = l²``.
    The random placement is averaged over ``num_random_draws`` draws.
    """
    if num_random_draws < 1:
        raise ConfigurationError("num_random_draws must be >= 1")
    mols = MOLSAssignment(load=load, replication=replication).assignment
    ramanujan = RamanujanAssignment(m=replication, s=load).assignment
    rows: list[dict[str, float]] = []
    for q in q_values:
        random_eps = []
        for draw in range(num_random_draws):
            random_assignment = RandomAssignment(
                num_workers=mols.num_workers,
                num_files=mols.num_files,
                replication=replication,
                seed=seed + draw,
            ).assignment
            random_eps.append(
                max_distortion(random_assignment, q, method=method, seed=seed).epsilon
            )
        rows.append(
            {
                "q": int(q),
                "epsilon_mols": max_distortion(mols, q, method=method, seed=seed).epsilon,
                "epsilon_ramanujan": max_distortion(
                    ramanujan, q, method=method, seed=seed
                ).epsilon,
                "epsilon_random_mean": float(np.mean(random_eps)),
                "epsilon_random_worst": float(np.max(random_eps)),
                "epsilon_frc": FRCAssignment.worst_case_epsilon(
                    q, mols.num_workers, replication
                ),
            }
        )
    return rows


def aggregator_ablation(
    num_byzantine: int = 5,
    scale_iterations: int = 40,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Final accuracy of ByzShield (K=25 Ramanujan) with different post-vote rules.

    The attack is ALIE with the omniscient worst-case Byzantine set, matching
    the paper's headline setting; all runs share the dataset, the model
    initialization and the batch sequence.
    """
    dataset = make_gaussian_mixture(
        num_samples=1500, num_classes=10, dim=32, separation=1.5, seed=seed
    )
    train_dataset, test_dataset = train_test_split(dataset, test_fraction=0.25, seed=seed + 1)
    config = TrainingConfig(
        batch_size=100,
        num_iterations=scale_iterations,
        learning_rate=0.05,
        momentum=0.9,
        eval_every=max(scale_iterations // 4, 1),
        seed=seed,
    )
    scheme = RamanujanAssignment(m=5, s=5)
    f = scheme.assignment.num_files
    aggregators: dict[str, Aggregator] = {
        "median": CoordinateWiseMedian(),
        "trimmed_mean": TrimmedMeanAggregator(trim=max(1, num_byzantine // 2)),
        "multi_krum": MultiKrumAggregator(num_byzantine=max(1, (f - 3) // 2 // 2)),
        "bulyan": BulyanAggregator(num_byzantine=max(1, (f - 3) // 4)),
        "geometric_median": GeometricMedianAggregator(),
    }
    rows: list[dict[str, float]] = []
    for name, aggregator in aggregators.items():
        model = build_mlp(train_dataset.flat_feature_dim, 10, hidden=(32,), seed=seed)
        trainer = build_byzshield_trainer(
            scheme=scheme,
            model=model,
            train_dataset=train_dataset,
            test_dataset=test_dataset,
            config=config,
            attack=ALIEAttack(),
            num_byzantine=num_byzantine,
            aggregator=aggregator,
            label=f"byzshield+{name}",
        )
        history = trainer.train()
        rows.append(
            {
                "aggregator": name,
                "final_accuracy": history.final_accuracy,
                "best_accuracy": history.best_accuracy,
                "final_train_loss": float(history.train_losses[-1]),
                "mean_distortion": float(history.distortion_fractions.mean()),
            }
        )
    return rows
