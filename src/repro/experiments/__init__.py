"""Experiment generators reproducing every table and figure of the paper.

* :mod:`repro.experiments.tables` — distortion-fraction Tables 3–6.
* :mod:`repro.experiments.accuracy` — deep-learning accuracy Figures 2–11.
* :mod:`repro.experiments.timing` — per-iteration time breakdown, Figure 12.
* :mod:`repro.experiments.bounds` — Section 5.1/5.2 bound checks.
* :mod:`repro.experiments.ablations` — extra ablations (assignment structure,
  post-vote aggregator choice) motivated by the paper's design discussion.
* :mod:`repro.experiments.paper_reference` — the numbers published in the
  paper, for side-by-side comparison in EXPERIMENTS.md and the benchmarks.
"""

from repro.experiments import paper_reference
from repro.experiments.ablations import (
    assignment_structure_ablation,
    aggregator_ablation,
)
from repro.experiments.accuracy import (
    FigureSpec,
    RunSpec,
    figure_spec,
    available_figures,
    run_accuracy_figure,
)
from repro.experiments.bounds import bound_tightness_table, claim2_verification_table
from repro.experiments.report import format_rows, rows_to_csv
from repro.experiments.tables import (
    generate_table3,
    generate_table4,
    generate_table5,
    generate_table6,
    generate_distortion_table,
)
from repro.experiments.timing import generate_figure12

__all__ = [
    "generate_table3",
    "generate_table4",
    "generate_table5",
    "generate_table6",
    "generate_distortion_table",
    "FigureSpec",
    "RunSpec",
    "figure_spec",
    "available_figures",
    "run_accuracy_figure",
    "generate_figure12",
    "bound_tightness_table",
    "claim2_verification_table",
    "assignment_structure_ablation",
    "aggregator_ablation",
    "format_rows",
    "rows_to_csv",
    "paper_reference",
]
