"""Distortion-fraction tables (paper Tables 3–6).

Each generator builds the table's cluster configuration, runs the worst-case
distortion search for every ``q`` of the paper's row range and emits rows in
the paper's column layout (``q``, ``c_max``, ``ε̂`` for ByzShield / baseline /
FRC, and the expansion bound ``γ``).
"""

from __future__ import annotations

from typing import Iterable

from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.core.distortion import distortion_comparison_table
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = [
    "generate_distortion_table",
    "generate_table3",
    "generate_table4",
    "generate_table5",
    "generate_table6",
]


def generate_distortion_table(
    assignment: BipartiteAssignment,
    q_values: Iterable[int],
    method: str = "auto",
    exhaustive_limit: int = 2_000_000,
    seed: int = 0,
) -> list[dict[str, float]]:
    """Distortion-comparison rows for an arbitrary assignment graph."""
    return distortion_comparison_table(
        assignment,
        list(q_values),
        method=method,
        exhaustive_limit=exhaustive_limit,
        seed=seed,
    )


def generate_table3(method: str = "exhaustive") -> list[dict[str, float]]:
    """Table 3: MOLS ``(K, f, l, r) = (15, 25, 5, 3)``, ``q = 2..7``.

    The search space ``C(15, q)`` is tiny, so the default is exhaustive and
    the values are exact.
    """
    assignment = MOLSAssignment(load=5, replication=3).assignment
    return generate_distortion_table(assignment, range(2, 8), method=method)


def generate_table4(
    method: str = "auto", exhaustive_limit: int = 6_000_000
) -> list[dict[str, float]]:
    """Table 4: Ramanujan Case 2 ``(K, f, l, r) = (25, 25, 5, 5)``, ``q = 3..12``.

    With the default ``exhaustive_limit`` every row is exhaustive (the largest
    space is ``C(25, 12) ≈ 5.2M`` candidate sets); pass ``method="local_search"``
    for a faster heuristic run.
    """
    assignment = RamanujanAssignment(m=5, s=5).assignment
    return generate_distortion_table(
        assignment, range(3, 13), method=method, exhaustive_limit=exhaustive_limit
    )


def generate_table5(
    max_q: int = 13, method: str = "auto", exhaustive_limit: int = 2_000_000
) -> list[dict[str, float]]:
    """Table 5: MOLS ``(K, f, l, r) = (35, 49, 7, 5)``, ``q = 3..max_q``.

    The paper stops at ``q = 13`` because exhaustive search becomes
    intractable; with the default limit small ``q`` rows are exact and the
    larger ones use the greedy + local-search heuristic.
    """
    if not (3 <= max_q <= 35):
        raise ConfigurationError(f"max_q must be in [3, 35], got {max_q}")
    assignment = MOLSAssignment(load=7, replication=5).assignment
    return generate_distortion_table(
        assignment, range(3, max_q + 1), method=method, exhaustive_limit=exhaustive_limit
    )


def generate_table6(
    method: str = "auto", exhaustive_limit: int = 2_000_000
) -> list[dict[str, float]]:
    """Table 6: MOLS ``(K, f, l, r) = (21, 49, 7, 3)``, ``q = 2..10``."""
    assignment = MOLSAssignment(load=7, replication=3).assignment
    return generate_distortion_table(
        assignment, range(2, 11), method=method, exhaustive_limit=exhaustive_limit
    )
