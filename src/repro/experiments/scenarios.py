"""Scenario-matrix experiment: robustness under faults, at a glance.

Runs (a subset of) the golden scenario catalog and condenses each run into
one summary row — final accuracy, realized distortion, adversary budget,
fault counts and simulated time — the same row shape the other experiment
tables use, so the CLI and the report renderer work unchanged.  This is the
"as many scenarios as you can imagine" table: it shows in one screen how the
redundancy schemes behave across attacks, schedules, stragglers, churn,
corruption and compression.

The rows are produced through the campaign engine's
:func:`~repro.campaigns.executor.run_specs`, so ``processes > 1`` fans the
catalog out across worker processes with bit-identical results
(``repro ablation scenarios --processes 4``).
"""

from __future__ import annotations

from repro.campaigns.executor import run_specs
from repro.scenarios.catalog import get_scenario, scenario_names

__all__ = ["scenario_matrix_table"]


def scenario_matrix_table(
    names: "list[str] | None" = None, processes: int = 0
) -> list[dict[str, object]]:
    """One summary row per scenario (default: the whole catalog).

    ``processes`` selects the worker-process count (``<= 1`` = serial); the
    rows are identical either way, in catalog order.
    """
    specs = [get_scenario(name) for name in (names if names is not None else scenario_names())]
    rows: list[dict[str, object]] = []
    for record in run_specs(specs, processes=processes):
        row = dict(record.summary)
        row.pop("final_params_digest", None)  # digests belong to traces
        rows.append(row)
    return rows
