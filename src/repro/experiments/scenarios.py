"""Scenario-matrix experiment: robustness under faults, at a glance.

Runs (a subset of) the golden scenario catalog and condenses each run into
one summary row — final accuracy, realized distortion, adversary budget,
fault counts and simulated time — the same row shape the other experiment
tables use, so the CLI and the report renderer work unchanged.  This is the
"as many scenarios as you can imagine" table: it shows in one screen how the
redundancy schemes behave across attacks, schedules, stragglers, churn,
corruption and compression.
"""

from __future__ import annotations

from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.runner import run_scenario

__all__ = ["scenario_matrix_table"]


def scenario_matrix_table(names: "list[str] | None" = None) -> list[dict[str, object]]:
    """One summary row per scenario (default: the whole catalog)."""
    rows: list[dict[str, object]] = []
    for name in names if names is not None else scenario_names():
        result = run_scenario(get_scenario(name))
        row = result.summary()
        row.pop("final_params_digest", None)  # digests belong to traces
        rows.append(row)
    return rows
