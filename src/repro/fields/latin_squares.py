"""Latin squares and mutually orthogonal families (MOLS).

Implements paper Section 4.1.1: a Latin square of degree ``l`` is an
``l x l`` array over ``l`` symbols in which every symbol appears exactly once
in each row and each column.  Two squares are *orthogonal* when superimposing
them produces every ordered symbol pair exactly once.  For prime ``l`` the
family ``L_alpha(i, j) = alpha*i + j (mod l)``, ``alpha = 1..l-1``, is a
maximal set of ``l - 1`` MOLS, which is exactly the construction the paper
uses for its worker-file assignment (Algorithm 2, Table 1).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.fields.prime_field import PrimeField
from repro.utils.validation import check_positive_int, check_prime

__all__ = ["LatinSquare", "are_orthogonal", "mols_family", "is_latin_square"]


def is_latin_square(grid: np.ndarray) -> bool:
    """Return True if ``grid`` is a Latin square over symbols {0..l-1}."""
    grid = np.asarray(grid)
    if grid.ndim != 2 or grid.shape[0] != grid.shape[1]:
        return False
    l = grid.shape[0]
    expected = np.arange(l)
    for axis in (0, 1):
        lines = grid if axis == 0 else grid.T
        for line in lines:
            if not np.array_equal(np.sort(line), expected):
                return False
    return True


@dataclass(frozen=True)
class LatinSquare:
    """An immutable Latin square of degree ``l``.

    Attributes
    ----------
    grid:
        The ``l x l`` integer array; ``grid[i, j]`` is the symbol in cell
        ``(i, j)``.
    alpha:
        If the square came from the linear construction
        ``L_alpha(i, j) = alpha*i + j``, the multiplier ``alpha``;
        ``None`` for arbitrary squares.
    """

    grid: np.ndarray
    alpha: int | None = None

    def __post_init__(self) -> None:
        grid = np.asarray(self.grid, dtype=np.int64)
        object.__setattr__(self, "grid", grid)
        if not is_latin_square(grid):
            raise ConfigurationError("the provided grid is not a Latin square")

    # -- properties --------------------------------------------------------
    @property
    def degree(self) -> int:
        """Degree ``l`` of the square (number of rows = columns = symbols)."""
        return int(self.grid.shape[0])

    def __getitem__(self, idx: tuple[int, int]) -> int:
        return int(self.grid[idx])

    def symbol_cells(self, symbol: int) -> list[tuple[int, int]]:
        """All cells ``(i, j)`` whose entry equals ``symbol``.

        The MOLS assignment (Algorithm 2, line 5) gives worker ``U_{kl+s}``
        exactly the files located at the cells of symbol ``s`` in square
        ``L_{k+1}``; there are always exactly ``l`` such cells.
        """
        if not (0 <= symbol < self.degree):
            raise ConfigurationError(
                f"symbol must be in [0, {self.degree}), got {symbol}"
            )
        rows, cols = np.nonzero(self.grid == symbol)
        return [(int(i), int(j)) for i, j in zip(rows, cols)]

    @classmethod
    def from_linear(cls, l: int, alpha: int) -> "LatinSquare":
        """Construct ``L_alpha(i, j) = alpha*i + j (mod l)`` for prime ``l``.

        Parameters
        ----------
        l:
            Prime degree of the square.
        alpha:
            Non-zero multiplier in GF(l).
        """
        check_prime(l, "Latin square degree l")
        field_ = PrimeField(l)
        alpha = int(field_.element(alpha))
        if alpha == 0:
            raise ConfigurationError("alpha must be non-zero in GF(l)")
        i = np.arange(l, dtype=np.int64)[:, None]
        j = np.arange(l, dtype=np.int64)[None, :]
        grid = np.mod(alpha * i + j, l)
        return cls(grid=grid, alpha=alpha)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"LatinSquare(degree={self.degree}, alpha={self.alpha})"


def are_orthogonal(a: LatinSquare, b: LatinSquare) -> bool:
    """Return True if two Latin squares of equal degree are orthogonal.

    Orthogonality (paper Definition 2) means that the ``l**2`` ordered pairs
    ``(a[i, j], b[i, j])`` are all distinct.
    """
    if a.degree != b.degree:
        raise ConfigurationError(
            f"cannot compare squares of degree {a.degree} and {b.degree}"
        )
    l = a.degree
    pairs = a.grid.astype(np.int64) * l + b.grid.astype(np.int64)
    return np.unique(pairs).size == l * l


def mols_family(l: int, count: int) -> list[LatinSquare]:
    """Construct ``count`` mutually orthogonal Latin squares of prime degree ``l``.

    The family is ``L_1, L_2, ..., L_count`` with
    ``L_alpha(i, j) = alpha*i + j (mod l)``.  At most ``l - 1`` MOLS of degree
    ``l`` exist, so ``count`` must satisfy ``1 <= count <= l - 1``.

    Returns
    -------
    list[LatinSquare]
        The squares in order of increasing ``alpha``.
    """
    check_prime(l, "MOLS degree l")
    check_positive_int(count, "count")
    if count > l - 1:
        raise ConfigurationError(
            f"at most l-1={l - 1} MOLS of degree {l} exist, requested {count}"
        )
    return [LatinSquare.from_linear(l, alpha) for alpha in range(1, count + 1)]
