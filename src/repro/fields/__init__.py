"""Finite-field arithmetic and Latin-square combinatorics.

These are the combinatorial building blocks of ByzShield's MOLS task
assignment (paper Section 4.1): a prime field :class:`PrimeField`, Latin
squares built from the linear maps ``L_alpha(i, j) = alpha * i + j`` over that
field, and families of mutually orthogonal Latin squares (MOLS).
"""

from repro.fields.latin_squares import (
    LatinSquare,
    are_orthogonal,
    mols_family,
    is_latin_square,
)
from repro.fields.prime_field import PrimeField

__all__ = [
    "PrimeField",
    "LatinSquare",
    "are_orthogonal",
    "mols_family",
    "is_latin_square",
]
