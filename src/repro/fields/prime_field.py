"""Arithmetic in the prime field GF(p).

The MOLS construction of the paper (Section 4.1.1) requires a finite field of
size ``l``.  The standard construction ``L_alpha(i, j) = alpha*i + j`` works
over any finite field; this module implements prime fields, which cover every
configuration used in the paper's evaluation (``l`` = 5 and 7) and any other
prime computational load.  Elements are represented as integers in
``[0, p)`` and operations are vectorized over numpy arrays.
"""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.utils.validation import check_prime

__all__ = ["PrimeField"]


class PrimeField:
    """The finite field GF(p) for a prime ``p``.

    All operations accept Python ints or numpy integer arrays and return
    values reduced modulo ``p``.

    Parameters
    ----------
    p:
        A prime number; validated at construction.
    """

    def __init__(self, p: int) -> None:
        self.p = check_prime(p, "field order p")

    # -- basic operations -------------------------------------------------
    def element(self, value: int | np.ndarray) -> np.ndarray | int:
        """Reduce ``value`` into the canonical range [0, p)."""
        return np.mod(value, self.p)

    def add(self, a, b):
        """Field addition a + b (mod p)."""
        return np.mod(np.add(a, b), self.p)

    def sub(self, a, b):
        """Field subtraction a - b (mod p)."""
        return np.mod(np.subtract(a, b), self.p)

    def mul(self, a, b):
        """Field multiplication a * b (mod p)."""
        return np.mod(np.multiply(a, b), self.p)

    def neg(self, a):
        """Additive inverse -a (mod p)."""
        return np.mod(np.negative(a), self.p)

    def pow(self, a, exponent: int):
        """Field exponentiation a ** exponent (mod p) for scalar base."""
        if np.ndim(a) == 0:
            return pow(int(a) % self.p, int(exponent), self.p)
        result = np.ones_like(np.asarray(a))
        base = np.mod(np.asarray(a), self.p)
        e = int(exponent)
        if e < 0:
            base = self.inv(base)
            e = -e
        while e:
            if e & 1:
                result = self.mul(result, base)
            base = self.mul(base, base)
            e >>= 1
        return result

    def inv(self, a):
        """Multiplicative inverse a**(-1) (mod p); errors on zero."""
        arr = np.asarray(a)
        if np.any(np.mod(arr, self.p) == 0):
            raise ZeroDivisionError("zero has no multiplicative inverse in GF(p)")
        if arr.ndim == 0:
            return pow(int(arr) % self.p, self.p - 2, self.p)
        flat = np.array(
            [pow(int(x) % self.p, self.p - 2, self.p) for x in arr.ravel()],
            dtype=arr.dtype,
        )
        return flat.reshape(arr.shape)

    def div(self, a, b):
        """Field division a / b (mod p)."""
        return self.mul(a, self.inv(b))

    # -- linear algebra over GF(p) ----------------------------------------
    def solve_linear_2x2(
        self, a: int, b: int, c: int, d: int, s: int, t: int
    ) -> tuple[int, int]:
        """Solve ``a*i + b*j = s``, ``c*i + d*j = t`` over GF(p).

        Used to prove / test MOLS orthogonality: for the Latin squares
        ``L_alpha`` and ``L_beta`` (``alpha != beta``) the system has a unique
        solution, which is the unique common cell holding the symbol pair.

        Raises
        ------
        ConfigurationError
            If the determinant ``a*d - b*c`` is zero in GF(p).
        """
        det = self.sub(self.mul(a, d), self.mul(b, c))
        if int(det) % self.p == 0:
            raise ConfigurationError(
                "singular 2x2 system over GF(p): determinant is zero"
            )
        det_inv = self.inv(det)
        i = self.mul(det_inv, self.sub(self.mul(d, s), self.mul(b, t)))
        j = self.mul(det_inv, self.sub(self.mul(a, t), self.mul(c, s)))
        return int(i), int(j)

    def elements(self) -> np.ndarray:
        """Return all field elements ``[0, 1, ..., p-1]``."""
        return np.arange(self.p, dtype=np.int64)

    # -- dunder -----------------------------------------------------------
    def __len__(self) -> int:
        return self.p

    def __contains__(self, value: int) -> bool:
        return 0 <= int(value) < self.p

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"PrimeField(p={self.p})"

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))
