"""Bipartite assignment graphs, spectra and expansion bounds.

The worker-to-file assignment of ByzShield is a biregular bipartite graph
``G = (U ∪ F, E)`` with ``K`` workers on the left and ``f`` files on the
right.  This package provides the graph data structure
(:class:`BipartiteAssignment`), spectral analysis of the normalized
bi-adjacency matrix (paper Section 3) and the expansion-based distortion
bounds of Lemma 1 / Claim 1 (paper Section 5.1).
"""

from repro.graphs.bipartite import BipartiteAssignment
from repro.graphs.expansion import (
    neighborhood_lower_bound,
    gamma_upper_bound,
    distortion_fraction_upper_bound,
    mols_epsilon_upper_bound,
    ramanujan_case2_epsilon_upper_bound,
)
from repro.graphs.spectral import (
    normalized_biadjacency,
    gram_spectrum,
    second_eigenvalue,
    spectral_gap,
    theoretical_mols_spectrum,
    theoretical_ramanujan_case2_spectrum,
)

__all__ = [
    "BipartiteAssignment",
    "normalized_biadjacency",
    "gram_spectrum",
    "second_eigenvalue",
    "spectral_gap",
    "theoretical_mols_spectrum",
    "theoretical_ramanujan_case2_spectrum",
    "neighborhood_lower_bound",
    "gamma_upper_bound",
    "distortion_fraction_upper_bound",
    "mols_epsilon_upper_bound",
    "ramanujan_case2_epsilon_upper_bound",
]
