"""The worker-to-file bipartite assignment graph.

:class:`BipartiteAssignment` is the central data structure of the library:
every task-assignment scheme (MOLS, Ramanujan, FRC, random, baseline) produces
one, and every downstream component — the cluster simulator, the distortion
analysis and the majority-vote pipeline — consumes it.

The graph is stored as a dense zero-one bi-adjacency matrix ``H`` of shape
``(K, f)`` where ``H[j, i] = 1`` iff worker ``U_j`` is assigned file ``B_i``
(paper Eq. (4), with rows = workers and columns = files).
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

import numpy as np

from repro.exceptions import AssignmentError, ConfigurationError

__all__ = ["BipartiteAssignment"]


class BipartiteAssignment:
    """Biregular bipartite worker/file assignment graph.

    Parameters
    ----------
    biadjacency:
        Zero-one matrix of shape ``(num_workers, num_files)``.
    name:
        Human-readable label of the generating scheme (e.g. ``"mols(l=5,r=3)"``).
    validate_biregular:
        If True (default) the constructor checks that all workers have the
        same degree ``l`` (computational load) and all files the same degree
        ``r`` (replication factor), which every scheme in the paper satisfies.
    """

    def __init__(
        self,
        biadjacency: np.ndarray,
        name: str = "custom",
        validate_biregular: bool = True,
    ) -> None:
        H = np.asarray(biadjacency)
        if H.ndim != 2:
            raise ConfigurationError(
                f"biadjacency must be a 2-D matrix, got ndim={H.ndim}"
            )
        if H.size == 0:
            raise ConfigurationError("biadjacency must be non-empty")
        unique_vals = np.unique(H)
        if not np.all(np.isin(unique_vals, (0, 1))):
            raise ConfigurationError("biadjacency entries must be 0 or 1")
        self._H = H.astype(np.int8)
        self.name = str(name)

        worker_degrees = self._H.sum(axis=1)
        file_degrees = self._H.sum(axis=0)
        if np.any(worker_degrees == 0):
            raise AssignmentError("every worker must be assigned at least one file")
        if np.any(file_degrees == 0):
            raise AssignmentError("every file must be assigned to at least one worker")
        if validate_biregular:
            if np.unique(worker_degrees).size != 1:
                raise AssignmentError(
                    "assignment is not left-regular: worker degrees "
                    f"{sorted(set(int(d) for d in worker_degrees))}"
                )
            if np.unique(file_degrees).size != 1:
                raise AssignmentError(
                    "assignment is not right-regular: file degrees "
                    f"{sorted(set(int(d) for d in file_degrees))}"
                )
        self._worker_degrees = worker_degrees.astype(np.int64)
        self._file_degrees = file_degrees.astype(np.int64)

        # Neighborhood caches as tuples for cheap repeated lookups.
        self._files_of_worker: list[tuple[int, ...]] = [
            tuple(int(i) for i in np.nonzero(self._H[j])[0])
            for j in range(self.num_workers)
        ]
        self._workers_of_file: list[tuple[int, ...]] = [
            tuple(int(j) for j in np.nonzero(self._H[:, i])[0])
            for i in range(self.num_files)
        ]
        self._worker_slot_matrix: np.ndarray | None = None

    # -- alternative constructors ------------------------------------------
    @classmethod
    def from_worker_files(
        cls,
        worker_files: Sequence[Iterable[int]] | Mapping[int, Iterable[int]],
        num_files: int | None = None,
        name: str = "custom",
        validate_biregular: bool = True,
    ) -> "BipartiteAssignment":
        """Build the graph from a per-worker list of file indices.

        ``worker_files[j]`` is the collection of files stored by worker ``j``
        (paper notation ``N(U_j)``); this mirrors Tables 2(a)–(c).
        """
        if isinstance(worker_files, Mapping):
            keys = sorted(worker_files)
            if keys != list(range(len(keys))):
                raise ConfigurationError(
                    "worker_files mapping keys must be 0..K-1 without gaps"
                )
            rows = [list(worker_files[k]) for k in keys]
        else:
            rows = [list(files) for files in worker_files]
        if len(rows) == 0:
            raise ConfigurationError("worker_files must contain at least one worker")
        max_file = max((max(r) for r in rows if r), default=-1)
        f = int(num_files) if num_files is not None else max_file + 1
        H = np.zeros((len(rows), f), dtype=np.int8)
        for j, files in enumerate(rows):
            for i in files:
                if not (0 <= i < f):
                    raise ConfigurationError(
                        f"file index {i} out of range [0, {f}) for worker {j}"
                    )
                if H[j, i]:
                    raise AssignmentError(
                        f"worker {j} lists file {i} more than once"
                    )
                H[j, i] = 1
        return cls(H, name=name, validate_biregular=validate_biregular)

    # -- basic properties ----------------------------------------------------
    @property
    def biadjacency(self) -> np.ndarray:
        """A copy of the zero-one bi-adjacency matrix ``H`` (K x f)."""
        return self._H.copy()

    @property
    def num_workers(self) -> int:
        """Number of workers ``K`` (left vertices)."""
        return int(self._H.shape[0])

    @property
    def num_files(self) -> int:
        """Number of files ``f`` (right vertices)."""
        return int(self._H.shape[1])

    @property
    def num_edges(self) -> int:
        """Total number of assignment edges ``|E| = K*l = f*r``."""
        return int(self._H.sum())

    @property
    def computational_load(self) -> int:
        """Per-worker load ``l`` (files per worker); requires left-regularity."""
        degrees = np.unique(self._worker_degrees)
        if degrees.size != 1:
            raise AssignmentError("graph is not left-regular; load is undefined")
        return int(degrees[0])

    @property
    def replication(self) -> int:
        """Replication factor ``r`` (workers per file); requires right-regularity."""
        degrees = np.unique(self._file_degrees)
        if degrees.size != 1:
            raise AssignmentError("graph is not right-regular; replication is undefined")
        return int(degrees[0])

    @property
    def worker_degrees(self) -> np.ndarray:
        """Per-worker degrees (number of files each worker stores)."""
        return self._worker_degrees.copy()

    @property
    def file_degrees(self) -> np.ndarray:
        """Per-file degrees (number of workers holding each file)."""
        return self._file_degrees.copy()

    # -- neighborhoods ------------------------------------------------------
    def files_of_worker(self, worker: int) -> tuple[int, ...]:
        """Files assigned to ``worker`` — the paper's ``N(U_j)``."""
        self._check_worker(worker)
        return self._files_of_worker[worker]

    def workers_of_file(self, file: int) -> tuple[int, ...]:
        """Workers holding ``file`` — the paper's ``N(B_{t,i})``."""
        self._check_file(file)
        return self._workers_of_file[file]

    def files_of_workers(self, workers: Iterable[int]) -> set[int]:
        """Union of files stored by a set of workers, ``N(S)``."""
        out: set[int] = set()
        for w in workers:
            out.update(self.files_of_worker(w))
        return out

    def file_copy_counts(self, workers: Iterable[int]) -> np.ndarray:
        """For each file, the number of copies held inside ``workers``.

        This is the multiset-sum view used by the distortion analysis: a file
        is corrupted by the majority vote exactly when its count here reaches
        ``r' = (r + 1) / 2``.
        """
        idx = np.fromiter((int(w) for w in workers), dtype=np.int64)
        if idx.size == 0:
            return np.zeros(self.num_files, dtype=np.int64)
        if np.any(idx < 0) or np.any(idx >= self.num_workers):
            raise ConfigurationError("worker index out of range")
        if np.unique(idx).size != idx.size:
            raise ConfigurationError("worker set contains duplicates")
        return self._H[idx].sum(axis=0).astype(np.int64)

    def worker_slot_matrix(self) -> np.ndarray:
        """The ``(f, r)`` matrix whose row ``i`` lists ``workers_of_file(i)``.

        Rows are in ascending worker order — the slot layout of the
        :class:`~repro.core.vote_tensor.VoteTensor` round representation.
        Requires right-regularity; the result is cached and read-only.
        """
        if self._worker_slot_matrix is None:
            r = self.replication  # raises AssignmentError if not right-regular
            matrix = np.empty((self.num_files, r), dtype=np.int64)
            for i, workers in enumerate(self._workers_of_file):
                matrix[i] = workers
            matrix.setflags(write=False)
            self._worker_slot_matrix = matrix
        return self._worker_slot_matrix

    def shared_files(self, worker_a: int, worker_b: int) -> set[int]:
        """Files stored by both workers (intersection of their neighborhoods)."""
        return set(self.files_of_worker(worker_a)) & set(self.files_of_worker(worker_b))

    # -- conversions ----------------------------------------------------------
    def to_networkx(self):
        """Export as a :class:`networkx.Graph` with a ``bipartite`` attribute.

        Workers are the nodes ``("w", j)`` and files ``("f", i)``.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from((("w", j) for j in range(self.num_workers)), bipartite=0)
        g.add_nodes_from((("f", i) for i in range(self.num_files)), bipartite=1)
        rows, cols = np.nonzero(self._H)
        g.add_edges_from((("w", int(j)), ("f", int(i))) for j, i in zip(rows, cols))
        return g

    def worker_file_table(self) -> list[tuple[int, tuple[int, ...]]]:
        """Return ``[(worker, files), ...]`` rows matching the paper's Table 2."""
        return [(j, self._files_of_worker[j]) for j in range(self.num_workers)]

    # -- internals ------------------------------------------------------------
    def _check_worker(self, worker: int) -> None:
        if not (0 <= int(worker) < self.num_workers):
            raise ConfigurationError(
                f"worker index {worker} out of range [0, {self.num_workers})"
            )

    def _check_file(self, file: int) -> None:
        if not (0 <= int(file) < self.num_files):
            raise ConfigurationError(
                f"file index {file} out of range [0, {self.num_files})"
            )

    def __eq__(self, other: object) -> bool:
        return isinstance(other, BipartiteAssignment) and np.array_equal(
            self._H, other._H
        )

    def __hash__(self) -> int:
        return hash((self._H.shape, self._H.tobytes()))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"BipartiteAssignment(name={self.name!r}, K={self.num_workers}, "
            f"f={self.num_files}, edges={self.num_edges})"
        )
