"""Spectral analysis of assignment graphs (paper Section 3 and Lemma 2).

For a biregular bipartite graph with bi-adjacency ``H`` (workers x files),
left degree ``dL = l`` and right degree ``dR = r``, the normalized matrix is
``A = H / sqrt(dL * dR)``.  The eigenvalues of ``A Aᵀ`` lie in ``[0, 1]`` with
top eigenvalue exactly 1; the second eigenvalue ``µ₁`` controls the expansion
of the graph via Lemma 1 and therefore the adversary's distortion power.

The paper's Lemma 2 gives closed forms for the constructions used:

* MOLS and Ramanujan Case 1: spectrum ``{(1, 1), (1/r, r(l-1)), (0, r-1)}``;
* Ramanujan Case 2: spectrum ``{(1, 1), (1/r, r(r-1)), (0, r-1)}``.

This module computes the spectrum numerically for arbitrary assignments and
provides the closed forms for cross-checking.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import DEFAULT_DTYPE
from repro.exceptions import AssignmentError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = [
    "normalized_biadjacency",
    "gram_spectrum",
    "second_eigenvalue",
    "spectral_gap",
    "theoretical_mols_spectrum",
    "theoretical_ramanujan_case2_spectrum",
]


def normalized_biadjacency(assignment: BipartiteAssignment) -> np.ndarray:
    """Return ``A = H / sqrt(dL * dR)`` for a biregular assignment."""
    dl = assignment.computational_load
    dr = assignment.replication
    return assignment.biadjacency.astype(DEFAULT_DTYPE) / np.sqrt(dl * dr)


def gram_spectrum(assignment: BipartiteAssignment) -> np.ndarray:
    """Eigenvalues of ``A Aᵀ`` in decreasing order.

    ``A Aᵀ`` is a ``K x K`` symmetric positive semi-definite matrix, so the
    eigenvalues are real and non-negative; the top one equals 1 for a
    connected biregular graph.
    """
    A = normalized_biadjacency(assignment)
    gram = A @ A.T
    eigenvalues = np.linalg.eigvalsh(gram)
    # eigvalsh returns ascending order; clip the tiny numerical noise outside
    # the theoretical range [0, 1] of a normalized biregular graph.
    eigenvalues = np.clip(eigenvalues[::-1], 0.0, 1.0)
    return eigenvalues


def second_eigenvalue(assignment: BipartiteAssignment) -> float:
    """The second largest eigenvalue ``µ₁`` of ``A Aᵀ``.

    This is the quantity plugged into the expansion bound (Lemma 1).  For the
    paper's constructions it equals ``1/r``.
    """
    eigenvalues = gram_spectrum(assignment)
    if eigenvalues.size < 2:
        raise AssignmentError(
            "the assignment has a single worker; µ₁ is undefined"
        )
    return float(eigenvalues[1])


def spectral_gap(assignment: BipartiteAssignment) -> float:
    """Gap between the trivial eigenvalue (1) and ``µ₁``; larger is better."""
    return 1.0 - second_eigenvalue(assignment)


def theoretical_mols_spectrum(l: int, r: int) -> list[tuple[float, int]]:
    """Closed-form spectrum of ``(A Aᵀ)`` for MOLS / Ramanujan Case 1.

    Returns ``[(eigenvalue, multiplicity), ...]`` sorted by decreasing
    eigenvalue: ``{(1, 1), (1/r, r(l-1)), (0, r-1)}`` (paper Lemma 2).
    """
    return [(1.0, 1), (1.0 / r, r * (l - 1)), (0.0, r - 1)]


def theoretical_ramanujan_case2_spectrum(r: int) -> list[tuple[float, int]]:
    """Closed-form spectrum of ``(A Aᵀ)`` for Ramanujan Case 2 (``K = r²``).

    ``{(1, 1), (1/r, r(r-1)), (0, r-1)}`` per paper Lemma 2.
    """
    return [(1.0, 1), (1.0 / r, r * (r - 1)), (0.0, r - 1)]


def spectrum_matches(
    observed: np.ndarray,
    expected: list[tuple[float, int]],
    atol: float = 1e-8,
) -> bool:
    """Check that an observed eigenvalue array matches a (value, multiplicity) spec."""
    expanded = np.concatenate(
        [np.full(mult, value, dtype=DEFAULT_DTYPE) for value, mult in expected]
    )
    expanded = np.sort(expanded)[::-1]
    observed = np.sort(np.asarray(observed, dtype=DEFAULT_DTYPE))[::-1]
    if observed.size != expanded.size:
        return False
    return bool(np.allclose(observed, expanded, atol=atol))
