"""Expansion-based bounds on the adversary's distortion power.

Implements the chain of results in paper Sections 3 and 5.1:

* **Lemma 1** (Zhu & Chugg): for a subset ``S`` of workers,
  ``vol(N(S)) / vol(S) >= 1 / (µ₁ + (1 - µ₁) * vol(S) / |E|)``.
* **Eq. (5)**: with ``vol(S) = q*l`` this lower-bounds the number of files
  ``|N(S)| >= β`` processed collectively by ``q`` Byzantine workers.
* **Claim 1**: the number of files whose majority can be corrupted is at most
  ``γ = (q*l − β) / (r' − 1)`` with ``r' = (r+1)/2``.
* **Section 5.1.1 / 5.1.2**: closed-form upper bounds on the distortion
  fraction ``ε̂ = c_max / f`` for the MOLS and Ramanujan Case 2 schemes.
"""

from __future__ import annotations


from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.graphs.spectral import second_eigenvalue

__all__ = [
    "neighborhood_lower_bound",
    "gamma_upper_bound",
    "distortion_fraction_upper_bound",
    "mols_epsilon_upper_bound",
    "ramanujan_case2_epsilon_upper_bound",
]


def neighborhood_lower_bound(
    num_byzantine: int,
    load: int,
    replication: int,
    num_workers: int,
    mu1: float,
) -> float:
    """Lower bound ``β`` on ``|N(S)|`` for any set of ``q`` workers (Eq. (5)).

    Parameters
    ----------
    num_byzantine:
        Size ``q`` of the Byzantine worker set ``S``.
    load:
        Per-worker computational load ``l`` (files per worker).
    replication:
        Replication factor ``r`` (workers per file).
    num_workers:
        Total number of workers ``K``.
    mu1:
        Second eigenvalue of ``A Aᵀ`` of the assignment graph.
    """
    q = int(num_byzantine)
    if q < 0:
        raise ConfigurationError(f"q must be non-negative, got {q}")
    if q == 0:
        return 0.0
    if not (0.0 <= mu1 <= 1.0):
        raise ConfigurationError(f"µ₁ must lie in [0, 1], got {mu1}")
    # vol(S) = q*l and |E| = K*l, so vol(S)/|E| = q/K.
    denominator = mu1 + (1.0 - mu1) * (q / num_workers)
    return (q * load / replication) / denominator


def gamma_upper_bound(
    num_byzantine: int,
    load: int,
    replication: int,
    num_workers: int,
    mu1: float,
) -> float:
    """Claim 1 upper bound ``γ`` on the number of distorted files.

    ``γ = (q*l − β) / (r' − 1)`` where ``r' = (r + 1) / 2``; requires an odd
    replication factor so that the majority threshold is well defined.
    """
    q = int(num_byzantine)
    r = int(replication)
    if r < 3 or r % 2 == 0:
        raise ConfigurationError(
            f"replication must be an odd integer >= 3 for majority voting, got {r}"
        )
    if q == 0:
        return 0.0
    beta = neighborhood_lower_bound(q, load, r, num_workers, mu1)
    r_prime = (r + 1) // 2
    return (q * load - beta) / (r_prime - 1)


def distortion_fraction_upper_bound(
    assignment: BipartiteAssignment, num_byzantine: int, mu1: float | None = None
) -> float:
    """Upper bound on ``ε̂ = c_max / f`` for an arbitrary biregular assignment.

    Uses the numerically computed ``µ₁`` of the graph unless one is supplied
    (the paper's constructions have ``µ₁ = 1/r`` exactly).
    """
    if mu1 is None:
        mu1 = second_eigenvalue(assignment)
    gamma = gamma_upper_bound(
        num_byzantine,
        assignment.computational_load,
        assignment.replication,
        assignment.num_workers,
        mu1,
    )
    return float(gamma) / assignment.num_files


def mols_epsilon_upper_bound(q: int, l: int, r: int) -> float:
    """Closed-form bound of Section 5.1.1 for the MOLS / Ramanujan Case 1 scheme.

    ``ε̂ <= (2 q² / (r l²)) / (1 + (r − 1) q / (r l))``, obtained by plugging
    ``µ₁ = 1/r``, ``K = r l`` and ``f = l²`` into γ / f.
    """
    if q == 0:
        return 0.0
    if q < 0:
        raise ConfigurationError(f"q must be non-negative, got {q}")
    numerator = 2.0 * q * q / (r * l * l)
    denominator = 1.0 + (r - 1.0) * q / (r * l)
    return numerator / denominator


def ramanujan_case2_epsilon_upper_bound(q: int, r: int) -> float:
    """Closed-form bound of Section 5.1.2 for Ramanujan Case 2 (``K = r²``, ``f = r l``).

    ``ε̂ <= (2 q² / r²) / (r + (r − 1) q / r)``.
    """
    if q == 0:
        return 0.0
    if q < 0:
        raise ConfigurationError(f"q must be non-negative, got {q}")
    numerator = 2.0 * q * q / (r * r)
    denominator = r + (r - 1.0) * q / r
    return numerator / denominator
