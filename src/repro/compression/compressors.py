"""Gradient compression operators.

Each compressor maps a flat gradient to a :class:`CompressedGradient` — the
decompressed vector plus an estimate of the number of bits that would travel
over the wire — so the cluster cost model can compare the communication cost
of compressed ByzShield against the uncompressed baseline of Figure 12.
Decompression happens eagerly (the simulator works on dense vectors); the
``bits`` field is what the communication model consumes.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

import numpy as np

from repro.core.backend import ensure_float
from repro.exceptions import ConfigurationError
from repro.utils.rng import as_generator

__all__ = [
    "CompressedGradient",
    "Compressor",
    "IdentityCompressor",
    "SignCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "QuantizedCompressor",
    "available_compressors",
    "create_compressor",
]

_FLOAT_BITS = 64
_INDEX_BITS = 32


@dataclass(frozen=True)
class CompressedGradient:
    """Result of compressing one gradient.

    Attributes
    ----------
    vector:
        The decompressed (dense) gradient the receiver reconstructs.
    bits:
        Estimated wire size of the compressed representation.
    """

    vector: np.ndarray
    bits: float

    @property
    def compression_ratio(self) -> float:
        """Uncompressed bits divided by compressed bits (>= 1 is a saving)."""
        dense_bits = self.vector.size * _FLOAT_BITS
        return dense_bits / self.bits if self.bits > 0 else float("inf")


class Compressor(abc.ABC):
    """A (possibly lossy) gradient compression operator."""

    @abc.abstractmethod
    def compress(self, gradient: np.ndarray) -> CompressedGradient:
        """Compress a flat gradient and return the reconstruction + wire size."""

    def __call__(self, gradient: np.ndarray) -> CompressedGradient:
        gradient = ensure_float(gradient).ravel()
        if gradient.size == 0:
            raise ConfigurationError("cannot compress an empty gradient")
        return self.compress(gradient)

    def compress_matrix(self, matrix: np.ndarray) -> np.ndarray:
        """Decompressed reconstructions of all rows of an ``(f, d)`` matrix.

        The default compresses row by row (preserving the RNG draw order of
        stochastic compressors); deterministic compressors override it with
        one vectorized call.  Row ``i`` of the result is bit-identical to
        ``self(matrix[i]).vector``.
        """
        matrix = self._check_matrix(matrix)
        return np.vstack([self(matrix[i]).vector for i in range(matrix.shape[0])])

    @staticmethod
    def _check_matrix(matrix: np.ndarray) -> np.ndarray:
        matrix = ensure_float(matrix)
        if matrix.ndim != 2:
            raise ConfigurationError(
                f"compress_matrix expects an (f, d) matrix, got shape {matrix.shape}"
            )
        if matrix.shape[0] == 0 or matrix.shape[1] == 0:
            raise ConfigurationError("cannot compress an empty gradient matrix")
        return matrix


class IdentityCompressor(Compressor):
    """No-op compressor (the uncompressed baseline)."""

    def compress(self, gradient: np.ndarray) -> CompressedGradient:
        return CompressedGradient(gradient.copy(), bits=gradient.size * _FLOAT_BITS)

    def compress_matrix(self, matrix: np.ndarray) -> np.ndarray:
        return self._check_matrix(matrix).copy()


class SignCompressor(Compressor):
    """1-bit sign quantization with a single per-message scale.

    The reconstruction is ``scale * sign(g)`` where ``scale`` is the mean
    absolute value of the gradient (the standard scaled-sign estimator); the
    wire cost is one bit per coordinate plus one float for the scale.
    """

    def compress(self, gradient: np.ndarray) -> CompressedGradient:
        scale = float(np.mean(np.abs(gradient)))
        vector = scale * np.sign(gradient)
        bits = gradient.size * 1 + _FLOAT_BITS
        return CompressedGradient(vector, bits=float(bits))

    def compress_matrix(self, matrix: np.ndarray) -> np.ndarray:
        matrix = self._check_matrix(matrix)
        scales = np.mean(np.abs(matrix), axis=1)
        return scales[:, None] * np.sign(matrix)


class TopKCompressor(Compressor):
    """Keep the ``k`` largest-magnitude coordinates (biased sparsification).

    Parameters
    ----------
    fraction:
        Fraction of coordinates kept, in (0, 1]; at least one coordinate is
        always transmitted.
    """

    def __init__(self, fraction: float) -> None:
        if not (0.0 < fraction <= 1.0):
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)

    def _k(self, dim: int) -> int:
        return max(1, int(round(self.fraction * dim)))

    def compress(self, gradient: np.ndarray) -> CompressedGradient:
        k = self._k(gradient.size)
        keep = np.argsort(np.abs(gradient))[-k:]
        vector = np.zeros_like(gradient)
        vector[keep] = gradient[keep]
        bits = k * (_FLOAT_BITS + _INDEX_BITS)
        return CompressedGradient(vector, bits=float(bits))

    def compress_matrix(self, matrix: np.ndarray) -> np.ndarray:
        matrix = self._check_matrix(matrix)
        k = self._k(matrix.shape[1])
        # Row-wise argsort uses the same sort as the 1-D path, so the kept
        # index sets (ties included) match the per-row calls exactly.
        keep = np.argsort(np.abs(matrix), axis=1)[:, -k:]
        rows = np.arange(matrix.shape[0])[:, None]
        out = np.zeros_like(matrix)
        out[rows, keep] = matrix[rows, keep]
        return out


class RandomKCompressor(Compressor):
    """Keep ``k`` uniformly random coordinates, rescaled to stay unbiased.

    Parameters
    ----------
    fraction:
        Fraction of coordinates kept.
    seed:
        Seed (or generator) for the coordinate selection.
    """

    def __init__(self, fraction: float, seed: int | np.random.Generator | None = 0) -> None:
        if not (0.0 < fraction <= 1.0):
            raise ConfigurationError(f"fraction must be in (0, 1], got {fraction}")
        self.fraction = float(fraction)
        self._rng = as_generator(seed)

    def compress(self, gradient: np.ndarray) -> CompressedGradient:
        dim = gradient.size
        k = max(1, int(round(self.fraction * dim)))
        keep = self._rng.choice(dim, size=k, replace=False)
        vector = np.zeros_like(gradient)
        # Rescale by dim/k so the estimator is unbiased in expectation.
        vector[keep] = gradient[keep] * (dim / k)
        bits = k * (_FLOAT_BITS + _INDEX_BITS)
        return CompressedGradient(vector, bits=float(bits))


class QuantizedCompressor(Compressor):
    """Uniform b-bit stochastic quantization of the normalized gradient (QSGD).

    Coordinates are quantized to ``2**bits_per_coordinate`` levels of
    ``|g_i| / ||g||_inf`` with stochastic rounding (unbiased), keeping the sign
    separately.

    Parameters
    ----------
    bits_per_coordinate:
        Number of bits per quantized magnitude (1–16).
    seed:
        Seed for the stochastic rounding.
    """

    def __init__(
        self, bits_per_coordinate: int = 4, seed: int | np.random.Generator | None = 0
    ) -> None:
        if not (1 <= int(bits_per_coordinate) <= 16):
            raise ConfigurationError(
                f"bits_per_coordinate must be in [1, 16], got {bits_per_coordinate}"
            )
        self.bits_per_coordinate = int(bits_per_coordinate)
        self._rng = as_generator(seed)

    def compress(self, gradient: np.ndarray) -> CompressedGradient:
        norm = float(np.max(np.abs(gradient)))
        if norm == 0.0:
            return CompressedGradient(
                np.zeros_like(gradient),
                bits=float(gradient.size * (self.bits_per_coordinate + 1) + _FLOAT_BITS),
            )
        levels = 2**self.bits_per_coordinate - 1
        scaled = np.abs(gradient) / norm * levels
        lower = np.floor(scaled)
        probability = scaled - lower
        rounded = lower + (self._rng.random(gradient.size) < probability)
        vector = np.sign(gradient) * rounded / levels * norm
        bits = gradient.size * (self.bits_per_coordinate + 1) + _FLOAT_BITS
        return CompressedGradient(vector, bits=float(bits))


_COMPRESSORS: dict[str, type[Compressor]] = {
    "identity": IdentityCompressor,
    "sign": SignCompressor,
    "topk": TopKCompressor,
    "randomk": RandomKCompressor,
    "quantized": QuantizedCompressor,
}


def available_compressors() -> list[str]:
    """Sorted names accepted by :func:`create_compressor`."""
    return sorted(_COMPRESSORS)


def create_compressor(name: str, **kwargs) -> Compressor:
    """Instantiate a compressor by (case-insensitive) name.

    Scenario specs refer to compressors by name; unknown names raise
    :class:`~repro.exceptions.ConfigurationError` listing the alternatives.
    """
    key = name.lower()
    if key not in _COMPRESSORS:
        raise ConfigurationError(
            f"unknown compressor {name!r}; available: {available_compressors()}"
        )
    return _COMPRESSORS[key](**kwargs)
