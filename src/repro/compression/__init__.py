"""Gradient compression (the paper's stated future-work direction).

The ByzShield conclusion notes that "algorithmic improvements to make it more
communication-efficient are also interesting directions for future work" —
ByzShield workers transmit ``l`` full gradients per iteration, ``l`` times the
baseline's traffic (see Figure 12).  This package implements the standard
compression operators used for that purpose and integrates them with the
cluster cost model so the communication savings can be quantified:

* :class:`SignCompressor` — 1-bit sign quantization (signSGD-style);
* :class:`TopKCompressor` — magnitude top-k sparsification;
* :class:`RandomKCompressor` — unbiased random-k sparsification;
* :class:`QuantizedCompressor` — uniform b-bit stochastic quantization (QSGD);
* :class:`ErrorFeedback` — residual accumulation wrapper restoring convergence
  for biased compressors.
"""

from repro.compression.compressors import (
    CompressedGradient,
    Compressor,
    IdentityCompressor,
    QuantizedCompressor,
    RandomKCompressor,
    SignCompressor,
    TopKCompressor,
)
from repro.compression.error_feedback import ErrorFeedback

__all__ = [
    "CompressedGradient",
    "Compressor",
    "IdentityCompressor",
    "SignCompressor",
    "TopKCompressor",
    "RandomKCompressor",
    "QuantizedCompressor",
    "ErrorFeedback",
]
