"""Error feedback (residual accumulation) for biased compressors.

Biased compressors such as sign quantization and top-k sparsification are
known to stall SGD unless the compression error is fed back into the next
message (Karimireddy et al.'s EF-SGD).  :class:`ErrorFeedback` wraps any
:class:`~repro.compression.compressors.Compressor` with a per-sender residual
buffer: the sender compresses ``gradient + residual`` and keeps whatever the
compressor dropped for the next round.
"""

from __future__ import annotations

import numpy as np

from repro.compression.compressors import CompressedGradient, Compressor
from repro.core.backend import ensure_float
from repro.exceptions import ConfigurationError

__all__ = ["ErrorFeedback"]


class ErrorFeedback:
    """Residual-accumulating wrapper around a compressor.

    Parameters
    ----------
    compressor:
        The underlying (typically biased) compression operator.
    """

    def __init__(self, compressor: Compressor) -> None:
        if not isinstance(compressor, Compressor):
            raise ConfigurationError("ErrorFeedback wraps a Compressor instance")
        self.compressor = compressor
        self._residuals: dict[object, np.ndarray] = {}

    def reset(self) -> None:
        """Drop all accumulated residuals."""
        self._residuals.clear()

    def residual(self, sender: object) -> np.ndarray | None:
        """Current residual buffer of ``sender`` (None before the first call)."""
        value = self._residuals.get(sender)
        return None if value is None else value.copy()

    def compress(self, sender: object, gradient: np.ndarray) -> CompressedGradient:
        """Compress ``gradient`` on behalf of ``sender`` with error feedback."""
        gradient = ensure_float(gradient).ravel()
        residual = self._residuals.get(sender)
        if residual is None or residual.shape != gradient.shape:
            residual = np.zeros_like(gradient)
        corrected = gradient + residual
        compressed = self.compressor(corrected)
        self._residuals[sender] = corrected - compressed.vector
        return compressed
