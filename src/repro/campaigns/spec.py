"""Declarative campaign specification and grid expansion.

A :class:`CampaignSpec` describes a *sweep*: one base scenario (inline dict
or catalog name) plus a parameter grid of dotted override paths, e.g.
``{"attack.schedule.q": [0, 2, 4], "pipeline.aggregator": ["median",
"signsgd"]}``.  Expansion takes the cartesian product of the grid axes and
materializes one concrete :class:`~repro.scenarios.spec.ScenarioSpec` per
cell, with a scenario name derived from the axis labels and a seed derived
deterministically from the campaign seed and that name — so the expansion is
a pure function of the campaign spec, independent of execution order or
process placement.

Like :class:`~repro.scenarios.spec.ScenarioSpec`, campaigns round-trip
through dicts/JSON with unknown keys rejected loudly, and hash to a stable
sha256 digest; the digest names the campaign's result directory
(``campaign_out/<digest>/``), which is what makes re-runs resumable.
"""

from __future__ import annotations

import copy
import hashlib
import itertools
import json
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.exceptions import ConfigurationError
from repro.scenarios.catalog import get_scenario
from repro.scenarios.spec import ScenarioSpec
from repro.utils.rng import derive_seed

__all__ = ["GridAxis", "CampaignScenario", "CampaignSpec"]

_SEED_POLICIES = ("derived", "fixed")


def _is_labeled_value(value: Any) -> bool:
    return isinstance(value, Mapping) and set(value) == {"label", "value"}


def _default_label(value: Any) -> str:
    """Compact display label for an unlabeled grid value."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, (int, str)):
        return str(value)
    if isinstance(value, float):
        return repr(value)
    # Dicts/lists get a short content hash; give them an explicit
    # {"label": ..., "value": ...} wrapper for readable scenario names.
    canonical = json.dumps(value, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:8]


@dataclass(frozen=True)
class GridAxis:
    """One swept parameter: a dotted path into the scenario dict + values.

    ``labels`` name the values inside expanded scenario names; they default
    to a compact rendering of the value and can be given explicitly by
    writing a grid value as ``{"label": "...", "value": ...}``.
    """

    path: str
    values: tuple[Any, ...]
    labels: tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.path or any(not part for part in self.path.split(".")):
            raise ConfigurationError(f"bad grid path {self.path!r}")
        if self.path == "name":
            raise ConfigurationError(
                "grid cannot sweep 'name': expanded scenario names are derived"
            )
        if not self.values:
            raise ConfigurationError(f"grid axis {self.path!r} has no values")
        if len(self.values) != len(self.labels):
            raise ConfigurationError(
                f"grid axis {self.path!r}: {len(self.values)} values but "
                f"{len(self.labels)} labels"
            )
        if len(set(self.labels)) != len(self.labels):
            raise ConfigurationError(
                f"grid axis {self.path!r} has duplicate value labels: "
                f"{sorted(self.labels)}"
            )

    @classmethod
    def from_values(cls, path: str, raw_values: Any) -> "GridAxis":
        if not isinstance(raw_values, (list, tuple)):
            raise ConfigurationError(
                f"grid axis {path!r} must map to a list of values, "
                f"got {type(raw_values).__name__}"
            )
        values: list[Any] = []
        labels: list[str] = []
        for raw in raw_values:
            if _is_labeled_value(raw):
                values.append(copy.deepcopy(raw["value"]))
                labels.append(str(raw["label"]))
            else:
                values.append(copy.deepcopy(raw))
                labels.append(_default_label(raw))
        return cls(path=path, values=tuple(values), labels=tuple(labels))

    def to_dict_values(self) -> list[Any]:
        """Canonical dict form of the values (labeled form preserved)."""
        out: list[Any] = []
        for value, label in zip(self.values, self.labels):
            if label == _default_label(value):
                out.append(copy.deepcopy(value))
            else:
                out.append({"label": label, "value": copy.deepcopy(value)})
        return out


@dataclass(frozen=True)
class CampaignScenario:
    """One expanded grid cell: the concrete spec plus its provenance."""

    index: int
    spec: ScenarioSpec
    overrides: Mapping[str, Any]
    labels: Mapping[str, str]


def _apply_override(data: dict[str, Any], path: str, value: Any) -> None:
    """Set ``value`` at the dotted ``path``, creating intermediate dicts."""
    parts = path.split(".")
    node = data
    for part in parts[:-1]:
        child = node.setdefault(part, {})
        if not isinstance(child, dict):
            raise ConfigurationError(
                f"grid path {path!r} descends into non-dict value at {part!r}"
            )
        node = child
    node[parts[-1]] = copy.deepcopy(value)


@dataclass(frozen=True)
class CampaignSpec:
    """A parameter sweep over one base scenario.

    Attributes
    ----------
    name:
        Campaign identifier; prefixes every expanded scenario name.
    base:
        The base scenario as a plain dict (the template every grid cell
        starts from).  Loaded from either an inline ``"base"`` dict or a
        ``"base_scenario"`` catalog name.
    grid:
        The swept axes, ordered by path (sorted) so expansion order is a
        pure function of the content, not of dict insertion order.
    seed:
        Campaign-level base seed for per-scenario seed derivation.
    seed_policy:
        ``"derived"`` (default) gives every expanded scenario
        ``derive_seed(seed, "campaign", name, scenario_name)``; ``"fixed"``
        keeps the base scenario's seed.  An explicit ``"seed"`` grid axis
        always wins over either policy.
    """

    name: str
    base: dict[str, Any]
    grid: tuple[GridAxis, ...] = ()
    seed: int = 0
    seed_policy: str = "derived"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("campaign requires a non-empty name")
        if self.seed_policy not in _SEED_POLICIES:
            raise ConfigurationError(
                f"unknown seed_policy {self.seed_policy!r}; "
                f"expected one of {list(_SEED_POLICIES)}"
            )
        paths = [axis.path for axis in self.grid]
        if len(set(paths)) != len(paths):
            raise ConfigurationError(f"duplicate grid axis paths: {sorted(paths)}")
        if list(paths) != sorted(paths):
            raise ConfigurationError("grid axes must be sorted by path")

    # -- dict / JSON round-trip ---------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CampaignSpec":
        allowed = (
            "name",
            "description",
            "seed",
            "seed_policy",
            "base",
            "base_scenario",
            "grid",
        )
        unknown = sorted(set(data) - set(allowed))
        if unknown:
            raise ConfigurationError(
                f"unknown key(s) {unknown} in campaign spec; allowed: {sorted(allowed)}"
            )
        if "name" not in data:
            raise ConfigurationError("campaign requires a 'name'")
        if ("base" in data) == ("base_scenario" in data):
            raise ConfigurationError(
                "campaign requires exactly one of 'base' (inline scenario dict) "
                "or 'base_scenario' (catalog name)"
            )
        if "base" in data:
            base = copy.deepcopy(dict(data["base"]))
            base.setdefault("name", str(data["name"]))
            ScenarioSpec.from_dict(base)  # validate the template eagerly
        else:
            base = get_scenario(str(data["base_scenario"])).to_dict()
        raw_grid = data.get("grid", {})
        if not isinstance(raw_grid, Mapping):
            raise ConfigurationError("campaign 'grid' must be a mapping of path -> values")
        grid = tuple(
            GridAxis.from_values(path, raw_grid[path]) for path in sorted(raw_grid)
        )
        return cls(
            name=str(data["name"]),
            base=base,
            grid=grid,
            seed=int(data.get("seed", 0)),
            seed_policy=str(data.get("seed_policy", "derived")),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_json_file(cls, path: "str | pathlib.Path") -> "CampaignSpec":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot load campaign spec {path}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "base": copy.deepcopy(self.base),
            "grid": {axis.path: axis.to_dict_values() for axis in self.grid},  # repro-lint: disable=DIGEST-001 (empty grid serializes as {} in the pinned canonical form)
        }
        if self.seed_policy != "derived":
            out["seed_policy"] = self.seed_policy
        if self.description:
            out["description"] = self.description
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        """Stable hash of the canonical campaign — names the result directory,
        so any edit to the campaign definition lands results in a fresh
        directory instead of mixing with stale records."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]

    # -- expansion -----------------------------------------------------------
    def axis_keys(self) -> dict[str, str]:
        """Short display key per axis: the last path segment, falling back to
        the full path when two axes would collide on it."""
        last = {}
        for axis in self.grid:
            last.setdefault(axis.path.rsplit(".", 1)[-1], []).append(axis.path)
        return {
            path: (short if len(paths) == 1 else path)
            for short, paths in last.items()
            for path in paths
        }

    def scenario_name(self, labels: Mapping[str, str]) -> str:
        """Deterministic name of the grid cell with the given axis labels."""
        if not self.grid:
            return self.name
        keys = self.axis_keys()
        cell = ",".join(f"{keys[axis.path]}={labels[axis.path]}" for axis in self.grid)
        return f"{self.name}/{cell}"

    def expand(self) -> list[CampaignScenario]:
        """Materialize every grid cell as a concrete :class:`ScenarioSpec`.

        Expansion order is the cartesian product over axes sorted by path,
        each axis's values in declared order — identical on every call and
        every machine.
        """
        scenarios: list[CampaignScenario] = []
        names: set[str] = set()
        choices = [range(len(axis.values)) for axis in self.grid]
        for index, combo in enumerate(itertools.product(*choices)):
            overrides = {
                axis.path: axis.values[i] for axis, i in zip(self.grid, combo)
            }
            labels = {axis.path: axis.labels[i] for axis, i in zip(self.grid, combo)}
            data = copy.deepcopy(self.base)
            name = self.scenario_name(labels)
            if name in names:  # pragma: no cover - per-axis labels are unique
                raise ConfigurationError(f"duplicate expanded scenario name {name!r}")
            names.add(name)
            data["name"] = name
            if self.seed_policy == "derived":
                data["seed"] = derive_seed(self.seed, "campaign", self.name, name)
            for path, value in overrides.items():
                _apply_override(data, path, value)
            try:
                spec = ScenarioSpec.from_dict(data)
            except ConfigurationError as exc:
                raise ConfigurationError(
                    f"campaign {self.name!r}: grid cell {name!r} does not form "
                    f"a valid scenario: {exc}"
                ) from exc
            scenarios.append(
                CampaignScenario(
                    index=index, spec=spec, overrides=overrides, labels=labels
                )
            )
        return scenarios
