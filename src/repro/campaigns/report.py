"""Aggregated campaign reports.

The paper's figures are accuracy-versus-``q`` sweeps: every curve fixes an
(assignment scheme, attack, aggregator) cell and varies the adversary budget
``q`` along the x-axis.  :func:`accuracy_vs_q_rows` rebuilds exactly that
shape from a campaign's stored records — one row per non-``q`` grid cell,
one column per ``q`` value — and :func:`campaign_report` renders it together
with the flat per-scenario summary table.
"""

from __future__ import annotations

from typing import Any, Sequence

from repro.campaigns.executor import CampaignRunResult
from repro.campaigns.spec import CampaignScenario, CampaignSpec
from repro.campaigns.store import ScenarioRecord
from repro.experiments.report import format_rows

__all__ = ["find_q_axis", "accuracy_vs_q_rows", "campaign_report"]


def find_q_axis(campaign: CampaignSpec) -> "str | None":
    """The grid path sweeping the adversary budget, if the campaign has one.

    Recognizes any axis whose final path segment is ``q`` (canonically
    ``attack.schedule.q``).
    """
    for axis in campaign.grid:
        if axis.path.rsplit(".", 1)[-1] == "q":
            return axis.path
    return None


def accuracy_vs_q_rows(
    campaign: CampaignSpec,
    scenarios: Sequence[CampaignScenario],
    records: Sequence["ScenarioRecord | None"],
) -> list[dict[str, Any]]:
    """Pivot final accuracy into one row per non-``q`` cell, one column per ``q``.

    Scenarios without a stored record render as ``""`` so a partially
    complete campaign still reports cleanly.
    """
    q_path = find_q_axis(campaign)
    if q_path is None:
        return []
    keys = campaign.axis_keys()
    other_axes = [axis for axis in campaign.grid if axis.path != q_path]
    q_axis = next(axis for axis in campaign.grid if axis.path == q_path)
    rows: dict[tuple[str, ...], dict[str, Any]] = {}
    for scenario, record in zip(scenarios, records):
        cell = tuple(scenario.labels[axis.path] for axis in other_axes)
        row = rows.get(cell)
        if row is None:
            row = {keys[axis.path]: label for axis, label in zip(other_axes, cell)}
            if not other_axes:
                row = {"campaign": campaign.name}
            rows[cell] = row
        column = f"q={scenario.labels[q_path]}"
        row[column] = (
            float(record.summary["final_accuracy"]) if record is not None else ""
        )
    # Rows keep expansion order (= the axes' declared value order; dicts
    # preserve insertion); columns are the cell keys then q in declared order.
    ordered = []
    for row in rows.values():
        base = {k: row[k] for k in row if not k.startswith("q=")}
        for label in q_axis.labels:
            base[f"q={label}"] = row.get(f"q={label}", "")
        ordered.append(base)
    return ordered


def campaign_report(result: CampaignRunResult) -> str:
    """Render the full campaign report: accuracy-vs-q pivot (when the
    campaign sweeps ``q``) followed by the flat per-scenario summary."""
    sections: list[str] = []
    pivot = accuracy_vs_q_rows(result.campaign, result.scenarios, result.records)
    if pivot:
        sections.append(
            format_rows(
                pivot,
                title=f"Final accuracy vs q — campaign {result.campaign.name!r}",
            )
        )
    missing = sum(1 for r in result.records if r is None)
    rows = result.summary_rows()  # includes only completed scenarios
    if rows:
        sections.append(
            format_rows(rows, title=f"Campaign {result.campaign.name!r} scenarios")
        )
    if missing:
        sections.append(
            f"({missing} of {len(result.records)} scenarios have no stored "
            f"record yet — run 'repro campaign run' to complete the sweep)"
        )
    return "\n\n".join(sections) if sections else "(no campaign records yet)"
