"""Content-addressed result store for campaign runs.

Layout, under a root directory (default ``campaign_out/``)::

    campaign_out/<campaign_digest>/
        campaign.json              # the campaign spec that owns this directory
        <scenario_digest>.json     # one ScenarioRecord per completed scenario

Records are addressed by the *scenario spec digest*, so completion survives
renames of the result files' provenance metadata and a re-run of the same
campaign skips every scenario whose record already exists — cheap
resumability.  Editing the campaign (or any scenario it expands to) changes
the digests, which routes the run to fresh paths instead of silently reusing
stale results.  Writes are atomic (temp file + rename) so an interrupted
worker never leaves a half-written record behind.
"""

from __future__ import annotations

import json
import os
import pathlib
from dataclasses import dataclass
from typing import Any, Mapping

from repro.campaigns.spec import CampaignSpec
from repro.exceptions import ReproError

__all__ = ["ScenarioRecord", "ResultStore", "DEFAULT_STORE_ROOT"]

DEFAULT_STORE_ROOT = pathlib.Path("campaign_out")


@dataclass(frozen=True)
class ScenarioRecord:
    """Everything one completed scenario leaves behind, JSON-ready.

    ``summary`` is the flat report row
    (:meth:`~repro.scenarios.runner.ScenarioResult.summary`); ``trace`` is
    the full bit-exact :class:`~repro.scenarios.trace.RunTrace` dict, so a
    stored record can stand in for a live run in any digest comparison.
    """

    scenario: str
    spec: Mapping[str, Any]
    spec_digest: str
    overrides: Mapping[str, Any]
    summary: Mapping[str, Any]
    trace: Mapping[str, Any]

    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "spec": dict(self.spec),
            "spec_digest": self.spec_digest,
            "overrides": dict(self.overrides),
            "summary": dict(self.summary),
            "trace": dict(self.trace),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioRecord":
        try:
            return cls(
                scenario=str(data["scenario"]),
                spec=dict(data["spec"]),
                spec_digest=str(data["spec_digest"]),
                overrides=dict(data.get("overrides", {})),
                summary=dict(data["summary"]),
                trace=dict(data["trace"]),
            )
        except KeyError as exc:
            raise ReproError(f"scenario record is missing key {exc}") from exc


class ResultStore:
    """One campaign's result directory: ``<root>/<campaign_digest>/``."""

    def __init__(
        self,
        campaign: CampaignSpec,
        root: "pathlib.Path | str | None" = None,
    ) -> None:
        self.campaign = campaign
        self.root = pathlib.Path(root) if root is not None else DEFAULT_STORE_ROOT
        self.directory = self.root / campaign.digest()

    # -- paths ---------------------------------------------------------------
    @property
    def campaign_path(self) -> pathlib.Path:
        return self.directory / "campaign.json"

    def record_path(self, spec_digest: str) -> pathlib.Path:
        return self.directory / f"{spec_digest}.json"

    # -- campaign spec anchoring --------------------------------------------
    def initialize(self) -> None:
        """Create the directory and pin the owning campaign spec.

        A pre-existing ``campaign.json`` must match this campaign exactly —
        a mismatch means a digest collision or manual tampering, both of
        which should fail loudly rather than mix results.
        """
        self.directory.mkdir(parents=True, exist_ok=True)
        if self.campaign_path.exists():
            existing = _read_json(self.campaign_path)
            if existing != self.campaign.to_dict():
                raise ReproError(
                    f"{self.campaign_path} holds a different campaign than "
                    f"{self.campaign.name!r}; refusing to mix results"
                )
            return
        _write_json_atomic(self.campaign_path, self.campaign.to_dict())

    # -- records -------------------------------------------------------------
    def completed_digests(self) -> set[str]:
        """Spec digests of every scenario with a stored record."""
        if not self.directory.is_dir():
            return set()
        return {
            path.stem
            for path in self.directory.glob("*.json")
            if path.name != "campaign.json"
        }

    def load(self, spec_digest: str) -> "ScenarioRecord | None":
        """Load the record for a scenario digest, or ``None`` if absent."""
        path = self.record_path(spec_digest)
        if not path.exists():
            return None
        record = ScenarioRecord.from_dict(_read_json(path))
        if record.spec_digest != spec_digest:
            raise ReproError(
                f"{path} claims spec digest {record.spec_digest}, expected "
                f"{spec_digest}; the store is corrupt"
            )
        return record

    def save(self, record: ScenarioRecord) -> pathlib.Path:
        """Atomically persist one scenario record; returns its path."""
        self.directory.mkdir(parents=True, exist_ok=True)
        path = self.record_path(record.spec_digest)
        _write_json_atomic(path, record.to_dict())
        return path


def _read_json(path: pathlib.Path) -> Any:
    try:
        return json.loads(path.read_text())
    except (OSError, json.JSONDecodeError) as exc:
        raise ReproError(f"cannot read {path}: {exc}") from exc


def _write_json_atomic(path: pathlib.Path, data: Any) -> None:
    tmp = path.with_suffix(f".tmp-{os.getpid()}")
    try:
        tmp.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
        os.replace(tmp, path)
    except OSError as exc:
        raise ReproError(f"cannot write {path}: {exc}") from exc
