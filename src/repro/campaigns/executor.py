"""Process-parallel campaign execution.

The executor fans the expanded scenarios of a
:class:`~repro.campaigns.spec.CampaignSpec` out across a
``ProcessPoolExecutor``.  Because every scenario run is a pure function of
its spec — :class:`~repro.scenarios.runner.ScenarioRunner` builds all
components fresh, and every seed is pinned inside the spec — the parallel
run produces **bit-identical** :class:`~repro.scenarios.trace.RunTrace`\\ s
to serial execution: parallelism changes wall-clock time and nothing else.

With a :class:`~repro.campaigns.store.ResultStore` attached, scenarios whose
records already exist are skipped and served from disk, making interrupted
campaigns resumable at per-scenario granularity.

:func:`run_specs` is the scheme-agnostic core (a list of ``ScenarioSpec``\\ s
in, a list of :class:`~repro.campaigns.store.ScenarioRecord`\\ s out, in
order); the scenario-matrix ablation table and the parallel benchmarks drive
it directly without a campaign spec.
"""

from __future__ import annotations

import multiprocessing
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass
from typing import Any, Callable, Mapping, Sequence

from repro.campaigns.spec import CampaignScenario, CampaignSpec
from repro.campaigns.store import ResultStore, ScenarioRecord
from repro.exceptions import ConfigurationError
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["execute_spec", "run_specs", "CampaignStatus", "CampaignRunResult", "CampaignExecutor"]


def execute_spec(
    spec: ScenarioSpec, overrides: "Mapping[str, Any] | None" = None
) -> ScenarioRecord:
    """Run one scenario in-process and package the result as a record."""
    result = run_scenario(spec)
    return ScenarioRecord(
        scenario=spec.name,
        spec=spec.to_dict(),
        spec_digest=spec.digest(),
        overrides=dict(overrides or {}),
        summary=result.summary(),
        trace=result.trace.to_dict(),
    )


def _execute_payload(payload: tuple[dict[str, Any], dict[str, Any]]) -> dict[str, Any]:
    """Pool worker entry point: plain dicts in, plain dicts out (picklable)."""
    spec_dict, overrides = payload
    return execute_spec(ScenarioSpec.from_dict(spec_dict), overrides).to_dict()


def _pool_context() -> "multiprocessing.context.BaseContext":
    """Prefer ``fork`` (cheap, inherits the warm interpreter); fall back to
    the platform default where fork is unavailable."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


def run_specs(
    specs: Sequence[ScenarioSpec],
    processes: int = 0,
    overrides: "Sequence[Mapping[str, Any]] | None" = None,
    on_record: "Callable[[ScenarioRecord], None] | None" = None,
) -> list[ScenarioRecord]:
    """Run scenarios and return their records in input order.

    ``processes <= 1`` runs serially in-process; larger values fan out over
    a ``ProcessPoolExecutor`` of that many workers.  Both paths produce
    bit-identical traces — parallelism only changes wall-clock time.

    ``on_record`` is invoked once per record *as it completes* (completion
    order, not input order); the executor hooks the result store in here so
    an interrupted run keeps every scenario that finished before the
    interrupt.
    """
    if processes < 0:
        raise ConfigurationError(f"processes must be non-negative, got {processes}")
    if overrides is not None and len(overrides) != len(specs):
        raise ConfigurationError(
            f"{len(overrides)} override mappings for {len(specs)} specs"
        )
    per_spec = overrides if overrides is not None else [{} for _ in specs]
    if processes <= 1 or len(specs) <= 1:
        records = []
        for spec, ov in zip(specs, per_spec):
            record = execute_spec(spec, ov)
            if on_record is not None:
                on_record(record)
            records.append(record)
        return records
    workers = min(processes, len(specs))
    results: list["ScenarioRecord | None"] = [None] * len(specs)
    with ProcessPoolExecutor(max_workers=workers, mp_context=_pool_context()) as pool:
        futures = {
            pool.submit(_execute_payload, (spec.to_dict(), dict(ov))): i
            for i, (spec, ov) in enumerate(zip(specs, per_spec))
        }
        for future in as_completed(futures):
            record = ScenarioRecord.from_dict(future.result())
            if on_record is not None:
                on_record(record)
            results[futures[future]] = record
    return results  # type: ignore[return-value]  # every slot is filled above


@dataclass(frozen=True)
class CampaignStatus:
    """Completion state of a campaign against its store."""

    campaign: str
    digest: str
    completed: tuple[str, ...]
    pending: tuple[str, ...]

    @property
    def total(self) -> int:
        return len(self.completed) + len(self.pending)

    @property
    def done(self) -> bool:
        return not self.pending


@dataclass
class CampaignRunResult:
    """Outcome of :meth:`CampaignExecutor.run`.

    ``records`` follow expansion order regardless of which scenarios were
    freshly run and which were served from the store.
    """

    campaign: CampaignSpec
    scenarios: list[CampaignScenario]
    records: list[ScenarioRecord]
    ran: int = 0
    skipped: int = 0
    store_dir: "str | None" = None

    def summary_rows(self) -> list[dict[str, Any]]:
        """One flat report row per completed scenario: axis labels + summary."""
        # Canonical column order (store records round-trip through sorted
        # JSON, so the stored dict order cannot be trusted for display).
        preferred = (
            "rounds",
            "final_accuracy",
            "mean_distortion",
            "max_q",
            "dropped_contributions",
            "corrupted_messages",
            "simulated_time",
        )
        rows: list[dict[str, Any]] = []
        keys = self.campaign.axis_keys()
        for scenario, record in zip(self.scenarios, self.records):
            if record is None:
                continue
            row: dict[str, Any] = {"scenario": record.scenario}
            for axis_path, label in scenario.labels.items():
                row[keys[axis_path]] = label
            hidden = ("scenario", "final_params_digest")
            for name in preferred:
                if name in record.summary:
                    row[name] = record.summary[name]
            for name, value in record.summary.items():
                if name not in row and name not in hidden:
                    row[name] = value
            row["seed"] = scenario.spec.seed
            rows.append(row)
        return rows


class CampaignExecutor:
    """Expand a campaign and drive its scenarios to completion.

    Parameters
    ----------
    campaign:
        The sweep definition.
    store:
        Optional result store; when given, completed scenarios are skipped
        on re-runs and fresh records are persisted as they finish.
    processes:
        Worker processes for :func:`run_specs` (``<= 1`` = serial).
    """

    def __init__(
        self,
        campaign: CampaignSpec,
        store: "ResultStore | None" = None,
        processes: int = 0,
    ) -> None:
        self.campaign = campaign
        self.store = store
        self.processes = processes
        self.scenarios = campaign.expand()

    def status(self) -> CampaignStatus:
        """Which expanded scenarios already have stored records."""
        done = self.store.completed_digests() if self.store is not None else set()
        completed = tuple(
            s.spec.name for s in self.scenarios if s.spec.digest() in done
        )
        pending = tuple(
            s.spec.name for s in self.scenarios if s.spec.digest() not in done
        )
        return CampaignStatus(
            campaign=self.campaign.name,
            digest=self.campaign.digest(),
            completed=completed,
            pending=pending,
        )

    def run(self) -> CampaignRunResult:
        """Run every pending scenario; return all records in expansion order."""
        if self.store is not None:
            self.store.initialize()
            done = self.store.completed_digests()
        else:
            done = set()
        pending = [s for s in self.scenarios if s.spec.digest() not in done]
        # Persist every record the moment it completes: an interrupted run
        # (Ctrl-C, crashed box) keeps all finished scenarios and the re-run
        # picks up exactly where it stopped.
        fresh = run_specs(
            [s.spec for s in pending],
            processes=self.processes,
            overrides=[s.overrides for s in pending],
            on_record=self.store.save if self.store is not None else None,
        )
        by_digest: dict[str, ScenarioRecord] = {
            record.spec_digest: record for record in fresh
        }
        records: list[ScenarioRecord] = []
        for scenario in self.scenarios:
            digest = scenario.spec.digest()
            record = by_digest.get(digest)
            if record is None:
                record = self.store.load(digest)  # type: ignore[union-attr]
            records.append(record)
        return CampaignRunResult(
            campaign=self.campaign,
            scenarios=self.scenarios,
            records=records,
            ran=len(fresh),
            skipped=len(self.scenarios) - len(fresh),
            store_dir=str(self.store.directory) if self.store is not None else None,
        )
