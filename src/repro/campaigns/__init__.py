"""Campaign engine: process-parallel scenario sweeps with a results store.

Public surface:

* :class:`~repro.campaigns.spec.CampaignSpec` — a parameter grid over one
  base scenario (dict/JSON round-trip, stable digest) that
  :meth:`~repro.campaigns.spec.CampaignSpec.expand`\\ s into concrete
  :class:`~repro.scenarios.spec.ScenarioSpec`\\ s with derived seeds;
* :class:`~repro.campaigns.executor.CampaignExecutor` /
  :func:`~repro.campaigns.executor.run_specs` — run the expansion on a
  process pool, bit-identical to serial execution;
* :class:`~repro.campaigns.store.ResultStore` — content-addressed per-
  scenario records under ``campaign_out/<digest>/`` with skip-completed
  resumability;
* :mod:`~repro.campaigns.report` — the aggregated accuracy-vs-q tables the
  paper's figures are built from.
"""

from repro.campaigns.executor import (
    CampaignExecutor,
    CampaignRunResult,
    CampaignStatus,
    execute_spec,
    run_specs,
)
from repro.campaigns.report import accuracy_vs_q_rows, campaign_report, find_q_axis
from repro.campaigns.spec import CampaignScenario, CampaignSpec, GridAxis
from repro.campaigns.store import DEFAULT_STORE_ROOT, ResultStore, ScenarioRecord

__all__ = [
    "CampaignSpec",
    "CampaignScenario",
    "GridAxis",
    "CampaignExecutor",
    "CampaignRunResult",
    "CampaignStatus",
    "execute_spec",
    "run_specs",
    "ResultStore",
    "ScenarioRecord",
    "DEFAULT_STORE_ROOT",
    "accuracy_vs_q_rows",
    "campaign_report",
    "find_q_axis",
]
