"""The parameter server: aggregation pipeline + optimizer step.

The PS owns the global model parameters, feeds each round's returns through
its aggregation pipeline (ByzShield, DETOX, DRACO or a vanilla robust rule)
and applies an SGD step with the configured learning-rate schedule (paper
Algorithm 1, lines 14–17).
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import ensure_float
from repro.core.pipelines import AggregationPipeline, FileVotes
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import TrainingError
from repro.nn.optim import SGD
from repro.utils.digest import array_digest

__all__ = ["ParameterServer"]


class ParameterServer:
    """Holds the global parameter vector and performs model updates.

    Parameters
    ----------
    initial_params:
        The initial flat parameter vector ``w₀``.
    pipeline:
        Aggregation pipeline turning a round's returns into one gradient.
    optimizer:
        Flat-vector SGD optimizer (learning-rate schedule + momentum).
    """

    def __init__(
        self,
        initial_params: np.ndarray,
        pipeline: AggregationPipeline,
        optimizer: SGD,
    ) -> None:
        # Keep the model's working dtype (float32 stays float32) so the PS
        # update runs in the same precision as the workers' backward passes.
        params = ensure_float(initial_params).ravel()
        if params.size == 0:
            raise TrainingError("initial parameter vector is empty")
        self._params = params.copy()
        self.pipeline = pipeline
        self.optimizer = optimizer
        self.iteration = 0

    @property
    def params(self) -> np.ndarray:
        """Copy of the current global parameters ``w_t``."""
        return self._params.copy()

    def broadcast(self) -> np.ndarray:
        """Parameters sent to the workers at the start of an iteration."""
        return self.params

    def aggregate(self, file_votes: FileVotes) -> np.ndarray:
        """Run the aggregation pipeline without updating the model."""
        return self.pipeline.aggregate(file_votes)

    def aggregate_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        """Run the aggregation pipeline on the packed tensor (hot path).

        ``arrived`` is the event runtime's partial-aggregation mask — the
        ``(f, r)`` copies the PS accepted before its deadline/quorum cutoff;
        ``None`` (synchronous rounds) aggregates every slot.  When the
        pipeline carries a :class:`~repro.cluster.topology.GroupTopology`,
        the vote stage runs hierarchically (per-group kernels + root merge)
        — bit-identical to the flat vote, so the PS-side contract here is
        unchanged.
        """
        return self.pipeline.aggregate_tensor(tensor, arrived)

    def _apply_gradient(self, gradient: np.ndarray) -> np.ndarray:
        if gradient.shape != self._params.shape:
            raise TrainingError(
                f"aggregated gradient has shape {gradient.shape}, expected "
                f"{self._params.shape}"
            )
        self._params = self.optimizer.step_vector(self._params, gradient)
        self.iteration += 1
        return gradient

    def update(self, file_votes: FileVotes) -> np.ndarray:
        """Aggregate the returns and take one optimizer step.

        Returns the aggregated gradient used for the update.
        """
        return self._apply_gradient(self.aggregate(file_votes))

    def update_tensor(
        self, tensor: VoteTensor, arrived: np.ndarray | None = None
    ) -> np.ndarray:
        """Tensor analogue of :meth:`update` (same step, packed returns)."""
        return self._apply_gradient(self.aggregate_tensor(tensor, arrived))

    def state_digest(self) -> str:
        """Stable hex digest of the current global parameters.

        Two servers that applied bit-identical update sequences produce the
        same digest; scenario traces pin this per round to detect any drift.
        """
        return array_digest(self._params)
