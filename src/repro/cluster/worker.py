"""Worker-side gradient computation.

In the real system every worker independently computes the gradient of each
file it is assigned.  Honest workers assigned the same file return
bit-identical gradients (the paper relies on this for exact-equality majority
voting), so the simulator computes each file gradient once and hands copies to
the assigned workers — ``shared_computation=True`` — unless a test explicitly
asks for per-worker recomputation.

Two round representations are produced: the legacy ``file_votes``
dict-of-dicts (:meth:`WorkerPool.honest_returns`) and the contiguous
:class:`~repro.core.vote_tensor.VoteTensor`
(:meth:`WorkerPool.honest_returns_tensor`), which computes all ``f`` file
gradients into one ``(f, d)`` matrix — through the oracle's batched entry
point when it provides one — and broadcasts it into the assigned slots
without per-file Python loops.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable

import numpy as np

from repro.core.backend import DEFAULT_DTYPE, ensure_float
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import TrainingError
from repro.graphs.bipartite import BipartiteAssignment

if TYPE_CHECKING:  # pragma: no cover - import cycle guard for type checkers
    from repro.compression.compressors import Compressor

__all__ = ["WorkerPool"]

#: signature of the gradient oracle: (params, inputs, labels) -> (gradient, loss)
GradientFn = Callable[[np.ndarray, np.ndarray, np.ndarray], tuple[np.ndarray, float]]


class WorkerPool:
    """The ``K`` simulated workers and their per-file gradient computation.

    Parameters
    ----------
    assignment:
        Worker/file assignment graph.
    gradient_fn:
        Oracle computing ``(flat gradient, loss)`` of the model on a file's
        samples at the given parameters.  If the oracle exposes a ``batched``
        method (see :meth:`ModelGradientComputer.batched`), the tensor path
        uses it to compute all file gradients in one stacked call.
    shared_computation:
        Compute every file gradient once and share it among the file's
        workers (default, exploits determinism); when False every worker
        recomputes its own copy, which is slower but validates determinism.
    compressor:
        Optional uplink compressor applied to each file gradient before it
        is (conceptually) transmitted to the PS.  Compression happens once
        per file, so all of a file's copies stay bit-identical and exact
        majority voting keeps working; the honest ground-truth matrix and
        losses are reported *uncompressed*.  Requires
        ``shared_computation=True``: in per-worker recomputation mode a
        stateful (stochastic) compressor would compress each copy
        differently, silently breaking the bit-identical-copies invariant.
    """

    def __init__(
        self,
        assignment: BipartiteAssignment,
        gradient_fn: GradientFn,
        shared_computation: bool = True,
        compressor: "Compressor | None" = None,
    ) -> None:
        if compressor is not None and not shared_computation:
            raise TrainingError(
                "uplink compression requires shared_computation=True; "
                "per-worker recomputation would compress each copy of a file "
                "independently and break exact majority voting"
            )
        self.assignment = assignment
        self.gradient_fn = gradient_fn
        self.shared_computation = bool(shared_computation)
        self.compressor = compressor

    def _transmitted(self, matrix: np.ndarray) -> np.ndarray:
        """The per-file vectors as the PS receives them (post compression).

        Delegates to :meth:`Compressor.compress_matrix`, which vectorized
        compressors (top-k, sign, identity) implement as a single matrix
        call; stochastic ones keep the row-by-row default so their RNG draw
        order is unchanged.
        """
        if self.compressor is None:
            return matrix
        return self.compressor.compress_matrix(matrix)

    def _check_file_data(
        self, file_data: dict[int, tuple[np.ndarray, np.ndarray]]
    ) -> None:
        if set(file_data) != set(range(self.assignment.num_files)):
            raise TrainingError(
                "file_data must provide data for every file of the assignment"
            )

    def compute_file_gradient_matrix(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[np.ndarray, np.ndarray]:
        """True gradients of every file stacked into an ``(f, d)`` matrix.

        Returns ``(gradients, losses)`` with shapes ``(f, d)`` and ``(f,)``.
        Dispatches to the oracle's ``batched`` entry point when available so
        model-backed pools load the parameters once for the whole round.
        """
        self._check_file_data(file_data)
        files = [file_data[i] for i in range(self.assignment.num_files)]
        batched = getattr(self.gradient_fn, "batched", None)
        if batched is not None:
            return batched(params, files)
        gradients: np.ndarray | None = None
        losses = np.empty(len(files), dtype=DEFAULT_DTYPE)
        for i, (inputs, labels) in enumerate(files):
            gradient, loss = self.gradient_fn(params, inputs, labels)
            vector = ensure_float(gradient).ravel()
            if gradients is None:
                gradients = np.empty((len(files), vector.size), dtype=vector.dtype)
            gradients[i] = vector
            losses[i] = float(loss)
        assert gradients is not None  # assignments always have >= 1 file
        return gradients, losses

    def compute_file_gradients(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[dict[int, np.ndarray], dict[int, float]]:
        """True gradient and loss of every file at the given parameters."""
        matrix, losses = self.compute_file_gradient_matrix(params, file_data)
        gradients = {i: matrix[i] for i in range(self.assignment.num_files)}
        return gradients, {i: float(losses[i]) for i in range(len(losses))}

    def honest_returns(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[dict[int, dict[int, np.ndarray]], dict[int, np.ndarray], dict[int, float]]:
        """Compute what every (worker, file) pair would return if all were honest.

        Returns ``(file_votes, honest_file_gradients, file_losses)`` where
        ``file_votes[i][j]`` is worker ``j``'s copy of file ``i``'s gradient.
        """
        matrix, loss_vector = self.compute_file_gradient_matrix(params, file_data)
        honest = {i: matrix[i] for i in range(self.assignment.num_files)}
        losses = {i: float(loss_vector[i]) for i in range(len(loss_vector))}
        transmitted = self._transmitted(matrix)
        file_votes: dict[int, dict[int, np.ndarray]] = {}
        for file_index in range(self.assignment.num_files):
            votes: dict[int, np.ndarray] = {}
            for worker in self.assignment.workers_of_file(file_index):
                if self.shared_computation:
                    votes[worker] = transmitted[file_index]
                else:
                    # compressor is None here (enforced by the constructor).
                    inputs, labels = file_data[file_index]
                    gradient, _ = self.gradient_fn(params, inputs, labels)
                    votes[worker] = ensure_float(gradient).ravel()
            file_votes[file_index] = votes
        return file_votes, honest, losses

    def honest_returns_tensor(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[VoteTensor, np.ndarray, np.ndarray]:
        """Tensor analogue of :meth:`honest_returns`.

        Returns ``(tensor, honest_matrix, file_losses)`` with the honest
        gradients broadcast into every assigned ``(file, slot)`` of the
        ``(f, r, d)`` tensor, the ``(f, d)`` ground-truth matrix and the
        ``(f,)`` per-file losses.
        """
        if not self.shared_computation:
            # Per-worker recomputation is a validation mode; route it through
            # the dict path and pack the result.
            file_votes, honest, losses = self.honest_returns(params, file_data)
            f = self.assignment.num_files
            matrix = np.vstack([honest[i] for i in range(f)])
            loss_vector = np.array([losses[i] for i in range(f)], dtype=DEFAULT_DTYPE)
            tensor = VoteTensor.from_file_votes(self.assignment, file_votes)
            return tensor, matrix, loss_vector
        matrix, losses = self.compute_file_gradient_matrix(params, file_data)
        tensor = VoteTensor.from_honest(self.assignment, self._transmitted(matrix))
        return tensor, matrix, losses
