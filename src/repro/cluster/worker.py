"""Worker-side gradient computation.

In the real system every worker independently computes the gradient of each
file it is assigned.  Honest workers assigned the same file return
bit-identical gradients (the paper relies on this for exact-equality majority
voting), so the simulator computes each file gradient once and hands copies to
the assigned workers — ``shared_computation=True`` — unless a test explicitly
asks for per-worker recomputation.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.exceptions import TrainingError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = ["WorkerPool"]

#: signature of the gradient oracle: (params, inputs, labels) -> (gradient, loss)
GradientFn = Callable[[np.ndarray, np.ndarray, np.ndarray], tuple[np.ndarray, float]]


class WorkerPool:
    """The ``K`` simulated workers and their per-file gradient computation.

    Parameters
    ----------
    assignment:
        Worker/file assignment graph.
    gradient_fn:
        Oracle computing ``(flat gradient, loss)`` of the model on a file's
        samples at the given parameters.
    shared_computation:
        Compute every file gradient once and share it among the file's
        workers (default, exploits determinism); when False every worker
        recomputes its own copy, which is slower but validates determinism.
    """

    def __init__(
        self,
        assignment: BipartiteAssignment,
        gradient_fn: GradientFn,
        shared_computation: bool = True,
    ) -> None:
        self.assignment = assignment
        self.gradient_fn = gradient_fn
        self.shared_computation = bool(shared_computation)

    def compute_file_gradients(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[dict[int, np.ndarray], dict[int, float]]:
        """True gradient and loss of every file at the given parameters."""
        if set(file_data) != set(range(self.assignment.num_files)):
            raise TrainingError(
                "file_data must provide data for every file of the assignment"
            )
        gradients: dict[int, np.ndarray] = {}
        losses: dict[int, float] = {}
        for file_index in range(self.assignment.num_files):
            inputs, labels = file_data[file_index]
            gradient, loss = self.gradient_fn(params, inputs, labels)
            gradients[file_index] = np.asarray(gradient, dtype=np.float64).ravel()
            losses[file_index] = float(loss)
        return gradients, losses

    def honest_returns(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> tuple[dict[int, dict[int, np.ndarray]], dict[int, np.ndarray], dict[int, float]]:
        """Compute what every (worker, file) pair would return if all were honest.

        Returns ``(file_votes, honest_file_gradients, file_losses)`` where
        ``file_votes[i][j]`` is worker ``j``'s copy of file ``i``'s gradient.
        """
        honest, losses = self.compute_file_gradients(params, file_data)
        file_votes: dict[int, dict[int, np.ndarray]] = {}
        for file_index in range(self.assignment.num_files):
            votes: dict[int, np.ndarray] = {}
            for worker in self.assignment.workers_of_file(file_index):
                if self.shared_computation:
                    votes[worker] = honest[file_index]
                else:
                    inputs, labels = file_data[file_index]
                    gradient, _ = self.gradient_fn(params, inputs, labels)
                    votes[worker] = np.asarray(gradient, dtype=np.float64).ravel()
            file_votes[file_index] = votes
        return file_votes, honest, losses
