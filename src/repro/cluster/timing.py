"""Per-iteration cost model (reproduces the shape of paper Figure 12).

The paper measures, per training iteration, the time spent on (i) worker
computation, (ii) worker-to-PS communication and (iii) PS-side aggregation,
for baseline median, ByzShield and DETOX median-of-means.  We cannot measure
EC2 wall-clock offline, so the cost model below assigns analytic costs with
coefficients calibrated to commodity hardware:

* computation: each worker processes ``l`` files of ``b/f`` samples, i.e.
  ``r·b/K`` samples per iteration (``b/K`` for the baseline); workers run in
  parallel, so iteration time is the per-worker time;
* communication: ByzShield workers transmit ``l`` separate ``d``-dimensional
  gradients, DETOX and baseline workers transmit one;
* aggregation: majority voting is linear in the number of returned copies
  (``f·r·d``), coordinate-wise median costs ``O(n·log n)`` per dimension over
  its ``n`` inputs, Krum-family rules cost ``O(n²·d)``.

Absolute numbers are arbitrary (they scale with the coefficients); the
*relative* breakdown — ByzShield pays the largest communication and
aggregation cost, redundancy schemes pay ``r×`` the baseline's computation —
is what Figure 12 shows and what the benchmark reproduces.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = ["CostModel", "IterationTiming", "estimate_iteration_timing"]


@dataclass(frozen=True)
class CostModel:
    """Coefficients of the analytic cost model (seconds per unit work).

    Attributes
    ----------
    compute_per_sample_per_param:
        Worker-side cost of one sample's forward/backward pass per model
        parameter.
    network_per_float:
        Transfer cost per float sent from a worker to the PS.
    network_latency_per_message:
        Fixed per-message overhead (each file gradient is one message).
    aggregation_per_float_op:
        PS-side cost of one elementary aggregation operation on one float.
    """

    compute_per_sample_per_param: float = 2.0e-9
    network_per_float: float = 4.0e-9
    network_latency_per_message: float = 2.0e-3
    aggregation_per_float_op: float = 1.0e-9

    def __post_init__(self) -> None:
        for name in (
            "compute_per_sample_per_param",
            "network_per_float",
            "network_latency_per_message",
            "aggregation_per_float_op",
        ):
            if getattr(self, name) < 0:
                raise ConfigurationError(f"{name} must be non-negative")


@dataclass(frozen=True)
class IterationTiming:
    """Estimated per-iteration time breakdown (seconds)."""

    computation: float
    communication: float
    aggregation: float

    @property
    def total(self) -> float:
        """Total estimated iteration time."""
        return self.computation + self.communication + self.aggregation

    def as_dict(self) -> dict[str, float]:
        """Dictionary form used by the experiment report."""
        return {
            "computation": self.computation,
            "communication": self.communication,
            "aggregation": self.aggregation,
            "total": self.total,
        }


def _aggregation_ops(
    aggregator_name: str, num_votes: int, dim: int, num_byzantine: int
) -> float:
    """Elementary float operations of the second-stage aggregation."""
    n = max(int(num_votes), 1)
    if aggregator_name in ("mean", "signsgd"):
        return n * dim
    if aggregator_name in ("median", "trimmed_mean", "median_of_means"):
        return n * max(np.log2(n), 1.0) * dim
    if aggregator_name in ("krum", "multi_krum", "bulyan"):
        return n * n * dim + n * max(np.log2(n), 1.0)
    if aggregator_name in ("geometric_median", "auror"):
        return 20.0 * n * dim
    # Unknown aggregators get the median-like cost.
    return n * max(np.log2(n), 1.0) * dim


def estimate_iteration_timing(
    assignment: BipartiteAssignment,
    batch_size: int,
    model_dim: int,
    aggregator_name: str = "median",
    uses_majority_vote: bool = True,
    num_byzantine: int = 0,
    cost_model: CostModel | None = None,
) -> IterationTiming:
    """Estimate the per-iteration time breakdown for a scheme.

    Parameters
    ----------
    assignment:
        The scheme's worker/file assignment (baseline = identity graph).
    batch_size:
        Global batch size ``b``.
    model_dim:
        Number of model parameters ``d``.
    aggregator_name:
        Registry name of the second-stage robust aggregator.
    uses_majority_vote:
        True for redundancy schemes (ByzShield, DETOX, DRACO) that majority
        vote the file copies before the robust stage.
    num_byzantine:
        Declared ``q`` (only used by Krum-like cost formulas).
    cost_model:
        Cost coefficients; defaults to :class:`CostModel` defaults.
    """
    if batch_size < 1 or model_dim < 1:
        raise ConfigurationError("batch_size and model_dim must be positive")
    cm = cost_model if cost_model is not None else CostModel()
    K = assignment.num_workers
    f = assignment.num_files
    l = assignment.computational_load
    r = assignment.replication
    samples_per_file = batch_size / f

    # Workers run in parallel; per-worker load is l files of b/f samples.
    computation = l * samples_per_file * model_dim * cm.compute_per_sample_per_param

    # Each worker sends l gradient messages of d floats (baseline: l = 1).
    communication = l * (
        model_dim * cm.network_per_float + cm.network_latency_per_message
    )

    aggregation = 0.0
    if uses_majority_vote:
        # Majority voting touches every returned copy of every file.
        aggregation += f * r * model_dim * cm.aggregation_per_float_op
        second_stage_votes = f
    else:
        second_stage_votes = K
    aggregation += (
        _aggregation_ops(aggregator_name, second_stage_votes, model_dim, num_byzantine)
        * cm.aggregation_per_float_op
    )
    return IterationTiming(
        computation=float(computation),
        communication=float(communication),
        aggregation=float(aggregation),
    )
