"""Discrete-event round engine: timestamped arrivals, deadline/quorum close.

The synchronous simulator treats a round as one atomic step: every worker's
return is present by construction and faults are post-hoc tensor edits.  A
real parameter server instead watches a *message stream* and must decide when
to stop waiting.  This module models that decision as a discrete-event
simulation over the round's ``f x r`` gradient messages:

* every (file, slot) message gets an **arrival time** — worker compute time
  plus per-message network cost from :class:`~repro.cluster.timing.CostModel`,
  shifted by realized fault delays (:func:`repro.cluster.faults.
  arrival_perturbations`); crashed / timed-out senders never arrive
  (``inf``);
* the PS processes arrivals in time order and **accepts** a message unless
  the round **deadline** has passed (exclusive: an arrival at exactly the
  deadline is late, matching :class:`StragglerInjector`'s timeout convention)
  or the message's file already closed by reaching its **quorum** of arrived
  copies;
* rejected-but-sent messages are recorded as ``"late"``
  :class:`~repro.cluster.faults.FaultEvent`\\ s and their slots are zeroed in
  the vote tensor exactly as a timeout-abandoned straggler is zeroed today,
  so downstream aggregation needs no new missing-value convention.

Clock model
-----------

The round clock starts at 0 when the PS broadcasts parameters.  The round
ends at:

* the last file-closing arrival, when every file reaches its quorum (with no
  quorum configured the implicit quorum is the full replication ``r``, so
  this is the last accepted arrival);
* otherwise the deadline, when one is set — the PS gives up waiting;
* otherwise (``deadline=inf`` and some message never arrives) the last
  accepted arrival: nothing else will ever come, so the simulation closes
  the round there instead of waiting forever.

Sync equivalence
----------------

With ``deadline=inf`` and no quorum the engine accepts every message that
arrives at all.  Because payload faults are applied by the *synchronous*
injector pass before the engine runs (identical RNG streams and composition
order), and never-arriving slots were already zeroed by that pass, the
resulting vote tensor is bit-identical to the synchronous path by
construction — property-tested across pipelines x attacks x faults.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.cluster.faults import FaultEvent
from repro.cluster.timing import CostModel
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = [
    "AsyncRuntime",
    "AsyncRoundOutcome",
    "EventDrivenRound",
    "base_arrival_times",
    "perturbed_arrival_times",
]

LATE_KIND = "late"
"""``FaultEvent.kind`` recorded for sent-but-rejected messages."""

_TIME_DTYPE = np.dtype(np.float64)  # repro-lint: disable=DTYPE-001 (simulated clock is wall-time seconds, float64 regardless of the working gradient dtype)
"""Dtype of every arrival/deadline array in the event simulation."""


@dataclass(frozen=True)
class AsyncRuntime:
    """Configuration of the event-driven round loop.

    Attributes
    ----------
    deadline:
        Round deadline in simulated seconds (exclusive: a message arriving at
        exactly ``deadline`` is late).  ``inf`` waits for every message that
        will ever arrive — the sync-equivalent mode.
    quorum:
        Per-file close threshold: a file stops accepting copies once this
        many arrived.  ``None`` waits for all ``r`` copies (or the deadline).
    partial:
        When True, downstream aggregation votes only over the accepted copies
        of each file (the :class:`AsyncRoundOutcome` mask) instead of
        treating missing slots as zero votes.
    cost_model:
        Coefficients for compute/network arrival times.
    """

    deadline: float = float("inf")
    quorum: int | None = None
    partial: bool = False
    cost_model: CostModel = field(default_factory=CostModel)

    def __post_init__(self) -> None:
        if not self.deadline > 0.0:  # also rejects NaN
            raise ConfigurationError(
                f"deadline must be positive (or inf), got {self.deadline}"
            )
        if self.quorum is not None and self.quorum < 1:
            raise ConfigurationError(f"quorum must be >= 1, got {self.quorum}")


@dataclass
class AsyncRoundOutcome:
    """What the event loop observed for one round.

    Attributes
    ----------
    arrivals:
        ``(f, r)`` arrival time of each message (``inf`` = never sent).
    accepted:
        ``(f, r)`` bool mask of the messages the PS accepted.
    round_time:
        Simulated round duration (see the module's clock model).
    file_close_times:
        ``(f,)`` time each file reached its quorum (``inf`` if it never did
        and the PS closed it at the deadline / end of stream).
    deadline_fired:
        True when the round ended because the deadline expired with at least
        one file still open.
    late_events:
        ``"late"`` :class:`FaultEvent`\\ s for sent-but-rejected messages, in
        rejection (time) order.
    group_close_times:
        ``(f, G)`` time each (file, group) quorum cell closed, for
        hierarchical rounds collected over a group topology (``inf`` for
        cells that never closed, and for cells the topology assigns no slots
        of that file).  ``None`` on flat rounds.
    """

    arrivals: np.ndarray
    accepted: np.ndarray
    round_time: float
    file_close_times: np.ndarray
    deadline_fired: bool
    late_events: tuple[FaultEvent, ...]
    group_close_times: np.ndarray | None = None

    @property
    def num_accepted(self) -> int:
        """Messages the PS aggregated this round."""
        return int(self.accepted.sum())


def base_arrival_times(
    assignment: BipartiteAssignment,
    cost_model: CostModel,
    dim: int,
    samples_per_file: np.ndarray,
) -> np.ndarray:
    """Unperturbed ``(f, r)`` arrival times of one round's messages.

    Worker ``w`` finishes computing after processing all of its assigned
    files (``sum_i n_i * d * compute_per_sample_per_param`` over its files),
    then transmits one ``d``-float message per file in assignment order; its
    ``k``-th message arrives ``(k + 1)`` message-costs after compute ends
    (serialized uplink).  Workers run in parallel.

    Parameters
    ----------
    assignment:
        The round's worker/file graph.
    cost_model:
        Compute / network coefficients.
    dim:
        Gradient dimensionality ``d``.
    samples_per_file:
        ``(f,)`` per-file sample counts of this round's batch partition.
    """
    samples = np.asarray(samples_per_file, dtype=_TIME_DTYPE).ravel()
    if samples.shape != (assignment.num_files,):
        raise ConfigurationError(
            f"samples_per_file has shape {samples.shape}, expected "
            f"({assignment.num_files},)"
        )
    per_message = (
        dim * cost_model.network_per_float + cost_model.network_latency_per_message
    )
    workers = assignment.worker_slot_matrix()
    arrivals = np.empty(workers.shape, dtype=_TIME_DTYPE)
    for w in range(assignment.num_workers):
        files = assignment.files_of_worker(w)
        compute = (
            float(samples[list(files)].sum())
            * dim
            * cost_model.compute_per_sample_per_param
        )
        for rank, i in enumerate(files):
            k = int(np.searchsorted(workers[i], w))
            arrivals[i, k] = compute + (rank + 1) * per_message
    return arrivals


def perturbed_arrival_times(
    base: np.ndarray,
    workers: np.ndarray,
    extra_delay: dict[int, float],
    never_arrives: set[int],
) -> np.ndarray:
    """Apply realized fault perturbations to a base arrival matrix.

    ``extra_delay`` shifts every message of a worker by its straggler delay;
    ``never_arrives`` (crashes, timeout-dropped stragglers) maps to ``inf``.
    Inputs come from :func:`repro.cluster.faults.arrival_perturbations`.
    """
    arrivals = base.copy()
    for worker, delay in extra_delay.items():
        arrivals[workers == worker] += delay
    for worker in never_arrives:
        arrivals[workers == worker] = np.inf
    return arrivals


class EventDrivenRound:
    """The PS-side event loop: collect arrivals until deadline or quorum."""

    def __init__(self, runtime: AsyncRuntime) -> None:
        self.runtime = runtime

    def collect(
        self, tensor: VoteTensor, arrivals: np.ndarray, topology=None
    ) -> AsyncRoundOutcome:
        """Run the event loop over one round's arrival schedule.

        Processes arrivals in time order (ties broken by (file, slot) for
        determinism), accepting each message unless it is at/after the
        deadline or its file already closed.  Sent-but-rejected slots are
        zeroed in ``tensor`` — the same convention the synchronous straggler
        timeout uses — and recorded as ``"late"`` fault events.  Never-sent
        slots (``inf`` arrivals) are left alone: the injector pass that
        produced them already zeroed (and possibly further perturbed) them.

        With a :class:`~repro.cluster.topology.GroupTopology`, the quorum is
        tracked per *(file, group)* cell instead of per file: each group's
        aggregator closes its share of a file independently once
        ``min(quorum, local copies)`` arrived (clamped, since a group may
        hold fewer than ``quorum`` of a file's replicas), and the file is
        closed when all of its non-empty cells are — the group leaders have
        forwarded their histograms to the root.  Late messages are rejected
        at the group level: a copy bound for an already-closed group is late
        even while other groups of the same file remain open.  Without a
        quorum configured every cell waits for all of its copies, which is
        exactly the flat behavior.
        """
        arrivals = np.asarray(arrivals, dtype=_TIME_DTYPE)
        if arrivals.shape != tensor.workers.shape:
            raise ConfigurationError(
                f"arrival matrix has shape {arrivals.shape}, expected "
                f"{tensor.workers.shape}"
            )
        f, r = arrivals.shape
        quorum = self.runtime.quorum if self.runtime.quorum is not None else r
        if quorum > r:
            raise ConfigurationError(
                f"quorum {quorum} exceeds replication {r}: no file could close"
            )
        deadline = self.runtime.deadline

        # Cell layout: flat rounds have one cell per file needing `quorum`
        # copies; hierarchical rounds have one cell per (file, group) needing
        # min(quorum, local copies).  The loop below only sees cells.
        if topology is None:
            num_groups = 1
            cell_of = np.broadcast_to(
                np.arange(f, dtype=np.int64)[:, None], (f, r)
            )
            cell_quorum = np.full(f, quorum, dtype=np.int64)
        else:
            num_groups = topology.num_groups
            slot_groups = topology.slot_groups(tensor.workers)
            cell_of = np.arange(f, dtype=np.int64)[:, None] * num_groups + slot_groups
            cell_slots = np.bincount(cell_of.ravel(), minlength=f * num_groups)
            cell_quorum = np.minimum(quorum, cell_slots)
        open_cells = np.bincount(
            np.unique(cell_of), minlength=cell_quorum.size
        ).astype(bool)
        cells_left = np.full(f, 0, dtype=np.int64)
        np.add.at(cells_left, np.unique(cell_of) // num_groups, 1)

        # Deterministic heap: (time, seq) with seq in (file, slot) row-major
        # order so simultaneous arrivals process in a reproducible order.
        heap: list[tuple[float, int, int, int]] = [
            (float(arrivals[i, k]), i * r + k, i, k)
            for i in range(f)
            for k in range(r)
            if np.isfinite(arrivals[i, k])
        ]
        heapq.heapify(heap)

        counts = np.zeros(cell_quorum.size, dtype=np.int64)
        accepted = np.zeros((f, r), dtype=bool)
        close_times = np.full(f, np.inf, dtype=_TIME_DTYPE)
        cell_close_times = np.full(cell_quorum.size, np.inf, dtype=_TIME_DTYPE)
        late: list[FaultEvent] = []
        last_accept = 0.0
        deadline_cut = False
        while heap:
            time, _, i, k = heapq.heappop(heap)
            cell = int(cell_of[i, k])
            if time >= deadline:
                deadline_cut = True
                late.append(self._late_event(tensor, i, k, time))
                continue
            if counts[cell] >= cell_quorum[cell]:
                late.append(self._late_event(tensor, i, k, time))
                continue
            accepted[i, k] = True
            counts[cell] += 1
            last_accept = time
            if counts[cell] == cell_quorum[cell]:
                cell_close_times[cell] = time
                cells_left[i] -= 1
                if cells_left[i] == 0:
                    close_times[i] = time

        all_closed = bool((counts >= cell_quorum)[open_cells].all())
        if all_closed:
            round_time = float(close_times.max())
        elif np.isfinite(deadline):
            round_time = float(deadline)
        else:
            # Some slot never arrives and there is no deadline: close the
            # round once the stream is exhausted (see the clock model note).
            round_time = last_accept
        deadline_fired = deadline_cut or (not all_closed and np.isfinite(deadline))

        # Zero only the sent-but-rejected (late) slots.  Never-arrived slots
        # were already zeroed by the synchronous injector pass — and later
        # injectors (message corruption) may have rewritten them since, a
        # composition the sync path defines and deadline=inf must reproduce
        # bit-exactly, so the engine must not touch them again.
        if late:
            tensor.zero_slots(
                np.array([e.file for e in late], dtype=np.int64),
                np.array([e.slot for e in late], dtype=np.int64),
            )
        return AsyncRoundOutcome(
            arrivals=arrivals,
            accepted=accepted,
            round_time=round_time,
            file_close_times=close_times,
            deadline_fired=deadline_fired,
            late_events=tuple(late),
            group_close_times=(
                None if topology is None else cell_close_times.reshape(f, num_groups)
            ),
        )

    @staticmethod
    def _late_event(tensor: VoteTensor, file: int, slot: int, time: float) -> FaultEvent:
        return FaultEvent(
            kind=LATE_KIND,
            worker=int(tensor.workers[file, slot]),
            file=file,
            slot=slot,
            delay=float(time),
            dropped=True,
        )
