"""One-round cluster simulation: honest compute, attack injection, PS view.

:class:`TrainingCluster` binds together the assignment graph, the worker pool,
the Byzantine selector and the attack, and produces for each round the
``file_votes`` structure the parameter server aggregates, along with ground
truth needed by the experiments (true gradients, realized distortion).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.attacks.selection import ByzantineSelector
from repro.cluster.events import (
    AsyncRuntime,
    EventDrivenRound,
    base_arrival_times,
    perturbed_arrival_times,
)
from repro.cluster.faults import (
    FaultContext,
    FaultEvent,
    FaultInjector,
    arrival_perturbations,
    round_duration,
)
from repro.cluster.messages import GradientMessage, RoundResult, TensorRoundResult
from repro.cluster.worker import WorkerPool
from repro.core.backend import DEFAULT_DTYPE
from repro.core.distortion import distorted_files
from repro.exceptions import TrainingError
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.rng import as_generator, derive_seed

__all__ = ["TrainingCluster"]


class TrainingCluster:
    """Simulates the worker side of one synchronous training iteration.

    Parameters
    ----------
    assignment:
        Worker/file assignment graph.
    worker_pool:
        Gradient-computing worker pool (must use the same assignment).
    attack:
        The Byzantine payload generator; ``None`` disables the attack.
    selector:
        Policy choosing which workers are Byzantine each round; ``None``
        means no Byzantine workers.
    seed:
        Base seed for per-round randomness (attack noise, random selection).
    fault_injectors:
        Benign fault models applied to each round's vote tensor after the
        attack (tensor path only).  Each injector receives its own derived
        RNG stream every round, independent of the selector/attack stream,
        so adding or removing an injector never changes the adversary's
        randomness (and vice versa).
    runtime:
        Event-driven round configuration (:class:`AsyncRuntime`).  ``None``
        (the default) keeps the lockstep synchronous round; when set,
        :meth:`run_round_tensor` replays the same compute/attack/fault
        sequence, then runs the PS-side event loop — messages arrive on the
        runtime's cost-model clock (fault delays included) and are accepted
        until the deadline or a per-file quorum fires.  With
        ``deadline=inf`` and no quorum the produced votes are bit-identical
        to the synchronous path.
    topology:
        Optional :class:`~repro.cluster.topology.GroupTopology` for
        hierarchical rounds.  Under the event-driven runtime the quorum then
        closes per (file, group) cell — each group's aggregator stops
        accepting its share of a file independently and rejects later copies
        as group-level ``"late"`` events (see
        :meth:`EventDrivenRound.collect`).  Synchronous rounds are unaffected
        (the topology only shapes the PS-side aggregation, which the
        pipeline owns).
    """

    def __init__(
        self,
        assignment: BipartiteAssignment,
        worker_pool: WorkerPool,
        attack: Attack | None = None,
        selector: ByzantineSelector | None = None,
        seed: int | np.random.Generator | None = 0,
        fault_injectors: Sequence[FaultInjector] = (),
        runtime: AsyncRuntime | None = None,
        topology=None,
    ) -> None:
        if worker_pool.assignment is not assignment and worker_pool.assignment != assignment:
            raise TrainingError("worker pool and cluster use different assignments")
        if (attack is None) != (selector is None):
            raise TrainingError(
                "attack and selector must both be provided or both omitted"
            )
        if (
            runtime is not None
            and runtime.quorum is not None
            and runtime.quorum > assignment.replication
        ):
            raise TrainingError(
                f"runtime quorum {runtime.quorum} exceeds the assignment's "
                f"replication r={assignment.replication}: no file could close"
            )
        if topology is not None and topology.num_workers != assignment.num_workers:
            raise TrainingError(
                f"topology spans {topology.num_workers} workers but the "
                f"assignment has {assignment.num_workers}"
            )
        self.runtime = runtime
        self.topology = topology
        self.assignment = assignment
        self.worker_pool = worker_pool
        self.attack = attack
        self.selector = selector
        self.fault_injectors = tuple(fault_injectors)
        self._seed = seed if isinstance(seed, int) else None
        self._rng = as_generator(seed)
        # Fault streams must stay independent of the round/attack stream even
        # when the cluster is seeded with a live Generator: hash the
        # generator's construction-time state into a fault base seed without
        # consuming any draws from it.
        if self._seed is not None:
            self._fault_seed: int | None = self._seed
        elif self.fault_injectors:
            self._fault_seed = derive_seed(
                "fault-base", repr(self._rng.bit_generator.state)
            )
        else:
            self._fault_seed = None

    def _round_rng(self, iteration: int) -> np.random.Generator:
        if self._seed is None:
            return self._rng
        return as_generator(derive_seed(self._seed, "round", iteration))

    def _fault_rng(self, iteration: int, index: int, kind: str) -> np.random.Generator:
        """Independent per-injector stream (see ``fault_injectors`` above)."""
        assert self._fault_seed is not None  # set whenever injectors exist
        return as_generator(derive_seed(self._fault_seed, "fault", index, kind, iteration))

    def _inject_faults(self, tensor, iteration: int) -> tuple[FaultEvent, ...]:
        events: list[FaultEvent] = []
        for index, injector in enumerate(self.fault_injectors):
            context = FaultContext(
                assignment=self.assignment,
                iteration=iteration,
                rng=self._fault_rng(iteration, index, injector.kind),
            )
            events.extend(injector.inject(tensor, context))
        return tuple(events)

    def reset_faults(self) -> None:
        """Clear stateful injectors (churn state) before reusing the cluster."""
        for injector in self.fault_injectors:
            injector.reset()

    def _select_byzantine(
        self, iteration: int, rng: np.random.Generator
    ) -> tuple[int, ...]:
        """This round's compromised workers (empty when no attack is set)."""
        if self.attack is None or self.selector is None:
            return ()
        return tuple(sorted(self.selector.select(self.assignment, iteration, rng)))

    def _corrupted_files(self, byzantine: tuple[int, ...]) -> tuple[int, ...]:
        """Files whose majority is corrupted by these Byzantine workers."""
        if not byzantine:
            return ()
        return tuple(int(i) for i in distorted_files(self.assignment, byzantine))

    def run_round(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
        iteration: int,
    ) -> RoundResult:
        """Simulate one iteration's worker computations and attack.

        Parameters
        ----------
        params:
            Model parameters broadcast by the PS at the start of the round.
        file_data:
            ``{file: (inputs, labels)}`` for this round's batch partition.
        iteration:
            Zero-based iteration index (drives per-round seeds and selectors).
        """
        if self.fault_injectors:
            raise TrainingError(
                "fault injection is only supported on the tensor round path; "
                "use run_round_tensor"
            )
        if self.runtime is not None:
            raise TrainingError(
                "the event-driven runtime is only supported on the tensor "
                "round path; use run_round_tensor"
            )
        rng = self._round_rng(iteration)
        file_votes, honest, losses = self.worker_pool.honest_returns(params, file_data)

        byzantine = self._select_byzantine(iteration, rng)
        if byzantine:
            context = AttackContext(
                assignment=self.assignment,
                byzantine_workers=byzantine,
                honest_file_gradients=honest,
                iteration=iteration,
                rng=rng,
            )
            for (worker, file_index), payload in self.attack.apply(context).items():
                file_votes[file_index][worker] = payload

        messages = [
            GradientMessage(
                worker=worker,
                file=file_index,
                gradient=gradient,
                is_byzantine=worker in byzantine,
            )
            for file_index, votes in file_votes.items()
            for worker, gradient in votes.items()
        ]
        mean_loss = float(np.mean(list(losses.values()))) if losses else float("nan")
        return RoundResult(
            file_votes=file_votes,
            honest_file_gradients=honest,
            byzantine_workers=byzantine,
            distorted_files=self._corrupted_files(byzantine),
            messages=messages,
            mean_file_loss=mean_loss,
        )

    def run_round_tensor(
        self,
        params: np.ndarray,
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
        iteration: int,
    ) -> TensorRoundResult:
        """Tensor-path analogue of :meth:`run_round` (the trainer's hot path).

        Produces the same round — bit-identical votes, same RNG consumption
        order — packed as a :class:`~repro.core.vote_tensor.VoteTensor`
        instead of the dict-of-dicts, skipping the per-edge Python loops of
        the legacy representation.
        """
        rng = self._round_rng(iteration)
        tensor, honest_matrix, losses = self.worker_pool.honest_returns_tensor(
            params, file_data
        )

        byzantine = self._select_byzantine(iteration, rng)
        if byzantine:
            tensor.mark_byzantine(byzantine)
            context = AttackContext(
                assignment=self.assignment,
                byzantine_workers=byzantine,
                honest_file_gradients={
                    i: honest_matrix[i] for i in range(honest_matrix.shape[0])
                },
                iteration=iteration,
                rng=rng,
                honest_matrix=honest_matrix,
            )
            self.attack.apply_tensor(context, tensor)

        fault_events = self._inject_faults(tensor, iteration)
        mean_loss = float(np.mean(losses)) if losses.size else float("nan")
        if self.runtime is not None:
            return self._finish_event_round(
                tensor, honest_matrix, byzantine, losses, mean_loss,
                fault_events, file_data,
            )
        return TensorRoundResult(
            vote_tensor=tensor,
            honest_matrix=honest_matrix,
            byzantine_workers=byzantine,
            distorted_files=self._corrupted_files(byzantine),
            file_losses=losses,
            mean_file_loss=mean_loss,
            fault_events=fault_events,
            round_time=round_duration(list(fault_events)),
        )

    def _finish_event_round(
        self,
        tensor,
        honest_matrix: np.ndarray,
        byzantine: tuple[int, ...],
        losses: np.ndarray,
        mean_loss: float,
        fault_events: tuple[FaultEvent, ...],
        file_data: dict[int, tuple[np.ndarray, np.ndarray]],
    ) -> TensorRoundResult:
        """PS-side event loop of an async round (see the ``runtime`` docs).

        Payload faults were already applied by the synchronous injector pass
        (identical RNG streams), so this step only *re-times* them: realized
        straggler delays shift arrivals, crashes/timeouts never arrive, and
        the event engine decides which of the remaining messages beat the
        deadline / quorum cutoff.
        """
        runtime = self.runtime
        assert runtime is not None
        samples = np.array(
            [file_data[i][0].shape[0] for i in range(self.assignment.num_files)],
            dtype=DEFAULT_DTYPE,
        )
        base = base_arrival_times(
            self.assignment, runtime.cost_model, tensor.dim, samples
        )
        extra_delay, never_arrives = arrival_perturbations(fault_events)
        arrivals = perturbed_arrival_times(
            base, tensor.workers, extra_delay, never_arrives
        )
        outcome = EventDrivenRound(runtime).collect(
            tensor, arrivals, topology=self.topology
        )
        return TensorRoundResult(
            vote_tensor=tensor,
            honest_matrix=honest_matrix,
            byzantine_workers=byzantine,
            distorted_files=self._corrupted_files(byzantine),
            file_losses=losses,
            mean_file_loss=mean_loss,
            fault_events=fault_events + outcome.late_events,
            round_time=outcome.round_time,
            arrivals=outcome.arrivals,
            accepted=outcome.accepted,
            aggregation_mask=outcome.accepted if runtime.partial else None,
        )
