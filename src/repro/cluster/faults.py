"""Cluster fault injection: stragglers, worker dropout/churn, message corruption.

The paper's simulator assumes a clean synchronous round: every worker returns
every assigned file gradient, instantly and uncorrupted.  Real clusters are
not like that, and the robustness claim only matters if majority voting also
absorbs *benign* faults.  The injectors below perturb a round **after** the
attack has written its payloads, operating directly on the packed
:class:`~repro.core.vote_tensor.VoteTensor` so the PS-side pipelines see the
faults exactly as they would see adversarial returns:

* :class:`StragglerInjector` — a subset of workers is slow each round.  The
  delay is sampled from a deterministic or exponential model; with a timeout
  set, a worker that fails to arrive strictly before it (``delay >=
  timeout``) is abandoned by the PS and its votes are zeroed (a crash-like
  benign fault the vote must out-count).  The simulated round duration is
  the slowest surviving worker.
* :class:`DropoutInjector` — crash-stop churn: each live worker goes down
  with some probability and stays down for ``down_for`` rounds before
  rejoining; a downed worker's votes are zeroed.
* :class:`MessageCorruptionInjector` — each (file, slot) message is
  independently corrupted with some probability: zeroed, scaled, or hit with
  additive Gaussian noise (a torn/bit-flipped payload).

Every injector draws randomness only from the generator handed to
:meth:`FaultInjector.inject`; the simulator derives one independent stream
per injector per round (see ``TrainingCluster``), so enabling or re-ordering
fault injectors never perturbs the attack's RNG stream, and identical seeds
give bit-identical fault sequences.  Each injector's draws are a pure
function of ``(seed, round, shape)`` — never of the realized fault history
or of the tensor's copy-on-write override layout — so fault sequences are
replayable independently of what the attack or the other injectors did.

The event-driven runtime (:mod:`repro.cluster.events`) reuses the same
injectors: payload effects are injected exactly as above, and
:func:`arrival_perturbations` reexpresses the realized events as
arrival-time perturbations (per-worker extra delay, workers whose messages
never arrive) for the discrete-event round engine.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.core.vote_tensor import VoteTensor
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = [
    "FaultContext",
    "FaultEvent",
    "FaultInjector",
    "StragglerInjector",
    "DropoutInjector",
    "MessageCorruptionInjector",
    "arrival_perturbations",
    "round_duration",
]


@dataclass(frozen=True)
class FaultContext:
    """What an injector can see when perturbing one round."""

    assignment: BipartiteAssignment
    iteration: int
    rng: np.random.Generator


@dataclass(frozen=True)
class FaultEvent:
    """One realized fault, recorded for traces and diagnostics.

    Attributes
    ----------
    kind:
        Event kind: ``"straggler"``, ``"dropout"`` or ``"corruption"`` for
        the injectors below, ``"late"`` for a message rejected by the
        event-driven runtime's deadline/quorum cutoff.
    worker:
        Affected worker.  Worker-level faults (stragglers, dropout) always
        record it; message-level faults (corruption, late messages) record
        the *sender* of the affected ``(file, slot)`` message, resolved via
        ``tensor.workers``, so traces can attribute every corrupted or
        discarded payload to a specific worker.
    file:
        Affected file for message-level faults, ``-1`` otherwise.
    slot:
        Replica slot of the affected message within the file's row, recorded
        by the event-runtime's ``"late"`` rejections; ``-1`` otherwise
        (for corruption events the slot is recoverable as
        ``tensor.slot_of(file, worker)``).
    delay:
        Simulated extra latency in seconds (stragglers), or the simulated
        arrival time of a ``"late"`` message; 0 otherwise.
    dropped:
        True when the fault removed the contribution (votes zeroed).
    """

    kind: str
    worker: int = -1
    file: int = -1
    slot: int = -1
    delay: float = 0.0
    dropped: bool = False

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form used by scenario traces (delay hex-exact).

        ``slot`` is omitted when absent (< 0): pre-existing event kinds
        serialize exactly as before, so golden traces recorded without slot
        attribution keep their digests.
        """
        out: dict[str, object] = {
            "kind": self.kind,
            "worker": self.worker,
            "file": self.file,
            "delay": float(self.delay).hex(),
            "dropped": self.dropped,
        }
        if self.slot >= 0:
            out["slot"] = self.slot
        return out


def round_duration(events: "list[FaultEvent]", base: float = 0.0) -> float:
    """Simulated wall-clock of a *synchronous* round: the slowest survivor.

    Workers abandoned at a timeout do not extend the round beyond their
    recorded (already clamped) delay.  This is the legacy lockstep model —
    the PS waits for the slowest surviving worker regardless of quorum.  The
    event-driven runtime does **not** use it: there the round duration comes
    from the engine's clock (deadline/quorum semantics, see
    :mod:`repro.cluster.events`), which under quorum aggregation ends the
    round at the quorum-satisfying arrival rather than the slowest survivor.
    """
    return max((event.delay for event in events), default=0.0) + base


def arrival_perturbations(
    events: "Sequence[FaultEvent]",
) -> tuple[dict[int, float], set[int]]:
    """Reexpress realized fault events as arrival-time perturbations.

    The event-driven runtime injects payload faults through the same
    injectors as the synchronous path (identical RNG streams), then maps the
    realized events onto message timing:

    * a surviving straggler delays every message its worker sends by the
      sampled amount;
    * a dropped straggler (PS timeout) or a crashed worker (dropout) never
      delivers — its messages get an infinite arrival time, which the engine
      zeroes exactly like the synchronous path zeroes abandoned votes;
    * corruption perturbs payloads in flight but not timing.

    Returns ``(extra_delay, never_arrives)``: per-worker added delay in
    simulated seconds, and the set of workers whose messages never arrive.
    """
    extra_delay: dict[int, float] = {}
    never_arrives: set[int] = set()
    for event in events:
        if event.kind == StragglerInjector.kind:
            if event.dropped:
                never_arrives.add(event.worker)
            else:
                extra_delay[event.worker] = (
                    extra_delay.get(event.worker, 0.0) + event.delay
                )
        elif event.kind == DropoutInjector.kind and event.dropped:
            never_arrives.add(event.worker)
    return extra_delay, never_arrives


def _zero_worker_votes(tensor: VoteTensor, worker: int) -> int:
    """Zero every vote the given worker contributed; returns slots touched.

    Routed through the slot API so a lazily replicated tensor only
    copy-on-writes the affected (file, slot) pairs instead of materializing.
    """
    files, slots = np.nonzero(tensor.workers == int(worker))
    tensor.zero_slots(files, slots)
    return int(files.size)


class FaultInjector(abc.ABC):
    """A per-round perturbation of the packed vote tensor."""

    kind: str = "abstract"

    @abc.abstractmethod
    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        """Perturb ``tensor`` in place and return the realized fault events."""

    def reset(self) -> None:
        """Clear any cross-round state so the injector can be reused."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class StragglerInjector(FaultInjector):
    """Slow workers with a configurable delay model and optional PS timeout.

    Parameters
    ----------
    count:
        How many workers straggle each round (drawn uniformly).
    delay_model:
        ``"fixed"`` (every straggler is ``delay`` seconds late) or
        ``"exponential"`` (delays drawn from Exp(mean=``delay``)).
    delay:
        The fixed delay or the exponential mean, in simulated seconds.
    timeout:
        When set, the PS abandons any straggler that does not arrive
        *strictly before* the timeout (``delay >= timeout`` — the deadline
        is exclusive, matching the event engine's deadline comparison): its
        votes are zeroed and its recorded delay is clamped to the timeout.
    """

    kind = "straggler"

    def __init__(
        self,
        count: int,
        delay_model: str = "exponential",
        delay: float = 1.0,
        timeout: float | None = None,
    ) -> None:
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if delay_model not in ("fixed", "exponential"):
            raise ConfigurationError(
                f"unknown delay_model {delay_model!r}; expected 'fixed' or 'exponential'"
            )
        if not np.isfinite(delay) or delay <= 0:
            raise ConfigurationError(f"delay must be positive, got {delay}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        self.count = int(count)
        self.delay_model = delay_model
        self.delay = float(delay)
        self.timeout = None if timeout is None else float(timeout)

    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        K = context.assignment.num_workers
        count = min(self.count, K)
        if count == 0:
            return []
        stragglers = np.sort(context.rng.choice(K, size=count, replace=False))
        if self.delay_model == "fixed":
            delays = np.full(count, self.delay)
        else:
            delays = context.rng.exponential(self.delay, size=count)
        events: list[FaultEvent] = []
        for worker, delay in zip(stragglers, delays):
            # Exclusive deadline: arrival must be strictly before the
            # timeout, so a delay exactly equal to it is abandoned too.
            dropped = self.timeout is not None and delay >= self.timeout
            if dropped:
                _zero_worker_votes(tensor, int(worker))
                delay = self.timeout
            events.append(
                FaultEvent(
                    kind=self.kind,
                    worker=int(worker),
                    delay=float(delay),
                    dropped=bool(dropped),
                )
            )
        return events


class DropoutInjector(FaultInjector):
    """Crash-stop worker churn: workers go down and rejoin after a few rounds.

    Parameters
    ----------
    probability:
        Per-round probability that a live worker crashes.
    down_for:
        Rounds a crashed worker stays down before rejoining (>= 1).
    """

    kind = "dropout"

    def __init__(self, probability: float, down_for: int = 1) -> None:
        if not (0.0 <= probability <= 1.0):
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        if down_for < 1:
            raise ConfigurationError(f"down_for must be >= 1, got {down_for}")
        self.probability = float(probability)
        self.down_for = int(down_for)
        self._down: dict[int, int] = {}

    def reset(self) -> None:
        self._down.clear()

    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        K = context.assignment.num_workers
        # One uniform draw per worker, every round, regardless of who is
        # already down: the RNG consumption is then a pure function of
        # (seed, iteration, K), never of the realized fault history.
        draws = context.rng.random(K)
        events: list[FaultEvent] = []
        for worker in range(K):
            remaining = self._down.get(worker, 0)
            if remaining > 0:
                self._down[worker] = remaining - 1
                if self._down[worker] == 0:
                    del self._down[worker]
            elif self.probability > 0.0 and draws[worker] < self.probability:
                self._down[worker] = self.down_for - 1
                if self._down[worker] == 0:
                    del self._down[worker]
                remaining = self.down_for
            else:
                continue
            _zero_worker_votes(tensor, worker)
            events.append(FaultEvent(kind=self.kind, worker=worker, dropped=True))
        return events


class MessageCorruptionInjector(FaultInjector):
    """Independently corrupt (file, slot) gradient messages in flight.

    Parameters
    ----------
    probability:
        Per-message corruption probability.
    mode:
        ``"zero"`` (payload lost), ``"scale"`` (multiplied by ``factor``,
        e.g. an endianness/overflow bug) or ``"noise"`` (additive Gaussian
        noise of standard deviation ``factor``).
    factor:
        Scale multiplier or noise sigma, depending on ``mode``.
    """

    kind = "corruption"

    def __init__(
        self, probability: float, mode: str = "zero", factor: float = 10.0
    ) -> None:
        if not (0.0 <= probability <= 1.0):
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        if mode not in ("zero", "scale", "noise"):
            raise ConfigurationError(
                f"unknown mode {mode!r}; expected 'zero', 'scale' or 'noise'"
            )
        if not np.isfinite(factor):
            raise ConfigurationError(f"factor must be finite, got {factor}")
        self.probability = float(probability)
        self.mode = mode
        self.factor = float(factor)

    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        f, r, d = tensor.shape
        hit = context.rng.random((f, r)) < self.probability
        if not hit.any():
            return []
        files, slots = np.nonzero(hit)
        if self.mode == "zero":
            tensor.zero_slots(files, slots)
        elif self.mode == "scale":
            tensor.scale_slots(files, slots, self.factor)
        else:
            noise = context.rng.standard_normal((files.size, d)) * self.factor
            tensor.add_to_slots(files, slots, noise)
        # Attribution: each corrupted (file, slot) message records its sender
        # (slot -> worker via tensor.workers) alongside the file, so traces
        # can pin the exact cell; the slot itself is recoverable as
        # ``tensor.slot_of(file, worker)`` and stays out of the event (and
        # its serialized form) so goldens recorded before the event-driven
        # runtime keep their digests.
        return [
            FaultEvent(
                kind=self.kind,
                worker=int(tensor.workers[i, k]),
                file=int(i),
            )
            for i, k in zip(files, slots)
        ]
