"""Cluster fault injection: stragglers, worker dropout/churn, message corruption.

The paper's simulator assumes a clean synchronous round: every worker returns
every assigned file gradient, instantly and uncorrupted.  Real clusters are
not like that, and the robustness claim only matters if majority voting also
absorbs *benign* faults.  The injectors below perturb a round **after** the
attack has written its payloads, operating directly on the packed
:class:`~repro.core.vote_tensor.VoteTensor` so the PS-side pipelines see the
faults exactly as they would see adversarial returns:

* :class:`StragglerInjector` — a subset of workers is slow each round.  The
  delay is sampled from a deterministic or exponential model; with a timeout
  set, a worker whose delay exceeds it is abandoned by the PS and its votes
  are zeroed (a crash-like benign fault the vote must out-count).  The
  simulated round duration is the slowest surviving worker.
* :class:`DropoutInjector` — crash-stop churn: each live worker goes down
  with some probability and stays down for ``down_for`` rounds before
  rejoining; a downed worker's votes are zeroed.
* :class:`MessageCorruptionInjector` — each (file, slot) message is
  independently corrupted with some probability: zeroed, scaled, or hit with
  additive Gaussian noise (a torn/bit-flipped payload).

Every injector draws randomness only from the generator handed to
:meth:`FaultInjector.inject`; the simulator derives one independent stream
per injector per round (see ``TrainingCluster``), so enabling or re-ordering
fault injectors never perturbs the attack's RNG stream, and identical seeds
give bit-identical fault sequences.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.vote_tensor import VoteTensor
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = [
    "FaultContext",
    "FaultEvent",
    "FaultInjector",
    "StragglerInjector",
    "DropoutInjector",
    "MessageCorruptionInjector",
    "round_duration",
]


@dataclass(frozen=True)
class FaultContext:
    """What an injector can see when perturbing one round."""

    assignment: BipartiteAssignment
    iteration: int
    rng: np.random.Generator


@dataclass(frozen=True)
class FaultEvent:
    """One realized fault, recorded for traces and diagnostics.

    Attributes
    ----------
    kind:
        Injector kind (``"straggler"``, ``"dropout"``, ``"corruption"``).
    worker:
        Affected worker, or ``-1`` for message-level faults.
    file:
        Affected file for message-level faults, ``-1`` otherwise.
    delay:
        Simulated extra latency in seconds (stragglers; 0 otherwise).
    dropped:
        True when the fault removed the worker's contribution (votes zeroed).
    """

    kind: str
    worker: int = -1
    file: int = -1
    delay: float = 0.0
    dropped: bool = False

    def as_dict(self) -> dict[str, object]:
        """JSON-friendly form used by scenario traces (delay hex-exact)."""
        return {
            "kind": self.kind,
            "worker": self.worker,
            "file": self.file,
            "delay": float(self.delay).hex(),
            "dropped": self.dropped,
        }


def round_duration(events: "list[FaultEvent]", base: float = 0.0) -> float:
    """Simulated wall-clock of a round: the slowest surviving worker.

    Workers abandoned at a timeout do not extend the round beyond their
    recorded (already clamped) delay.
    """
    return max((event.delay for event in events), default=0.0) + base


def _zero_worker_votes(tensor: VoteTensor, worker: int) -> int:
    """Zero every vote the given worker contributed; returns slots touched.

    Routed through the slot API so a lazily replicated tensor only
    copy-on-writes the affected (file, slot) pairs instead of materializing.
    """
    files, slots = np.nonzero(tensor.workers == int(worker))
    tensor.zero_slots(files, slots)
    return int(files.size)


class FaultInjector(abc.ABC):
    """A per-round perturbation of the packed vote tensor."""

    kind: str = "abstract"

    @abc.abstractmethod
    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        """Perturb ``tensor`` in place and return the realized fault events."""

    def reset(self) -> None:
        """Clear any cross-round state so the injector can be reused."""

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"


class StragglerInjector(FaultInjector):
    """Slow workers with a configurable delay model and optional PS timeout.

    Parameters
    ----------
    count:
        How many workers straggle each round (drawn uniformly).
    delay_model:
        ``"fixed"`` (every straggler is ``delay`` seconds late) or
        ``"exponential"`` (delays drawn from Exp(mean=``delay``)).
    delay:
        The fixed delay or the exponential mean, in simulated seconds.
    timeout:
        When set, a straggler later than this is abandoned: its votes are
        zeroed and its recorded delay is clamped to the timeout.
    """

    kind = "straggler"

    def __init__(
        self,
        count: int,
        delay_model: str = "exponential",
        delay: float = 1.0,
        timeout: float | None = None,
    ) -> None:
        if count < 0:
            raise ConfigurationError(f"count must be non-negative, got {count}")
        if delay_model not in ("fixed", "exponential"):
            raise ConfigurationError(
                f"unknown delay_model {delay_model!r}; expected 'fixed' or 'exponential'"
            )
        if not np.isfinite(delay) or delay <= 0:
            raise ConfigurationError(f"delay must be positive, got {delay}")
        if timeout is not None and timeout <= 0:
            raise ConfigurationError(f"timeout must be positive, got {timeout}")
        self.count = int(count)
        self.delay_model = delay_model
        self.delay = float(delay)
        self.timeout = None if timeout is None else float(timeout)

    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        K = context.assignment.num_workers
        count = min(self.count, K)
        if count == 0:
            return []
        stragglers = np.sort(context.rng.choice(K, size=count, replace=False))
        if self.delay_model == "fixed":
            delays = np.full(count, self.delay)
        else:
            delays = context.rng.exponential(self.delay, size=count)
        events: list[FaultEvent] = []
        for worker, delay in zip(stragglers, delays):
            dropped = self.timeout is not None and delay > self.timeout
            if dropped:
                _zero_worker_votes(tensor, int(worker))
                delay = self.timeout
            events.append(
                FaultEvent(
                    kind=self.kind,
                    worker=int(worker),
                    delay=float(delay),
                    dropped=bool(dropped),
                )
            )
        return events


class DropoutInjector(FaultInjector):
    """Crash-stop worker churn: workers go down and rejoin after a few rounds.

    Parameters
    ----------
    probability:
        Per-round probability that a live worker crashes.
    down_for:
        Rounds a crashed worker stays down before rejoining (>= 1).
    """

    kind = "dropout"

    def __init__(self, probability: float, down_for: int = 1) -> None:
        if not (0.0 <= probability <= 1.0):
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        if down_for < 1:
            raise ConfigurationError(f"down_for must be >= 1, got {down_for}")
        self.probability = float(probability)
        self.down_for = int(down_for)
        self._down: dict[int, int] = {}

    def reset(self) -> None:
        self._down.clear()

    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        K = context.assignment.num_workers
        # One uniform draw per worker, every round, regardless of who is
        # already down: the RNG consumption is then a pure function of
        # (seed, iteration, K), never of the realized fault history.
        draws = context.rng.random(K)
        events: list[FaultEvent] = []
        for worker in range(K):
            remaining = self._down.get(worker, 0)
            if remaining > 0:
                self._down[worker] = remaining - 1
                if self._down[worker] == 0:
                    del self._down[worker]
            elif self.probability > 0.0 and draws[worker] < self.probability:
                self._down[worker] = self.down_for - 1
                if self._down[worker] == 0:
                    del self._down[worker]
                remaining = self.down_for
            else:
                continue
            _zero_worker_votes(tensor, worker)
            events.append(FaultEvent(kind=self.kind, worker=worker, dropped=True))
        return events


class MessageCorruptionInjector(FaultInjector):
    """Independently corrupt (file, slot) gradient messages in flight.

    Parameters
    ----------
    probability:
        Per-message corruption probability.
    mode:
        ``"zero"`` (payload lost), ``"scale"`` (multiplied by ``factor``,
        e.g. an endianness/overflow bug) or ``"noise"`` (additive Gaussian
        noise of standard deviation ``factor``).
    factor:
        Scale multiplier or noise sigma, depending on ``mode``.
    """

    kind = "corruption"

    def __init__(
        self, probability: float, mode: str = "zero", factor: float = 10.0
    ) -> None:
        if not (0.0 <= probability <= 1.0):
            raise ConfigurationError(
                f"probability must be in [0, 1], got {probability}"
            )
        if mode not in ("zero", "scale", "noise"):
            raise ConfigurationError(
                f"unknown mode {mode!r}; expected 'zero', 'scale' or 'noise'"
            )
        if not np.isfinite(factor):
            raise ConfigurationError(f"factor must be finite, got {factor}")
        self.probability = float(probability)
        self.mode = mode
        self.factor = float(factor)

    def inject(self, tensor: VoteTensor, context: FaultContext) -> list[FaultEvent]:
        f, r, d = tensor.shape
        hit = context.rng.random((f, r)) < self.probability
        if not hit.any():
            return []
        files, slots = np.nonzero(hit)
        if self.mode == "zero":
            tensor.zero_slots(files, slots)
        elif self.mode == "scale":
            tensor.scale_slots(files, slots, self.factor)
        else:
            noise = context.rng.standard_normal((files.size, d)) * self.factor
            tensor.add_to_slots(files, slots, noise)
        return [
            FaultEvent(
                kind=self.kind,
                worker=int(tensor.workers[i, k]),
                file=int(i),
            )
            for i, k in zip(files, slots)
        ]
