"""Simulated PS/worker cluster.

The paper runs on an MPI cluster of EC2 instances; offline we simulate the
cluster in-process (see DESIGN.md).  The simulation preserves exactly the
quantities the paper's claims are about — which worker returns which file
gradient, which returns are Byzantine, what the PS aggregates — and adds an
explicit cost model so the per-iteration time breakdown of Figure 12 can be
reproduced.
"""

from repro.cluster.messages import GradientMessage, RoundResult, TensorRoundResult
from repro.cluster.server import ParameterServer
from repro.cluster.simulator import TrainingCluster
from repro.cluster.timing import CostModel, IterationTiming, estimate_iteration_timing
from repro.cluster.topology import GroupTopology, hierarchical_majority_vote
from repro.cluster.worker import WorkerPool

__all__ = [
    "GradientMessage",
    "RoundResult",
    "TensorRoundResult",
    "WorkerPool",
    "ParameterServer",
    "TrainingCluster",
    "CostModel",
    "IterationTiming",
    "estimate_iteration_timing",
    "GroupTopology",
    "hierarchical_majority_vote",
]
