"""Message types exchanged between workers and the parameter server."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.cluster.faults import FaultEvent
from repro.core.vote_tensor import VoteTensor

__all__ = ["GradientMessage", "RoundResult", "TensorRoundResult"]


@dataclass(frozen=True)
class GradientMessage:
    """One worker's return for one file (paper notation ``ĝ^{(j)}_{t,i}``).

    Attributes
    ----------
    worker:
        Sender worker index ``j``.
    file:
        File index ``i`` this gradient claims to correspond to.
    gradient:
        The returned vector (honest gradient or adversarial payload).
    is_byzantine:
        Bookkeeping flag recorded by the simulator (the PS never sees it);
        used by tests and diagnostics only.
    arrival_time:
        Simulated arrival time at the PS (seconds since the round's
        broadcast), stamped by the event-driven runtime; ``None`` on the
        synchronous path, ``inf`` for messages that were never sent
        (crashed / timed-out workers).
    """

    worker: int
    file: int
    gradient: np.ndarray
    is_byzantine: bool = False
    arrival_time: float | None = None


@dataclass
class RoundResult:
    """Everything produced by one simulated training round.

    Attributes
    ----------
    file_votes:
        ``{file: {worker: gradient}}`` — the PS-side view of the returns.
    honest_file_gradients:
        The true per-file gradients (ground truth for analysis).
    byzantine_workers:
        The compromised workers of this round.
    distorted_files:
        Files whose majority vote is corrupted this round (those where at
        least ``r'`` copies were Byzantine).
    messages:
        Flat list of all gradient messages (with bookkeeping flags).
    mean_file_loss:
        Average training loss over the files of the round's batch.
    """

    file_votes: dict[int, dict[int, np.ndarray]]
    honest_file_gradients: dict[int, np.ndarray]
    byzantine_workers: tuple[int, ...]
    distorted_files: tuple[int, ...]
    messages: list[GradientMessage] = field(default_factory=list)
    mean_file_loss: float = float("nan")

    @property
    def distortion_fraction(self) -> float:
        """Realized ``ε̂`` of the round (corrupted files / total files)."""
        total = len(self.file_votes)
        return len(self.distorted_files) / total if total else 0.0


@dataclass
class TensorRoundResult:
    """One simulated round in the contiguous :class:`VoteTensor` representation.

    This is the fast-path analogue of :class:`RoundResult`: instead of the
    ``{file: {worker: gradient}}`` dict and a flat message list it carries the
    packed ``(f, r, d)`` tensor, the ``(f, d)`` ground-truth matrix and the
    ``(f,)`` loss vector.  :meth:`to_round_result` materializes the legacy
    representation on demand (analysis, diagnostics, tests).

    Attributes
    ----------
    vote_tensor:
        The PS-side view of the returns (attacked slots already overwritten).
    honest_matrix:
        True per-file gradients stacked in file order (ground truth).
    byzantine_workers:
        The compromised workers of this round.
    distorted_files:
        Files whose majority vote is corrupted this round.
    file_losses:
        Per-file training loss (file order).
    mean_file_loss:
        Average training loss over the round's files.
    fault_events:
        Benign faults injected this round (stragglers, dropout, corruption),
        plus the event runtime's ``"late"`` rejections.
    round_time:
        Simulated round duration in seconds.  Synchronous rounds use the
        legacy model (slowest surviving worker; 0 when no straggler model is
        active); event-driven rounds report the engine clock at round close
        (last quorum-satisfying arrival, else the deadline).
    arrivals:
        Event runtime only: ``(f, r)`` simulated arrival time of each
        message (``inf`` = never sent); ``None`` on the synchronous path.
    accepted:
        Event runtime only: ``(f, r)`` bool mask of the messages the PS
        accepted before its deadline/quorum cutoff; ``None`` otherwise.
    aggregation_mask:
        The mask the aggregation pipelines should apply — ``accepted`` when
        the runtime's *partial* mode is on, else ``None`` (missing slots
        then vote as zeros, the synchronous convention).
    """

    vote_tensor: VoteTensor
    honest_matrix: np.ndarray
    byzantine_workers: tuple[int, ...]
    distorted_files: tuple[int, ...]
    file_losses: np.ndarray
    mean_file_loss: float = float("nan")
    fault_events: tuple[FaultEvent, ...] = ()
    round_time: float = 0.0
    arrivals: np.ndarray | None = None
    accepted: np.ndarray | None = None
    aggregation_mask: np.ndarray | None = None

    @property
    def dropped_workers(self) -> tuple[int, ...]:
        """Workers whose contribution was lost to a benign fault this round."""
        return tuple(
            sorted({e.worker for e in self.fault_events if e.dropped and e.worker >= 0})
        )

    @property
    def distortion_fraction(self) -> float:
        """Realized ``ε̂`` of the round (corrupted files / total files)."""
        total = self.vote_tensor.num_files
        return len(self.distorted_files) / total if total else 0.0

    def to_round_result(self) -> RoundResult:
        """Materialize the legacy dict-of-dicts :class:`RoundResult`."""
        file_votes = self.vote_tensor.to_file_votes()
        byzantine = set(self.byzantine_workers)
        messages = [
            GradientMessage(
                worker=worker,
                file=file_index,
                gradient=gradient,
                is_byzantine=worker in byzantine,
                arrival_time=(
                    None
                    if self.arrivals is None
                    else float(
                        self.arrivals[
                            file_index, self.vote_tensor.slot_of(file_index, worker)
                        ]
                    )
                ),
            )
            for file_index, votes in file_votes.items()
            for worker, gradient in votes.items()
        ]
        honest = {
            i: self.honest_matrix[i] for i in range(self.honest_matrix.shape[0])
        }
        return RoundResult(
            file_votes=file_votes,
            honest_file_gradients=honest,
            byzantine_workers=self.byzantine_workers,
            distorted_files=self.distorted_files,
            messages=messages,
            mean_file_loss=self.mean_file_loss,
        )
