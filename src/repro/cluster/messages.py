"""Message types exchanged between workers and the parameter server."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["GradientMessage", "RoundResult"]


@dataclass(frozen=True)
class GradientMessage:
    """One worker's return for one file (paper notation ``ĝ^{(j)}_{t,i}``).

    Attributes
    ----------
    worker:
        Sender worker index ``j``.
    file:
        File index ``i`` this gradient claims to correspond to.
    gradient:
        The returned vector (honest gradient or adversarial payload).
    is_byzantine:
        Bookkeeping flag recorded by the simulator (the PS never sees it);
        used by tests and diagnostics only.
    """

    worker: int
    file: int
    gradient: np.ndarray
    is_byzantine: bool = False


@dataclass
class RoundResult:
    """Everything produced by one simulated training round.

    Attributes
    ----------
    file_votes:
        ``{file: {worker: gradient}}`` — the PS-side view of the returns.
    honest_file_gradients:
        The true per-file gradients (ground truth for analysis).
    byzantine_workers:
        The compromised workers of this round.
    distorted_files:
        Files whose majority vote is corrupted this round (those where at
        least ``r'`` copies were Byzantine).
    messages:
        Flat list of all gradient messages (with bookkeeping flags).
    mean_file_loss:
        Average training loss over the files of the round's batch.
    """

    file_votes: dict[int, dict[int, np.ndarray]]
    honest_file_gradients: dict[int, np.ndarray]
    byzantine_workers: tuple[int, ...]
    distorted_files: tuple[int, ...]
    messages: list[GradientMessage] = field(default_factory=list)
    mean_file_loss: float = float("nan")

    @property
    def distortion_fraction(self) -> float:
        """Realized ``ε̂`` of the round (corrupted files / total files)."""
        total = len(self.file_votes)
        return len(self.distorted_files) / total if total else 0.0
