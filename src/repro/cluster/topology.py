"""Hierarchical two-level aggregation: worker groups + a root merge.

Flat majority voting makes the parameter server touch every one of the
``f x r`` replica payloads in a single kernel invocation.  At large
replication this is both a wall-clock and a peak-memory problem: the flat
dense kernel materializes an ``O(f . r . d)`` comparison temporary, and a
single aggregator must hold the whole round.  A *group topology* splits the
``K`` workers into ``G`` groups, votes each group's sub-round locally
(level 1), and forwards only each group's tiny per-file class histogram —
``(anchor slot, count)`` pairs, typically one per file — to a root
aggregator (level 2) that merges histograms by payload content and picks the
global winner.

Bit-identity with the flat path
-------------------------------

The exact-equality vote has a crucial compositional property: the global
bit-equality classes of a file's ``r`` replicas are the disjoint union of
each group's local classes, so merging local histograms by *content* (not by
local winner — a group's runner-up may be the global winner) recovers the
exact global class sizes, and a class's smallest global slot is always one
of its local anchors.  The root therefore resolves the same winner, count
and tie-break (largest class, then smallest slot) as the flat kernel —
:func:`hierarchical_majority_vote` is property-tested bit-identical against
:func:`~repro.aggregation.majority.majority_vote_votetensor` and is *not* an
approximation.

Forwarding full histograms instead of single local winners matters: with
payloads ``A, B, B`` split as groups ``{A, B} | {B}``, winner-only
forwarding would lose one ``B`` vote and flip the aggregate.

Per-level adversary budgets
---------------------------

:class:`GroupTopology` carries two tolerated-adversary budgets: ``q_group``
(per group) and ``q_root`` (among the group leaders).  Because the
hierarchical vote is bit-identical to the flat vote, robustness *composes*:
any placement of ``q_total = q_group * num_groups`` adversaries that
respects the per-group budget yields the same aggregate as the flat path,
and recovers the honest gradient whenever the flat majority bound holds —
the property test in ``tests/test_topology.py`` exercises exactly this.

Memory
------

Level 1 runs the existing labeling kernel per group on lazy slot-subset
views (copy-on-write — no replica cube is densified) or on dense column
bands, and both levels stream coordinate blocks when ``block_size`` is set,
so the peak temporary is ``O(f . r_g . block)`` for a group's local
replication ``r_g ~ r / G`` instead of the flat kernel's ``O(f . r . d)``.
"""

from __future__ import annotations

import numpy as np

from repro.aggregation.majority import (
    _accumulate_hashes,
    _bit_label_matrix,
    _class_sizes,
    _reference_exact_majority,
    _rows_equal,
    majority_vote_votetensor,
    validate_block_size,
)
from repro.core.backend import bit_view_dtype
from repro.exceptions import AggregationError, ConfigurationError

__all__ = ["GroupTopology", "hierarchical_majority_vote"]


class GroupTopology:
    """Contiguous balanced partition of the workers into voting groups.

    Parameters
    ----------
    num_workers:
        Cluster size ``K``.
    num_groups:
        Number of groups ``G`` (``1 <= G <= K``).  Workers are split into
        contiguous, balanced groups (sizes differ by at most one), matching
        the rack/zone locality a real deployment would exploit.
    q_group:
        Tolerated adversaries *per group* (level-1 budget).
    q_root:
        Tolerated adversarial group leaders at the root (level-2 budget).
    """

    def __init__(
        self,
        num_workers: int,
        num_groups: int,
        q_group: int = 0,
        q_root: int = 0,
    ) -> None:
        num_workers = int(num_workers)
        num_groups = int(num_groups)
        if num_workers < 1:
            raise ConfigurationError(
                f"num_workers must be positive, got {num_workers}"
            )
        if not 1 <= num_groups <= num_workers:
            raise ConfigurationError(
                f"num_groups must be in [1, {num_workers}], got {num_groups}"
            )
        if q_group < 0 or q_root < 0:
            raise ConfigurationError(
                f"adversary budgets must be non-negative, got "
                f"q_group={q_group}, q_root={q_root}"
            )
        self.num_workers = num_workers
        self.num_groups = num_groups
        self.q_group = int(q_group)
        self.q_root = int(q_root)
        members = np.array_split(np.arange(num_workers, dtype=np.int64), num_groups)
        self._members = tuple(np.ascontiguousarray(m) for m in members)
        self.group_of = np.empty(num_workers, dtype=np.int64)
        for g, workers in enumerate(self._members):
            self.group_of[workers] = g

    @property
    def q_total(self) -> int:
        """Total tolerated adversaries across all groups."""
        return self.q_group * self.num_groups

    def workers_of_group(self, group: int) -> np.ndarray:
        """The (sorted, contiguous) worker indices of one group."""
        if not 0 <= group < self.num_groups:
            raise ConfigurationError(
                f"group must be in [0, {self.num_groups}), got {group}"
            )
        return self._members[group].copy()

    def slot_groups(self, workers: np.ndarray) -> np.ndarray:
        """Group id of every slot of an ``(f, r)`` worker-slot matrix."""
        workers = np.asarray(workers)
        if workers.size and (
            workers.min() < 0 or workers.max() >= self.num_workers
        ):
            raise ConfigurationError(
                f"worker indices out of range for a {self.num_workers}-worker "
                "topology"
            )
        return self.group_of[workers]

    def group_counts(self, byzantine_workers) -> np.ndarray:
        """``(G,)`` adversary count per group for a worker set."""
        workers = np.asarray(sorted(set(int(w) for w in byzantine_workers)), dtype=np.int64)
        if workers.size and (workers.min() < 0 or workers.max() >= self.num_workers):
            raise ConfigurationError(
                f"byzantine worker out of range for a {self.num_workers}-worker topology"
            )
        return np.bincount(self.group_of[workers], minlength=self.num_groups)

    def admits(self, byzantine_workers) -> bool:
        """True when every group's adversary count is within ``q_group``."""
        return bool((self.group_counts(byzantine_workers) <= self.q_group).all())

    def describe(self) -> dict[str, int]:
        """Short description used in experiment reports."""
        return {
            "num_workers": self.num_workers,
            "num_groups": self.num_groups,
            "q_group": self.q_group,
            "q_root": self.q_root,
            "q_total": self.q_total,
        }

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, GroupTopology):
            return NotImplemented
        return (
            self.num_workers == other.num_workers
            and self.num_groups == other.num_groups
            and self.q_group == other.q_group
            and self.q_root == other.q_root
        )

    def __hash__(self) -> int:
        return hash((self.num_workers, self.num_groups, self.q_group, self.q_root))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"GroupTopology(num_workers={self.num_workers}, "
            f"num_groups={self.num_groups}, q_group={self.q_group}, "
            f"q_root={self.q_root})"
        )


# --------------------------------------------------------------------------- #
# Level 1: per-(file band, group) local class histograms
# --------------------------------------------------------------------------- #
class _EntryTable:
    """Growable columnar store of local class-histogram entries.

    One entry is one bit-equality class a group observed for one file:
    ``(file, global anchor slot, member count, is-base-content flag, hash)``.
    The hash column is only meaningful for lazy override classes (whose
    level-1 kernel already hashed them); dense entries are hashed at the
    root, and only the few that mismatch the file's slot-0 payload.
    """

    def __init__(self) -> None:
        self.file: list[np.ndarray] = []
        self.slot: list[np.ndarray] = []
        self.count: list[np.ndarray] = []
        self.is_base: list[np.ndarray] = []
        self.hash: list[np.ndarray] = []

    def add(self, file, slot, count, is_base, hashes) -> None:
        n = len(file)
        self.file.append(np.asarray(file, dtype=np.int64))
        self.slot.append(np.asarray(slot, dtype=np.int64))
        self.count.append(np.asarray(count, dtype=np.int64))
        if isinstance(is_base, bool):
            is_base = np.full(n, is_base, dtype=bool)
        self.is_base.append(np.asarray(is_base, dtype=bool))
        if hashes is None:
            hashes = np.zeros(n, dtype=np.uint64)
        self.hash.append(np.asarray(hashes, dtype=np.uint64))

    def frozen(self) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        return (
            np.concatenate(self.file),
            np.concatenate(self.slot),
            np.concatenate(self.count),
            np.concatenate(self.is_base),
            np.concatenate(self.hash),
        )


def _dense_band_values(values: np.ndarray, files: np.ndarray, cols: np.ndarray) -> np.ndarray:
    """One group's ``(fc, rc, d)`` sub-cube, as a view when the band is contiguous."""
    if files.size == values.shape[0] and cols.size and int(cols[-1] - cols[0]) == cols.size - 1:
        return values[:, int(cols[0]) : int(cols[0]) + cols.size, :]
    return values[np.ix_(files, cols)]


def _dense_cell(values, files, cols, entries, block_size) -> None:
    """Local classes of one dense (file band, group) cell via the flat labeler."""
    sub = _dense_band_values(values, files, cols)
    rc = cols.size
    labels = _bit_label_matrix(sub, block_size=block_size)
    sizes = _class_sizes(labels)
    fi, sl = np.nonzero(labels == np.arange(rc)[None, :])
    keep = sizes[fi, sl] > 0
    fi, sl = fi[keep], sl[keep]
    entries.add(files[fi], cols[sl], sizes[fi, sl], False, None)


def _lazy_cell(tensor, files, cols, entries, fallback, d, block_size, view) -> None:
    """Local classes of one lazy (file band, group) cell — COW views, no densify.

    Mirrors the flat lazy kernel on the group's slot-subset view: overridden
    slots still equal to the base payload count toward the base class; the
    rest are hash-grouped (collision-verified) into override classes.
    """
    sub = tensor.slot_subset(files, cols)
    fc, rc, _ = sub.shape
    o_files, o_slots = sub.overridden_slots()  # row-major: file asc, slot asc
    if o_files.size == 0:
        entries.add(files, np.full(fc, cols[0]), np.full(fc, rc), True, None)
        return

    def sub_bits(files_, slots_):
        return lambda lo, hi: sub.read_slots_block(files_, slots_, lo, hi).view(view)

    eq_base = _rows_equal(
        sub_bits(o_files, o_slots),
        lambda lo, hi: np.ascontiguousarray(sub.base_block(lo, hi)[o_files]).view(view),
        o_files.size,
        d,
        block_size,
    )
    ne = np.nonzero(~eq_base)[0]
    ne_f, ne_s = o_files[ne], o_slots[ne]
    ne_mask = np.zeros((fc, rc), dtype=bool)
    ne_mask[ne_f, ne_s] = True
    base_count = rc - ne_mask.sum(axis=1)
    hasb = np.nonzero(base_count > 0)[0]
    if hasb.size:
        base_anchor = np.argmax(~ne_mask[hasb], axis=1)  # first base-content slot
        entries.add(files[hasb], cols[base_anchor], base_count[hasb], True, None)
    if ne.size == 0:
        return
    hashes = _accumulate_hashes(sub_bits(ne_f, ne_s), ne.size, d, block_size)
    # Stable (file, hash) sort; ties keep the row-major slot order, so each
    # group's first member is its smallest local slot — the class anchor.
    order = np.lexsort((hashes, ne_f))
    sf, sh, ss = ne_f[order], hashes[order], ne_s[order]
    starts = np.empty(order.size, dtype=bool)
    starts[0] = True
    starts[1:] = (sf[1:] != sf[:-1]) | (sh[1:] != sh[:-1])
    group = np.cumsum(starts) - 1
    first = np.nonzero(starts)[0]
    member = ~starts
    if member.any():
        anchor = order[first][group]
        verified = _rows_equal(
            sub_bits(ne_f[order[member]], ne_s[order[member]]),
            sub_bits(ne_f[anchor[member]], ne_s[anchor[member]]),
            int(member.sum()),
            d,
            block_size,
        )
        if not verified.all():
            # 64-bit hash collision: recompute the affected files exactly at
            # the root instead of trusting the merged histogram.
            bad = np.zeros(member.size, dtype=bool)
            bad[np.nonzero(member)[0][~verified]] = True
            fallback[files[np.unique(sf[bad])]] = True
    entries.add(files[sf[first]], cols[ss[first]], np.bincount(group), False, sh[first])


# --------------------------------------------------------------------------- #
# Level 2: root merge of the group histograms
# --------------------------------------------------------------------------- #
def hierarchical_majority_vote(
    tensor, topology: GroupTopology, block_size: int | None = None
) -> tuple[np.ndarray, np.ndarray]:
    """Two-level exact majority vote over a :class:`GroupTopology`.

    Level 1 votes each group's sub-round with the existing labeling kernel —
    on lazy copy-on-write slot-subset views for COW tensors (no replica cube
    is ever densified) or dense column bands — producing per-file local class
    histograms.  Level 2 merges the histograms by payload content: the base
    class merges structurally (lazy tensors), dense group anchors are
    compared against the file's slot-0 payload, and the residual classes
    (attacked payloads) merge by collision-verified 64-bit hash.  Any
    verification failure demotes the affected file to an exact per-file
    ``tobytes`` recount, so a hash collision can never corrupt the result.

    Returns the same ``(winners, counts)`` as
    :func:`~repro.aggregation.majority.majority_vote_votetensor` with
    ``tolerance=0`` — bit-identical, by the class-decomposition argument in
    the module docstring.  ``block_size`` streams every payload-touching
    stage in coordinate blocks (see the flat kernels).
    """
    block_size = validate_block_size(block_size)
    f, r, d = tensor.shape
    if r == 0:
        raise AggregationError("majority vote needs at least one vote")
    workers = tensor.workers
    if workers.size and (
        int(workers.min()) < 0 or int(workers.max()) >= topology.num_workers
    ):
        raise ConfigurationError(
            f"vote tensor references workers outside the "
            f"{topology.num_workers}-worker topology"
        )
    if d == 0 or r == 1 or topology.num_groups == 1 or f == 0:
        # Degenerate shapes: one group (or one slot) is the flat vote.
        return majority_vote_votetensor(tensor, 0.0, block_size=block_size)

    lazy = bool(getattr(tensor, "is_lazy", False))
    view = bit_view_dtype(tensor.dtype)
    slot_groups = topology.group_of[workers]  # (f, r)
    entries = _EntryTable()
    fallback = np.zeros(f, dtype=bool)

    # ---- level 1: group the files into signature bands (files whose slots
    # map to groups identically), so each (band, group) cell is rectangular.
    signatures, inverse = np.unique(slot_groups, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    dense_values = None if lazy else tensor.values  # repro-lint: disable=COW-001 (dense dispatch: .values is a no-copy view for non-lazy tensors)
    for c in range(signatures.shape[0]):
        files = np.nonzero(inverse == c)[0]
        row = signatures[c]
        for g in np.unique(row):
            cols = np.nonzero(row == g)[0]
            if lazy:
                _lazy_cell(tensor, files, cols, entries, fallback, d, block_size, view)
            else:
                _dense_cell(dense_values, files, cols, entries, block_size)

    e_file, e_slot, e_count, e_base, e_hash = entries.frozen()

    def rows_bits(files_, slots_):
        return lambda lo, hi: tensor.read_slots_block(files_, slots_, lo, hi).view(view)

    # ---- level 2, phase 1: the reference class.  Lazy tensors merge base
    # entries structurally (shared honest payload, no comparison needed);
    # dense tensors compare every group anchor against the file's slot-0
    # payload, which settles a fully honest round with zero hashing.
    class0_count = np.zeros(f, dtype=np.int64)
    class0_slot = np.full(f, r, dtype=np.int64)
    if lazy:
        base_idx = np.nonzero(e_base)[0]
        np.add.at(class0_count, e_file[base_idx], e_count[base_idx])
        np.minimum.at(class0_slot, e_file[base_idx], e_slot[base_idx])
        residual = np.nonzero(~e_base)[0]
    else:
        is_ref = e_slot == 0
        class0_count[e_file[is_ref]] = e_count[is_ref]
        class0_slot[e_file[is_ref]] = 0
        nonref = np.nonzero(~is_ref)[0]
        if nonref.size:
            eq_ref = _rows_equal(
                rows_bits(e_file[nonref], e_slot[nonref]),
                rows_bits(e_file[nonref], np.zeros(nonref.size, dtype=np.int64)),
                nonref.size,
                d,
                block_size,
            )
            np.add.at(class0_count, e_file[nonref[eq_ref]], e_count[nonref[eq_ref]])
            residual = nonref[~eq_ref]
        else:
            residual = nonref

    # ---- level 2, phase 2: merge the residual (attacked) classes by
    # collision-verified hash; the class anchor is its smallest global slot.
    best = np.full(f, -1, dtype=np.int64)
    has0 = class0_count > 0
    best[has0] = class0_count[has0] * (r + 1) - class0_slot[has0]
    if residual.size:
        rf, rs, rc_ = e_file[residual], e_slot[residual], e_count[residual]
        rh = e_hash[residual]
        if not lazy:
            rh = _accumulate_hashes(rows_bits(rf, rs), residual.size, d, block_size)
        order = np.lexsort((rs, rh, rf))
        sf, sh, ss, sc = rf[order], rh[order], rs[order], rc_[order]
        starts = np.empty(order.size, dtype=bool)
        starts[0] = True
        starts[1:] = (sf[1:] != sf[:-1]) | (sh[1:] != sh[:-1])
        run = np.cumsum(starts) - 1
        first = np.nonzero(starts)[0]
        member = ~starts
        if member.any():
            anchor_pos = first[run]
            verified = _rows_equal(
                rows_bits(sf[member], ss[member]),
                rows_bits(sf[anchor_pos[member]], ss[anchor_pos[member]]),
                int(member.sum()),
                d,
                block_size,
            )
            if not verified.all():
                bad = np.zeros(member.size, dtype=bool)
                bad[np.nonzero(member)[0][~verified]] = True
                fallback[np.unique(sf[bad])] = True
        run_count = np.bincount(run, weights=sc).astype(np.int64)
        run_file, run_slot = sf[first], ss[first]
        np.maximum.at(best, run_file, run_count * (r + 1) - run_slot)

    # ---- winner resolution: largest class, smallest slot on ties —
    # the flat kernel's exact tie-break, recovered from the packed score.
    win_count = (best + r) // (r + 1)
    win_slot = win_count * (r + 1) - best
    winners = tensor.read_slots(np.arange(f), win_slot)
    counts = win_count

    fb = np.nonzero(fallback)[0]
    if fb.size:
        mats = tensor.materialize_files(fb)
        for pos, i in enumerate(fb):
            winner, count = _reference_exact_majority(mats[pos])
            winners[i] = winner
            counts[i] = count
    return winners, counts
