"""A small, from-scratch neural-network library on numpy.

This substrate replaces PyTorch in the reproduction (see DESIGN.md): it
provides layers with explicit forward/backward passes, losses, models with
flat parameter/gradient views (what the distributed simulator exchanges),
an SGD-with-momentum optimizer and the learning-rate schedules used in the
paper's appendix.
"""

from repro.nn.initializers import glorot_uniform, he_normal, zeros_init
from repro.nn.layers import (
    Layer,
    Dense,
    ReLU,
    Tanh,
    Flatten,
    Dropout,
    BatchNorm,
    Conv2D,
    MaxPool2D,
    ResidualDenseBlock,
)
from repro.nn.losses import Loss, SoftmaxCrossEntropy, MeanSquaredError
from repro.nn.metrics import top1_accuracy, cross_entropy_loss
from repro.nn.models import Sequential, build_mlp, build_cnn, build_resnet_lite
from repro.nn.optim import SGD, LearningRateSchedule, StepDecaySchedule, ConstantSchedule

__all__ = [
    "glorot_uniform",
    "he_normal",
    "zeros_init",
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Conv2D",
    "MaxPool2D",
    "ResidualDenseBlock",
    "Loss",
    "SoftmaxCrossEntropy",
    "MeanSquaredError",
    "Sequential",
    "build_mlp",
    "build_cnn",
    "build_resnet_lite",
    "SGD",
    "LearningRateSchedule",
    "StepDecaySchedule",
    "ConstantSchedule",
    "top1_accuracy",
    "cross_entropy_loss",
]
