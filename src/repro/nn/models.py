"""Models: a Sequential container and the architectures used in experiments.

The distributed simulator exchanges gradients as flat vectors, so the
container exposes :meth:`Sequential.get_flat_params`,
:meth:`Sequential.set_flat_params` and :meth:`Sequential.flat_gradient`.
Parameter writes are in-place so composite layers (residual blocks) that hold
references to sub-layer arrays stay consistent.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.backend import DEFAULT_DTYPE, resolve_dtype
from repro.exceptions import ConfigurationError
from repro.nn.layers import (
    BatchNorm,
    Conv2D,
    Dense,
    Flatten,
    Layer,
    MaxPool2D,
    ReLU,
    ResidualDenseBlock,
)
from repro.nn.losses import Loss
from repro.utils.rng import as_generator

__all__ = ["Sequential", "build_mlp", "build_cnn", "build_resnet_lite"]


class Sequential:
    """A plain feed-forward stack of layers.

    Parameters
    ----------
    layers:
        The layers in execution order.
    name:
        Label used in experiment reports.
    """

    def __init__(self, layers: Sequence[Layer], name: str = "sequential") -> None:
        if len(layers) == 0:
            raise ConfigurationError("a model needs at least one layer")
        self.layers = list(layers)
        self.name = str(name)

    @property
    def dtype(self) -> np.dtype:
        """The model's working dtype, read off the first parameter array.

        Parameterless models report the backend default.  Mixed-dtype stacks
        are not supported by the builders, so one probe suffices.
        """
        for layer in self.layers:
            for _, array in layer.parameter_items():
                return array.dtype
        return DEFAULT_DTYPE

    # -- forward / backward ------------------------------------------------
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Run the forward pass through every layer."""
        out = x
        for layer in self.layers:
            out = layer.forward(out, training=training)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate from the output gradient; returns the input gradient."""
        grad = grad_output
        for layer in reversed(self.layers):
            grad = layer.backward(grad)
        return grad

    def predict(self, x: np.ndarray) -> np.ndarray:
        """Evaluation-mode forward pass."""
        return self.forward(x, training=False)

    # -- parameter plumbing ----------------------------------------------------
    def parameter_arrays(self) -> list[np.ndarray]:
        """All parameter arrays in deterministic (layer, name) order."""
        arrays: list[np.ndarray] = []
        for layer in self.layers:
            arrays.extend(array for _, array in layer.parameter_items())
        return arrays

    def gradient_arrays(self) -> list[np.ndarray]:
        """All gradient arrays in the same order as :meth:`parameter_arrays`."""
        arrays: list[np.ndarray] = []
        for layer in self.layers:
            arrays.extend(array for _, array in layer.gradient_items())
        return arrays

    def parameter_shapes(self) -> list[tuple[int, ...]]:
        """Shapes of all parameter arrays (used to unflatten vectors)."""
        return [array.shape for array in self.parameter_arrays()]

    def num_parameters(self) -> int:
        """Total scalar parameter count ``d``."""
        return int(sum(array.size for array in self.parameter_arrays()))

    def get_flat_params(self) -> np.ndarray:
        """Copy of all parameters as a single flat vector (model dtype)."""
        arrays = self.parameter_arrays()
        if not arrays:
            return np.zeros(0, dtype=DEFAULT_DTYPE)
        return np.concatenate([a.ravel() for a in arrays])

    def set_flat_params(self, flat: np.ndarray) -> None:
        """Write a flat vector back into the parameter arrays (in place)."""
        flat = np.asarray(flat, dtype=self.dtype).ravel()
        expected = self.num_parameters()
        if flat.size != expected:
            raise ConfigurationError(
                f"flat parameter vector has {flat.size} entries, model needs {expected}"
            )
        offset = 0
        for array in self.parameter_arrays():
            size = array.size
            array[...] = flat[offset : offset + size].reshape(array.shape)
            offset += size

    def flat_gradient(self) -> np.ndarray:
        """Current gradients as a single flat vector (after a backward pass)."""
        arrays = self.gradient_arrays()
        if not arrays:
            return np.zeros(0, dtype=DEFAULT_DTYPE)
        return np.concatenate([a.ravel() for a in arrays])

    def zero_grads(self) -> None:
        """Reset every layer's gradients."""
        for layer in self.layers:
            layer.zero_grads()

    # -- convenience ----------------------------------------------------------
    def loss_and_gradient(
        self, x: np.ndarray, y: np.ndarray, loss: Loss
    ) -> tuple[float, np.ndarray]:
        """Mean loss on ``(x, y)`` and the flat parameter gradient."""
        self.zero_grads()
        predictions = self.forward(x, training=True)
        value = loss.value(predictions, y)
        self.backward(loss.gradient(predictions, y))
        return value, self.flat_gradient()

    # -- stacked per-file path -------------------------------------------------
    def supports_per_file(self) -> bool:
        """True when every layer implements the stacked per-file path."""
        return all(layer.per_file_capable for layer in self.layers)

    def _per_file_gradient_views(self, workspace: np.ndarray) -> list[dict[str, np.ndarray]]:
        """Per-layer views into a ``(f, d)`` workspace, one per parameter.

        View ``[layer][name]`` has shape ``(f, *param.shape)`` and aliases the
        columns the parameter's flat gradient occupies, so layers write their
        per-file gradients straight into the workspace — no per-file
        ``flat_gradient`` concatenation.
        """
        f = workspace.shape[0]
        views: list[dict[str, np.ndarray]] = []
        offset = 0
        for layer in self.layers:
            layer_views: dict[str, np.ndarray] = {}
            for name, array in layer.parameter_items():
                size = array.size
                layer_views[name] = workspace[:, offset : offset + size].reshape(
                    (f,) + array.shape
                )
                offset += size
            views.append(layer_views)
        return views

    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Stacked forward pass over ``(f, n, ...)`` inputs."""
        out = x
        for layer in self.layers:
            out = layer.forward_per_file(out, training=training)
        return out

    def per_file_loss_and_gradients(
        self, x: np.ndarray, y: np.ndarray, loss: Loss, out: np.ndarray | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        """All ``f`` per-file losses and flat gradients in one stacked pass.

        Parameters
        ----------
        x, y:
            Stacked inputs ``(f, n, ...)`` and targets ``(f, n, ...)`` — file
            ``i``'s batch lives in slice ``i``.
        loss:
            The training loss.
        out:
            Optional preallocated ``(f, d)`` workspace in the model dtype the
            gradients are written into (allocated when omitted, reusable
            across rounds).

        Returns
        -------
        losses, gradients:
            ``(f,)`` per-file mean losses and the ``(f, d)`` gradient matrix;
            row ``i`` is bit-identical to ``loss_and_gradient`` on file ``i``.
        """
        if not self.supports_per_file():
            unsupported = sorted(
                {type(l).__name__ for l in self.layers if not l.per_file_capable}
            )
            raise ConfigurationError(
                f"model has layers without a stacked per-file rule: {unsupported}"
            )
        dtype = self.dtype
        x = np.asarray(x, dtype=dtype)
        if x.ndim < 2 or x.shape[0] < 1 or x.shape[1] < 1:
            raise ConfigurationError(
                f"stacked inputs must be (files, batch, ...) with at least one "
                f"file and one sample, got shape {x.shape}"
            )
        f, d = x.shape[0], self.num_parameters()
        if out is None:
            out = np.empty((f, d), dtype=dtype)
        elif out.shape != (f, d) or out.dtype != dtype or not out.flags.c_contiguous:
            raise ConfigurationError(
                f"workspace must be a C-contiguous {dtype} array of shape "
                f"({f}, {d}), got {out.dtype} {out.shape}"
            )
        views = self._per_file_gradient_views(out)
        predictions = self.forward_per_file(x, training=True)
        losses = loss.per_file_value(predictions, y)
        grad = loss.per_file_gradient(predictions, y)
        for layer, layer_views in zip(reversed(self.layers), reversed(views)):
            grad = layer.backward_per_file(grad, layer_views)
        return losses, out

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"Sequential(name={self.name!r}, layers={len(self.layers)}, "
            f"parameters={self.num_parameters()})"
        )


def build_mlp(
    input_dim: int,
    num_classes: int,
    hidden: Sequence[int] = (64, 64),
    seed: int | np.random.Generator | None = 0,
    batch_norm: bool = False,
    dtype: object | None = None,
) -> Sequential:
    """Multi-layer perceptron classifier.

    Parameters
    ----------
    input_dim, num_classes:
        Input feature count and number of output classes (logits).
    hidden:
        Widths of the hidden layers.
    seed:
        Initialization seed.
    batch_norm:
        Insert a BatchNorm after every hidden Dense layer.
    dtype:
        Working dtype of every layer (see :mod:`repro.core.backend`).
    """
    rng = as_generator(seed)
    dtype = resolve_dtype(dtype)
    layers: list[Layer] = []
    width = input_dim
    for h in hidden:
        layers.append(Dense(width, h, rng=rng, dtype=dtype))
        if batch_norm:
            layers.append(BatchNorm(h, dtype=dtype))
        layers.append(ReLU())
        width = h
    layers.append(Dense(width, num_classes, rng=rng, dtype=dtype))
    return Sequential(layers, name=f"mlp({input_dim}->{list(hidden)}->{num_classes})")


def build_cnn(
    input_shape: tuple[int, int, int],
    num_classes: int,
    channels: Sequence[int] = (8, 16),
    kernel_size: int = 3,
    dense_width: int = 64,
    seed: int | np.random.Generator | None = 0,
    dtype: object | None = None,
) -> Sequential:
    """Small convolutional classifier (Conv-ReLU-Pool blocks + dense head).

    Parameters
    ----------
    input_shape:
        ``(channels, height, width)`` of the input images.
    num_classes:
        Number of output classes.
    channels:
        Output channels of the successive conv blocks; each block halves the
        spatial resolution with a 2x2 max pool.
    """
    rng = as_generator(seed)
    dtype = resolve_dtype(dtype)
    in_channels, height, width = input_shape
    layers: list[Layer] = []
    current = in_channels
    for out_channels in channels:
        layers.append(
            Conv2D(
                current,
                out_channels,
                kernel_size,
                padding=kernel_size // 2,
                rng=rng,
                dtype=dtype,
            )
        )
        layers.append(ReLU())
        layers.append(MaxPool2D(2))
        current = out_channels
        height //= 2
        width //= 2
        if height < 1 or width < 1:
            raise ConfigurationError(
                "too many conv blocks for the input resolution"
            )
    layers.append(Flatten())
    layers.append(Dense(current * height * width, dense_width, rng=rng, dtype=dtype))
    layers.append(ReLU())
    layers.append(Dense(dense_width, num_classes, rng=rng, dtype=dtype))
    return Sequential(layers, name=f"cnn(channels={list(channels)})")


def build_resnet_lite(
    input_dim: int,
    num_classes: int,
    width: int = 64,
    num_blocks: int = 3,
    seed: int | np.random.Generator | None = 0,
    dtype: object | None = None,
) -> Sequential:
    """Residual MLP — the repo's stand-in for ResNet-18 (see DESIGN.md).

    A stem Dense layer lifts the input to ``width`` features, ``num_blocks``
    identity residual blocks follow, and a linear head produces the logits.
    """
    rng = as_generator(seed)
    dtype = resolve_dtype(dtype)
    layers: list[Layer] = [Dense(input_dim, width, rng=rng, dtype=dtype), ReLU()]
    for _ in range(num_blocks):
        layers.append(ResidualDenseBlock(width, rng=rng, dtype=dtype))
    layers.append(Dense(width, num_classes, rng=rng, dtype=dtype))
    return Sequential(
        layers, name=f"resnet_lite(width={width}, blocks={num_blocks})"
    )
