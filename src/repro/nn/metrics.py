"""Evaluation metrics: top-1 accuracy and mean cross-entropy loss."""

from __future__ import annotations

import numpy as np

from repro.exceptions import ConfigurationError
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.models import Sequential

__all__ = ["top1_accuracy", "cross_entropy_loss", "evaluate_model"]


def top1_accuracy(logits: np.ndarray, labels: np.ndarray) -> float:
    """Fraction of rows whose arg-max logit matches the integer label."""
    logits = np.asarray(logits)
    labels = np.asarray(labels)
    if logits.ndim != 2 or labels.ndim != 1 or logits.shape[0] != labels.shape[0]:
        raise ConfigurationError(
            f"incompatible shapes: logits {logits.shape}, labels {labels.shape}"
        )
    predictions = logits.argmax(axis=1)
    return float((predictions == labels).mean())


def cross_entropy_loss(logits: np.ndarray, labels: np.ndarray) -> float:
    """Mean softmax cross entropy of the logits against integer labels."""
    return SoftmaxCrossEntropy().value(logits, labels)


def evaluate_model(
    model: Sequential,
    inputs: np.ndarray,
    labels: np.ndarray,
    batch_size: int = 256,
) -> dict[str, float]:
    """Evaluate accuracy and loss over a dataset in mini-batches."""
    n = inputs.shape[0]
    if n == 0:
        raise ConfigurationError("cannot evaluate on an empty dataset")
    correct = 0.0
    total_loss = 0.0
    for start in range(0, n, batch_size):
        stop = min(start + batch_size, n)
        logits = model.predict(inputs[start:stop])
        batch_labels = labels[start:stop]
        correct += top1_accuracy(logits, batch_labels) * (stop - start)
        total_loss += cross_entropy_loss(logits, batch_labels) * (stop - start)
    return {"accuracy": correct / n, "loss": total_loss / n}
