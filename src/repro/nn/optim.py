"""Optimizer and learning-rate schedules.

The paper trains with mini-batch SGD with momentum 0.9 and a step-decay
learning-rate schedule denoted ``(x, y, z)``: start at ``x`` and multiply by
``y`` every ``z`` iterations (Appendix A.6, Table 7).  Both are implemented
here; the optimizer applies updates to a model's flat parameter vector, which
is how the parameter server performs Algorithm 1's line 17.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.backend import ensure_float
from repro.exceptions import ConfigurationError
from repro.nn.models import Sequential

__all__ = ["LearningRateSchedule", "ConstantSchedule", "StepDecaySchedule", "SGD"]


class LearningRateSchedule(abc.ABC):
    """Iteration-indexed learning rate ``η_t``."""

    @abc.abstractmethod
    def rate(self, iteration: int) -> float:
        """Learning rate at (zero-based) iteration ``iteration``."""

    def __call__(self, iteration: int) -> float:
        return self.rate(iteration)


class ConstantSchedule(LearningRateSchedule):
    """A fixed learning rate."""

    def __init__(self, learning_rate: float) -> None:
        if learning_rate <= 0:
            raise ConfigurationError(
                f"learning_rate must be positive, got {learning_rate}"
            )
        self.learning_rate = float(learning_rate)

    def rate(self, iteration: int) -> float:
        return self.learning_rate


class StepDecaySchedule(LearningRateSchedule):
    """The paper's ``(x, y, z)`` schedule: ``η_t = x * y**(t // z)``.

    Parameters
    ----------
    initial:
        Starting rate ``x``.
    decay:
        Multiplicative factor ``y`` applied every ``period`` iterations.
    period:
        Number of iterations ``z`` between decays.
    """

    def __init__(self, initial: float, decay: float, period: int) -> None:
        if initial <= 0:
            raise ConfigurationError(f"initial rate must be positive, got {initial}")
        if decay <= 0:
            raise ConfigurationError(f"decay must be positive, got {decay}")
        if period < 1:
            raise ConfigurationError(f"period must be >= 1, got {period}")
        self.initial = float(initial)
        self.decay = float(decay)
        self.period = int(period)

    def rate(self, iteration: int) -> float:
        if iteration < 0:
            raise ConfigurationError(f"iteration must be non-negative, got {iteration}")
        return self.initial * self.decay ** (iteration // self.period)


class SGD:
    """Stochastic gradient descent with momentum and optional weight decay.

    The optimizer operates on flat vectors so it can be driven either by a
    model (local training) or by the parameter server (distributed training).

    Parameters
    ----------
    schedule:
        Learning-rate schedule; a bare float is promoted to a constant rate.
    momentum:
        Classical momentum coefficient (0 disables the velocity buffer).
    weight_decay:
        L2 penalty added to the gradient as ``weight_decay * w``.
    """

    def __init__(
        self,
        schedule: LearningRateSchedule | float,
        momentum: float = 0.0,
        weight_decay: float = 0.0,
    ) -> None:
        if isinstance(schedule, (int, float)):
            schedule = ConstantSchedule(float(schedule))
        self.schedule = schedule
        if not (0.0 <= momentum < 1.0):
            raise ConfigurationError(f"momentum must be in [0, 1), got {momentum}")
        if weight_decay < 0:
            raise ConfigurationError(
                f"weight_decay must be non-negative, got {weight_decay}"
            )
        self.momentum = float(momentum)
        self.weight_decay = float(weight_decay)
        self._velocity: np.ndarray | None = None
        self.iteration = 0

    def reset(self) -> None:
        """Clear the momentum buffer and the iteration counter."""
        self._velocity = None
        self.iteration = 0

    def step_vector(self, params: np.ndarray, gradient: np.ndarray) -> np.ndarray:
        """Return updated parameters given the current flat gradient.

        ``float32``/``float64`` inputs keep their dtype through the update
        (the momentum buffer follows the parameter dtype); anything else is
        coerced to the backend default.
        """
        params = ensure_float(params)
        gradient = ensure_float(gradient)
        if params.shape != gradient.shape:
            raise ConfigurationError(
                f"parameter/gradient shape mismatch: {params.shape} vs {gradient.shape}"
            )
        if self.weight_decay:
            gradient = gradient + self.weight_decay * params
        if self.momentum:
            if self._velocity is None or self._velocity.shape != params.shape:
                self._velocity = np.zeros_like(params)
            self._velocity = self.momentum * self._velocity + gradient
            direction = self._velocity
        else:
            direction = gradient
        rate = self.schedule.rate(self.iteration)
        self.iteration += 1
        return params - rate * direction

    def step_model(self, model: Sequential, gradient: np.ndarray | None = None) -> None:
        """Apply one update to a model, using its stored gradients by default."""
        flat = model.get_flat_params()
        grad = model.flat_gradient() if gradient is None else gradient
        model.set_flat_params(self.step_vector(flat, grad))
