"""Loss functions with analytic gradients."""

from __future__ import annotations

import abc

import numpy as np

from repro.exceptions import ConfigurationError

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable row-wise softmax."""
    logits = np.asarray(logits, dtype=np.float64)
    shifted = logits - logits.max(axis=1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=1, keepdims=True)


class Loss(abc.ABC):
    """A differentiable scalar objective on (predictions, targets)."""

    @abc.abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abc.abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to the predictions."""


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross entropy on integer class labels.

    ``predictions`` are raw logits of shape ``(batch, classes)``; ``targets``
    are integer labels of shape ``(batch,)``.
    """

    def __init__(self, epsilon: float = 1e-12) -> None:
        self.epsilon = float(epsilon)

    def _check(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets)
        if predictions.ndim != 2:
            raise ConfigurationError(
                f"predictions must be (batch, classes), got shape {predictions.shape}"
            )
        if targets.ndim != 1 or targets.shape[0] != predictions.shape[0]:
            raise ConfigurationError(
                "targets must be a 1-D integer label array matching the batch size"
            )
        if np.any(targets < 0) or np.any(targets >= predictions.shape[1]):
            raise ConfigurationError("target labels out of range for the logits")
        return predictions, targets.astype(np.int64)

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._check(predictions, targets)
        probabilities = softmax(predictions)
        picked = probabilities[np.arange(targets.size), targets]
        return float(-np.log(picked + self.epsilon).mean())

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._check(predictions, targets)
        probabilities = softmax(predictions)
        grad = probabilities
        grad[np.arange(targets.size), targets] -= 1.0
        return grad / targets.size


class MeanSquaredError(Loss):
    """Mean squared error between predictions and real-valued targets."""

    def _check(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        predictions = np.asarray(predictions, dtype=np.float64)
        targets = np.asarray(targets, dtype=np.float64)
        if predictions.shape != targets.shape:
            raise ConfigurationError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        return predictions, targets

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._check(predictions, targets)
        return float(((predictions - targets) ** 2).mean())

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._check(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size
