"""Loss functions with analytic gradients.

Losses preserve the working dtype of their inputs: ``float32`` logits give
``float32`` gradients (see :mod:`repro.core.backend`); anything else is
coerced to the backend default, as before.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.backend import ensure_float
from repro.exceptions import ConfigurationError

__all__ = ["Loss", "SoftmaxCrossEntropy", "MeanSquaredError", "softmax"]


def softmax(logits: np.ndarray) -> np.ndarray:
    """Numerically stable softmax over the trailing (class) axis."""
    logits = ensure_float(logits)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)


class Loss(abc.ABC):
    """A differentiable scalar objective on (predictions, targets)."""

    @abc.abstractmethod
    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        """Mean loss over the batch."""

    @abc.abstractmethod
    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Gradient of the mean loss with respect to the predictions."""

    # -- stacked per-file path ---------------------------------------------
    # Predictions/targets carry a leading file axis; slice ``i`` of each
    # result must be bit-identical to the plain method on file ``i``.  The
    # defaults loop; concrete losses override with vectorized rules.
    def per_file_value(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        """Per-file mean losses, shape ``(f,)``, in the predictions' dtype."""
        return np.array(
            [self.value(predictions[i], targets[i]) for i in range(len(predictions))],
            dtype=ensure_float(predictions).dtype,
        )

    def per_file_gradient(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        """Stacked gradients of each file's mean loss w.r.t. its predictions."""
        return np.stack(
            [self.gradient(predictions[i], targets[i]) for i in range(len(predictions))]
        )


class SoftmaxCrossEntropy(Loss):
    """Softmax + cross entropy on integer class labels.

    ``predictions`` are raw logits of shape ``(batch, classes)``; ``targets``
    are integer labels of shape ``(batch,)``.
    """

    def __init__(self, epsilon: float = 1e-12) -> None:
        self.epsilon = float(epsilon)

    def _check(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        predictions = ensure_float(predictions)
        targets = np.asarray(targets)
        if predictions.ndim != 2:
            raise ConfigurationError(
                f"predictions must be (batch, classes), got shape {predictions.shape}"
            )
        if targets.ndim != 1 or targets.shape[0] != predictions.shape[0]:
            raise ConfigurationError(
                "targets must be a 1-D integer label array matching the batch size"
            )
        if np.any(targets < 0) or np.any(targets >= predictions.shape[1]):
            raise ConfigurationError("target labels out of range for the logits")
        return predictions, targets.astype(np.int64)

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._check(predictions, targets)
        probabilities = softmax(predictions)
        picked = probabilities[np.arange(targets.size), targets]
        return float(-np.log(picked + self.epsilon).mean())

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._check(predictions, targets)
        probabilities = softmax(predictions)
        grad = probabilities
        grad[np.arange(targets.size), targets] -= 1.0
        return grad / targets.size

    # -- stacked per-file path ---------------------------------------------
    def _check_per_file(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        predictions = ensure_float(predictions)
        targets = np.asarray(targets)
        if predictions.ndim != 3:
            raise ConfigurationError(
                f"stacked predictions must be (files, batch, classes), got {predictions.shape}"
            )
        if targets.ndim != 2 or targets.shape != predictions.shape[:2]:
            raise ConfigurationError(
                "stacked targets must be a (files, batch) integer label array"
            )
        if np.any(targets < 0) or np.any(targets >= predictions.shape[2]):
            raise ConfigurationError("target labels out of range for the logits")
        return predictions, targets.astype(np.int64)

    def per_file_value(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._check_per_file(predictions, targets)
        probabilities = softmax(predictions)
        picked = np.take_along_axis(probabilities, targets[:, :, None], axis=2)[:, :, 0]
        return -np.log(picked + self.epsilon).mean(axis=1)

    def per_file_gradient(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        predictions, targets = self._check_per_file(predictions, targets)
        grad = softmax(predictions)
        f, n = targets.shape
        grad[np.arange(f)[:, None], np.arange(n)[None, :], targets] -= 1.0
        return grad / n


class MeanSquaredError(Loss):
    """Mean squared error between predictions and real-valued targets."""

    def _check(self, predictions: np.ndarray, targets: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        predictions = ensure_float(predictions)
        # Targets follow the prediction dtype so the residual (and thus the
        # gradient) stays in the model's working dtype.
        targets = np.asarray(targets, dtype=predictions.dtype)
        if predictions.shape != targets.shape:
            raise ConfigurationError(
                f"shape mismatch: predictions {predictions.shape} vs targets {targets.shape}"
            )
        return predictions, targets

    def value(self, predictions: np.ndarray, targets: np.ndarray) -> float:
        predictions, targets = self._check(predictions, targets)
        return float(((predictions - targets) ** 2).mean())

    def gradient(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._check(predictions, targets)
        return 2.0 * (predictions - targets) / predictions.size

    # -- stacked per-file path ---------------------------------------------
    def per_file_value(self, predictions: np.ndarray, targets: np.ndarray) -> np.ndarray:
        predictions, targets = self._check(predictions, targets)
        per_file_axes = tuple(range(1, predictions.ndim))
        return ((predictions - targets) ** 2).mean(axis=per_file_axes)

    def per_file_gradient(
        self, predictions: np.ndarray, targets: np.ndarray
    ) -> np.ndarray:
        predictions, targets = self._check(predictions, targets)
        per_file_size = predictions[0].size
        return 2.0 * (predictions - targets) / per_file_size
