"""Neural-network layers with explicit forward/backward passes.

Every layer stores its learnable parameters in ``self.params`` and the
gradients of the last backward pass in ``self.grads`` (same keys).  The
forward pass caches whatever the backward pass needs; layers are therefore
stateful within one forward/backward round trip, exactly as a worker uses
them when computing its file gradients.

Array layout conventions:

* dense inputs: ``(batch, features)``;
* convolutional inputs: ``(batch, channels, height, width)``.

Per-file stacked path
---------------------

Workers compute ``f`` independent file gradients per round.  Layers that set
``per_file_capable = True`` additionally implement a *stacked* path operating
on inputs with a leading file axis — ``(f, batch, ...)`` — so one pass through
the stack computes all ``f`` forward/backward sweeps at once:

* :meth:`Layer.forward_per_file` maps ``(f, n, ...)`` to ``(f, n, ...)``;
* :meth:`Layer.backward_per_file` maps the stacked output gradient back to the
  stacked input gradient and writes per-file parameter gradients of shape
  ``(f, *param.shape)`` into caller-provided arrays (views into one
  preallocated ``(f, d)`` workspace — see
  :meth:`repro.nn.models.Sequential.per_file_loss_and_gradients`).

The contract is *bit-identity*: slice ``i`` of every stacked result must equal
what the plain path produces for file ``i``.  Stacked matmuls therefore keep
the file axis as a gufunc loop dimension (one BLAS call per file with the same
operand shapes as the plain path) instead of folding files into the GEMM
``m``-dimension, and :class:`BatchNorm` normalizes each file with its own
batch statistics, replaying the running-statistics updates in file order.
:class:`Dropout` has no stacked rule (its mask stream is defined by the
per-file call order) and forces the engine's looped fallback.
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.backend import ensure_float, resolve_dtype
from repro.exceptions import ConfigurationError
from repro.nn.initializers import he_normal, zeros_init
from repro.utils.rng import as_generator

__all__ = [
    "Layer",
    "Dense",
    "ReLU",
    "Tanh",
    "Flatten",
    "Dropout",
    "BatchNorm",
    "Conv2D",
    "MaxPool2D",
    "ResidualDenseBlock",
]


class Layer(abc.ABC):
    """Base class: a differentiable transformation with optional parameters."""

    #: True when the layer implements the stacked per-file path
    #: (:meth:`forward_per_file` / :meth:`backward_per_file`).
    per_file_capable: bool = False

    def __init__(self) -> None:
        self.params: dict[str, np.ndarray] = {}
        self.grads: dict[str, np.ndarray] = {}

    @abc.abstractmethod
    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Compute the layer output for input ``x``."""

    @abc.abstractmethod
    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        """Backpropagate ``dL/d(output)`` and return ``dL/d(input)``.

        Parameter gradients are accumulated into ``self.grads``.
        """

    # -- stacked per-file path ---------------------------------------------
    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        """Forward pass over stacked inputs ``(f, n, ...)``; see module docs."""
        raise NotImplementedError(
            f"{type(self).__name__} has no stacked per-file rule; the gradient "
            "engine must fall back to the looped path"
        )

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        """Stacked backward pass; per-file parameter gradients go to ``grads_out``.

        ``grads_out`` maps each parameter name to a ``(f, *param.shape)``
        array (typically a view into the engine's shared workspace) that the
        layer must fully overwrite.
        """
        raise NotImplementedError(
            f"{type(self).__name__} has no stacked per-file rule; the gradient "
            "engine must fall back to the looped path"
        )

    # -- parameter plumbing ------------------------------------------------
    def parameter_items(self) -> list[tuple[str, np.ndarray]]:
        """Deterministically ordered ``(name, array)`` pairs of learnable params."""
        return [(k, self.params[k]) for k in sorted(self.params)]

    def gradient_items(self) -> list[tuple[str, np.ndarray]]:
        """Gradients in the same order as :meth:`parameter_items`."""
        return [(k, self.grads[k]) for k in sorted(self.params)]

    def zero_grads(self) -> None:
        """Reset all parameter gradients to zero arrays of the right shape."""
        for key, value in self.params.items():
            self.grads[key] = np.zeros_like(value)

    def num_parameters(self) -> int:
        """Total number of scalar parameters in the layer."""
        return int(sum(p.size for p in self.params.values()))

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}(params={self.num_parameters()})"


class Dense(Layer):
    """Fully connected layer ``y = x W + b``.

    Parameters
    ----------
    in_features, out_features:
        Input and output widths.
    rng:
        Seed or generator for the He-normal weight initialization.
    use_bias:
        Include the additive bias term (default True).
    dtype:
        Working dtype of the parameters (see :mod:`repro.core.backend`);
        inputs are coerced to it on entry.
    """

    per_file_capable = True

    def __init__(
        self,
        in_features: int,
        out_features: int,
        rng: int | np.random.Generator | None = 0,
        use_bias: bool = True,
        dtype: object | None = None,
    ) -> None:
        super().__init__()
        if in_features < 1 or out_features < 1:
            raise ConfigurationError("Dense layer widths must be positive")
        generator = as_generator(rng)
        self.in_features = int(in_features)
        self.out_features = int(out_features)
        self.use_bias = bool(use_bias)
        self.dtype = resolve_dtype(dtype)
        self.params["W"] = he_normal(
            (in_features, out_features), generator, fan_in=in_features, dtype=self.dtype
        )
        if use_bias:
            self.params["b"] = zeros_init((out_features,), dtype=self.dtype)
        self.zero_grads()
        self._input: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 2 or x.shape[1] != self.in_features:
            raise ConfigurationError(
                f"Dense expected input of shape (batch, {self.in_features}), got {x.shape}"
            )
        self._input = x
        out = x @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input is None:
            raise ConfigurationError("backward called before forward on Dense layer")
        x = self._input
        self.grads["W"] = x.T @ grad_output
        if self.use_bias:
            self.grads["b"] = grad_output.sum(axis=0)
        return grad_output @ self.params["W"].T

    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 3 or x.shape[2] != self.in_features:
            raise ConfigurationError(
                f"Dense expected stacked input (f, batch, {self.in_features}), "
                f"got {x.shape}"
            )
        self._stacked_input = x
        # (f, n, in) @ (in, out): one BLAS call per file slice, with the same
        # operand shapes as the plain path — keeps the results bit-identical.
        out = x @ self.params["W"]
        if self.use_bias:
            out = out + self.params["b"]
        return out

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        x = getattr(self, "_stacked_input", None)
        if x is None:
            raise ConfigurationError("backward_per_file called before forward_per_file")
        # Release the stacked activations now: unlike the looped path, they
        # hold all f files' worth of memory, so they must not outlive the round.
        self._stacked_input = None
        grads_out["W"][...] = np.matmul(x.transpose(0, 2, 1), grad_output)
        if self.use_bias:
            grads_out["b"][...] = grad_output.sum(axis=1)
        return grad_output @ self.params["W"].T


class ReLU(Layer):
    """Rectified linear unit ``max(x, 0)``."""

    per_file_capable = True

    def __init__(self) -> None:
        super().__init__()
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._mask = x > 0
        return np.where(self._mask, x, 0.0)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            raise ConfigurationError("backward called before forward on ReLU layer")
        return grad_output * self._mask

    # Elementwise, so the plain rules apply verbatim to stacked inputs.
    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        return self.backward(grad_output)


class Tanh(Layer):
    """Hyperbolic tangent activation."""

    per_file_capable = True

    def __init__(self) -> None:
        super().__init__()
        self._output: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._output = np.tanh(x)
        return self._output

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._output is None:
            raise ConfigurationError("backward called before forward on Tanh layer")
        return grad_output * (1.0 - self._output**2)

    # Elementwise, so the plain rules apply verbatim to stacked inputs.
    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        return self.forward(x, training=training)

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        return self.backward(grad_output)


class Flatten(Layer):
    """Reshape ``(batch, ...)`` inputs to ``(batch, features)``."""

    per_file_capable = True

    def __init__(self) -> None:
        super().__init__()
        self._input_shape: tuple[int, ...] | None = None
        self._stacked_shape: tuple[int, ...] | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._input_shape = x.shape
        return x.reshape(x.shape[0], -1)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._input_shape is None:
            raise ConfigurationError("backward called before forward on Flatten layer")
        return grad_output.reshape(self._input_shape)

    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        self._stacked_shape = x.shape
        return x.reshape(x.shape[0], x.shape[1], -1)

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        if self._stacked_shape is None:
            raise ConfigurationError("backward_per_file called before forward_per_file")
        return grad_output.reshape(self._stacked_shape)


class Dropout(Layer):
    """Inverted dropout; identity at evaluation time.

    Parameters
    ----------
    rate:
        Probability of dropping a unit, in [0, 1).
    rng:
        Seed or generator for the dropout masks.
    """

    def __init__(self, rate: float, rng: int | np.random.Generator | None = 0) -> None:
        super().__init__()
        if not (0.0 <= rate < 1.0):
            raise ConfigurationError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = float(rate)
        self._rng = as_generator(rng)
        self._mask: np.ndarray | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        if not training or self.rate == 0.0:
            self._mask = None
            return x
        x = ensure_float(x)
        keep = 1.0 - self.rate
        # Cast the boolean mask to the input's working dtype before scaling so
        # a float32 activation is not silently promoted (bit-identical at
        # float64: the cast yields exact 0.0/1.0 before the division).
        self._mask = (self._rng.random(x.shape) < keep).astype(x.dtype) / keep
        return x * self._mask

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._mask is None:
            return grad_output
        return grad_output * self._mask


class BatchNorm(Layer):
    """Batch normalization over the feature axis.

    Supports dense inputs ``(batch, features)`` and convolutional inputs
    ``(batch, channels, H, W)``; in the latter case statistics are computed
    per channel.  Running statistics are kept for evaluation mode.

    Parameters
    ----------
    num_features:
        Feature (or channel) count.
    momentum:
        Running-statistics update coefficient.
    epsilon:
        Numerical stabilizer added to the variance.
    dtype:
        Working dtype of the parameters and running statistics.
    """

    per_file_capable = True

    def __init__(
        self,
        num_features: int,
        momentum: float = 0.9,
        epsilon: float = 1e-5,
        dtype: object | None = None,
    ) -> None:
        super().__init__()
        if num_features < 1:
            raise ConfigurationError("num_features must be positive")
        self.num_features = int(num_features)
        self.momentum = float(momentum)
        self.epsilon = float(epsilon)
        self.dtype = resolve_dtype(dtype)
        self.params["gamma"] = np.ones(num_features, dtype=self.dtype)
        self.params["beta"] = np.zeros(num_features, dtype=self.dtype)
        self.running_mean = np.zeros(num_features, dtype=self.dtype)
        self.running_var = np.ones(num_features, dtype=self.dtype)
        self.zero_grads()
        self._cache: tuple | None = None

    @staticmethod
    def _to_2d(x: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        if x.ndim == 2:
            return x, x.shape
        if x.ndim == 4:
            batch, channels, height, width = x.shape
            flat = x.transpose(0, 2, 3, 1).reshape(-1, channels)
            return flat, x.shape
        raise ConfigurationError(f"BatchNorm supports 2-D or 4-D inputs, got ndim={x.ndim}")

    @staticmethod
    def _from_2d(flat: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        if len(shape) == 2:
            return flat
        batch, channels, height, width = shape
        return flat.reshape(batch, height, width, channels).transpose(0, 3, 1, 2)

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        flat, shape = self._to_2d(np.asarray(x, dtype=self.dtype))
        if flat.shape[1] != self.num_features:
            raise ConfigurationError(
                f"BatchNorm expected {self.num_features} features, got {flat.shape[1]}"
            )
        if training:
            mean = flat.mean(axis=0)
            var = flat.var(axis=0)
            self.running_mean = self.momentum * self.running_mean + (1 - self.momentum) * mean
            self.running_var = self.momentum * self.running_var + (1 - self.momentum) * var
        else:
            mean = self.running_mean
            var = self.running_var
        std = np.sqrt(var + self.epsilon)
        normalized = (flat - mean) / std
        out = normalized * self.params["gamma"] + self.params["beta"]
        self._cache = (normalized, std, shape, training)
        return self._from_2d(out, shape)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward on BatchNorm layer")
        normalized, std, shape, training = self._cache
        grad_flat, _ = self._to_2d(np.asarray(grad_output, dtype=self.dtype))
        self.grads["gamma"] = (grad_flat * normalized).sum(axis=0)
        self.grads["beta"] = grad_flat.sum(axis=0)
        gamma = self.params["gamma"]
        if training:
            # Standard batch-norm backward through the batch statistics.
            dnorm = grad_flat * gamma
            dx = (
                dnorm
                - dnorm.mean(axis=0)
                - normalized * (dnorm * normalized).mean(axis=0)
            ) / std
        else:
            dx = grad_flat * gamma / std
        return self._from_2d(dx, shape)

    # -- stacked per-file path ---------------------------------------------
    @staticmethod
    def _to_stacked_2d(x: np.ndarray) -> tuple[np.ndarray, tuple[int, ...]]:
        if x.ndim == 3:
            return x, x.shape
        if x.ndim == 5:
            f, batch, channels, height, width = x.shape
            flat = x.transpose(0, 1, 3, 4, 2).reshape(f, -1, channels)
            return flat, x.shape
        raise ConfigurationError(
            f"stacked BatchNorm supports 3-D or 5-D inputs, got ndim={x.ndim}"
        )

    @staticmethod
    def _from_stacked_2d(flat: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
        if len(shape) == 3:
            return flat
        f, batch, channels, height, width = shape
        return flat.reshape(f, batch, height, width, channels).transpose(0, 1, 4, 2, 3)

    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        flat, shape = self._to_stacked_2d(np.asarray(x, dtype=self.dtype))
        if flat.shape[2] != self.num_features:
            raise ConfigurationError(
                f"BatchNorm expected {self.num_features} features, got {flat.shape[2]}"
            )
        if training:
            # Each file normalizes with its own batch statistics, exactly as
            # the looped engine does; the running statistics are then updated
            # sequentially in file order so the end state is bit-identical.
            mean = flat.mean(axis=1)
            var = flat.var(axis=1)
            for i in range(flat.shape[0]):
                self.running_mean = (
                    self.momentum * self.running_mean + (1 - self.momentum) * mean[i]
                )
                self.running_var = (
                    self.momentum * self.running_var + (1 - self.momentum) * var[i]
                )
            std = np.sqrt(var + self.epsilon)[:, None, :]
            normalized = (flat - mean[:, None, :]) / std
        else:
            std = np.sqrt(self.running_var + self.epsilon)
            normalized = (flat - self.running_mean) / std
            std = np.broadcast_to(std, (flat.shape[0], 1, self.num_features))
        out = normalized * self.params["gamma"] + self.params["beta"]
        self._stacked_cache = (normalized, std, shape, training)
        return self._from_stacked_2d(out, shape)

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        cache = getattr(self, "_stacked_cache", None)
        if cache is None:
            raise ConfigurationError("backward_per_file called before forward_per_file")
        self._stacked_cache = None  # all-files activations must not outlive the round
        normalized, std, shape, training = cache
        grad_flat, _ = self._to_stacked_2d(np.asarray(grad_output, dtype=self.dtype))
        grads_out["gamma"][...] = (grad_flat * normalized).sum(axis=1)
        grads_out["beta"][...] = grad_flat.sum(axis=1)
        gamma = self.params["gamma"]
        if training:
            dnorm = grad_flat * gamma
            dx = (
                dnorm
                - dnorm.mean(axis=1, keepdims=True)
                - normalized * (dnorm * normalized).mean(axis=1, keepdims=True)
            ) / std
        else:
            dx = grad_flat * gamma / std
        return self._from_stacked_2d(dx, shape)


def _im2col(
    x: np.ndarray, kernel: int, stride: int, padding: int
) -> tuple[np.ndarray, int, int]:
    """Expand ``(N, C, H, W)`` into column form for convolution-as-matmul."""
    batch, channels, height, width = x.shape
    out_h = (height + 2 * padding - kernel) // stride + 1
    out_w = (width + 2 * padding - kernel) // stride + 1
    padded = np.pad(
        x, ((0, 0), (0, 0), (padding, padding), (padding, padding)), mode="constant"
    )
    cols = np.empty((batch, channels, kernel, kernel, out_h, out_w), dtype=x.dtype)
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            cols[:, :, ky, kx, :, :] = padded[:, :, ky:y_max:stride, kx:x_max:stride]
    return cols.transpose(0, 4, 5, 1, 2, 3).reshape(batch * out_h * out_w, -1), out_h, out_w


def _col2im(
    cols: np.ndarray,
    input_shape: tuple[int, int, int, int],
    kernel: int,
    stride: int,
    padding: int,
    out_h: int,
    out_w: int,
) -> np.ndarray:
    """Inverse of :func:`_im2col`, accumulating overlapping contributions."""
    batch, channels, height, width = input_shape
    cols = cols.reshape(batch, out_h, out_w, channels, kernel, kernel).transpose(
        0, 3, 4, 5, 1, 2
    )
    padded = np.zeros(
        (batch, channels, height + 2 * padding, width + 2 * padding), dtype=cols.dtype
    )
    for ky in range(kernel):
        y_max = ky + stride * out_h
        for kx in range(kernel):
            x_max = kx + stride * out_w
            padded[:, :, ky:y_max:stride, kx:x_max:stride] += cols[:, :, ky, kx, :, :]
    if padding == 0:
        return padded
    return padded[:, :, padding:-padding, padding:-padding]


class Conv2D(Layer):
    """2-D convolution implemented with im2col + matrix multiplication.

    Parameters
    ----------
    in_channels, out_channels:
        Channel counts.
    kernel_size:
        Square kernel side length.
    stride, padding:
        Standard convolution hyper-parameters.
    rng:
        Seed or generator for the He-normal kernel initialization.
    dtype:
        Working dtype of the kernel parameters; inputs are coerced to it.
    """

    per_file_capable = True

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        rng: int | np.random.Generator | None = 0,
        use_bias: bool = True,
        dtype: object | None = None,
    ) -> None:
        super().__init__()
        for name, value in (
            ("in_channels", in_channels),
            ("out_channels", out_channels),
            ("kernel_size", kernel_size),
            ("stride", stride),
        ):
            if value < 1:
                raise ConfigurationError(f"{name} must be positive, got {value}")
        if padding < 0:
            raise ConfigurationError(f"padding must be non-negative, got {padding}")
        generator = as_generator(rng)
        self.in_channels = int(in_channels)
        self.out_channels = int(out_channels)
        self.kernel_size = int(kernel_size)
        self.stride = int(stride)
        self.padding = int(padding)
        self.use_bias = bool(use_bias)
        self.dtype = resolve_dtype(dtype)
        fan_in = in_channels * kernel_size * kernel_size
        self.params["W"] = he_normal(
            (out_channels, in_channels, kernel_size, kernel_size),
            generator,
            fan_in=fan_in,
            dtype=self.dtype,
        )
        if use_bias:
            self.params["b"] = zeros_init((out_channels,), dtype=self.dtype)
        self.zero_grads()
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 4 or x.shape[1] != self.in_channels:
            raise ConfigurationError(
                f"Conv2D expected input (batch, {self.in_channels}, H, W), got {x.shape}"
            )
        cols, out_h, out_w = _im2col(x, self.kernel_size, self.stride, self.padding)
        weights = self.params["W"].reshape(self.out_channels, -1)
        out = cols @ weights.T
        if self.use_bias:
            out = out + self.params["b"]
        batch = x.shape[0]
        out = out.reshape(batch, out_h, out_w, self.out_channels).transpose(0, 3, 1, 2)
        self._cache = (x.shape, cols, out_h, out_w)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward on Conv2D layer")
        input_shape, cols, out_h, out_w = self._cache
        batch = input_shape[0]
        grad = np.asarray(grad_output, dtype=self.dtype).transpose(0, 2, 3, 1).reshape(
            batch * out_h * out_w, self.out_channels
        )
        weights = self.params["W"].reshape(self.out_channels, -1)
        self.grads["W"] = (grad.T @ cols).reshape(self.params["W"].shape)
        if self.use_bias:
            self.grads["b"] = grad.sum(axis=0)
        grad_cols = grad @ weights
        return _col2im(
            grad_cols,
            input_shape,
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )

    # -- stacked per-file path ---------------------------------------------
    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = np.asarray(x, dtype=self.dtype)
        if x.ndim != 5 or x.shape[2] != self.in_channels:
            raise ConfigurationError(
                f"Conv2D expected stacked input (f, batch, {self.in_channels}, H, W), "
                f"got {x.shape}"
            )
        f, batch = x.shape[:2]
        # im2col is batch-major, so folding (f, n) into one batch axis yields
        # per-file blocks that reshape cleanly back to (f, n*oh*ow, ckk).
        cols, out_h, out_w = _im2col(
            x.reshape((f * batch,) + x.shape[2:]),
            self.kernel_size,
            self.stride,
            self.padding,
        )
        cols = cols.reshape(f, batch * out_h * out_w, -1)
        weights = self.params["W"].reshape(self.out_channels, -1)
        # (f, n*oh*ow, ckk) @ (ckk, oc): one BLAS call per file with the same
        # operand shapes as the plain path, keeping results bit-identical.
        out = cols @ weights.T
        if self.use_bias:
            out = out + self.params["b"]
        out = out.reshape(f, batch, out_h, out_w, self.out_channels)
        self._stacked_cache = (x.shape, cols, out_h, out_w)
        return out.transpose(0, 1, 4, 2, 3)

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        cache = getattr(self, "_stacked_cache", None)
        if cache is None:
            raise ConfigurationError("backward_per_file called before forward_per_file")
        # The stacked im2col buffer is f times the looped path's working set;
        # drop the layer's reference so it dies with this round.
        self._stacked_cache = None
        input_shape, cols, out_h, out_w = cache
        f, batch = input_shape[:2]
        grad = np.asarray(grad_output, dtype=self.dtype).transpose(0, 1, 3, 4, 2).reshape(
            f, batch * out_h * out_w, self.out_channels
        )
        weights = self.params["W"].reshape(self.out_channels, -1)
        grads_out["W"][...] = np.matmul(grad.transpose(0, 2, 1), cols).reshape(
            (f,) + self.params["W"].shape
        )
        if self.use_bias:
            grads_out["b"][...] = grad.sum(axis=1)
        grad_cols = grad @ weights
        grad_input = _col2im(
            grad_cols.reshape(f * batch * out_h * out_w, -1),
            (f * batch,) + input_shape[2:],
            self.kernel_size,
            self.stride,
            self.padding,
            out_h,
            out_w,
        )
        return grad_input.reshape(input_shape)


class MaxPool2D(Layer):
    """Non-overlapping max pooling with a square window.

    Parameters
    ----------
    pool_size:
        Window side; the spatial dimensions must be divisible by it.
    """

    per_file_capable = True

    def __init__(self, pool_size: int = 2) -> None:
        super().__init__()
        if pool_size < 1:
            raise ConfigurationError(f"pool_size must be positive, got {pool_size}")
        self.pool_size = int(pool_size)
        self._cache: tuple | None = None

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = ensure_float(x)
        if x.ndim != 4:
            raise ConfigurationError(f"MaxPool2D expects 4-D input, got ndim={x.ndim}")
        batch, channels, height, width = x.shape
        p = self.pool_size
        if height % p or width % p:
            raise ConfigurationError(
                f"spatial dims ({height}, {width}) must be divisible by pool_size={p}"
            )
        reshaped = x.reshape(batch, channels, height // p, p, width // p, p)
        out = reshaped.max(axis=(3, 5))
        mask = reshaped == out[:, :, :, None, :, None]
        self._cache = (x.shape, mask)
        return out

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        if self._cache is None:
            raise ConfigurationError("backward called before forward on MaxPool2D layer")
        input_shape, mask = self._cache
        batch, channels, height, width = input_shape
        grad = ensure_float(grad_output)[:, :, :, None, :, None]
        # Ties (equal maxima within a window) split the gradient evenly, which
        # keeps the backward pass a true subgradient.  The tie counts are cast
        # to the gradient dtype so float32 gradients stay float32 (the values
        # are small integers, so the cast — and the division — is exact).
        counts = mask.sum(axis=(3, 5), keepdims=True).astype(grad.dtype)
        spread = mask * grad / counts
        return spread.reshape(batch, channels, height, width)

    # -- stacked per-file path ---------------------------------------------
    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        x = ensure_float(x)
        if x.ndim != 5:
            raise ConfigurationError(
                f"stacked MaxPool2D expects 5-D input, got ndim={x.ndim}"
            )
        f, batch, channels, height, width = x.shape
        p = self.pool_size
        if height % p or width % p:
            raise ConfigurationError(
                f"spatial dims ({height}, {width}) must be divisible by pool_size={p}"
            )
        reshaped = x.reshape(f, batch, channels, height // p, p, width // p, p)
        out = reshaped.max(axis=(4, 6))
        mask = reshaped == out[:, :, :, :, None, :, None]
        self._stacked_cache = (x.shape, mask)
        return out

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        cache = getattr(self, "_stacked_cache", None)
        if cache is None:
            raise ConfigurationError("backward_per_file called before forward_per_file")
        self._stacked_cache = None  # all-files pooling mask must not outlive the round
        input_shape, mask = cache
        grad = ensure_float(grad_output)[:, :, :, :, None, :, None]
        counts = mask.sum(axis=(4, 6), keepdims=True).astype(grad.dtype)
        spread = mask * grad / counts
        return spread.reshape(input_shape)


class ResidualDenseBlock(Layer):
    """Two dense layers with ReLU and an identity skip connection.

    The block keeps its input width so the skip needs no projection; stacking
    these blocks gives the "ResNet-lite" model used as the stand-in for
    ResNet-18 (see DESIGN.md substitutions).
    """

    per_file_capable = True

    def __init__(
        self,
        width: int,
        rng: int | np.random.Generator | None = 0,
        dtype: object | None = None,
    ) -> None:
        super().__init__()
        generator = as_generator(rng)
        self.width = int(width)
        self.dtype = resolve_dtype(dtype)
        self.dense1 = Dense(width, width, rng=generator, dtype=self.dtype)
        self.dense2 = Dense(width, width, rng=generator, dtype=self.dtype)
        self.relu1 = ReLU()
        self.relu2 = ReLU()
        self._sync_params()

    def _sync_params(self) -> None:
        self.params = {
            "dense1.W": self.dense1.params["W"],
            "dense1.b": self.dense1.params["b"],
            "dense2.W": self.dense2.params["W"],
            "dense2.b": self.dense2.params["b"],
        }
        self.grads = {
            "dense1.W": self.dense1.grads["W"],
            "dense1.b": self.dense1.grads["b"],
            "dense2.W": self.dense2.grads["W"],
            "dense2.b": self.dense2.grads["b"],
        }

    def forward(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        hidden = self.relu1.forward(self.dense1.forward(x, training), training)
        out = self.dense2.forward(hidden, training)
        return self.relu2.forward(out + x, training)

    def backward(self, grad_output: np.ndarray) -> np.ndarray:
        grad = self.relu2.backward(grad_output)
        grad_branch = self.dense1.backward(
            self.relu1.backward(self.dense2.backward(grad))
        )
        self._sync_grads()
        return grad_branch + grad

    def _sync_grads(self) -> None:
        self.grads["dense1.W"] = self.dense1.grads["W"]
        self.grads["dense1.b"] = self.dense1.grads["b"]
        self.grads["dense2.W"] = self.dense2.grads["W"]
        self.grads["dense2.b"] = self.dense2.grads["b"]

    def zero_grads(self) -> None:
        self.dense1.zero_grads()
        self.dense2.zero_grads()
        self._sync_grads()

    # -- stacked per-file path ---------------------------------------------
    def forward_per_file(self, x: np.ndarray, training: bool = True) -> np.ndarray:
        hidden = self.relu1.forward_per_file(
            self.dense1.forward_per_file(x, training), training
        )
        out = self.dense2.forward_per_file(hidden, training)
        return self.relu2.forward_per_file(out + x, training)

    def backward_per_file(
        self, grad_output: np.ndarray, grads_out: dict[str, np.ndarray]
    ) -> np.ndarray:
        grads1 = {"W": grads_out["dense1.W"], "b": grads_out["dense1.b"]}
        grads2 = {"W": grads_out["dense2.W"], "b": grads_out["dense2.b"]}
        grad = self.relu2.backward_per_file(grad_output, {})
        grad_branch = self.dense1.backward_per_file(
            self.relu1.backward_per_file(
                self.dense2.backward_per_file(grad, grads2), {}
            ),
            grads1,
        )
        return grad_branch + grad
