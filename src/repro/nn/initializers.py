"""Weight initializers.

All initializers take an explicit :class:`numpy.random.Generator` so model
construction is deterministic given a seed — a requirement for the
distributed experiments where every compared scheme must start from the same
``w₀`` (paper Algorithm 1, line 1).

Each initializer accepts a ``dtype`` resolved through the backend seam
(:mod:`repro.core.backend`); sampling always happens in ``float64`` — so a
``float32`` model starts from the rounded ``float64`` weights, not from a
different random stream — and the cast to the working dtype comes last.
"""

from __future__ import annotations

import numpy as np

from repro.core.backend import resolve_dtype

__all__ = ["glorot_uniform", "he_normal", "zeros_init"]


def glorot_uniform(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    fan_in: int | None = None,
    fan_out: int | None = None,
    dtype: object | None = None,
) -> np.ndarray:
    """Glorot/Xavier uniform initialization: U(−a, a) with a = sqrt(6/(fan_in+fan_out))."""
    if fan_in is None or fan_out is None:
        if len(shape) < 2:
            fan_in = fan_out = int(shape[0])
        else:
            receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
            fan_in = shape[1] * receptive
            fan_out = shape[0] * receptive
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=shape).astype(resolve_dtype(dtype))


def he_normal(
    shape: tuple[int, ...],
    rng: np.random.Generator,
    fan_in: int | None = None,
    dtype: object | None = None,
) -> np.ndarray:
    """He normal initialization: N(0, 2/fan_in), suited to ReLU networks."""
    if fan_in is None:
        if len(shape) < 2:
            fan_in = int(shape[0])
        else:
            receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
            fan_in = shape[1] * receptive
    std = np.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(resolve_dtype(dtype))


def zeros_init(shape: tuple[int, ...], dtype: object | None = None) -> np.ndarray:
    """All-zeros initialization (biases, batch-norm shifts)."""
    return np.zeros(shape, dtype=resolve_dtype(dtype))
