"""Deterministic random-number utilities.

Every stochastic component of the library accepts either an integer seed, an
existing :class:`numpy.random.Generator` or ``None`` and funnels it through
:func:`as_generator`.  Experiments therefore reproduce bit-for-bit when given
the same seed, which is essential for the paper's tables where the Byzantine
set and the batch order must be identical across compared schemes.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["as_generator", "spawn_generators", "derive_seed"]


def as_generator(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Parameters
    ----------
    seed:
        ``None`` (fresh OS entropy), an integer seed, or an existing
        generator which is returned unchanged.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_generators(
    seed: int | np.random.Generator | None, count: int
) -> list[np.random.Generator]:
    """Create ``count`` independent child generators from ``seed``.

    The children are produced via :class:`numpy.random.SeedSequence` spawning
    so that they are statistically independent; this is used to give each
    simulated worker its own stream.
    """
    if count < 0:
        raise ValueError(f"count must be non-negative, got {count}")
    if isinstance(seed, np.random.Generator):
        # Derive a seed sequence from the generator state deterministically.
        root = np.random.SeedSequence(int(seed.integers(0, 2**63 - 1)))
    else:
        root = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in root.spawn(count)]


def derive_seed(*parts: object) -> int:
    """Hash arbitrary labelled parts into a stable 63-bit integer seed.

    Useful to derive per-iteration or per-worker seeds from a global seed and
    a label, e.g. ``derive_seed(global_seed, "byzantine-set", iteration)``.
    """
    digest = hashlib.sha256("::".join(repr(p) for p in parts).encode()).digest()
    return int.from_bytes(digest[:8], "little") & ((1 << 63) - 1)
