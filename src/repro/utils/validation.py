"""Parameter-validation helpers used across the library.

These raise :class:`repro.exceptions.ConfigurationError` (a ``ValueError``
subclass) with informative messages so that misconfigured experiments fail
fast at construction time rather than mid-training.
"""

from __future__ import annotations

import math

from repro.exceptions import ConfigurationError

__all__ = [
    "check_positive_int",
    "check_probability",
    "check_odd",
    "check_in_range",
    "is_prime",
    "check_prime",
    "is_prime_power",
]


def check_positive_int(value: int, name: str) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool):
        raise ConfigurationError(f"{name} must be an int, got {type(value).__name__}")
    if value <= 0:
        raise ConfigurationError(f"{name} must be positive, got {value}")
    return value


def check_probability(value: float, name: str) -> float:
    """Validate that ``value`` lies in the closed interval [0, 1]."""
    value = float(value)
    if not (0.0 <= value <= 1.0):
        raise ConfigurationError(f"{name} must be in [0, 1], got {value}")
    return value


def check_odd(value: int, name: str) -> int:
    """Validate that ``value`` is odd (majority voting requires odd r)."""
    if value % 2 == 0:
        raise ConfigurationError(f"{name} must be odd, got {value}")
    return value


def check_in_range(value: float, low: float, high: float, name: str) -> float:
    """Validate ``low <= value <= high``."""
    if not (low <= value <= high):
        raise ConfigurationError(f"{name} must be in [{low}, {high}], got {value}")
    return value


def is_prime(n: int) -> bool:
    """Return True if ``n`` is a prime number (deterministic trial division)."""
    if n < 2:
        return False
    if n < 4:
        return True
    if n % 2 == 0:
        return False
    limit = int(math.isqrt(n))
    for d in range(3, limit + 1, 2):
        if n % d == 0:
            return False
    return True


def check_prime(value: int, name: str) -> int:
    """Validate that ``value`` is prime and return it."""
    check_positive_int(value, name)
    if not is_prime(value):
        raise ConfigurationError(f"{name} must be prime, got {value}")
    return value


def is_prime_power(n: int) -> bool:
    """Return True if ``n`` = p**k for a prime p and integer k >= 1."""
    if n < 2:
        return False
    for p in range(2, int(math.isqrt(n)) + 1):
        if n % p == 0:
            if not is_prime(p):
                return False
            while n % p == 0:
                n //= p
            return n == 1
    return True  # n itself is prime
