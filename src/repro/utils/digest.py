"""Stable content digests of numpy arrays.

Shared by the parameter server's :meth:`state_digest` and the scenario trace
layer so there is exactly one definition of "bit-identical" in the repo: two
arrays digest equally iff they have the same shape and the same float64 bit
patterns.
"""

from __future__ import annotations

import hashlib

import numpy as np

__all__ = ["array_digest"]


def array_digest(array: np.ndarray) -> str:
    """16-hex-char digest of an array's shape and exact float64 contents."""
    payload = np.ascontiguousarray(array, dtype=np.float64)  # repro-lint: disable=DTYPE-001 (digests are defined over float64 bit patterns for every working dtype)
    hasher = hashlib.sha256()
    hasher.update(repr(payload.shape).encode())
    hasher.update(payload.tobytes())
    return hasher.hexdigest()[:16]
