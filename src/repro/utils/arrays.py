"""Array manipulation helpers shared by the NN substrate and aggregators.

Gradients travel through the system as flat float vectors; these helpers
convert between a model's list of parameter arrays and that flat
representation, and provide vectorized distance computations used by
Krum-family aggregators.  All helpers preserve the supported working dtypes
(``float32``/``float64``) instead of promoting to ``float64`` — see
:mod:`repro.core.backend` — and coerce anything else to the backend default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.backend import DEFAULT_DTYPE, ensure_float

__all__ = [
    "stack_vectors",
    "flatten_arrays",
    "unflatten_vector",
    "pairwise_squared_distances",
    "block_ranges",
]


def block_ranges(d: int, block_size: int | None):
    """Yield the ``[lo, hi)`` coordinate blocks covering dimension ``d``.

    ``None`` (or a width >= ``d``) yields the single full range — callers can
    therefore write one streaming loop that also covers the monolithic case.
    """
    if block_size is None or block_size >= d:
        yield 0, d
        return
    for lo in range(0, d, block_size):
        yield lo, min(lo + block_size, d)


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate a sequence of arrays into one flat float vector."""
    if len(arrays) == 0:
        return np.zeros(0, dtype=DEFAULT_DTYPE)
    return np.concatenate([ensure_float(a).ravel() for a in arrays])


def unflatten_vector(
    vector: np.ndarray, shapes: Sequence[tuple[int, ...]]
) -> list[np.ndarray]:
    """Split a flat vector back into arrays with the given ``shapes``.

    Raises
    ------
    ValueError
        If the vector length does not match the total number of elements.
    """
    vector = ensure_float(vector).ravel()
    sizes = [int(np.prod(s)) if len(s) > 0 else 1 for s in shapes]
    total = int(sum(sizes))
    if vector.size != total:
        raise ValueError(
            f"vector has {vector.size} elements but shapes require {total}"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(vector[offset : offset + size].reshape(shape))
        offset += size
    return out


def stack_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Stack 1-D vectors into an ``(n, d)`` float matrix with validation."""
    if len(vectors) == 0:
        raise ValueError("cannot stack an empty sequence of vectors")
    mats = [ensure_float(v).ravel() for v in vectors]
    d = mats[0].size
    for i, m in enumerate(mats):
        if m.size != d:
            raise ValueError(
                f"vector {i} has dimension {m.size}, expected {d} (all votes "
                "must have identical dimensionality)"
            )
    return np.vstack(mats)


def pairwise_squared_distances(
    matrix: np.ndarray, block_size: int | None = None
) -> np.ndarray:
    """Compute the ``(n, n)`` matrix of squared Euclidean distances.

    Uses the ``||x||² + ||y||² − 2·x·y`` identity so the whole computation is
    a single matrix multiplication; numerical noise is clipped at zero.

    With ``block_size`` set, the norms and the Gram matrix accumulate over
    coordinate blocks so the peak temporary is O(n² + n · block).  The block
    partial sums can differ from the monolithic reduction in the last ulp;
    Krum-family consumers only rank the distances, so their *selection* (and
    hence their output rows) stays identical — the per-aggregator bit-identity
    property tests pin this down.
    """
    matrix = ensure_float(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    n, d = matrix.shape
    if block_size is None or block_size >= d:
        norms = np.einsum("ij,ij->i", matrix, matrix)
        gram = matrix @ matrix.T
    else:
        norms = np.zeros(n, dtype=matrix.dtype)
        gram = np.zeros((n, n), dtype=matrix.dtype)
        for lo, hi in block_ranges(d, block_size):
            block = matrix[:, lo:hi]
            norms += np.einsum("ij,ij->i", block, block)
            gram += block @ block.T
    sq = norms[:, None] + norms[None, :] - 2.0 * gram
    np.maximum(sq, 0.0, out=sq)
    np.fill_diagonal(sq, 0.0)
    return sq
