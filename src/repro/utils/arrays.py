"""Array manipulation helpers shared by the NN substrate and aggregators.

Gradients travel through the system as flat float vectors; these helpers
convert between a model's list of parameter arrays and that flat
representation, and provide vectorized distance computations used by
Krum-family aggregators.  All helpers preserve the supported working dtypes
(``float32``/``float64``) instead of promoting to ``float64`` — see
:mod:`repro.core.backend` — and coerce anything else to the backend default.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.backend import DEFAULT_DTYPE, ensure_float

__all__ = [
    "stack_vectors",
    "flatten_arrays",
    "unflatten_vector",
    "pairwise_squared_distances",
]


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate a sequence of arrays into one flat float vector."""
    if len(arrays) == 0:
        return np.zeros(0, dtype=DEFAULT_DTYPE)
    return np.concatenate([ensure_float(a).ravel() for a in arrays])


def unflatten_vector(
    vector: np.ndarray, shapes: Sequence[tuple[int, ...]]
) -> list[np.ndarray]:
    """Split a flat vector back into arrays with the given ``shapes``.

    Raises
    ------
    ValueError
        If the vector length does not match the total number of elements.
    """
    vector = ensure_float(vector).ravel()
    sizes = [int(np.prod(s)) if len(s) > 0 else 1 for s in shapes]
    total = int(sum(sizes))
    if vector.size != total:
        raise ValueError(
            f"vector has {vector.size} elements but shapes require {total}"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(vector[offset : offset + size].reshape(shape))
        offset += size
    return out


def stack_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Stack 1-D vectors into an ``(n, d)`` float matrix with validation."""
    if len(vectors) == 0:
        raise ValueError("cannot stack an empty sequence of vectors")
    mats = [ensure_float(v).ravel() for v in vectors]
    d = mats[0].size
    for i, m in enumerate(mats):
        if m.size != d:
            raise ValueError(
                f"vector {i} has dimension {m.size}, expected {d} (all votes "
                "must have identical dimensionality)"
            )
    return np.vstack(mats)


def pairwise_squared_distances(matrix: np.ndarray) -> np.ndarray:
    """Compute the ``(n, n)`` matrix of squared Euclidean distances.

    Uses the ``||x||² + ||y||² − 2·x·y`` identity so the whole computation is
    a single matrix multiplication; numerical noise is clipped at zero.
    """
    matrix = ensure_float(matrix)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    norms = np.einsum("ij,ij->i", matrix, matrix)
    sq = norms[:, None] + norms[None, :] - 2.0 * (matrix @ matrix.T)
    np.maximum(sq, 0.0, out=sq)
    np.fill_diagonal(sq, 0.0)
    return sq
