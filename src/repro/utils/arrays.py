"""Array manipulation helpers shared by the NN substrate and aggregators.

Gradients travel through the system as flat ``float64`` vectors; these helpers
convert between a model's list of parameter arrays and that flat
representation, and provide vectorized distance computations used by
Krum-family aggregators.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = [
    "stack_vectors",
    "flatten_arrays",
    "unflatten_vector",
    "pairwise_squared_distances",
]


def flatten_arrays(arrays: Sequence[np.ndarray]) -> np.ndarray:
    """Concatenate a sequence of arrays into one flat float64 vector."""
    if len(arrays) == 0:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([np.asarray(a, dtype=np.float64).ravel() for a in arrays])


def unflatten_vector(
    vector: np.ndarray, shapes: Sequence[tuple[int, ...]]
) -> list[np.ndarray]:
    """Split a flat vector back into arrays with the given ``shapes``.

    Raises
    ------
    ValueError
        If the vector length does not match the total number of elements.
    """
    vector = np.asarray(vector, dtype=np.float64).ravel()
    sizes = [int(np.prod(s)) if len(s) > 0 else 1 for s in shapes]
    total = int(sum(sizes))
    if vector.size != total:
        raise ValueError(
            f"vector has {vector.size} elements but shapes require {total}"
        )
    out: list[np.ndarray] = []
    offset = 0
    for shape, size in zip(shapes, sizes):
        out.append(vector[offset : offset + size].reshape(shape))
        offset += size
    return out


def stack_vectors(vectors: Sequence[np.ndarray]) -> np.ndarray:
    """Stack 1-D vectors into an ``(n, d)`` float64 matrix with validation."""
    if len(vectors) == 0:
        raise ValueError("cannot stack an empty sequence of vectors")
    mats = [np.asarray(v, dtype=np.float64).ravel() for v in vectors]
    d = mats[0].size
    for i, m in enumerate(mats):
        if m.size != d:
            raise ValueError(
                f"vector {i} has dimension {m.size}, expected {d} (all votes "
                "must have identical dimensionality)"
            )
    return np.vstack(mats)


def pairwise_squared_distances(matrix: np.ndarray) -> np.ndarray:
    """Compute the ``(n, n)`` matrix of squared Euclidean distances.

    Uses the ``||x||² + ||y||² − 2·x·y`` identity so the whole computation is
    a single matrix multiplication; numerical noise is clipped at zero.
    """
    matrix = np.asarray(matrix, dtype=np.float64)
    if matrix.ndim != 2:
        raise ValueError(f"expected a 2-D matrix, got ndim={matrix.ndim}")
    norms = np.einsum("ij,ij->i", matrix, matrix)
    sq = norms[:, None] + norms[None, :] - 2.0 * (matrix @ matrix.T)
    np.maximum(sq, 0.0, out=sq)
    np.fill_diagonal(sq, 0.0)
    return sq
