"""Shared utilities: seeding, validation and array helpers."""

from repro.utils.arrays import (
    stack_vectors,
    flatten_arrays,
    unflatten_vector,
    pairwise_squared_distances,
)
from repro.utils.rng import as_generator, spawn_generators, derive_seed
from repro.utils.validation import (
    check_positive_int,
    check_probability,
    check_odd,
    check_in_range,
    check_prime,
    is_prime,
)

__all__ = [
    "as_generator",
    "spawn_generators",
    "derive_seed",
    "check_positive_int",
    "check_probability",
    "check_odd",
    "check_in_range",
    "check_prime",
    "is_prime",
    "stack_vectors",
    "flatten_arrays",
    "unflatten_vector",
    "pairwise_squared_distances",
]
