"""Time-varying adversary schedules.

The paper's experiments fix the Byzantine budget ``q`` for a whole run, but
real deployments face adversaries that come and go: compromised machines get
re-imaged, new ones fall, botnets grow.  An :class:`AdversarySchedule` maps
the iteration index to that round's budget ``q_t`` (and, for the rotating
adversary, to the concrete compromised set), and
:class:`ScheduledSelector` adapts a schedule to the
:class:`~repro.attacks.selection.ByzantineSelector` interface so the existing
simulator drives it unchanged.

Three schedule kinds are provided:

* ``static``   — constant ``q`` (the paper's threat model);
* ``ramping``  — ``q`` interpolates from ``q_start`` to ``q_end`` in steps of
  ``period`` iterations (an escalating compromise);
* ``rotating`` — constant ``q`` but the compromised *window* shifts by
  ``stride`` workers every ``period`` iterations (churned compromise).

All selection randomness comes from the per-round generator the simulator
passes in, so identical seeds give bit-identical schedules.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.attacks.selection import ByzantineSelector, OmniscientSelector
from repro.exceptions import AttackError, ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = ["AdversarySchedule", "ScheduledSelector"]

_KINDS = ("static", "ramping", "rotating")


@dataclass(frozen=True)
class AdversarySchedule:
    """Declarative description of how the Byzantine budget evolves.

    Attributes
    ----------
    kind:
        ``"static"``, ``"ramping"`` or ``"rotating"``.
    q:
        The budget (``static`` / ``rotating``) or the ramp start (``ramping``
        uses ``q`` as ``q_start`` when ``q_end`` is set).
    q_end:
        Final budget of a ramp (inclusive); ignored otherwise.
    period:
        Iterations between ramp steps / window rotations (>= 1).
    stride:
        Workers the rotating window advances by each period.
    """

    kind: str = "static"
    q: int = 0
    q_end: int | None = None
    period: int = 1
    stride: int = 1

    def __post_init__(self) -> None:
        if self.kind not in _KINDS:
            raise ConfigurationError(
                f"unknown schedule kind {self.kind!r}; expected one of {_KINDS}"
            )
        if self.q < 0:
            raise ConfigurationError(f"q must be non-negative, got {self.q}")
        if self.q_end is not None and self.q_end < 0:
            raise ConfigurationError(f"q_end must be non-negative, got {self.q_end}")
        if self.period < 1:
            raise ConfigurationError(f"period must be >= 1, got {self.period}")
        if self.stride < 1:
            raise ConfigurationError(f"stride must be >= 1, got {self.stride}")
        if self.kind == "ramping" and self.q_end is None:
            raise ConfigurationError("ramping schedule requires q_end")

    def q_at(self, iteration: int) -> int:
        """Byzantine budget ``q_t`` of the given iteration."""
        if iteration < 0:
            raise AttackError(f"iteration must be non-negative, got {iteration}")
        if self.kind != "ramping" or self.q_end is None:
            return self.q
        step = iteration // self.period
        if self.q_end >= self.q:
            return min(self.q + step, self.q_end)
        return max(self.q - step, self.q_end)

    def window_offset(self, iteration: int) -> int:
        """Start of the rotating compromise window at the given iteration."""
        return (iteration // self.period) * self.stride

    @property
    def max_q(self) -> int:
        """Largest budget the schedule can ever request."""
        if self.kind == "ramping" and self.q_end is not None:
            return max(self.q, self.q_end)
        return self.q


class ScheduledSelector(ByzantineSelector):
    """Drives a :class:`ByzantineSelector` from an :class:`AdversarySchedule`.

    Parameters
    ----------
    schedule:
        The budget/rotation schedule.
    selection:
        How the ``q_t`` workers are picked each round: ``"omniscient"``
        (worst-case set for that budget, cached per ``(assignment, q)``),
        ``"random"`` (fresh uniform draw from the round generator) or
        ``"rotating"`` (the schedule's contiguous window, modulo ``K``).
    seed:
        Seed forwarded to the omniscient distortion search.
    """

    def __init__(
        self,
        schedule: AdversarySchedule,
        selection: str = "omniscient",
        seed: int | None = 0,
    ) -> None:
        if selection not in ("omniscient", "random", "rotating"):
            raise ConfigurationError(
                f"unknown selection {selection!r}; expected 'omniscient', "
                "'random' or 'rotating'"
            )
        if selection == "rotating" and schedule.kind != "rotating":
            raise ConfigurationError(
                "selection='rotating' requires a rotating schedule"
            )
        if schedule.kind == "rotating" and selection != "rotating":
            raise ConfigurationError(
                "a rotating schedule defines the compromised set itself; "
                f"set selection='rotating' (got {selection!r})"
            )
        self.schedule = schedule
        self.selection = selection
        self.seed = seed
        self._omniscient: dict[int, OmniscientSelector] = {}

    def reset(self) -> None:
        """Drop cached state so the selector can be reused across runs."""
        self._omniscient.clear()

    def select(
        self,
        assignment: BipartiteAssignment,
        iteration: int,
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        q = self.schedule.q_at(iteration)
        K = assignment.num_workers
        if q > K:
            raise AttackError(f"schedule requests q={q} > K={K} at t={iteration}")
        if q == 0:
            return ()
        if self.selection == "rotating":
            offset = self.schedule.window_offset(iteration)
            return tuple(sorted((offset + i) % K for i in range(q)))
        if self.selection == "random":
            return tuple(
                int(w) for w in sorted(rng.choice(K, size=q, replace=False))
            )
        if q not in self._omniscient:
            self._omniscient[q] = OmniscientSelector(q, seed=self.seed)
        return self._omniscient[q].select(assignment, iteration, rng)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return (
            f"ScheduledSelector({self.schedule.kind!r}, q={self.schedule.q}, "
            f"selection={self.selection!r})"
        )
