"""Noise attacks used in extension / ablation experiments.

These are not part of the paper's main evaluation but are standard in the
Byzantine-robustness literature and exercise different failure modes: huge
random values (easy for robust rules, catastrophic for the mean) and
plausible-magnitude random directions (harder to distinguish from honest
stochastic noise).
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext, byzantine_write_order
from repro.exceptions import AttackError

__all__ = ["GaussianNoiseAttack", "UniformRandomAttack"]


class GaussianNoiseAttack(Attack):
    """Return ``g + N(0, σ²)`` noise with a configurable (possibly huge) σ.

    Parameters
    ----------
    sigma:
        Noise standard deviation.
    around_true_gradient:
        If True the noise is added to the true gradient (harder to detect);
        otherwise pure noise is returned.
    """

    attack_name = "gaussian_noise"

    def __init__(self, sigma: float = 10.0, around_true_gradient: bool = False) -> None:
        if not np.isfinite(sigma) or sigma <= 0:
            raise AttackError(f"sigma must be positive and finite, got {sigma}")
        self.sigma = float(sigma)
        self.around_true_gradient = bool(around_true_gradient)

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        noise = context.rng.standard_normal(context.gradient_dim) * self.sigma
        if self.around_true_gradient:
            return context.honest_file_gradients[file] + noise
        return noise

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        # Vectorized: one stacked (m, d) draw fills the RNG stream exactly as
        # m successive (d,) draws do, so writing it in the adapter's
        # worker-then-file order stays bit-identical to the dict path.
        if context.num_byzantine == 0:
            return
        self.prepare(context)
        files, slots = byzantine_write_order(context, tensor)
        payload = context.rng.standard_normal((files.size, tensor.dim)) * self.sigma
        if self.around_true_gradient:
            payload += context.stacked_honest_gradients()[files]
        tensor.write_slots(files, slots, payload)


class UniformRandomAttack(Attack):
    """Return a uniform random vector in ``[-magnitude, magnitude]^d``."""

    attack_name = "uniform_random"

    def __init__(self, magnitude: float = 1.0) -> None:
        if not np.isfinite(magnitude) or magnitude <= 0:
            raise AttackError(
                f"magnitude must be positive and finite, got {magnitude}"
            )
        self.magnitude = float(magnitude)

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        return context.rng.uniform(
            -self.magnitude, self.magnitude, size=context.gradient_dim
        )

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        # Same stream-order argument as GaussianNoiseAttack.apply_tensor.
        if context.num_byzantine == 0:
            return
        self.prepare(context)
        files, slots = byzantine_write_order(context, tensor)
        payload = context.rng.uniform(
            -self.magnitude, self.magnitude, size=(files.size, tensor.dim)
        )
        tensor.write_slots(files, slots, payload)
