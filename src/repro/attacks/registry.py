"""Registry of attacks, keyed by name for experiment configurations."""

from __future__ import annotations

from typing import Type

from repro.attacks.adaptive import FangAdaptiveAttack, MinMaxAttack, MinSumAttack
from repro.attacks.alie import ALIEAttack
from repro.attacks.base import Attack
from repro.attacks.constant import ConstantAttack
from repro.attacks.inner_product import InnerProductManipulationAttack
from repro.attacks.noise import GaussianNoiseAttack, UniformRandomAttack
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.attacks.sign_flip import SignFlipAttack
from repro.exceptions import ConfigurationError

__all__ = ["register_attack", "get_attack", "create_attack", "available_attacks"]

_REGISTRY: dict[str, Type[Attack]] = {}


def register_attack(name: str, cls: Type[Attack], overwrite: bool = False) -> None:
    """Register an attack class under ``name``."""
    key = name.lower()
    if key in _REGISTRY and not overwrite:
        raise ConfigurationError(
            f"attack {name!r} is already registered "
            f"(as {_REGISTRY[key].__name__}); pass overwrite=True to replace it"
        )
    if not issubclass(cls, Attack):
        raise ConfigurationError(
            f"{cls!r} does not subclass Attack and cannot be registered"
        )
    _REGISTRY[key] = cls


def get_attack(name: str) -> Type[Attack]:
    """Look up an attack class by (case-insensitive) name."""
    key = name.lower()
    if key not in _REGISTRY:
        raise ConfigurationError(
            f"unknown attack {name!r}; available: {available_attacks()}"
        )
    return _REGISTRY[key]


def create_attack(name: str, **kwargs) -> Attack:
    """Instantiate a registered attack with keyword arguments."""
    return get_attack(name)(**kwargs)


def available_attacks() -> list[str]:
    """Sorted list of registered attack names."""
    return sorted(_REGISTRY)


for _name, _cls in (
    ("alie", ALIEAttack),
    ("constant", ConstantAttack),
    ("reversed_gradient", ReversedGradientAttack),
    ("gaussian_noise", GaussianNoiseAttack),
    ("uniform_random", UniformRandomAttack),
    ("inner_product", InnerProductManipulationAttack),
    ("sign_flip", SignFlipAttack),
    ("fang", FangAdaptiveAttack),
    ("min_max", MinMaxAttack),
    ("min_sum", MinSumAttack),
):
    register_attack(_name, _cls)
