"""Inner-product manipulation (Xie et al., 2020).

The colluding Byzantine workers all report ``−ε·µ`` where ``µ`` is the mean
of the honest gradients.  The crafted vector has a *negative inner product*
with the true descent direction, so whenever it survives aggregation the
model takes an ascent step — Xie et al. show that for ``ε`` small enough the
crafted vector sits inside the ball that median/Krum-style rules tolerate,
so the manipulation passes straight through distance-based defenses.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import AttackError

__all__ = ["InnerProductManipulationAttack"]


class InnerProductManipulationAttack(Attack):
    """Collusive ``−ε·mean(honest)`` payload with negative inner product.

    Parameters
    ----------
    epsilon:
        Scale of the reversed mean.  Small values (the paper uses ε ≤ 1)
        keep the payload within the tolerance ball of distance-based
        defenses while still reversing the update direction.
    """

    attack_name = "inner_product"

    def __init__(self, epsilon: float = 0.5) -> None:
        if not np.isfinite(epsilon) or epsilon <= 0:
            raise AttackError(f"epsilon must be positive and finite, got {epsilon}")
        self.epsilon = float(epsilon)
        self._crafted: np.ndarray | None = None

    def prepare(self, context: AttackContext) -> None:
        honest = context.stacked_honest_gradients()
        self._crafted = -self.epsilon * honest.mean(axis=0)

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        if self._crafted is None:
            raise AttackError("prepare() was not called before craft()")
        return self._crafted.copy()

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        if context.num_byzantine == 0:
            return
        self.prepare(context)
        files, slots = np.nonzero(tensor.byzantine_mask)
        tensor.write_slots(files, slots, self._crafted)
