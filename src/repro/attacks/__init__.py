"""Byzantine attacks and adversarial worker selection.

Two orthogonal choices define the adversary of the paper:

* **which** workers are Byzantine — :mod:`repro.attacks.selection` provides
  random selection (the DETOX/DRACO assumption) and the paper's omniscient
  selection that maximizes the distortion fraction ``ε̂``;
* **what** the Byzantine workers send — :mod:`repro.attacks` implements ALIE,
  the constant attack, reversed gradient, plus Gaussian-noise and random
  attacks used in extension experiments.
"""

from repro.attacks.base import Attack, AttackContext
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.attacks.constant import ConstantAttack
from repro.attacks.alie import ALIEAttack, alie_z_max
from repro.attacks.noise import GaussianNoiseAttack, UniformRandomAttack
from repro.attacks.selection import (
    ByzantineSelector,
    FixedSelector,
    RandomSelector,
    OmniscientSelector,
)
from repro.attacks.registry import (
    available_attacks,
    create_attack,
    get_attack,
    register_attack,
)

__all__ = [
    "Attack",
    "AttackContext",
    "ReversedGradientAttack",
    "ConstantAttack",
    "ALIEAttack",
    "alie_z_max",
    "GaussianNoiseAttack",
    "UniformRandomAttack",
    "ByzantineSelector",
    "FixedSelector",
    "RandomSelector",
    "OmniscientSelector",
    "available_attacks",
    "create_attack",
    "get_attack",
    "register_attack",
]
