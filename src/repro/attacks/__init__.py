"""Byzantine attacks and adversarial worker selection.

Two orthogonal choices define the adversary of the paper:

* **which** workers are Byzantine — :mod:`repro.attacks.selection` provides
  random selection (the DETOX/DRACO assumption) and the paper's omniscient
  selection that maximizes the distortion fraction ``ε̂``;
* **what** the Byzantine workers send — :mod:`repro.attacks` implements ALIE,
  the constant attack, reversed gradient, Gaussian-noise and random attacks,
  plus the adaptive adversary zoo: inner-product manipulation, sign-flip
  collusion, Fang-style aggregator-aware payload search and the AGR-agnostic
  min-max / min-sum attacks.
"""

from repro.attacks.adaptive import FangAdaptiveAttack, MinMaxAttack, MinSumAttack
from repro.attacks.alie import ALIEAttack, alie_z_max
from repro.attacks.base import Attack, AttackContext
from repro.attacks.constant import ConstantAttack
from repro.attacks.inner_product import InnerProductManipulationAttack
from repro.attacks.noise import GaussianNoiseAttack, UniformRandomAttack
from repro.attacks.registry import (
    available_attacks,
    create_attack,
    get_attack,
    register_attack,
)
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.attacks.selection import (
    ByzantineSelector,
    FixedSelector,
    RandomSelector,
    OmniscientSelector,
)
from repro.attacks.sign_flip import SignFlipAttack

__all__ = [
    "Attack",
    "AttackContext",
    "ReversedGradientAttack",
    "ConstantAttack",
    "ALIEAttack",
    "alie_z_max",
    "GaussianNoiseAttack",
    "UniformRandomAttack",
    "InnerProductManipulationAttack",
    "SignFlipAttack",
    "FangAdaptiveAttack",
    "MinMaxAttack",
    "MinSumAttack",
    "ByzantineSelector",
    "FixedSelector",
    "RandomSelector",
    "OmniscientSelector",
    "available_attacks",
    "create_attack",
    "get_attack",
    "register_attack",
]
