"""Sign-flip collusion (Li et al., 2019; Karimireddy et al., 2021).

All Byzantine workers agree on a vector pointing against the sign of the
honest mean with a fixed per-coordinate magnitude.  Unlike the reversed
gradient the payload does not shrink as training converges, and unlike the
constant attack it adapts its direction to the current honest update —
against sign-based aggregation (signSGD) every colluding vote pushes each
coordinate's majority toward the wrong sign.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.backend import DEFAULT_DTYPE
from repro.exceptions import AttackError

__all__ = ["SignFlipAttack"]


class SignFlipAttack(Attack):
    """Collusive ``−magnitude·sign(mean(honest))`` payload.

    Parameters
    ----------
    magnitude:
        Per-coordinate magnitude of the flipped vector.  Coordinates whose
        honest mean is exactly zero are pushed in the negative direction so
        the payload never contains zeros.
    """

    attack_name = "sign_flip"

    def __init__(self, magnitude: float = 1.0) -> None:
        if not np.isfinite(magnitude) or magnitude <= 0:
            raise AttackError(
                f"magnitude must be positive and finite, got {magnitude}"
            )
        self.magnitude = float(magnitude)
        self._crafted: np.ndarray | None = None

    def prepare(self, context: AttackContext) -> None:
        mean = context.stacked_honest_gradients().mean(axis=0)
        # sign(µ) with sign(0) := +1, so the payload is ±magnitude everywhere.
        flipped = np.where(mean >= 0.0, -self.magnitude, self.magnitude)
        self._crafted = flipped.astype(DEFAULT_DTYPE, copy=False)

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        if self._crafted is None:
            raise AttackError("prepare() was not called before craft()")
        return self._crafted.copy()

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        if context.num_byzantine == 0:
            return
        self.prepare(context)
        files, slots = np.nonzero(tensor.byzantine_mask)
        tensor.write_slots(files, slots, self._crafted)
