"""Attack interface and the omniscient attack context.

The attack model of the paper (Section 2, Eq. (2)) lets Byzantine workers
return *any* vector for each file they are assigned.  Because the adversary is
omniscient, an attack may inspect the complete set of true per-file gradients,
the assignment graph and the identity of all Byzantine workers before
choosing the adversarial vectors — ALIE uses exactly this to estimate the
gradient statistics it distorts.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

import numpy as np

from repro.core.backend import ensure_float
from repro.exceptions import AttackError
from repro.graphs.bipartite import BipartiteAssignment
from repro.utils.rng import as_generator

__all__ = ["AttackContext", "Attack", "byzantine_write_order"]


def byzantine_write_order(context: "AttackContext", tensor) -> tuple[np.ndarray, np.ndarray]:
    """``(files, slots)`` of the Byzantine slots in the adapter's write order.

    The dict-based :meth:`Attack.apply` adapter iterates Byzantine workers in
    context order and, within a worker, its files in assignment order.
    Stochastic attacks that vectorize :meth:`Attack.apply_tensor` must consume
    their RNG stream in exactly that order to stay bit-identical with the
    adapter, so they draw one stacked ``(m, d)`` sample and scatter it with
    the pair list returned here.
    """
    files_list: list[int] = []
    workers_list: list[int] = []
    for worker in context.byzantine_workers:
        for file in context.assignment.files_of_worker(worker):
            files_list.append(int(file))
            workers_list.append(int(worker))
    files = np.asarray(files_list, dtype=np.int64)
    workers = np.asarray(workers_list, dtype=np.int64)
    rows = tensor.workers[files]
    slots = (rows == workers[:, None]).argmax(axis=1)
    return files, slots


@dataclass(frozen=True)
class AttackContext:
    """Everything an omniscient adversary can see in one iteration.

    Attributes
    ----------
    assignment:
        The worker/file assignment graph.
    byzantine_workers:
        Identities of the compromised workers this iteration.
    honest_file_gradients:
        The true gradient of every file, keyed by file index (what honest
        workers would return).
    iteration:
        Zero-based training iteration (attacks may vary over time).
    rng:
        Generator for stochastic attacks.  The simulator always passes a
        per-round derived generator; the default (a fixed-seed generator,
        never fresh OS entropy) only exists so hand-built contexts in tests
        are reproducible too.
    honest_matrix:
        Optional ``(f, d)`` stacked view of the honest gradients (file order).
        Provided by the tensor round path so vectorized attacks avoid
        re-stacking the per-file dict.
    """

    assignment: BipartiteAssignment
    byzantine_workers: tuple[int, ...]
    honest_file_gradients: dict[int, np.ndarray]
    iteration: int = 0
    rng: np.random.Generator = field(default_factory=lambda: as_generator(0))
    honest_matrix: np.ndarray | None = None

    @property
    def num_byzantine(self) -> int:
        """Number of compromised workers ``q``."""
        return len(self.byzantine_workers)

    @property
    def gradient_dim(self) -> int:
        """Dimensionality ``d`` of the model gradients."""
        if not self.honest_file_gradients:
            raise AttackError("attack context has no honest gradients")
        return int(next(iter(self.honest_file_gradients.values())).size)

    def stacked_honest_gradients(self) -> np.ndarray:
        """All true file gradients stacked into an ``(f, d)`` matrix (file order).

        The result must be treated as read-only: on the tensor path it is a
        view of the simulator's ground-truth matrix (enforced via the
        writeable flag), so attacks must derive payloads into fresh arrays.
        """
        if self.honest_matrix is not None:
            view = self.honest_matrix.view()
            view.setflags(write=False)
            return view
        files = sorted(self.honest_file_gradients)
        return np.vstack([self.honest_file_gradients[i].ravel() for i in files])


class Attack(abc.ABC):
    """A rule producing the adversarial vectors of the Byzantine workers.

    :meth:`apply` returns ``{(worker, file): vector}`` for every Byzantine
    worker and every file assigned to it; the simulator substitutes these for
    the honest gradients before anything reaches the PS.
    """

    attack_name: str = "abstract"

    @abc.abstractmethod
    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        """Adversarial vector returned by ``worker`` for ``file``."""

    def prepare(self, context: AttackContext) -> None:
        """Hook called once per iteration before any :meth:`craft` call.

        Collusion-based attacks (ALIE) compute their shared statistics here.
        """

    def apply(self, context: AttackContext) -> dict[tuple[int, int], np.ndarray]:
        """All adversarial returns of this iteration."""
        if context.num_byzantine == 0:
            return {}
        self.prepare(context)
        crafted: dict[tuple[int, int], np.ndarray] = {}
        for worker in context.byzantine_workers:
            for file in context.assignment.files_of_worker(worker):
                vector = ensure_float(self.craft(context, worker, file)).ravel()
                expected = context.gradient_dim
                if vector.size != expected:
                    raise AttackError(
                        f"attack produced a vector of size {vector.size}, expected {expected}"
                    )
                crafted[(worker, file)] = vector
        return crafted

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        """Write this iteration's adversarial payloads into a vote tensor.

        ``tensor`` is a :class:`~repro.core.vote_tensor.VoteTensor` whose
        ``byzantine_mask`` already marks the compromised slots.  The default
        adapter delegates to the dict-based :meth:`apply` and scatters the
        payloads, so every legacy attack works on the tensor path unchanged
        (and bit-identically).  Attacks whose payloads are expressible as
        tensor slices (constant, reversed gradient, ALIE) override this with
        a vectorized write; stochastic attacks should only override it if
        they can reproduce :meth:`apply`'s RNG consumption order exactly.
        """
        for (worker, file), payload in self.apply(context).items():
            tensor.set_vote(file, worker, payload)

    def __repr__(self) -> str:  # pragma: no cover - trivial
        return f"{type(self).__name__}()"
