"""Reversed-gradient attack.

Byzantine workers return ``−c·g`` instead of the true gradient ``g`` for some
``c > 0`` (paper Section 6.1).  It is the weakest of the paper's three attacks
because robust aggregators easily filter values that point in the exact
opposite direction of the honest cluster.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import AttackError

__all__ = ["ReversedGradientAttack"]


class ReversedGradientAttack(Attack):
    """Return the negated (and optionally rescaled) true gradient.

    Parameters
    ----------
    scale:
        The positive constant ``c``; the adversarial vector is ``−scale·g``.
        The paper (and the DETOX codebase) commonly use large values such as
        100 to maximize damage when the value survives aggregation.
    """

    attack_name = "reversed_gradient"

    def __init__(self, scale: float = 100.0) -> None:
        if not np.isfinite(scale) or scale <= 0:
            raise AttackError(f"scale must be positive and finite, got {scale}")
        self.scale = float(scale)

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        true_gradient = context.honest_file_gradients[file]
        return -self.scale * true_gradient

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        if context.num_byzantine == 0:
            return
        files, slots = np.nonzero(tensor.byzantine_mask)
        honest = context.stacked_honest_gradients()
        tensor.write_slots(files, slots, -self.scale * honest[files])
