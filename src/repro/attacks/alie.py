"""ALIE — "A Little Is Enough" (Baruch et al., 2019).

The colluding Byzantine workers estimate the per-coordinate mean ``µ_i`` and
standard deviation ``σ_i`` of the honest gradients and all report
``µ_i − z·σ_i``: a perturbation small enough to look like an honest gradient
(staying within ``z`` standard deviations) but, because all Byzantines agree
on it, large enough to drag median-style aggregators away from the true mean.
The paper calls this "the most sophisticated attack in literature for
centralized setups" and uses it as its headline attack (Figures 2–5).

The deflection magnitude ``z`` is chosen as in the original paper: the largest
``z`` such that the ``q`` colluding values plus the honest values within ``z``
standard deviations still form a majority, computed from the Gaussian CDF.
"""

from __future__ import annotations

import numpy as np
from scipy import stats

from repro.attacks.base import Attack, AttackContext
from repro.exceptions import AttackError

__all__ = ["ALIEAttack", "alie_z_max"]


def alie_z_max(num_voters: int, num_byzantine: int) -> float:
    """The ALIE deflection ``z_max`` for ``n`` voters of which ``q`` collude.

    Following Baruch et al.: the attackers need
    ``s = floor(n/2 + 1) − q`` honest "supporters" whose values are more
    extreme than the crafted one, so ``z_max = Φ⁻¹((n − q − s) / (n − q))``.
    Degenerate regimes (``q`` already a majority, or no honest workers) fall
    back to a unit deflection.
    """
    n = int(num_voters)
    q = int(num_byzantine)
    if n <= 0:
        raise AttackError(f"num_voters must be positive, got {n}")
    if q < 0 or q > n:
        raise AttackError(f"num_byzantine must be in [0, {n}], got {q}")
    honest = n - q
    supporters = n // 2 + 1 - q
    if honest <= 0 or supporters <= 0:
        return 1.0
    probability = (honest - supporters) / honest
    if probability <= 0.0:
        return 0.0
    if probability >= 1.0:
        return 1.0
    return float(stats.norm.ppf(probability))


class ALIEAttack(Attack):
    """Collusive mean-shift attack using honest gradient statistics.

    Parameters
    ----------
    z:
        Optional fixed deflection; when ``None`` (default) ``z_max`` is
        computed from the number of files and Byzantine workers each
        iteration.
    negative_direction:
        If True (default) the crafted vector is ``µ − z·σ``; otherwise
        ``µ + z·σ``.
    """

    attack_name = "alie"

    def __init__(self, z: float | None = None, negative_direction: bool = True) -> None:
        if z is not None and (not np.isfinite(z) or z < 0):
            raise AttackError(f"z must be a non-negative finite value, got {z}")
        self.z = None if z is None else float(z)
        self.negative_direction = bool(negative_direction)
        self._crafted: np.ndarray | None = None

    def prepare(self, context: AttackContext) -> None:
        honest = context.stacked_honest_gradients()
        mean = honest.mean(axis=0)
        std = honest.std(axis=0)
        if self.z is not None:
            z = self.z
        else:
            # Voting population: the paper's PS votes over file gradients, so
            # the relevant n is the number of files and the relevant q is the
            # number of file copies the adversary can fake per vote; using the
            # worker counts keeps the classic ALIE calibration.
            z = alie_z_max(context.assignment.num_workers, context.num_byzantine)
        direction = -1.0 if self.negative_direction else 1.0
        self._crafted = mean + direction * z * std

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        if self._crafted is None:
            raise AttackError("prepare() was not called before craft()")
        return self._crafted.copy()

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        if context.num_byzantine == 0:
            return
        self.prepare(context)
        files, slots = np.nonzero(tensor.byzantine_mask)
        tensor.write_slots(files, slots, self._crafted)
