"""Constant attack.

Byzantine workers send a constant vector with every coordinate equal to a
fixed value (paper Section 6.1).  Against sign-based defenses (signSGD) this
is particularly damaging because it flips the sign of every coordinate whose
honest majority is weak, and unlike the reversed gradient it does not shrink
as training converges.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.backend import DEFAULT_DTYPE
from repro.exceptions import AttackError

__all__ = ["ConstantAttack"]


class ConstantAttack(Attack):
    """Send ``value`` in every coordinate, regardless of the true gradient.

    Parameters
    ----------
    value:
        The constant fill value; the paper uses a negative constant so the
        update direction is pushed away from the descent direction.
    """

    attack_name = "constant"

    def __init__(self, value: float = -1.0) -> None:
        if not np.isfinite(value):
            raise AttackError(f"value must be finite, got {value}")
        self.value = float(value)

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        return np.full(context.gradient_dim, self.value, dtype=DEFAULT_DTYPE)

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        if context.num_byzantine == 0:
            return
        files, slots = np.nonzero(tensor.byzantine_mask)
        tensor.write_slots(files, slots, self.value)
