"""Byzantine worker selection policies.

DETOX and DRACO assume the ``q`` Byzantine workers are chosen *at random*
each iteration; ByzShield's threat model lets an omniscient adversary pick the
worst possible set given the (known) task assignment.  The selectors below
implement both, plus a fixed selection for controlled experiments.  The paper's
deep-learning experiments use the omniscient selector ("we chose the q
Byzantines such that ε̂ is maximized", Section 6.1).
"""

from __future__ import annotations

import abc

import numpy as np

from repro.core.distortion import max_distortion
from repro.exceptions import AttackError
from repro.graphs.bipartite import BipartiteAssignment

__all__ = [
    "ByzantineSelector",
    "FixedSelector",
    "RandomSelector",
    "OmniscientSelector",
]


class ByzantineSelector(abc.ABC):
    """Chooses which ``q`` workers behave adversarially in an iteration."""

    @abc.abstractmethod
    def select(
        self,
        assignment: BipartiteAssignment,
        iteration: int,
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        """Return the Byzantine worker indices for ``iteration``."""


class FixedSelector(ByzantineSelector):
    """Always the same, explicitly provided set of workers."""

    def __init__(self, workers: "tuple[int, ...] | list[int]") -> None:
        workers = tuple(int(w) for w in workers)
        if len(set(workers)) != len(workers):
            raise AttackError("fixed Byzantine set contains duplicates")
        self.workers = workers

    def select(
        self,
        assignment: BipartiteAssignment,
        iteration: int,
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        for w in self.workers:
            if not (0 <= w < assignment.num_workers):
                raise AttackError(
                    f"fixed Byzantine worker {w} out of range [0, {assignment.num_workers})"
                )
        return self.workers


class RandomSelector(ByzantineSelector):
    """A fresh uniform set of ``q`` workers every iteration (DETOX's assumption).

    Parameters
    ----------
    num_byzantine:
        Number of compromised workers ``q``.
    resample_every_iteration:
        If False, the set is drawn once (at iteration 0) and kept.
    """

    def __init__(self, num_byzantine: int, resample_every_iteration: bool = True) -> None:
        if num_byzantine < 0:
            raise AttackError(f"num_byzantine must be non-negative, got {num_byzantine}")
        self.num_byzantine = int(num_byzantine)
        self.resample_every_iteration = bool(resample_every_iteration)
        self._cached: tuple[int, ...] | None = None

    def reset(self) -> None:
        """Forget the cached draw so the selector can be reused across runs.

        Without this, a ``resample_every_iteration=False`` selector reused by
        a second run would replay the *first* run's cached set instead of
        drawing from the new run's seed — a cross-run RNG leak.
        """
        self._cached = None

    def select(
        self,
        assignment: BipartiteAssignment,
        iteration: int,
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        if self.num_byzantine > assignment.num_workers:
            raise AttackError(
                f"q={self.num_byzantine} exceeds K={assignment.num_workers}"
            )
        if not self.resample_every_iteration and self._cached is not None:
            return self._cached
        chosen = tuple(
            int(w)
            for w in sorted(
                rng.choice(assignment.num_workers, size=self.num_byzantine, replace=False)
            )
        )
        if not self.resample_every_iteration:
            self._cached = chosen
        return chosen


class OmniscientSelector(ByzantineSelector):
    """The paper's worst-case adversary: maximize the distortion fraction ``ε̂``.

    The optimal set depends only on the assignment graph, so it is computed
    once (with the exact or heuristic optimizer of
    :mod:`repro.core.distortion`) and reused every iteration.

    Parameters
    ----------
    num_byzantine:
        Number of compromised workers ``q``.
    method:
        Search method forwarded to :func:`repro.core.distortion.max_distortion`.
    seed:
        Seed for the heuristic optimizer.
    """

    def __init__(
        self,
        num_byzantine: int,
        method: str = "auto",
        seed: int | np.random.Generator | None = 0,
    ) -> None:
        if num_byzantine < 0:
            raise AttackError(f"num_byzantine must be non-negative, got {num_byzantine}")
        self.num_byzantine = int(num_byzantine)
        self.method = method
        self.seed = seed
        self._cache: dict[int, tuple[int, ...]] = {}

    def select(
        self,
        assignment: BipartiteAssignment,
        iteration: int,
        rng: np.random.Generator,
    ) -> tuple[int, ...]:
        key = hash(assignment)
        if key not in self._cache:
            result = max_distortion(
                assignment, self.num_byzantine, method=self.method, seed=self.seed
            )
            self._cache[key] = tuple(sorted(result.byzantine_workers))
        return self._cache[key]
