"""Aggregator-aware adaptive attacks (Fang et al., 2020; Shejwalkar &
Houmansadr, 2021).

These adversaries know which robust rule the PS runs and *optimize* their
perturbation against it, instead of sending a fixed collusive payload:

* :class:`FangAdaptiveAttack` — the "local model poisoning" framework of
  Fang et al.: craft a payload linear in a scale ``λ`` and search for the
  value that maximally deviates the simulated defense (median / trimmed
  mean / mean) or that Krum still selects (largest λ accepted by a halving
  search).
* :class:`MinMaxAttack` / :class:`MinSumAttack` — the AGR-agnostic attacks
  of Shejwalkar & Houmansadr: push ``µ + γ·u`` as far as possible while the
  crafted vector's distances to the honest gradients stay within the
  honest spread (max pairwise / max total distance), found by bisection.

The population the adversary reasons about is the paper's post-voting one:
``f`` per-file gradients of which the *distorted* files (majority of copies
Byzantine, :func:`repro.core.distortion.distorted_files`) carry the payload.
Every search step is evaluated in closed form — payloads are linear in the
search scalar, so squared distances are quadratics with precomputed
coefficients, the median under insertion is a ``searchsorted`` lookup into
presorted honest values and the trimmed mean a prefix-sum expression.  That
keeps a full adaptive round within a small factor of a constant-attack
round (gated in ``benchmarks/regression.py``), and makes every attack here
fully deterministic: no RNG is consumed, so the vectorized
``apply_tensor`` path is trivially stream-identical to the dict adapter.
"""

from __future__ import annotations

import numpy as np

from repro.attacks.base import Attack, AttackContext
from repro.core.backend import DEFAULT_DTYPE
from repro.core.distortion import distorted_files
from repro.exceptions import AttackError

__all__ = ["FangAdaptiveAttack", "MinMaxAttack", "MinSumAttack"]


def _corrupted_file_indices(context: AttackContext) -> np.ndarray:
    """Files whose post-vote gradient the adversary controls.

    Majority-distorted files when the Byzantine set corrupts any; otherwise
    (q too small for any majority) every file a Byzantine worker touches —
    the payload still lands in those cells, it just also has to survive the
    vote, and for r = 1 baselines "touched" and "distorted" coincide.
    """
    files = distorted_files(context.assignment, context.byzantine_workers)
    if files.size == 0:
        touched = {
            int(file)
            for worker in context.byzantine_workers
            for file in context.assignment.files_of_worker(worker)
        }
        files = np.asarray(sorted(touched), dtype=np.int64)
    return files


def _pairwise_sq_distances(matrix: np.ndarray) -> np.ndarray:
    """All pairwise squared distances of the rows, via the Gram matrix."""
    gram = matrix @ matrix.T
    sq = np.diag(gram)
    pair = sq[:, None] + sq[None, :] - 2.0 * gram
    np.maximum(pair, 0.0, out=pair)
    return pair


class _CollusivePayloadAttack(Attack):
    """Shared plumbing: one crafted vector written to every Byzantine cell."""

    def __init__(self) -> None:
        self._crafted: np.ndarray | None = None

    def craft(self, context: AttackContext, worker: int, file: int) -> np.ndarray:
        if self._crafted is None:
            raise AttackError("prepare() was not called before craft()")
        return self._crafted.copy()

    def apply_tensor(self, context: AttackContext, tensor) -> None:
        if context.num_byzantine == 0:
            return
        self.prepare(context)
        files, slots = np.nonzero(tensor.byzantine_mask)
        tensor.write_slots(files, slots, self._crafted)


class FangAdaptiveAttack(_CollusivePayloadAttack):
    """Defense-aware payload search in the style of Fang et al. (2020).

    Parameters
    ----------
    defense:
        The robust rule the PS is assumed to run: ``"median"``,
        ``"trimmed_mean"``, ``"mean"`` or ``"krum"``.
    lambda_init:
        Largest perturbation scale tried; the search walks the geometric
        ladder ``λ_init · 2^{-i}`` (coordinate defenses) or halves from it
        (Krum).
    num_steps:
        Number of ladder / halving steps.
    trim:
        Trim width the simulated trimmed mean uses; ``None`` (default)
        assumes the defense trims exactly the corrupted file count.
    rtol:
        Coordinate defenses pick the *smallest* λ whose deviation is within
        ``rtol`` of the best seen — near-maximal damage at maximal stealth.
    """

    attack_name = "fang"

    DEFENSES = ("median", "trimmed_mean", "mean", "krum")

    def __init__(
        self,
        defense: str = "median",
        lambda_init: float = 10.0,
        num_steps: int = 10,
        trim: int | None = None,
        rtol: float = 0.05,
    ) -> None:
        super().__init__()
        if defense not in self.DEFENSES:
            raise AttackError(
                f"unknown defense {defense!r}; expected one of {self.DEFENSES}"
            )
        if not np.isfinite(lambda_init) or lambda_init <= 0:
            raise AttackError(
                f"lambda_init must be positive and finite, got {lambda_init}"
            )
        if num_steps < 1:
            raise AttackError(f"num_steps must be >= 1, got {num_steps}")
        if trim is not None and trim < 0:
            raise AttackError(f"trim must be non-negative, got {trim}")
        if not 0.0 <= rtol < 1.0:
            raise AttackError(f"rtol must be in [0, 1), got {rtol}")
        self.defense = defense
        self.lambda_init = float(lambda_init)
        self.num_steps = int(num_steps)
        self.trim = None if trim is None else int(trim)
        self.rtol = float(rtol)

    def prepare(self, context: AttackContext) -> None:
        honest = np.asarray(context.stacked_honest_gradients(), dtype=DEFAULT_DTYPE)
        mu = honest.mean(axis=0)
        if context.num_byzantine == 0:
            self._crafted = mu.copy()
            return
        corrupted = _corrupted_file_indices(context)
        sign = np.where(mu >= 0.0, 1.0, -1.0)
        if self.defense == "krum":
            self._crafted = self._krum_payload(honest, corrupted, mu, sign)
        else:
            self._crafted = self._coordinate_payload(honest, corrupted, mu, sign)

    # -- Krum: halving search for the largest λ whose payload is selected --

    def _krum_payload(
        self,
        honest: np.ndarray,
        corrupted: np.ndarray,
        mu: np.ndarray,
        sign: np.ndarray,
    ) -> np.ndarray:
        f = honest.shape[0]
        k = int(corrupted.size)
        # p(λ) = µ − λ·sign(µ);  ||p − g_j||² = a_j − 2λ·b_j + λ²·c.
        diff = mu[None, :] - honest
        a = np.einsum("ij,ij->i", diff, diff)
        b = diff @ sign
        c = float(sign @ sign)
        pair = _pairwise_sq_distances(honest)
        q_eff = min(k, max(f - 3, 0))
        neighbors = max(1, f - q_eff - 2)
        corrupted_set = set(int(i) for i in corrupted)
        lam = self.lambda_init
        accepted: float | None = None
        for _ in range(self.num_steps):
            if self._krum_selects_corrupted(
                lam, a, b, c, pair, corrupted, corrupted_set, neighbors
            ):
                accepted = lam
                break
            lam /= 2.0
        if accepted is None:
            accepted = lam
        return mu - accepted * sign

    def _krum_selects_corrupted(
        self,
        lam: float,
        a: np.ndarray,
        b: np.ndarray,
        c: float,
        pair: np.ndarray,
        corrupted: np.ndarray,
        corrupted_set: set[int],
        neighbors: int,
    ) -> bool:
        to_payload = a - 2.0 * lam * b + lam * lam * c
        distances = pair.copy()
        distances[corrupted, :] = to_payload[None, :]
        distances[:, corrupted] = to_payload[:, None]
        distances[np.ix_(corrupted, corrupted)] = 0.0
        np.fill_diagonal(distances, np.inf)
        distances.partition(neighbors - 1, axis=1)
        scores = distances[:, :neighbors].sum(axis=1)
        return int(np.argmin(scores)) in corrupted_set

    # -- Coordinate defenses: λ ladder over extremes-based payloads --

    def _coordinate_payload(
        self,
        honest: np.ndarray,
        corrupted: np.ndarray,
        mu: np.ndarray,
        sign: np.ndarray,
    ) -> np.ndarray:
        if self.defense == "median":
            return self._median_payload(honest, corrupted, mu, sign)
        f = honest.shape[0]
        k = int(corrupted.size)
        uncorrupted = np.setdiff1d(np.arange(f), corrupted)
        reference = honest[uncorrupted] if uncorrupted.size else honest
        sorted_ref = np.sort(reference, axis=0)
        prefix = np.vstack(
            [np.zeros((1, sorted_ref.shape[1])), np.cumsum(sorted_ref, axis=0)]
        )
        low, high = sorted_ref[0], sorted_ref[-1]
        spread = np.maximum(high - low, 1e-12)
        trim = self._effective_trim(f, k)
        baseline = self._simulate_defense(honest, np.sort(honest, axis=0), trim)
        negative = mu >= 0.0  # push below the honest minimum where µ_i ≥ 0
        deviations: list[float] = []
        payloads: list[np.ndarray] = []
        # The ladder's payloads sit strictly outside the reference envelope
        # (below the min where µ_i >= 0, above the max elsewhere), so the
        # per-coordinate insertion position is analytic — no O(n·d)
        # comparison per step.
        position = np.where(negative, 0, sorted_ref.shape[0]).astype(np.int64)
        lam = self.lambda_init
        for _ in range(self.num_steps):
            payload = np.where(negative, low - lam * spread, high + lam * spread)
            aggregated = self._defense_with_insertion(
                sorted_ref, prefix, payload, f, k, trim, position=position
            )
            deviations.append(float((baseline - aggregated) @ sign))
            payloads.append(payload)
            lam /= 2.0
        return self._pick_payload(deviations, payloads)

    def _median_payload(
        self,
        honest: np.ndarray,
        corrupted: np.ndarray,
        mu: np.ndarray,
        sign: np.ndarray,
    ) -> np.ndarray:
        """Median-defense ladder, specialized for the round hot path.

        Bit-identical to the generic `_coordinate_payload` + insertion
        evaluation, but restructured for speed: sorts run on contiguous
        transposed copies (the strided axis-0 sort is cache-hostile at
        d ≈ 11k), the baseline median comes from the already-sorted rows,
        and the per-coordinate three-way insertion selection — which does
        not depend on λ, only on where the payload lands relative to the
        reference envelope — is precomputed once outside the ladder.
        """
        f = honest.shape[0]
        k = int(corrupted.size)
        uncorrupted = np.setdiff1d(np.arange(f), corrupted)
        reference = honest[uncorrupted] if uncorrupted.size else honest
        ref = np.ascontiguousarray(reference.T)  # (d, n_ref)
        ref.sort(axis=1)
        n_ref = ref.shape[1]
        low = np.ascontiguousarray(ref[:, 0])
        high = np.ascontiguousarray(ref[:, -1])
        spread = np.maximum(high - low, 1e-12)
        hon = np.ascontiguousarray(honest.T)
        hon.sort(axis=1)
        mid_low, mid_high = (f - 1) // 2, f // 2
        baseline = 0.5 * (hon[:, mid_low] + hon[:, mid_high])
        negative = mu >= 0.0
        position = np.where(negative, 0, n_ref).astype(np.int64)
        base = np.where(negative, low, high)
        delta = np.where(negative, -spread, spread)

        def stat_parts(mid: int) -> tuple[np.ndarray, np.ndarray]:
            from_low = ref[:, min(mid, n_ref - 1)]
            from_high = ref[:, int(np.clip(mid - k, 0, n_ref - 1))]
            sel_low = mid < position
            sel_payload = ~sel_low & (mid < position + k)
            return sel_payload, np.where(sel_low, from_low, from_high)

        parts = [stat_parts(mid_low)]
        parts.append(parts[0] if mid_high == mid_low else stat_parts(mid_high))
        # With the selection fixed, the simulated median is
        # 0.5·Σᵢ where(selᵢ, base + λ·delta, fixedᵢ), so the deviation is
        # *linear* in λ: dev(λ) = C0 + C1·λ.  Two O(d) reductions replace
        # the whole per-step ladder; only the chosen payload is built.
        c0 = float(sign @ baseline)
        c1 = 0.0
        for sel, fixed in parts:
            c0 -= 0.5 * float(sign @ np.where(sel, base, fixed))
            c1 -= 0.5 * float(np.where(sel, sign * delta, 0.0).sum())
        lams: list[float] = []
        deviations: list[float] = []
        lam = self.lambda_init
        for _ in range(self.num_steps):
            lams.append(lam)
            deviations.append(c0 + c1 * lam)
            lam /= 2.0
        best = max(deviations)
        if best <= 0.0:
            chosen = self.num_steps - 1  # nothing deviates; stay stealthy
        else:
            cutoff = (1.0 - self.rtol) * best
            chosen = max(i for i, dev in enumerate(deviations) if dev >= cutoff)
        return base + lams[chosen] * delta

    def _pick_payload(
        self, deviations: list[float], payloads: list[np.ndarray]
    ) -> np.ndarray:
        best = max(deviations)
        if best <= 0.0:
            return payloads[-1]  # nothing deviates; stay stealthy
        cutoff = (1.0 - self.rtol) * best
        chosen = max(i for i, dev in enumerate(deviations) if dev >= cutoff)
        return payloads[chosen]

    def _effective_trim(self, population: int, corrupted: int) -> int:
        if self.defense != "trimmed_mean":
            return 0
        trim = corrupted if self.trim is None else self.trim
        return min(trim, (population - 1) // 2)

    def _simulate_defense(
        self, rows: np.ndarray, sorted_rows: np.ndarray, trim: int
    ) -> np.ndarray:
        n = rows.shape[0]
        if self.defense == "mean":
            return rows.mean(axis=0)
        if self.defense == "median":
            return np.median(rows, axis=0)
        return sorted_rows[trim : n - trim].mean(axis=0)

    def _defense_with_insertion(
        self,
        sorted_ref: np.ndarray,
        prefix: np.ndarray,
        payload: np.ndarray,
        n: int,
        k: int,
        trim: int,
        position: np.ndarray | None = None,
    ) -> np.ndarray:
        """Defense over ``sorted_ref`` plus ``k`` copies of ``payload``.

        Never materializes the combined population: the insertion position
        per coordinate plus either order statistics (median) or prefix sums
        (trimmed mean / mean) give the aggregate in O(d·log n).  Callers
        that know where the payload lands (the λ ladder always lands outside
        the reference envelope) pass ``position`` to skip the comparison.
        """
        n_ref = sorted_ref.shape[0]
        if self.defense == "mean":
            return (prefix[-1] + k * payload) / n
        if position is None:
            position = (sorted_ref < payload[None, :]).sum(axis=0)
        if self.defense == "median":
            mid_low, mid_high = (n - 1) // 2, n // 2

            def order_stat(i: int) -> np.ndarray:
                from_low = sorted_ref[min(i, n_ref - 1)]
                from_high = sorted_ref[np.clip(i - k, 0, n_ref - 1)]
                return np.where(
                    i < position,
                    from_low,
                    np.where(i < position + k, payload, from_high),
                )

            return 0.5 * (order_stat(mid_low) + order_stat(mid_high))
        # Trimmed mean: sum combined order statistics in [trim, n − trim).
        lo, hi = trim, n - trim

        def prefix_at(index: np.ndarray) -> np.ndarray:
            return np.take_along_axis(prefix, index[None, :], axis=0)[0]

        first_hi = np.minimum(position, hi)
        first = prefix_at(first_hi) - prefix_at(np.minimum(lo, first_hi))
        second_lo = np.minimum(np.maximum(position, lo - k), n_ref)
        second_hi = np.minimum(np.maximum(position, hi - k), n_ref)
        second_lo = np.minimum(second_lo, second_hi)
        second = prefix_at(second_hi) - prefix_at(second_lo)
        count = np.clip(np.minimum(position + k, hi) - np.maximum(position, lo), 0, k)
        return (first + second + count * payload) / (n - 2 * trim)


class _OptimizedDeviationAttack(_CollusivePayloadAttack):
    """Shared bisection harness for the AGR-agnostic min-max/min-sum pair.

    The payload is ``µ + γ·u`` for a fixed perturbation direction ``u``;
    squared distances to the honest rows are the quadratic
    ``a_i + 2γ·b_i + γ²·c``, so each bisection step is O(f) after an
    O(f·d) precompute.
    """

    DIRECTIONS = ("unit", "sign", "std")

    def __init__(
        self,
        direction: str = "unit",
        gamma_init: float = 10.0,
        num_steps: int = 10,
    ) -> None:
        super().__init__()
        if direction not in self.DIRECTIONS:
            raise AttackError(
                f"unknown direction {direction!r}; expected one of {self.DIRECTIONS}"
            )
        if not np.isfinite(gamma_init) or gamma_init <= 0:
            raise AttackError(
                f"gamma_init must be positive and finite, got {gamma_init}"
            )
        if num_steps < 1:
            raise AttackError(f"num_steps must be >= 1, got {num_steps}")
        self.direction = direction
        self.gamma_init = float(gamma_init)
        self.num_steps = int(num_steps)

    def _perturbation(self, honest: np.ndarray, mu: np.ndarray) -> np.ndarray:
        if self.direction == "sign":
            return np.where(mu >= 0.0, -1.0, 1.0)
        if self.direction == "std":
            return -honest.std(axis=0)
        norm = float(np.linalg.norm(mu))
        if norm == 0.0:
            return np.full(mu.size, -1.0 / np.sqrt(mu.size))
        return -mu / norm

    def _bound(self, pair: np.ndarray) -> float:
        raise NotImplementedError

    def _accepts(
        self, gamma: float, a: np.ndarray, b: np.ndarray, c: float, bound: float
    ) -> bool:
        raise NotImplementedError

    def prepare(self, context: AttackContext) -> None:
        honest = np.asarray(context.stacked_honest_gradients(), dtype=DEFAULT_DTYPE)
        mu = honest.mean(axis=0)
        u = self._perturbation(honest, mu)
        # p − g_i = (µ − g_i) + γ·u → ||p − g_i||² = a_i + 2γ·b_i + γ²·c.
        diff = mu[None, :] - honest
        a = np.einsum("ij,ij->i", diff, diff)
        b = diff @ u
        c = float(u @ u)
        bound = self._bound(_pairwise_sq_distances(honest))
        gamma = self.gamma_init
        step = self.gamma_init / 2.0
        gamma_accepted = 0.0
        for _ in range(self.num_steps):
            if self._accepts(gamma, a, b, c, bound):
                gamma_accepted = gamma
                gamma += step
            else:
                gamma = max(gamma - step, 0.0)
            step /= 2.0
        self._crafted = mu + gamma_accepted * u


class MinMaxAttack(_OptimizedDeviationAttack):
    """Largest γ keeping max distance-to-honest within the honest spread."""

    attack_name = "min_max"

    def _bound(self, pair: np.ndarray) -> float:
        return float(pair.max())

    def _accepts(
        self, gamma: float, a: np.ndarray, b: np.ndarray, c: float, bound: float
    ) -> bool:
        return float((a + 2.0 * gamma * b + gamma * gamma * c).max()) <= bound


class MinSumAttack(_OptimizedDeviationAttack):
    """Largest γ keeping the *sum* of distances within the honest worst case."""

    attack_name = "min_sum"

    def _bound(self, pair: np.ndarray) -> float:
        return float(pair.sum(axis=1).max())

    def _accepts(
        self, gamma: float, a: np.ndarray, b: np.ndarray, c: float, bound: float
    ) -> bool:
        total = float(a.sum()) + 2.0 * gamma * float(b.sum()) + gamma * gamma * c * a.size
        return total <= bound
