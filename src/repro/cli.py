"""Command-line interface for regenerating the paper's experiments.

Usage (after installing the package)::

    python -m repro.cli list                         # what can be regenerated
    python -m repro.cli table table3                 # a distortion table
    python -m repro.cli table table5 --method local_search
    python -m repro.cli figure fig2 --scale tiny     # an accuracy figure
    python -m repro.cli figure fig12                 # the timing breakdown
    python -m repro.cli bounds                       # gamma-bound tightness + Claim 2
    python -m repro.cli ablation assignment          # extra ablations
    python -m repro.cli distortion --scheme mols --load 5 --replication 3 --q 4
    python -m repro.cli scenario list                # the golden scenario matrix
    python -m repro.cli scenario run examples/scenario_mols_alie_faults.json
    python -m repro.cli scenario run mols-alie-all-faults --trace-out trace.json
    python -m repro.cli scenario record              # regenerate golden traces
    python -m repro.cli scenario replay              # verify against goldens
    python -m repro.cli campaign expand examples/campaign_accuracy_vs_q.json
    python -m repro.cli campaign run examples/campaign_accuracy_vs_q.json --processes 4
    python -m repro.cli campaign status examples/campaign_accuracy_vs_q.json
    python -m repro.cli campaign report examples/campaign_accuracy_vs_q.json
    python -m repro.cli lint --check                 # static invariant linter

Output goes to stdout as aligned text tables; ``--csv PATH`` additionally
writes machine-readable CSV.
"""

from __future__ import annotations

import argparse
import pathlib
import sys
from typing import Callable, Sequence

from repro.assignment.registry import available_schemes, create_scheme
from repro.campaigns.executor import CampaignExecutor, CampaignRunResult
from repro.campaigns.report import campaign_report
from repro.campaigns.spec import CampaignSpec
from repro.campaigns.store import DEFAULT_STORE_ROOT, ResultStore
from repro.core.distortion import distortion_comparison_table
from repro.exceptions import ReproError
from repro.experiments.ablations import (
    aggregator_ablation,
    assignment_structure_ablation,
)
from repro.experiments.accuracy import (
    SCALE_PRESETS,
    available_figures,
    run_accuracy_figure,
)
from repro.experiments.bounds import bound_tightness_table, claim2_verification_table
from repro.experiments.paper_reference import FIGURE_DESCRIPTIONS, TABLE_CONFIGS
from repro.experiments.report import format_rows, format_series, rows_to_csv
from repro.experiments.scenarios import scenario_matrix_table
from repro.experiments.tables import (
    generate_table3,
    generate_table4,
    generate_table5,
    generate_table6,
)
from repro.experiments.timing import generate_figure12
from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.golden import golden_path, record_goldens, replay_golden
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec

__all__ = ["main", "build_parser"]

_TABLE_GENERATORS: dict[str, Callable[..., list[dict[str, float]]]] = {
    "table3": generate_table3,
    "table4": generate_table4,
    "table5": generate_table5,
    "table6": generate_table6,
}


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed separately for testing)."""
    parser = argparse.ArgumentParser(
        prog="repro", description="Regenerate the ByzShield paper's tables and figures."
    )
    parser.add_argument(
        "--csv", type=pathlib.Path, default=None, help="also write the rows as CSV to this path"
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("list", help="list the available tables and figures")

    table_parser = subparsers.add_parser("table", help="regenerate a distortion table")
    table_parser.add_argument(
        "name",
        choices=sorted(_TABLE_GENERATORS),
        help="which published distortion table to regenerate",
    )
    table_parser.add_argument(
        "--method",
        default=None,
        choices=["auto", "exhaustive", "greedy", "local_search"],
        help="override the c_max search method",
    )

    figure_parser = subparsers.add_parser("figure", help="regenerate a figure")
    figure_parser.add_argument(
        "name",
        choices=[*available_figures(), "fig12"],
        help="which accuracy figure (or the fig12 timing breakdown) to regenerate",
    )
    figure_parser.add_argument(
        "--scale", default="small", choices=sorted(SCALE_PRESETS), help="experiment scale"
    )
    figure_parser.add_argument(
        "--seed", type=int, default=0, help="base seed of the training runs"
    )

    subparsers.add_parser("bounds", help="gamma-bound tightness and Claim 2 checks")

    ablation_parser = subparsers.add_parser("ablation", help="run an ablation study")
    ablation_parser.add_argument(
        "name",
        choices=["assignment", "aggregator", "scenarios"],
        help="assignment/aggregator design-space tables, or the "
        "fault-injection scenario matrix",
    )
    ablation_parser.add_argument(
        "--processes",
        type=int,
        default=0,
        help="worker processes for the scenario matrix (0/1 = serial; "
        "only used by 'scenarios')",
    )

    distortion_parser = subparsers.add_parser(
        "distortion", help="distortion table for a custom assignment"
    )
    distortion_parser.add_argument(
        "--scheme", default="mols", choices=available_schemes(),
        help="assignment scheme to analyze",
    )
    distortion_parser.add_argument(
        "--load", type=int, default=5, help="files per worker l (mols/frc/random)"
    )
    distortion_parser.add_argument(
        "--replication", type=int, default=3, help="copies per file r"
    )
    distortion_parser.add_argument(
        "--num-workers", type=int, default=None, help="cluster size K (frc/baseline/random)"
    )
    distortion_parser.add_argument(
        "--num-files", type=int, default=None, help="file count f (random scheme)"
    )
    distortion_parser.add_argument(
        "--m", type=int, default=None, help="Ramanujan parameter m"
    )
    distortion_parser.add_argument(
        "--s", type=int, default=None, help="Ramanujan parameter s"
    )
    distortion_parser.add_argument(
        "--q", type=int, nargs="+", required=True,
        help="Byzantine budgets to evaluate (one table row per value)",
    )
    distortion_parser.add_argument(
        "--method", default="auto", choices=["auto", "exhaustive", "greedy", "local_search"],
        help="c_max search method",
    )

    scenario_parser = subparsers.add_parser(
        "scenario", help="run fault-injection scenarios and manage golden traces"
    )
    scenario_parser.add_argument(
        "action",
        choices=["list", "run", "record", "replay"],
        help="list the catalog; run one scenario; record/replay golden traces",
    )
    scenario_parser.add_argument(
        "target",
        nargs="?",
        default=None,
        help="catalog scenario name or path to a ScenarioSpec JSON file (run)",
    )
    scenario_parser.add_argument(
        "--name",
        action="append",
        default=None,
        help="restrict record/replay to these catalog scenarios (repeatable)",
    )
    scenario_parser.add_argument(
        "--golden-dir",
        type=pathlib.Path,
        default=None,
        help="golden trace directory (default: tests/golden)",
    )
    scenario_parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        help="write the run's full trace JSON to this path",
    )

    # `repro lint` is dispatched in main() before this parser runs so the
    # linter owns its full argument surface (repro.analysis.cli); the stub
    # here only makes `repro --help` list the subcommand.
    subparsers.add_parser(
        "lint",
        help="statically enforce reproducibility invariants "
        "(see 'repro lint --help')",
        add_help=False,
    )

    campaign_parser = subparsers.add_parser(
        "campaign",
        help="expand, run, inspect and report process-parallel scenario sweeps",
    )
    campaign_parser.add_argument(
        "action",
        choices=["expand", "run", "status", "report"],
        help="expand: list the concrete scenarios of the grid; run: execute "
        "pending scenarios (resumable); status: completed/pending counts; "
        "report: aggregated accuracy-vs-q tables from stored records",
    )
    campaign_parser.add_argument(
        "target", help="path to a CampaignSpec JSON file"
    )
    campaign_parser.add_argument(
        "--processes",
        type=int,
        default=0,
        help="worker processes for 'run' (0/1 = serial, bit-identical either way)",
    )
    campaign_parser.add_argument(
        "--out",
        type=pathlib.Path,
        default=None,
        help=f"result-store root (default: {DEFAULT_STORE_ROOT}/); records land "
        "under <out>/<campaign-digest>/",
    )
    return parser


def _emit(rows: list[dict[str, float]], title: str, csv_path: pathlib.Path | None) -> str:
    text = format_rows(rows, title=title)
    if csv_path is not None:
        csv_path.write_text(rows_to_csv(rows))
    return text


def _run_list() -> str:
    lines = ["Distortion tables:"]
    for name, config in TABLE_CONFIGS.items():
        lines.append(f"  {name}: {config}")
    lines.append("")
    lines.append("Figures:")
    for name, description in FIGURE_DESCRIPTIONS.items():
        lines.append(f"  {name}: {description}")
    return "\n".join(lines)


def _run_table(args: argparse.Namespace) -> str:
    generator = _TABLE_GENERATORS[args.name]
    kwargs = {} if args.method is None else {"method": args.method}
    rows = generator(**kwargs)
    return _emit(rows, f"{args.name} ({TABLE_CONFIGS[args.name]})", args.csv)


def _run_figure(args: argparse.Namespace) -> str:
    if args.name == "fig12":
        rows = generate_figure12()
        return _emit(rows, FIGURE_DESCRIPTIONS["fig12"], args.csv)
    histories = run_accuracy_figure(args.name, scale=args.scale, seed=args.seed)
    series = {label: history.accuracy_series() for label, history in histories.items()}
    summary = [
        {
            "curve": label,
            "final_accuracy": history.final_accuracy,
            "best_accuracy": history.best_accuracy,
            "mean_distortion": float(history.distortion_fractions.mean()),
        }
        for label, history in histories.items()
    ]
    if args.csv is not None:
        args.csv.write_text(rows_to_csv(summary))
    return (
        format_series(series, title=FIGURE_DESCRIPTIONS.get(args.name, args.name))
        + "\n\n"
        + format_rows(summary, title="summary")
    )


def _run_bounds(args: argparse.Namespace) -> str:
    gamma_rows = bound_tightness_table()
    claim_rows = claim2_verification_table()
    text = format_rows(gamma_rows, title="Gamma bound tightness (MOLS l=5, r=3)")
    text += "\n\n" + format_rows(claim_rows, title="Claim 2 exact small-q values")
    if args.csv is not None:
        args.csv.write_text(rows_to_csv(gamma_rows))
    return text


def _run_ablation(args: argparse.Namespace) -> str:
    if args.name == "assignment":
        rows = assignment_structure_ablation()
        return _emit(rows, "Assignment-structure ablation", args.csv)
    if args.name == "scenarios":
        rows = scenario_matrix_table(processes=args.processes)
        return _emit(rows, "Fault-injection scenario matrix", args.csv)
    rows = aggregator_ablation()
    return _emit(rows, "Post-vote aggregator ablation", args.csv)


def _run_distortion(args: argparse.Namespace) -> str:
    kwargs: dict[str, object] = {}
    if args.scheme == "mols":
        kwargs = {"load": args.load, "replication": args.replication}
    elif args.scheme == "ramanujan":
        kwargs = {"m": args.m or args.replication, "s": args.s or args.load}
    elif args.scheme == "frc":
        kwargs = {
            "num_workers": args.num_workers or args.load * args.replication,
            "replication": args.replication,
        }
    elif args.scheme == "baseline":
        kwargs = {"num_workers": args.num_workers or args.load * args.replication}
    elif args.scheme == "random":
        kwargs = {
            "num_workers": args.num_workers or args.load * args.replication,
            "num_files": args.num_files or args.load * args.load,
            "replication": args.replication,
        }
    scheme = create_scheme(args.scheme, **kwargs)
    rows = distortion_comparison_table(scheme.assignment, args.q, method=args.method)
    return _emit(rows, f"distortion for {scheme.assignment.name}", args.csv)


def _load_scenario_spec(target: str) -> ScenarioSpec:
    """Resolve a CLI target: a catalog scenario name or a spec JSON path.

    Catalog names win over same-named files in the working directory so a
    stray ``mols-clean`` file can never shadow the committed matrix; spec
    files are addressed by their ``.json`` suffix (or any explicit path).
    """
    if target in scenario_names():
        return get_scenario(target)
    path = pathlib.Path(target)
    if path.suffix == ".json" or path.is_file():
        return ScenarioSpec.from_json_file(path)
    return get_scenario(target)  # raises listing the catalog names


def _run_scenario_cmd(args: argparse.Namespace) -> str:
    if args.action == "list":
        lines = ["Golden scenario matrix:"]
        for name in scenario_names():
            spec = get_scenario(name)
            notes = []
            if spec.runtime.is_event:
                parts = []
                if spec.runtime.deadline is not None:
                    parts.append(f"deadline={spec.runtime.deadline:g}s")
                if spec.runtime.quorum is not None:
                    parts.append(f"quorum={spec.runtime.quorum}")
                if spec.runtime.partial:
                    parts.append("partial")
                notes.append(f"async: {', '.join(parts)}")
            if spec.topology is not None:
                parts = [f"groups={spec.topology.groups}"]
                if spec.topology.q_group:
                    parts.append(f"q_group={spec.topology.q_group}")
                if spec.topology.q_root:
                    parts.append(f"q_root={spec.topology.q_root}")
                notes.append(f"topology: {', '.join(parts)}")
            if spec.data.partition is not None:
                partition = spec.data.partition
                notes.append(
                    f"non-iid: {partition.kind}, alpha={partition.alpha:g}"
                )
            suffix = f" [{'; '.join(notes)}]" if notes else ""
            lines.append(f"  {name}: {spec.description}{suffix}")
        lines.append("")
        lines.append("Run one with: repro scenario run <name | spec.json>")
        return "\n".join(lines)
    if args.action == "run":
        if args.target is None:
            raise ReproError(
                "scenario run requires a catalog name or a spec JSON path"
            )
        spec = _load_scenario_spec(args.target)
        result = run_scenario(spec)
        if args.trace_out is not None:
            result.trace.write_json_file(args.trace_out)
        rows = [result.summary()]
        text = _emit(rows, f"scenario {spec.name!r}", args.csv)
        fault_total = sum(len(r.faults) for r in result.trace.rounds)
        text += (
            f"\n\nrounds={len(result.trace.rounds)} "
            f"fault_events={fault_total} "
            f"spec_digest={spec.digest()} "
            f"final_params_digest={result.trace.final_params_digest}"
        )
        return text
    # Accept a positional name for record/replay too ('scenario record X'
    # mirrors 'scenario run X'); never silently ignore it.
    names = list(args.name) if args.name else []
    if args.target is not None:
        names.append(args.target)
    names = names or None
    if args.action == "record":
        written = record_goldens(names, golden_dir=args.golden_dir)
        return "\n".join(f"recorded {path}" for path in written)
    # replay
    lines = []
    for name in names if names is not None else scenario_names():
        replay_golden(name, golden_dir=args.golden_dir)
        lines.append(f"ok {name} ({golden_path(name, args.golden_dir)})")
    return "\n".join(lines)


def _run_campaign_cmd(args: argparse.Namespace) -> str:
    campaign = CampaignSpec.from_json_file(args.target)
    store = ResultStore(campaign, root=args.out)
    executor = CampaignExecutor(campaign, store=store, processes=args.processes)
    if args.action == "expand":
        keys = campaign.axis_keys()
        rows = []
        for scenario in executor.scenarios:
            row: dict[str, object] = {"scenario": scenario.spec.name}
            for path, label in scenario.labels.items():
                row[keys[path]] = label
            row["seed"] = scenario.spec.seed
            row["spec_digest"] = scenario.spec.digest()
            rows.append(row)
        text = _emit(
            rows,
            f"Campaign {campaign.name!r}: {len(rows)} scenarios "
            f"(digest {campaign.digest()})",
            args.csv,
        )
        return text
    if args.action == "run":
        result = executor.run()
        text = _emit(
            result.summary_rows(), f"Campaign {campaign.name!r} results", args.csv
        )
        text += (
            f"\n\nran={result.ran} skipped={result.skipped} "
            f"total={len(result.records)} store={result.store_dir}"
        )
        return text
    if args.action == "status":
        status = executor.status()
        lines = [
            f"campaign {status.campaign!r} (digest {status.digest}): "
            f"{len(status.completed)}/{status.total} scenarios completed, "
            f"{len(status.pending)} pending"
        ]
        for name in status.pending:
            lines.append(f"  pending {name}")
        lines.append(f"store: {store.directory}")
        return "\n".join(lines)
    # report: render from stored records only, never triggering runs
    records = [executor.store.load(s.spec.digest()) for s in executor.scenarios]
    result = CampaignRunResult(
        campaign=campaign,
        scenarios=executor.scenarios,
        records=records,
        store_dir=str(store.directory),
    )
    if args.csv is not None:
        args.csv.write_text(rows_to_csv(result.summary_rows()))
    return campaign_report(result)


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    arguments = list(argv) if argv is not None else sys.argv[1:]
    if arguments and arguments[0] == "lint":
        from repro.analysis.cli import main as lint_main

        return lint_main(arguments[1:])
    parser = build_parser()
    args = parser.parse_args(arguments)
    try:
        if args.command == "list":
            output = _run_list()
        elif args.command == "table":
            output = _run_table(args)
        elif args.command == "figure":
            output = _run_figure(args)
        elif args.command == "bounds":
            output = _run_bounds(args)
        elif args.command == "ablation":
            output = _run_ablation(args)
        elif args.command == "distortion":
            output = _run_distortion(args)
        elif args.command == "scenario":
            output = _run_scenario_cmd(args)
        elif args.command == "campaign":
            output = _run_campaign_cmd(args)
        else:  # pragma: no cover - argparse enforces choices
            parser.error(f"unknown command {args.command!r}")
            return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    try:
        print(output)
    except BrokenPipeError:  # e.g. `repro ... | head`; not an error
        sys.stderr.close()  # suppress the interpreter's shutdown warning
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
