"""Command-line front end of the invariant linter.

``repro lint`` and ``python -m repro.analysis`` both land here.  With no
paths the linter scans the installed ``repro`` package itself, so the CI
gate is simply ``repro lint --check`` from any working directory.

Exit code 0 means zero findings; any finding — including a waiver that
carries no reason — exits 1.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import Sequence

from repro.analysis.engine import LintEngine, LintReport

__all__ = ["build_parser", "run_lint", "main"]


def default_root() -> pathlib.Path:
    """The source tree of the installed ``repro`` package."""
    import repro

    return pathlib.Path(repro.__file__).resolve().parent


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro lint",
        description="statically enforce the repo's reproducibility invariants",
    )
    parser.add_argument(
        "paths",
        nargs="*",
        type=pathlib.Path,
        help="files or directories to lint (default: the repro package)",
    )
    parser.add_argument(
        "--format",
        dest="format",
        choices=("text", "json"),
        default="text",
        help="findings as human-readable lines or a schema-stable JSON document",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="CI mode: quiet on success, findings + non-zero exit otherwise "
        "(the exit code is the same without it; --check only trims output)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print every rule id and the invariant it enforces, then exit",
    )
    return parser


def _render_text(report: LintReport, check: bool) -> str:
    lines = [finding.render() for finding in report.findings]
    if report.ok:
        return (
            "" if check else f"ok: 0 findings across {report.files_scanned} files"
        )
    by_rule = ", ".join(f"{rule}={n}" for rule, n in report.by_rule().items())
    lines.append(
        f"{len(report.findings)} finding(s) across {report.files_scanned} "
        f"files ({by_rule})"
    )
    return "\n".join(lines)


def run_lint(argv: Sequence[str] | None = None) -> tuple[int, str]:
    """Run the linter; returns ``(exit_code, output_text)``."""
    parser = build_parser()
    args = parser.parse_args(list(argv) if argv is not None else None)
    engine = LintEngine()
    if args.list_rules:
        lines = [f"{rule.rule_id}: {rule.invariant}" for rule in engine.rules]
        return 0, "\n".join(lines)
    paths = args.paths or [default_root()]
    report = engine.run(paths)
    if args.format == "json":
        output = json.dumps(report.to_dict(), indent=2, sort_keys=True)
    else:
        output = _render_text(report, check=args.check)
    return (0 if report.ok else 1), output


def main(argv: Sequence[str] | None = None) -> int:
    code, output = run_lint(argv)
    if output:
        print(output)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
