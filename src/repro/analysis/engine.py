"""Rule engine: file discovery, parsing, waivers and finding collection.

The engine makes two passes.  Pass one parses every target file into a
:class:`ModuleInfo` and aggregates the project-wide facts some rules need
(the class hierarchy and the registry dispatch tables) into a
:class:`ProjectContext`.  Pass two runs every rule over every module and
filters the raw findings through the per-line waivers.

Waiver grammar (one comment per line, applying to findings on that line)::

    # repro-lint: disable=RULE-ID (reason why the invariant is intact)
    # repro-lint: disable=RULE-A,RULE-B (one reason may cover several rules)

The reason is not optional: a waiver without one suppresses nothing and is
reported as a ``WAIVER-001`` finding, so CI stays red until the author
writes down *why* the line is exempt.  Waivers naming unknown rule ids are
reported as ``WAIVER-002``.
"""

from __future__ import annotations

import ast
import io
import pathlib
import re
import tokenize
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = [
    "Finding",
    "Waiver",
    "ModuleInfo",
    "ClassInfo",
    "RegistrationEntry",
    "ProjectContext",
    "LintReport",
    "LintEngine",
    "lint_paths",
]

#: rule id of the "waiver carries no reason" finding
WAIVER_NO_REASON = "WAIVER-001"
#: rule id of the "waiver names an unknown rule" finding
WAIVER_UNKNOWN_RULE = "WAIVER-002"
#: rule id reported for files the ``ast`` module cannot parse
PARSE_ERROR = "PARSE-001"

_WAIVER_RE = re.compile(
    r"#\s*repro-lint:\s*disable=([A-Za-z0-9_,\s\-]+?)\s*(?:\((?P<reason>.*)\))?\s*$"
)


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at a source location."""

    path: str
    line: int
    col: int
    rule: str
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.rule} {self.message}"

    def to_dict(self) -> dict[str, object]:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "rule": self.rule,
            "message": self.message,
        }


@dataclass(frozen=True)
class Waiver:
    """A parsed ``# repro-lint: disable=...`` comment."""

    line: int
    rules: tuple[str, ...]
    reason: str


@dataclass
class ModuleInfo:
    """One parsed source file plus the metadata rules key off."""

    path: pathlib.Path
    relpath: str  # posix path relative to the linted package root
    source: str
    tree: ast.Module | None
    waivers: Mapping[int, Waiver] = field(default_factory=dict)

    @property
    def lines(self) -> list[str]:
        return self.source.splitlines()


@dataclass(frozen=True)
class ClassInfo:
    """A class definition seen anywhere in the scanned tree."""

    name: str
    relpath: str
    line: int
    bases: tuple[str, ...]
    is_abstract: bool


@dataclass(frozen=True)
class RegistrationEntry:
    """One class wired into a registry dispatch table."""

    class_name: str
    relpath: str
    line: int


class ProjectContext:
    """Cross-module facts shared by all rules.

    ``classes`` maps class name to its definition (last definition wins —
    class names are unique in this codebase and in any sane fixture tree).
    ``registrations`` maps a registry module's relpath to the classes its
    dispatch table wires up.  ``module_names`` lets project-scoped rules
    check whether their dispatch module is part of the scan at all (partial
    scans skip those rules instead of reporting phantom findings).
    """

    def __init__(self, modules: Sequence[ModuleInfo]):
        self.modules = tuple(modules)
        self.module_names = frozenset(m.relpath for m in modules)
        self.classes: dict[str, ClassInfo] = {}
        self.registrations: dict[str, list[RegistrationEntry]] = {}
        self.name_references: dict[str, list[str]] = {}
        for module in modules:
            if module.tree is None:
                continue
            self._collect_classes(module)
            if module.relpath.endswith("registry.py"):
                self.registrations[module.relpath] = list(
                    _registration_entries(module)
                )
            for node in ast.walk(module.tree):
                if isinstance(node, ast.Name):
                    self.name_references.setdefault(node.id, []).append(
                        module.relpath
                    )

    def _collect_classes(self, module: ModuleInfo) -> None:
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            bases = tuple(
                base_name
                for base in node.bases
                if (base_name := _base_name(base)) is not None
            )
            self.classes[node.name] = ClassInfo(
                name=node.name,
                relpath=module.relpath,
                line=node.lineno,
                bases=bases,
                is_abstract=_defines_abstract_methods(node),
            )

    def subclasses_of(self, root: str) -> list[ClassInfo]:
        """All (transitive) subclasses of ``root`` seen in the scan."""
        children: dict[str, set[str]] = {}
        for info in self.classes.values():
            for base in info.bases:
                children.setdefault(base, set()).add(info.name)
        found: set[str] = set()
        frontier = [root]
        while frontier:
            current = frontier.pop()
            for child in children.get(current, ()):
                if child not in found:
                    found.add(child)
                    frontier.append(child)
        return sorted((self.classes[name] for name in found), key=lambda c: c.name)


def _base_name(node: ast.expr) -> str | None:
    if isinstance(node, ast.Name):
        return node.id
    if isinstance(node, ast.Attribute):
        return node.attr
    return None


def _defines_abstract_methods(node: ast.ClassDef) -> bool:
    for stmt in node.body:
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            for decorator in stmt.decorator_list:
                if _base_name(decorator) == "abstractmethod":
                    return True
    return False


def _registration_entries(module: ModuleInfo) -> Iterator[RegistrationEntry]:
    """Classes wired by a registry module's dispatch table.

    Recognizes the repo's two idioms: a module-level ``for _name, _cls in
    ((...), ...): register_x(_name, _cls)`` loop over a literal tuple, and
    direct ``register_x("name", Cls)`` calls.
    """
    assert module.tree is not None
    for stmt in module.tree.body:
        if isinstance(stmt, ast.For) and isinstance(stmt.iter, (ast.Tuple, ast.List)):
            for element in stmt.iter.elts:
                if (
                    isinstance(element, (ast.Tuple, ast.List))
                    and len(element.elts) == 2
                    and isinstance(element.elts[1], ast.Name)
                ):
                    yield RegistrationEntry(
                        class_name=element.elts[1].id,
                        relpath=module.relpath,
                        line=element.lineno,
                    )
        elif isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Call):
            call = stmt.value
            func = _base_name(call.func)
            if (
                func is not None
                and func.startswith("register_")
                and len(call.args) >= 2
                and isinstance(call.args[1], ast.Name)
            ):
                yield RegistrationEntry(
                    class_name=call.args[1].id,
                    relpath=module.relpath,
                    line=call.lineno,
                )


def _parse_waivers(source: str) -> dict[int, Waiver]:
    """Per-line waivers from the file's comments (tokenizer-accurate)."""
    waivers: dict[int, Waiver] = {}
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [
            (token.start[0], token.string)
            for token in tokens
            if token.type == tokenize.COMMENT
        ]
    except tokenize.TokenError:
        return waivers
    for line, text in comments:
        match = _WAIVER_RE.search(text)
        if match is None:
            continue
        rules = tuple(
            part.strip().upper() for part in match.group(1).split(",") if part.strip()
        )
        reason = (match.group("reason") or "").strip()
        waivers[line] = Waiver(line=line, rules=rules, reason=reason)
    return waivers


def _package_relpath(path: pathlib.Path, root: pathlib.Path) -> str:
    """Path of ``path`` relative to its ``repro`` package root.

    Rules scope themselves by package-relative paths ("attacks/alie.py",
    "utils/rng.py").  The anchor is the innermost directory named ``repro``
    on the file's path — which makes fixture trees (``tmp/repro/...``) lint
    exactly like the real package — falling back to the scan root.
    """
    parts = path.parts
    for index in range(len(parts) - 2, -1, -1):
        if parts[index] == "repro":
            return "/".join(parts[index + 1 :])
    try:
        return path.relative_to(root).as_posix()
    except ValueError:
        return path.name


@dataclass(frozen=True)
class LintReport:
    """The outcome of one engine run."""

    findings: tuple[Finding, ...]
    files_scanned: int

    @property
    def ok(self) -> bool:
        return not self.findings

    def by_rule(self) -> dict[str, int]:
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.rule] = counts.get(finding.rule, 0) + 1
        return dict(sorted(counts.items()))

    def to_dict(self) -> dict[str, object]:
        """Schema-stable JSON form (``--format json``)."""
        return {
            "version": 1,
            "files_scanned": self.files_scanned,
            "findings": [finding.to_dict() for finding in self.findings],
            "summary": {"total": len(self.findings), "by_rule": self.by_rule()},
        }


class LintEngine:
    """Runs a rule set over a file tree and applies waivers."""

    def __init__(self, rules: Sequence["Rule"] | None = None):
        if rules is None:
            from repro.analysis.rules import ALL_RULES

            rules = ALL_RULES
        self.rules = tuple(rules)
        self.known_rules = frozenset(rule.rule_id for rule in self.rules) | {
            WAIVER_NO_REASON,
            WAIVER_UNKNOWN_RULE,
            PARSE_ERROR,
        }

    # -- file discovery ------------------------------------------------------
    @staticmethod
    def collect_files(paths: Iterable[pathlib.Path]) -> list[pathlib.Path]:
        files: set[pathlib.Path] = set()
        for path in paths:
            path = pathlib.Path(path)
            if path.is_dir():
                files.update(path.rglob("*.py"))
            else:
                files.add(path)
        return sorted(files)

    def load_module(self, path: pathlib.Path, root: pathlib.Path) -> ModuleInfo:
        source = path.read_text()
        try:
            tree = ast.parse(source, filename=str(path))
        except SyntaxError:
            tree = None
        return ModuleInfo(
            path=path,
            relpath=_package_relpath(path, root),
            source=source,
            tree=tree,
            waivers=_parse_waivers(source),
        )

    # -- linting -------------------------------------------------------------
    def run(self, paths: Sequence[pathlib.Path]) -> LintReport:
        paths = [pathlib.Path(p) for p in paths]
        root = paths[0] if paths and paths[0].is_dir() else pathlib.Path(".")
        files = self.collect_files(paths)
        modules = [self.load_module(path, root) for path in files]
        project = ProjectContext(modules)
        findings: list[Finding] = []
        for module in modules:
            findings.extend(self._lint_module(module, project))
        return LintReport(findings=tuple(sorted(findings)), files_scanned=len(files))

    def _lint_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        display = str(module.path)
        if module.tree is None:
            yield Finding(
                path=display,
                line=1,
                col=0,
                rule=PARSE_ERROR,
                message="file does not parse; repro lint needs valid Python",
            )
            return
        raw: list[Finding] = []
        for rule in self.rules:
            for finding in rule.check_module(module, project):
                raw.append(finding)
        used_waivers: set[int] = set()
        for finding in raw:
            waiver = module.waivers.get(finding.line)
            if waiver is not None and finding.rule in waiver.rules:
                used_waivers.add(waiver.line)
                if waiver.reason:
                    continue  # properly waived
                # Reasonless waivers suppress the underlying finding but
                # surface as their own (see WAIVER-001 below) so the lint
                # stays red until the author writes the reason down.
                continue
            yield finding
        for line, waiver in sorted(module.waivers.items()):
            if not waiver.reason:
                yield Finding(
                    path=display,
                    line=line,
                    col=0,
                    rule=WAIVER_NO_REASON,
                    message=(
                        f"waiver for {', '.join(waiver.rules)} carries no reason; "
                        "write '# repro-lint: disable=RULE (why this is safe)'"
                    ),
                )
            for rule_id in waiver.rules:
                if rule_id not in self.known_rules:
                    yield Finding(
                        path=display,
                        line=line,
                        col=0,
                        rule=WAIVER_UNKNOWN_RULE,
                        message=f"waiver names unknown rule {rule_id!r}",
                    )


def lint_paths(
    paths: Sequence[pathlib.Path | str], rules: Sequence["Rule"] | None = None
) -> LintReport:
    """Lint files/directories and return the :class:`LintReport`."""
    engine = LintEngine(rules=rules)
    return engine.run([pathlib.Path(p) for p in paths])
