"""COW-001: attacks, faults and kernels respect the lazy VoteTensor.

``VoteTensor.from_honest`` shares one read-only ``(f, d)`` honest base
across all replicas; per-(file, slot) overrides materialize lazily through
the slot API (``write_slots``, ``set_vote``, ``add_to_slots``, ...).  The
memory win evaporates if a mutator densifies the cube (``.values``) or
writes through the shared base, and a base write corrupts *every* replica
of the honest gradient at once.  Inside the mutating layers — ``attacks/``,
``cluster/faults.py`` — and the aggregation kernels — ``aggregation/``,
``cluster/topology.py`` — this rule flags ``.values`` densification (a
property load; dict ``.values()`` calls are fine), writes into arrays
obtained from the base accessors (``base_rows`` / ``base_block``), and
writes through another object's private attributes.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectContext
from repro.analysis.rules.base import Rule, subscript_root

__all__ = ["CowSafetyRule"]

#: package-relative prefixes/files where the slot API is mandatory
_SCOPE_PREFIXES = ("attacks/", "aggregation/")
_SCOPE_FILES = ("cluster/faults.py", "cluster/topology.py")

#: VoteTensor accessors returning (views of) the shared honest base
_BASE_ACCESSORS = frozenset({"base_rows", "base_block"})


def _in_scope(relpath: str) -> bool:
    return relpath.startswith(_SCOPE_PREFIXES) or relpath in _SCOPE_FILES


class CowSafetyRule(Rule):
    rule_id = "COW-001"
    invariant = (
        "attacks/, cluster/faults.py and the aggregation kernels never "
        "densify a lazy VoteTensor (.values) nor write through the shared "
        "honest base; mutations go through the slot API (write_slots, "
        "set_vote, add_to_slots, scale_slots, zero_slots)"
    )

    def check_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        if not _in_scope(module.relpath):
            return
        assert module.tree is not None
        call_funcs = {
            id(node.func) for node in ast.walk(module.tree) if isinstance(node, ast.Call)
        }
        base_aliases = self._base_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute) and node.attr == "values":
                # `d.values()` iterates a dict; a bare `.values` load is the
                # VoteTensor densification property.
                if id(node) not in call_funcs and isinstance(node.ctx, ast.Load):
                    yield self.finding(
                        module,
                        node,
                        ".values densifies the (f, r, d) cube, defeating "
                        "copy-on-write replication; use the slot API "
                        "(slot_rows / read_slots / materialize_files)",
                    )
            elif isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = node.targets if isinstance(node, ast.Assign) else [node.target]
                for target in targets:
                    yield from self._check_write(module, target, base_aliases)

    @staticmethod
    def _base_aliases(tree: ast.Module) -> set[str]:
        """Names bound to arrays returned by the base accessors."""
        aliases: set[str] = set()
        for node in ast.walk(tree):
            if (
                isinstance(node, ast.Assign)
                and len(node.targets) == 1
                and isinstance(node.targets[0], ast.Name)
                and isinstance(node.value, ast.Call)
                and isinstance(node.value.func, ast.Attribute)
                and node.value.func.attr in _BASE_ACCESSORS
            ):
                aliases.add(node.targets[0].id)
        return aliases

    def _check_write(
        self, module: ModuleInfo, target: ast.expr, base_aliases: set[str]
    ) -> Iterator[Finding]:
        if isinstance(target, ast.Subscript):
            root = subscript_root(target)
            # tensor.base_rows()[...] = x  (direct write through the base)
            if (
                isinstance(root, ast.Call)
                and isinstance(root.func, ast.Attribute)
                and root.func.attr in _BASE_ACCESSORS
            ):
                yield self.finding(
                    module,
                    target,
                    f"writing into {root.func.attr}() mutates the shared "
                    "honest base under every replica; use write_slots / "
                    "set_vote instead",
                )
            # base = tensor.base_rows(); base[...] = x
            elif isinstance(root, ast.Name) and root.id in base_aliases:
                yield self.finding(
                    module,
                    target,
                    f"{root.id!r} aliases the shared honest base "
                    "(base_rows/base_block); writing through it mutates "
                    "every replica — use the slot API",
                )
            # tensor._base[...] = x  (reaching into private storage)
            elif (
                isinstance(root, ast.Attribute)
                and root.attr.startswith("_")
                and not (isinstance(root.value, ast.Name) and root.value.id == "self")
            ):
                yield self.finding(
                    module,
                    target,
                    f"write through private attribute .{root.attr} bypasses "
                    "the copy-on-write slot API",
                )
