"""DIGEST-001: spec emitters omit absence-valued fields from canonical dicts.

Scenario and campaign digests are sha256 hashes of the canonical dict form.
Every section added after the golden traces were recorded (``runtime``,
``topology``, ``partition``, ``dtype``, ...) therefore serializes
*omit-when-absent*: a field whose value still is its "absence" default
(``None``, an empty container, ``False``, ``""``) must not appear in the
emitted dict, or adding the feature would have silently re-keyed every
pre-existing digest and orphaned its golden trace.

This rule checks the convention structurally in ``spec.py`` modules: inside
a dataclass's ``to_dict``, a field carrying an absence default must not be
emitted unconditionally — it must sit under an ``if``, or (for ``None`` and
empty containers) inside a ``_prune(...)`` call, and ``dataclasses.asdict``
is rejected outright for classes with such fields.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectContext
from repro.analysis.rules.base import Rule

__all__ = ["DigestStabilityRule"]

#: default_factory callables producing empty (prunable) containers
_EMPTY_FACTORIES = frozenset({"dict", "list", "tuple", "set", "frozenset"})


def _absence_kind(default: ast.expr) -> str | None:
    """Classify a field default: 'prunable' (None/empty container — dropped
    by ``_prune``), 'bare' (False/"" — survives ``_prune``), or None (a real
    value; unconditional emission is fine)."""
    if isinstance(default, ast.Constant):
        if default.value is None:
            return "prunable"
        if default.value is False or default.value == "":
            return "bare"
        return None
    if isinstance(default, (ast.Tuple, ast.List, ast.Set)) and not default.elts:
        return "prunable"
    if isinstance(default, ast.Dict) and not default.keys:
        return "prunable"
    if isinstance(default, ast.Call):
        func = default.func
        name = func.attr if isinstance(func, ast.Attribute) else getattr(func, "id", "")
        if name == "field":
            for keyword in default.keywords:
                if keyword.arg == "default":
                    return _absence_kind(keyword.value)
                if keyword.arg == "default_factory":
                    factory = keyword.value
                    if (
                        isinstance(factory, ast.Name)
                        and factory.id in _EMPTY_FACTORIES
                    ):
                        return "prunable"
    return None


def _is_dataclass(node: ast.ClassDef) -> bool:
    for decorator in node.decorator_list:
        target = decorator.func if isinstance(decorator, ast.Call) else decorator
        name = (
            target.attr
            if isinstance(target, ast.Attribute)
            else getattr(target, "id", "")
        )
        if name == "dataclass":
            return True
    return False


def _absence_fields(node: ast.ClassDef) -> dict[str, str]:
    """Field name -> absence kind, for fields with absence defaults."""
    fields: dict[str, str] = {}
    for stmt in node.body:
        if (
            isinstance(stmt, ast.AnnAssign)
            and isinstance(stmt.target, ast.Name)
            and stmt.value is not None
        ):
            kind = _absence_kind(stmt.value)
            if kind is not None:
                fields[stmt.target.id] = kind
    return fields


class DigestStabilityRule(Rule):
    rule_id = "DIGEST-001"
    invariant = (
        "spec to_dict emitters guard every absence-default field with "
        "omit-when-default (an if statement, or _prune for None/empty "
        "containers) so canonical dicts — and the digests golden traces pin "
        "— never change when a new optional section ships"
    )

    def check_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        if not module.relpath.endswith("spec.py"):
            return
        assert module.tree is not None
        for node in ast.walk(module.tree):
            if isinstance(node, ast.ClassDef) and _is_dataclass(node):
                fields = _absence_fields(node)
                if not fields:
                    continue
                for stmt in node.body:
                    if isinstance(stmt, ast.FunctionDef) and stmt.name == "to_dict":
                        yield from self._check_to_dict(module, node.name, stmt, fields)

    def _check_to_dict(
        self,
        module: ModuleInfo,
        class_name: str,
        func: ast.FunctionDef,
        fields: dict[str, str],
    ) -> Iterator[Finding]:
        pruned = any(
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "_prune"
            for node in ast.walk(func)
        )
        for node, guarded in _walk_guarded(func.body):
            if guarded:
                continue
            if isinstance(node, ast.Dict):
                for key in node.keys:
                    if isinstance(key, ast.Constant) and key.value in fields:
                        if pruned and fields[key.value] == "prunable":
                            continue
                        yield self._emit(module, key, class_name, str(key.value))
            elif isinstance(node, ast.Assign):
                for target in node.targets:
                    if (
                        isinstance(target, ast.Subscript)
                        and isinstance(target.slice, ast.Constant)
                        and target.slice.value in fields
                    ):
                        if pruned and fields[target.slice.value] == "prunable":
                            continue
                        yield self._emit(
                            module, target, class_name, str(target.slice.value)
                        )
            elif isinstance(node, ast.Call):
                name = (
                    node.func.attr
                    if isinstance(node.func, ast.Attribute)
                    else getattr(node.func, "id", "")
                )
                if name == "asdict":
                    yield self.finding(
                        module,
                        node,
                        f"{class_name}.to_dict uses dataclasses.asdict, which "
                        "emits absence-default field(s) "
                        f"{sorted(fields)} unconditionally; build the dict "
                        "explicitly with omit-when-default guards",
                    )

    def _emit(
        self, module: ModuleInfo, node: ast.AST, class_name: str, field_name: str
    ) -> Finding:
        return self.finding(
            module,
            node,
            f"{class_name}.to_dict emits field {field_name!r} unconditionally "
            "although its default means 'absent'; omit-when-default keeps "
            "pre-existing spec digests (and their golden traces) stable",
        )


def _walk_guarded(body: list[ast.stmt]) -> Iterator[tuple[ast.AST, bool]]:
    """Yield every node under ``body`` with a flag: is it inside an if?"""

    def visit(stmts: list[ast.stmt], guarded: bool) -> Iterator[tuple[ast.AST, bool]]:
        for stmt in stmts:
            if isinstance(stmt, ast.If):
                yield stmt.test, guarded
                yield from visit(stmt.body, True)
                yield from visit(stmt.orelse, True)
            else:
                for child in ast.walk(stmt):
                    yield child, guarded

    yield from visit(body, False)
