"""KERNEL-001: aggregation entry points never mutate their inputs.

The aggregation kernels (``aggregation/``, the hierarchical vote in
``cluster/topology.py``) are called with live references into the round's
state — the VoteTensor's override store, the gradient workspace, cached
slot matrices.  An in-place mutation (``votes += ...``, ``votes[...] =``,
``np.foo(..., out=votes)``, ``votes.sort()``) would leak one pipeline's
arithmetic into the next consumer of the same round and break replay
bit-exactness in a way no local test sees.  Kernels therefore copy first
and mutate the copy; this rule flags direct mutations of (aliases of)
function parameters in public kernel functions and methods.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectContext
from repro.analysis.rules.base import Rule, iter_functions, subscript_root

__all__ = ["KernelPurityRule"]

_SCOPE_PREFIXES = ("aggregation/",)
_SCOPE_FILES = ("cluster/topology.py",)

#: ndarray methods that mutate the receiver in place
_MUTATING_METHODS = frozenset(
    {"sort", "fill", "partition", "put", "itemset", "resize", "setflags", "setfield"}
)

#: call names that may return an alias of their array argument — a parameter
#: fed through one of these stays "the caller's array" for this rule
_ALIASING_CALLS = frozenset(
    {
        "asarray",
        "ascontiguousarray",
        "asanyarray",
        "atleast_1d",
        "atleast_2d",
        "ensure_float",
        "ravel",
        "reshape",
        "view",
        "squeeze",
    }
)


def _in_scope(relpath: str) -> bool:
    return relpath.startswith(_SCOPE_PREFIXES) or relpath in _SCOPE_FILES


def _call_name(node: ast.Call) -> str:
    func = node.func
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return ""


class KernelPurityRule(Rule):
    rule_id = "KERNEL-001"
    invariant = (
        "public aggregation kernels (aggregation/, cluster/topology.py) "
        "never mutate their parameters in place — no augmented assignment, "
        "slice assignment, out= targets or mutating ndarray methods on "
        "arguments or their aliases"
    )

    def check_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        if not _in_scope(module.relpath):
            return
        assert module.tree is not None
        for func, is_method in iter_functions(module.tree):
            if func.name.startswith("_"):
                continue
            yield from self._check_function(module, func, is_method)

    def _check_function(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        is_method: bool,
    ) -> Iterator[Finding]:
        args = func.args
        names = [
            a.arg
            for a in (*args.posonlyargs, *args.args, *args.kwonlyargs)
        ]
        if is_method and names and names[0] in ("self", "cls"):
            names = names[1:]
        tracked = set(names)
        if not tracked:
            return
        # One linear pass: maintain the alias set while scanning statements
        # in source order (kernels are straight-line enough that this is
        # exact in practice).
        for node in ast.walk(func):
            if isinstance(node, ast.Assign):
                aliased = self._aliases_parameter(node.value, tracked)
                for target in node.targets:
                    if isinstance(target, ast.Name):
                        if aliased:
                            tracked.add(target.id)
                        else:
                            # Rebound to a fresh (non-aliasing) value: the
                            # name no longer refers to the caller's array.
                            tracked.discard(target.id)
                yield from self._check_write_targets(module, func, node, tracked)
            elif isinstance(node, ast.AugAssign):
                yield from self._check_aug(module, func, node, tracked)
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, func, node, tracked)

    @staticmethod
    def _aliases_parameter(value: ast.expr, tracked: set[str]) -> bool:
        if isinstance(value, ast.Name):
            return value.id in tracked
        if isinstance(value, ast.Call) and _call_name(value) in _ALIASING_CALLS:
            roots = list(value.args)
            if isinstance(value.func, ast.Attribute):
                roots.append(value.func.value)
            return any(
                isinstance(root, ast.Name) and root.id in tracked for root in roots
            )
        return False

    def _check_write_targets(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Assign,
        tracked: set[str],
    ) -> Iterator[Finding]:
        for target in node.targets:
            if isinstance(target, ast.Subscript):
                root = subscript_root(target)
                if isinstance(root, ast.Name) and root.id in tracked:
                    yield self.finding(
                        module,
                        target,
                        f"kernel {func.name}() slice-assigns into parameter "
                        f"{root.id!r}; copy first — callers hand kernels live "
                        "round state",
                    )

    def _check_aug(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.AugAssign,
        tracked: set[str],
    ) -> Iterator[Finding]:
        target = node.target
        if isinstance(target, ast.Subscript):
            root = subscript_root(target)
            if isinstance(root, ast.Name) and root.id in tracked:
                yield self.finding(
                    module,
                    node,
                    f"kernel {func.name}() mutates parameter {root.id!r} via "
                    "augmented slice assignment; copy first",
                )
        elif isinstance(target, ast.Name) and target.id in tracked:
            yield self.finding(
                module,
                node,
                f"kernel {func.name}() augments parameter {target.id!r} in "
                "place; for ndarrays this mutates the caller's array — "
                "copy first",
            )

    def _check_call(
        self,
        module: ModuleInfo,
        func: ast.FunctionDef | ast.AsyncFunctionDef,
        node: ast.Call,
        tracked: set[str],
    ) -> Iterator[Finding]:
        for keyword in node.keywords:
            if keyword.arg == "out":
                root = subscript_root(keyword.value)
                if isinstance(root, ast.Name) and root.id in tracked:
                    yield self.finding(
                        module,
                        node,
                        f"kernel {func.name}() writes out= into parameter "
                        f"{root.id!r}; allocate the output instead",
                    )
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr in _MUTATING_METHODS
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id in tracked
        ):
            yield self.finding(
                module,
                node,
                f"kernel {func.name}() calls .{node.func.attr}() on parameter "
                f"{node.func.value.id!r}, mutating it in place; use the "
                "copying form (np.sort / a fresh array)",
            )
