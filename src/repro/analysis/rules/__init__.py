"""The rule set behind ``repro lint``.

Each rule enforces one of the conventions the runtime test suite otherwise
only checks by consequence; see the individual modules for the full
rationale.  ``ALL_RULES`` is the default set the engine runs.
"""

from __future__ import annotations

from repro.analysis.rules.base import Rule
from repro.analysis.rules.cow import CowSafetyRule
from repro.analysis.rules.digest import DigestStabilityRule
from repro.analysis.rules.dtype import DtypeSeamRule
from repro.analysis.rules.kernel import KernelPurityRule
from repro.analysis.rules.registration import RegistrationRule
from repro.analysis.rules.rng import RngPurityRule

__all__ = [
    "Rule",
    "RngPurityRule",
    "DtypeSeamRule",
    "CowSafetyRule",
    "DigestStabilityRule",
    "KernelPurityRule",
    "RegistrationRule",
    "ALL_RULES",
]

#: the default rule set, in rule-id order
ALL_RULES: tuple[Rule, ...] = (
    RngPurityRule(),
    DtypeSeamRule(),
    CowSafetyRule(),
    DigestStabilityRule(),
    KernelPurityRule(),
    RegistrationRule(),
)
