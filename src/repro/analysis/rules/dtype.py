"""DTYPE-001: float dtype policy lives in ``repro.core.backend`` only.

PR 5 threaded a dtype seam through the round loop so the same kernels run
``float32`` or ``float64`` end to end.  A hard-coded ``np.float64`` past
that seam silently re-promotes a float32 run (or truncates a float64 one)
and the bug only surfaces as an rtol mismatch three layers later.  Float
dtype literals therefore may appear in ``core/backend.py`` and nowhere
else; everything else routes through ``DEFAULT_DTYPE`` / ``resolve_dtype``
/ ``ensure_float``.  Integer and bool dtypes are not policy and stay
untouched.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectContext
from repro.analysis.rules.base import Rule, attribute_chain, numpy_aliases

__all__ = ["DtypeSeamRule"]

#: the allowed home of float dtype literals
_SEAM = "core/backend.py"

#: numpy float scalar-type attributes that count as policy decisions
_FLOAT_ATTRS = frozenset({"float32", "float64", "float16", "float_", "double", "single"})

#: string dtype specs that count as policy decisions
_FLOAT_STRINGS = frozenset({"float16", "float32", "float64", "f2", "f4", "f8"})


class DtypeSeamRule(Rule):
    rule_id = "DTYPE-001"
    invariant = (
        "no bare float dtype literals (np.float64/np.float32, dtype=float, "
        "astype(float), 'float64' strings) outside core/backend.py; route "
        "through DEFAULT_DTYPE / resolve_dtype / ensure_float"
    )

    def check_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        if module.relpath == _SEAM:
            return
        assert module.tree is not None
        aliases = numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Attribute):
                chain = attribute_chain(node)
                if (
                    chain is not None
                    and len(chain) == 2
                    and chain[0] in aliases
                    and chain[1] in _FLOAT_ATTRS
                ):
                    yield self.finding(
                        module,
                        node,
                        f"np.{chain[1]} hard-codes the float policy past the "
                        "dtype seam; use repro.core.backend (DEFAULT_DTYPE / "
                        "resolve_dtype / ensure_float)",
                    )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "numpy":
                    for alias in node.names:
                        if alias.name in _FLOAT_ATTRS:
                            yield self.finding(
                                module,
                                node,
                                f"import of numpy.{alias.name} hard-codes the "
                                "float policy past the dtype seam",
                            )
            elif isinstance(node, ast.Call):
                yield from self._check_call(module, node, aliases)

    def _check_call(
        self, module: ModuleInfo, node: ast.Call, aliases: set[str]
    ) -> Iterator[Finding]:
        # x.astype(float) / x.astype("float64")
        if (
            isinstance(node.func, ast.Attribute)
            and node.func.attr == "astype"
            and node.args
        ):
            if self._is_bare_float(node.args[0]):
                yield self.finding(
                    module,
                    node,
                    "astype(<bare float dtype>) bypasses the dtype seam; use "
                    "ensure_float from repro.core.backend",
                )
        # np.dtype("float64") / np.dtype(float)
        chain = attribute_chain(node.func) if node.func is not None else None
        if (
            chain is not None
            and len(chain) == 2
            and chain[0] in aliases
            and chain[1] == "dtype"
            and node.args
            and self._is_bare_float(node.args[0])
        ):
            yield self.finding(
                module,
                node,
                "np.dtype(<bare float>) bypasses the dtype seam; use "
                "resolve_dtype from repro.core.backend",
            )
        # dtype=float / dtype="float64" keyword on any call
        for keyword in node.keywords:
            if keyword.arg == "dtype" and self._is_bare_float(keyword.value):
                yield self.finding(
                    module,
                    keyword.value,
                    "dtype=<bare float literal> bypasses the dtype seam; use "
                    "DEFAULT_DTYPE or a dtype resolved by repro.core.backend",
                )

    @staticmethod
    def _is_bare_float(node: ast.expr) -> bool:
        if isinstance(node, ast.Name) and node.id == "float":
            return True
        if isinstance(node, ast.Constant) and node.value in _FLOAT_STRINGS:
            return True
        return False
