"""REG-001: every pluggable subclass is wired into its dispatch point once.

Scenario specs name attacks, aggregators and assignment schemes by registry
key, and pipelines by kind; a concrete subclass that never reaches its
dispatch table is dead weight that specs cannot reach (a half-landed
feature), and one registered twice would make ``available_*()`` listings
and overwrite protection lie.  This rule resolves the transitive subclass
graph across the scanned tree and checks each concrete subclass of the
four framework bases against its dispatch module:

* ``Attack`` -> ``attacks/registry.py``
* ``Aggregator`` -> ``aggregation/registry.py``
* ``AssignmentScheme`` -> ``assignment/registry.py``
* ``AggregationPipeline`` -> constructed in ``scenarios/runner.py``

A root whose dispatch module is not part of the scan is skipped, so
linting a single file never produces phantom "never registered" findings.
"""

from __future__ import annotations

from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectContext
from repro.analysis.rules.base import Rule

__all__ = ["RegistrationRule"]

#: framework base -> the registry module holding its dispatch table
_REGISTRY_ROOTS = {
    "Attack": "attacks/registry.py",
    "Aggregator": "aggregation/registry.py",
    "AssignmentScheme": "assignment/registry.py",
}

#: pipeline base -> the factory module that must construct every subclass
_FACTORY_ROOTS = {"AggregationPipeline": "scenarios/runner.py"}


class RegistrationRule(Rule):
    rule_id = "REG-001"
    invariant = (
        "every concrete Attack / Aggregator / AssignmentScheme subclass "
        "appears exactly once in its registry's dispatch table, and every "
        "concrete AggregationPipeline is constructed by the scenario runner"
    )

    @staticmethod
    def _exempt(info) -> bool:
        # Abstract classes and private (underscore) shared bases are not
        # pluggable surface; only public concrete subclasses must be wired.
        return info.is_abstract or info.name.startswith("_")

    def check_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        if module.tree is None:
            return
        for root, registry in _REGISTRY_ROOTS.items():
            if registry not in project.module_names:
                continue
            entries = project.registrations.get(registry, [])
            counts: dict[str, int] = {}
            for entry in entries:
                counts[entry.class_name] = counts.get(entry.class_name, 0) + 1
            for info in project.subclasses_of(root):
                if info.relpath != module.relpath or self._exempt(info):
                    continue
                count = counts.get(info.name, 0)
                if count == 0:
                    yield Finding(
                        path=str(module.path),
                        line=info.line,
                        col=0,
                        rule=self.rule_id,
                        message=(
                            f"{info.name} subclasses {root} but is never "
                            f"registered in {registry}; specs cannot name it"
                        ),
                    )
                elif count > 1:
                    yield Finding(
                        path=str(module.path),
                        line=info.line,
                        col=0,
                        rule=self.rule_id,
                        message=(
                            f"{info.name} is registered {count} times in "
                            f"{registry}; each class is wired exactly once"
                        ),
                    )
        for root, factory in _FACTORY_ROOTS.items():
            if factory not in project.module_names:
                continue
            for info in project.subclasses_of(root):
                if info.relpath != module.relpath or self._exempt(info):
                    continue
                references = project.name_references.get(info.name, [])
                if factory not in references:
                    yield Finding(
                        path=str(module.path),
                        line=info.line,
                        col=0,
                        rule=self.rule_id,
                        message=(
                            f"{info.name} subclasses {root} but is never "
                            f"constructed in {factory}; scenario specs "
                            "cannot reach it"
                        ),
                    )
