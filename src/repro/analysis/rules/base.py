"""Rule base class and shared AST helpers."""

from __future__ import annotations

import abc
import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectContext

__all__ = [
    "Rule",
    "numpy_aliases",
    "attribute_chain",
    "subscript_root",
    "iter_functions",
]


class Rule(abc.ABC):
    """One invariant check, run per module with project-wide context."""

    #: stable identifier, e.g. ``"RNG-001"`` — what waivers and CI key on
    rule_id: str = ""
    #: one-line statement of the invariant (rendered by ``--list-rules``)
    invariant: str = ""

    def __repr__(self) -> str:  # stable across processes (docs are generated from it)
        return f"<{type(self).__name__} {self.rule_id}>"

    @abc.abstractmethod
    def check_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        """Yield findings for one parsed module."""

    def finding(self, module: ModuleInfo, node: ast.AST, message: str) -> Finding:
        return Finding(
            path=str(module.path),
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            rule=self.rule_id,
            message=message,
        )


def numpy_aliases(tree: ast.Module) -> set[str]:
    """Local names bound to the numpy module (``np``, ``numpy``, ...)."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "numpy":
                    aliases.add(alias.asname or "numpy")
    return aliases


def attribute_chain(node: ast.expr) -> list[str] | None:
    """``a.b.c`` -> ``["a", "b", "c"]``; None for non-name-rooted chains."""
    parts: list[str] = []
    current: ast.expr = node
    while isinstance(current, ast.Attribute):
        parts.append(current.attr)
        current = current.value
    if not isinstance(current, ast.Name):
        return None
    parts.append(current.id)
    parts.reverse()
    return parts


def subscript_root(node: ast.expr) -> ast.expr:
    """Innermost object of nested subscripts: ``x[i][j]`` -> ``x``."""
    while isinstance(node, ast.Subscript):
        node = node.value
    return node


def iter_functions(
    tree: ast.Module,
) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, bool]]:
    """Module-level functions and class methods, with an ``is_method`` flag."""
    for node in tree.body:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            yield node, False
        elif isinstance(node, ast.ClassDef):
            for item in node.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    yield item, True
