"""RNG-001: all randomness flows through ``repro.utils.rng`` streams.

Bit-exact replay requires every stochastic draw to come from a
``numpy.random.Generator`` threaded from a ``derive_seed``-derived stream.
Legacy global-state numpy RNG (``np.random.seed`` + module-level draw
functions) and the stdlib ``random`` module are process-global and
order-dependent, so one stray call desynchronizes every stream recorded in
the golden traces.  Constructing generators directly (``np.random.
default_rng``, ``SeedSequence``, ``RandomState``) outside the seam is also
flagged: streams must be created by :mod:`repro.utils.rng` so seed
derivation stays auditable in one place.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.engine import Finding, ModuleInfo, ProjectContext
from repro.analysis.rules.base import Rule, attribute_chain, numpy_aliases

__all__ = ["RngPurityRule"]

#: the allowed home of generator construction
_SEAM = "utils/rng.py"

#: module-level legacy draw / global-state functions of ``numpy.random``
_LEGACY = frozenset(
    {
        "seed",
        "get_state",
        "set_state",
        "rand",
        "randn",
        "randint",
        "random_integers",
        "random",
        "random_sample",
        "ranf",
        "sample",
        "bytes",
        "choice",
        "shuffle",
        "permutation",
        "beta",
        "binomial",
        "chisquare",
        "dirichlet",
        "exponential",
        "gamma",
        "geometric",
        "gumbel",
        "hypergeometric",
        "laplace",
        "logistic",
        "lognormal",
        "multinomial",
        "multivariate_normal",
        "negative_binomial",
        "normal",
        "pareto",
        "poisson",
        "power",
        "rayleigh",
        "standard_cauchy",
        "standard_exponential",
        "standard_gamma",
        "standard_normal",
        "standard_t",
        "triangular",
        "uniform",
        "vonmises",
        "wald",
        "weibull",
        "zipf",
    }
)

#: stream constructors that may only appear inside the seam module
_CONSTRUCTORS = frozenset(
    {"default_rng", "SeedSequence", "RandomState", "PCG64", "Philox", "MT19937", "SFC64"}
)

#: ``np.random.<attr>`` references that are always fine (type annotations,
#: isinstance checks)
_ALLOWED_ATTRS = frozenset({"Generator", "BitGenerator"})


class RngPurityRule(Rule):
    rule_id = "RNG-001"
    invariant = (
        "randomness comes from Generator streams built by repro.utils.rng "
        "(derive_seed / as_generator / spawn_generators); no legacy "
        "np.random global state, no stdlib random, no ad-hoc generator "
        "construction outside utils/rng.py"
    )

    def check_module(
        self, module: ModuleInfo, project: ProjectContext
    ) -> Iterator[Finding]:
        if module.relpath == _SEAM:
            return
        assert module.tree is not None
        aliases = numpy_aliases(module.tree)
        for node in ast.walk(module.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name == "random" or alias.name.startswith("random."):
                        yield self.finding(
                            module,
                            node,
                            "stdlib 'random' is process-global state; use a "
                            "numpy Generator from repro.utils.rng instead",
                        )
            elif isinstance(node, ast.ImportFrom):
                if node.module == "random":
                    yield self.finding(
                        module,
                        node,
                        "stdlib 'random' is process-global state; use a "
                        "numpy Generator from repro.utils.rng instead",
                    )
                elif node.module == "numpy.random":
                    for alias in node.names:
                        if alias.name in _ALLOWED_ATTRS:
                            continue
                        yield self.finding(
                            module,
                            node,
                            f"import of numpy.random.{alias.name} bypasses the "
                            "repro.utils.rng seam",
                        )
            elif isinstance(node, ast.Attribute):
                yield from self._check_attribute(module, node, aliases)

    def _check_attribute(
        self, module: ModuleInfo, node: ast.Attribute, aliases: set[str]
    ) -> Iterator[Finding]:
        chain = attribute_chain(node)
        if chain is None or len(chain) != 3:
            return
        root, middle, leaf = chain
        if middle != "random" or root not in aliases:
            return
        if leaf in _LEGACY:
            yield self.finding(
                module,
                node,
                f"np.random.{leaf} draws from the process-global legacy RNG; "
                "thread a Generator derived via repro.utils.rng.derive_seed",
            )
        elif leaf in _CONSTRUCTORS:
            yield self.finding(
                module,
                node,
                f"np.random.{leaf} constructs an RNG stream outside the seam; "
                "use repro.utils.rng (as_generator / spawn_generators / "
                "derive_seed) so seed derivation stays auditable",
            )
