"""Static invariant linter (``repro lint``).

The reproduction's bit-exactness story rests on a handful of repo-wide
conventions — RNG streams derived through :func:`repro.utils.rng.derive_seed`,
float dtype policy routed through :mod:`repro.core.backend`, copy-on-write
discipline around the lazy :class:`~repro.core.vote_tensor.VoteTensor`,
omit-when-default spec serialization so digests stay stable, aggregation
kernels that never mutate their inputs, and registries that know every
pluggable subclass.  The runtime test suite checks the *consequences* of
those conventions after the fact; this package checks the conventions
themselves, statically, by parsing every module with :mod:`ast` and running
a rule engine over the trees.

Run it as ``repro lint`` or ``python -m repro.analysis``.  Findings are
reported as ``path:line:col: RULE-ID message``; a finding can be waived on
its line with ``# repro-lint: disable=RULE-ID (reason)`` where the reason is
mandatory — a reasonless waiver is itself a finding.
"""

from __future__ import annotations

from repro.analysis.engine import (
    Finding,
    LintEngine,
    LintReport,
    ModuleInfo,
    ProjectContext,
    Waiver,
    lint_paths,
)
from repro.analysis.rules import ALL_RULES, Rule

__all__ = [
    "Finding",
    "LintEngine",
    "LintReport",
    "ModuleInfo",
    "ProjectContext",
    "Rule",
    "Waiver",
    "ALL_RULES",
    "lint_paths",
]
