"""Declarative scenario specification.

A :class:`ScenarioSpec` pins down *everything* that determines a simulated
training run — cluster geometry, aggregation pipeline, dataset, model,
training schedule, adversary (attack + schedule + selection), benign fault
models, uplink compression and the seed — as plain data.  Specs round-trip
through dicts/JSON (``from_dict`` / ``to_dict`` / ``from_json_file``), reject
unknown keys loudly, and hash to a stable digest so golden traces can detect
when a scenario definition itself has drifted.

The spec layer deliberately knows nothing about the simulator: the
:mod:`~repro.scenarios.runner` turns a spec into live components via the
assignment / attack / aggregation / compression registries.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import math
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.core.backend import SUPPORTED_DTYPES
from repro.exceptions import ConfigurationError

__all__ = [
    "ClusterSpec",
    "PipelineSpec",
    "PartitionSpec",
    "DataSpec",
    "ModelSpec",
    "TrainingSpec",
    "ScheduleSpec",
    "AttackSpec",
    "FaultSpec",
    "CompressionSpec",
    "RuntimeSpec",
    "TopologySpec",
    "ScenarioSpec",
]


def _check_keys(section: str, data: Mapping[str, Any], allowed: tuple[str, ...]) -> None:
    unknown = sorted(set(data) - set(allowed))
    if unknown:
        raise ConfigurationError(
            f"unknown key(s) {unknown} in scenario section {section!r}; "
            f"allowed: {sorted(allowed)}"
        )


def _prune(data: dict[str, Any]) -> dict[str, Any]:
    """Drop ``None`` values and empty containers for a canonical dict form."""
    return {
        key: value
        for key, value in data.items()
        if value is not None and value != {} and value != []
    }


@dataclass(frozen=True)
class ClusterSpec:
    """Which assignment scheme builds the worker/file graph.

    ``params`` is forwarded verbatim to the assignment registry, e.g.
    ``{"load": 5, "replication": 3}`` for MOLS or ``{"m": 5, "s": 5}`` for
    Ramanujan.
    """

    scheme: str = "mols"
    params: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ClusterSpec":
        _check_keys("cluster", data, ("scheme", "params"))
        return cls(scheme=str(data.get("scheme", "mols")), params=dict(data.get("params", {})))

    def to_dict(self) -> dict[str, Any]:
        return _prune({"scheme": self.scheme, "params": dict(self.params)})


@dataclass(frozen=True)
class PipelineSpec:
    """Aggregation pipeline: kind + second-stage robust rule.

    ``kind`` is ``"byzshield"``, ``"detox"``, ``"draco"`` or ``"vanilla"``;
    ``aggregator``/``aggregator_params`` name the registry rule (ignored by
    DRACO, which always averages); ``vote_tolerance`` loosens the majority
    vote's exact-equality matching.  ``block_size`` streams the vote kernels
    in coordinate blocks (``None``, the default and the form omitted from
    the canonical dict, keeps the monolithic kernels — existing spec digests
    are unchanged).
    """

    kind: str = "byzshield"
    aggregator: str = "median"
    aggregator_params: dict[str, Any] = field(default_factory=dict)
    vote_tolerance: float = 0.0
    block_size: int | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("byzshield", "detox", "draco", "vanilla"):
            raise ConfigurationError(
                f"unknown pipeline kind {self.kind!r}; expected byzshield, "
                "detox, draco or vanilla"
            )
        if self.vote_tolerance < 0:
            raise ConfigurationError(
                f"vote_tolerance must be non-negative, got {self.vote_tolerance}"
            )
        if self.block_size is not None and self.block_size < 1:
            raise ConfigurationError(
                f"block_size must be a positive integer or omitted, got "
                f"{self.block_size}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PipelineSpec":
        _check_keys(
            "pipeline",
            data,
            ("kind", "aggregator", "aggregator_params", "vote_tolerance", "block_size"),
        )
        block_size = data.get("block_size")
        return cls(
            kind=str(data.get("kind", "byzshield")),
            aggregator=str(data.get("aggregator", "median")),
            aggregator_params=dict(data.get("aggregator_params", {})),
            vote_tolerance=float(data.get("vote_tolerance", 0.0)),
            block_size=None if block_size is None else int(block_size),
        )

    def to_dict(self) -> dict[str, Any]:
        out = {
            "kind": self.kind,
            "aggregator": self.aggregator,
            "aggregator_params": dict(self.aggregator_params),
        }
        if self.vote_tolerance:
            out["vote_tolerance"] = self.vote_tolerance
        if self.block_size is not None:
            out["block_size"] = self.block_size
        return _prune(out)


@dataclass(frozen=True)
class PartitionSpec:
    """Non-IID file partition (see :mod:`repro.data.batching`).

    ``kind`` is ``"dirichlet"`` (label skew, Hsu et al. 2019) or
    ``"quantity_skew"`` (Dirichlet shard sizes); ``alpha`` is the Dirichlet
    concentration (small = strong skew) and ``min_per_shard`` the floor
    every file's shard is topped up to.  Scenarios without a partition run
    the paper's IID batching and serialize no ``partition`` key, so adding
    this section changed no existing spec digest.
    """

    kind: str = "dirichlet"
    alpha: float = 0.5
    min_per_shard: int = 1

    def __post_init__(self) -> None:
        if self.kind not in ("dirichlet", "quantity_skew"):
            raise ConfigurationError(
                f"unknown partition kind {self.kind!r}; expected 'dirichlet' "
                "or 'quantity_skew'"
            )
        if not self.alpha > 0:  # also NaN
            raise ConfigurationError(
                f"partition alpha must be positive, got {self.alpha}"
            )
        if self.min_per_shard < 0:
            raise ConfigurationError(
                f"partition min_per_shard must be non-negative, got "
                f"{self.min_per_shard}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "PartitionSpec":
        _check_keys("data.partition", data, ("kind", "alpha", "min_per_shard"))
        defaults = cls()
        return cls(
            kind=str(data.get("kind", defaults.kind)),
            alpha=float(data.get("alpha", defaults.alpha)),
            min_per_shard=int(data.get("min_per_shard", defaults.min_per_shard)),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "alpha": self.alpha}
        if self.min_per_shard != 1:
            out["min_per_shard"] = self.min_per_shard
        return out


@dataclass(frozen=True)
class DataSpec:
    """Synthetic dataset parameters (Gaussian mixture or synthetic images).

    ``partition`` optionally shards the training set non-IID across files;
    ``None`` (default, omitted from the canonical dict) keeps the paper's
    IID batching and every pre-existing spec digest.
    """

    kind: str = "gaussian"
    num_train: int = 300
    num_test: int = 100
    num_classes: int = 4
    dim: int = 12
    separation: float = 3.0
    image_size: int = 8
    channels: int = 3
    partition: PartitionSpec | None = None

    def __post_init__(self) -> None:
        if self.kind not in ("gaussian", "images"):
            raise ConfigurationError(
                f"unknown data kind {self.kind!r}; expected 'gaussian' or 'images'"
            )
        for name in ("num_train", "num_test", "num_classes", "dim"):
            if getattr(self, name) < 1:
                raise ConfigurationError(f"{name} must be positive")

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "DataSpec":
        _check_keys(
            "data",
            data,
            (
                "kind",
                "num_train",
                "num_test",
                "num_classes",
                "dim",
                "separation",
                "image_size",
                "channels",
                "partition",
            ),
        )
        defaults = cls()
        partition = data.get("partition")
        return cls(
            kind=str(data.get("kind", defaults.kind)),
            num_train=int(data.get("num_train", defaults.num_train)),
            num_test=int(data.get("num_test", defaults.num_test)),
            num_classes=int(data.get("num_classes", defaults.num_classes)),
            dim=int(data.get("dim", defaults.dim)),
            separation=float(data.get("separation", defaults.separation)),
            image_size=int(data.get("image_size", defaults.image_size)),
            channels=int(data.get("channels", defaults.channels)),
            partition=None if partition is None else PartitionSpec.from_dict(partition),
        )

    def to_dict(self) -> dict[str, Any]:
        out = {
            "kind": self.kind,
            "num_train": self.num_train,
            "num_test": self.num_test,
            "num_classes": self.num_classes,
            "dim": self.dim,
            "separation": self.separation,
            "image_size": self.image_size,
            "channels": self.channels,
        }
        if self.partition is not None:
            # IID scenarios serialize no partition key, keeping every
            # pre-existing spec digest (and its golden trace) intact.
            out["partition"] = self.partition.to_dict()
        return out


@dataclass(frozen=True)
class ModelSpec:
    """MLP head trained on the synthetic substrate."""

    hidden: tuple[int, ...] = (16,)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ModelSpec":
        _check_keys("model", data, ("hidden",))
        return cls(hidden=tuple(int(h) for h in data.get("hidden", (16,))))

    def to_dict(self) -> dict[str, Any]:
        return {"hidden": list(self.hidden)}


@dataclass(frozen=True)
class TrainingSpec:
    """Optimization schedule of the run."""

    batch_size: int = 75
    num_iterations: int = 4
    learning_rate: float = 0.05
    lr_decay: float = 0.96
    lr_period: int = 15
    momentum: float = 0.9
    weight_decay: float = 0.0
    eval_every: int = 2

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TrainingSpec":
        _check_keys(
            "training",
            data,
            (
                "batch_size",
                "num_iterations",
                "learning_rate",
                "lr_decay",
                "lr_period",
                "momentum",
                "weight_decay",
                "eval_every",
            ),
        )
        defaults = cls()
        return cls(
            batch_size=int(data.get("batch_size", defaults.batch_size)),
            num_iterations=int(data.get("num_iterations", defaults.num_iterations)),
            learning_rate=float(data.get("learning_rate", defaults.learning_rate)),
            lr_decay=float(data.get("lr_decay", defaults.lr_decay)),
            lr_period=int(data.get("lr_period", defaults.lr_period)),
            momentum=float(data.get("momentum", defaults.momentum)),
            weight_decay=float(data.get("weight_decay", defaults.weight_decay)),
            eval_every=int(data.get("eval_every", defaults.eval_every)),
        )

    def to_dict(self) -> dict[str, Any]:
        return dataclasses.asdict(self)


@dataclass(frozen=True)
class ScheduleSpec:
    """Adversary schedule (see :class:`repro.attacks.schedules.AdversarySchedule`)."""

    kind: str = "static"
    q: int = 0
    q_end: int | None = None
    period: int = 1
    stride: int = 1

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScheduleSpec":
        _check_keys("attack.schedule", data, ("kind", "q", "q_end", "period", "stride"))
        return cls(
            kind=str(data.get("kind", "static")),
            q=int(data.get("q", 0)),
            q_end=None if data.get("q_end") is None else int(data["q_end"]),
            period=int(data.get("period", 1)),
            stride=int(data.get("stride", 1)),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"kind": self.kind, "q": self.q}
        if self.q_end is not None:
            out["q_end"] = self.q_end
        if self.period != 1:
            out["period"] = self.period
        if self.stride != 1:
            out["stride"] = self.stride
        return out


@dataclass(frozen=True)
class AttackSpec:
    """The adversary: payload generator + worker selection + budget schedule."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)
    selection: str = "omniscient"
    schedule: ScheduleSpec = field(default_factory=ScheduleSpec)

    def __post_init__(self) -> None:
        if self.selection not in ("omniscient", "random", "rotating"):
            raise ConfigurationError(
                f"unknown selection {self.selection!r}; expected omniscient, "
                "random or rotating"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "AttackSpec":
        _check_keys("attack", data, ("name", "params", "selection", "schedule"))
        if "name" not in data:
            raise ConfigurationError("attack section requires a 'name'")
        return cls(
            name=str(data["name"]),
            params=dict(data.get("params", {})),
            selection=str(data.get("selection", "omniscient")),
            schedule=ScheduleSpec.from_dict(data.get("schedule", {})),
        )

    def to_dict(self) -> dict[str, Any]:
        return _prune(
            {
                "name": self.name,
                "params": dict(self.params),
                "selection": self.selection,
                "schedule": self.schedule.to_dict(),
            }
        )


@dataclass(frozen=True)
class FaultSpec:
    """One benign fault model; ``params`` match the injector's constructor.

    ``kind`` is ``"stragglers"``, ``"dropout"`` or ``"corruption"``.
    """

    kind: str
    params: dict[str, Any] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.kind not in ("stragglers", "dropout", "corruption"):
            raise ConfigurationError(
                f"unknown fault kind {self.kind!r}; expected stragglers, "
                "dropout or corruption"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "FaultSpec":
        _check_keys("faults[]", data, ("kind", "params"))
        if "kind" not in data:
            raise ConfigurationError("fault section requires a 'kind'")
        return cls(kind=str(data["kind"]), params=dict(data.get("params", {})))

    def to_dict(self) -> dict[str, Any]:
        return _prune({"kind": self.kind, "params": dict(self.params)})


@dataclass(frozen=True)
class CompressionSpec:
    """Uplink gradient compression applied worker-side (once per file)."""

    name: str
    params: dict[str, Any] = field(default_factory=dict)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "CompressionSpec":
        _check_keys("compression", data, ("name", "params"))
        if "name" not in data:
            raise ConfigurationError("compression section requires a 'name'")
        return cls(name=str(data["name"]), params=dict(data.get("params", {})))

    def to_dict(self) -> dict[str, Any]:
        return _prune({"name": self.name, "params": dict(self.params)})


@dataclass(frozen=True)
class RuntimeSpec:
    """How the PS collects a round's messages.

    The default (no deadline, no quorum) is the lockstep synchronous round
    every pre-existing scenario runs — it serializes to an empty dict and is
    omitted from the canonical spec form, so adding this section changed no
    existing spec digest.  Setting ``deadline`` and/or ``quorum`` switches
    the run to the event-driven engine (:mod:`repro.cluster.events`).

    Attributes
    ----------
    deadline:
        Round deadline in simulated seconds, exclusive (an arrival at
        exactly the deadline is late).  ``inf`` (serialized as the string
        ``"inf"``) waits for every message that will ever arrive — the
        sync-equivalent event mode.  ``None`` = synchronous unless a quorum
        is set.
    quorum:
        Per-file close threshold: a file stops accepting copies once this
        many arrived.  ``None`` waits for all ``r`` copies.
    partial:
        Vote each file over its accepted copies only instead of counting
        missing slots as zero votes.  Requires an event-driven runtime.
    """

    deadline: float | None = None
    quorum: int | None = None
    partial: bool = False

    def __post_init__(self) -> None:
        if self.deadline is not None and not self.deadline > 0.0:  # also NaN
            raise ConfigurationError(
                f"runtime deadline must be positive (or inf), got {self.deadline}"
            )
        if self.quorum is not None and self.quorum < 1:
            raise ConfigurationError(
                f"runtime quorum must be >= 1, got {self.quorum}"
            )
        if self.partial and not self.is_event:
            raise ConfigurationError(
                "partial aggregation requires an event-driven runtime "
                "(set deadline and/or quorum)"
            )

    @property
    def is_event(self) -> bool:
        """True when the scenario runs on the event-driven engine."""
        return self.deadline is not None or self.quorum is not None

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RuntimeSpec":
        _check_keys("runtime", data, ("deadline", "quorum", "partial"))
        deadline = data.get("deadline")
        return cls(
            # float("inf") round-trips the serialized "inf" string.
            deadline=None if deadline is None else float(deadline),
            quorum=None if data.get("quorum") is None else int(data["quorum"]),
            partial=bool(data.get("partial", False)),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {}
        if self.deadline is not None:
            # Strict JSON has no Infinity literal; use a string sentinel.
            out["deadline"] = "inf" if math.isinf(self.deadline) else self.deadline
        if self.quorum is not None:
            out["quorum"] = self.quorum
        if self.partial:
            out["partial"] = True
        return out


@dataclass(frozen=True)
class TopologySpec:
    """Two-level aggregation topology (hierarchical majority voting).

    ``groups`` partitions the workers into that many contiguous, balanced
    voting groups; ``q_group``/``q_root`` are the per-level tolerated-
    adversary budgets carried by :class:`~repro.cluster.topology.
    GroupTopology`.  Scenarios without this section run the flat vote and
    serialize no ``topology`` key, so adding the section changed no existing
    spec digest.
    """

    groups: int
    q_group: int = 0
    q_root: int = 0

    def __post_init__(self) -> None:
        if self.groups < 1:
            raise ConfigurationError(
                f"topology groups must be >= 1, got {self.groups}"
            )
        if self.q_group < 0 or self.q_root < 0:
            raise ConfigurationError(
                f"topology budgets must be non-negative, got "
                f"q_group={self.q_group}, q_root={self.q_root}"
            )

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "TopologySpec":
        _check_keys("topology", data, ("groups", "q_group", "q_root"))
        if "groups" not in data:
            raise ConfigurationError("topology section requires 'groups'")
        return cls(
            groups=int(data["groups"]),
            q_group=int(data.get("q_group", 0)),
            q_root=int(data.get("q_root", 0)),
        )

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {"groups": self.groups}
        if self.q_group:
            out["q_group"] = self.q_group
        if self.q_root:
            out["q_root"] = self.q_root
        return out


@dataclass(frozen=True)
class ScenarioSpec:
    """A complete, reproducible description of one simulated training run."""

    name: str
    seed: int = 0
    cluster: ClusterSpec = field(default_factory=ClusterSpec)
    pipeline: PipelineSpec = field(default_factory=PipelineSpec)
    data: DataSpec = field(default_factory=DataSpec)
    model: ModelSpec = field(default_factory=ModelSpec)
    training: TrainingSpec = field(default_factory=TrainingSpec)
    attack: AttackSpec | None = None
    faults: tuple[FaultSpec, ...] = ()
    compression: CompressionSpec | None = None
    runtime: RuntimeSpec = field(default_factory=RuntimeSpec)
    topology: TopologySpec | None = None
    dtype: str = "float64"
    description: str = ""

    def __post_init__(self) -> None:
        if not self.name:
            raise ConfigurationError("scenario requires a non-empty name")
        if self.dtype not in SUPPORTED_DTYPES:
            raise ConfigurationError(
                f"unsupported scenario dtype {self.dtype!r}; "
                f"expected one of {sorted(SUPPORTED_DTYPES)}"
            )

    # -- dict / JSON round-trip ---------------------------------------------
    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "ScenarioSpec":
        _check_keys(
            "scenario",
            data,
            (
                "name",
                "seed",
                "cluster",
                "pipeline",
                "data",
                "model",
                "training",
                "attack",
                "faults",
                "compression",
                "runtime",
                "topology",
                "dtype",
                "description",
            ),
        )
        if "name" not in data:
            raise ConfigurationError("scenario requires a 'name'")
        attack = data.get("attack")
        compression = data.get("compression")
        topology = data.get("topology")
        return cls(
            name=str(data["name"]),
            seed=int(data.get("seed", 0)),
            cluster=ClusterSpec.from_dict(data.get("cluster", {})),
            pipeline=PipelineSpec.from_dict(data.get("pipeline", {})),
            data=DataSpec.from_dict(data.get("data", {})),
            model=ModelSpec.from_dict(data.get("model", {})),
            training=TrainingSpec.from_dict(data.get("training", {})),
            attack=None if attack is None else AttackSpec.from_dict(attack),
            faults=tuple(FaultSpec.from_dict(f) for f in data.get("faults", ())),
            compression=(
                None if compression is None else CompressionSpec.from_dict(compression)
            ),
            runtime=RuntimeSpec.from_dict(data.get("runtime", {})),
            topology=None if topology is None else TopologySpec.from_dict(topology),
            dtype=str(data.get("dtype", "float64")),
            description=str(data.get("description", "")),
        )

    @classmethod
    def from_json_file(cls, path: "str | pathlib.Path") -> "ScenarioSpec":
        path = pathlib.Path(path)
        try:
            data = json.loads(path.read_text())
        except (OSError, json.JSONDecodeError) as exc:
            raise ConfigurationError(f"cannot load scenario spec {path}: {exc}") from exc
        return cls.from_dict(data)

    def to_dict(self) -> dict[str, Any]:
        out: dict[str, Any] = {
            "name": self.name,
            "seed": self.seed,
            "cluster": self.cluster.to_dict(),
            "pipeline": self.pipeline.to_dict(),
            "data": self.data.to_dict(),
            "model": self.model.to_dict(),
            "training": self.training.to_dict(),
        }
        if self.attack is not None:
            out["attack"] = self.attack.to_dict()
        if self.faults:
            out["faults"] = [f.to_dict() for f in self.faults]
        if self.compression is not None:
            out["compression"] = self.compression.to_dict()
        runtime = self.runtime.to_dict()
        if runtime:
            # Synchronous scenarios serialize no runtime section, keeping
            # every pre-existing spec digest (and its golden trace) intact.
            out["runtime"] = runtime
        if self.topology is not None:
            # Flat-vote scenarios serialize no topology section (same
            # digest-preservation contract as the runtime section).
            out["topology"] = self.topology.to_dict()
        if self.dtype != "float64":
            # Emitted only when non-default so existing float64 spec digests
            # (and the golden traces pinned to them) are unchanged.
            out["dtype"] = self.dtype
        if self.description:
            out["description"] = self.description
        return out

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    def digest(self) -> str:
        """Stable hash of the canonical spec — traces embed it so a replay
        against an edited scenario fails loudly instead of comparing apples
        to oranges."""
        canonical = json.dumps(self.to_dict(), sort_keys=True, separators=(",", ":"))
        return hashlib.sha256(canonical.encode()).hexdigest()[:16]
