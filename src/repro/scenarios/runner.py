"""Turn a :class:`~repro.scenarios.spec.ScenarioSpec` into a live run.

The runner is the only place that knows how to map spec sections onto the
library's registries and constructors: assignment schemes, aggregation
pipelines, attacks + schedules, fault injectors, compressors, the synthetic
datasets and the MLP substrate.  Each :meth:`ScenarioRunner.run` builds every
component fresh from the spec (no state leaks between runs) and drives
:class:`~repro.training.trainer.DistributedTrainer` down the vectorized
round path: all ``f`` file gradients in one pass through the stacked
per-file engine (:meth:`~repro.training.gradients.ModelGradientComputer.batched`),
packed into a contiguous :class:`~repro.core.vote_tensor.VoteTensor` for
attack/fault injection and the vectorized majority vote, with a bit-exact
:class:`~repro.scenarios.trace.RunTrace` recorded via the trainer's round
observer.

Because a run is a pure function of its spec, the campaign engine
(:mod:`repro.campaigns`) can execute many runners across worker processes
and obtain traces bit-identical to serial execution.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.aggregation.registry import create_aggregator
from repro.assignment.registry import create_scheme
from repro.attacks.base import Attack
from repro.attacks.registry import create_attack
from repro.attacks.schedules import AdversarySchedule, ScheduledSelector
from repro.cluster.events import AsyncRuntime
from repro.cluster.faults import (
    DropoutInjector,
    FaultInjector,
    MessageCorruptionInjector,
    StragglerInjector,
)
from repro.cluster.simulator import TrainingCluster
from repro.cluster.topology import GroupTopology
from repro.cluster.worker import WorkerPool
from repro.compression.compressors import create_compressor
from repro.core.pipelines import (
    AggregationPipeline,
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    VanillaPipeline,
)
from repro.data.batching import build_file_partition
from repro.data.datasets import Dataset, train_test_split
from repro.data.synthetic import make_gaussian_mixture, make_synthetic_images
from repro.exceptions import ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment
from repro.nn.models import build_mlp
from repro.scenarios.spec import FaultSpec, ScenarioSpec
from repro.scenarios.trace import RoundTrace, RunTrace, array_digest, hex_float
from repro.training.config import TrainingConfig
from repro.training.gradients import ModelGradientComputer
from repro.training.history import TrainingHistory
from repro.training.trainer import DistributedTrainer
from repro.utils.rng import derive_seed

__all__ = ["ScenarioResult", "ScenarioRunner", "run_scenario"]


@dataclass
class ScenarioResult:
    """Everything a scenario run produces."""

    spec: ScenarioSpec
    trace: RunTrace
    history: TrainingHistory

    def summary(self) -> dict[str, object]:
        """Flat row for reports and the CLI."""
        rounds = self.trace.rounds
        history = self.history.summary()
        dropped = sum(
            1 for r in rounds for f in r.faults if f.get("dropped")
        )
        corrupted = sum(
            1 for r in rounds for f in r.faults if f.get("kind") == "corruption"
        )
        return {
            "scenario": self.spec.name,
            "rounds": len(rounds),
            "final_accuracy": history["final_accuracy"],
            "mean_distortion": history["mean_distortion"],
            "max_q": max((r.q for r in rounds), default=0),
            "dropped_contributions": dropped,
            "corrupted_messages": corrupted,
            "simulated_time": self.trace.total_simulated_time,
            "final_params_digest": self.trace.final_params_digest,
        }


def _build_fault_injector(spec: FaultSpec) -> FaultInjector:
    try:
        if spec.kind == "stragglers":
            return StragglerInjector(**spec.params)
        if spec.kind == "dropout":
            return DropoutInjector(**spec.params)
        return MessageCorruptionInjector(**spec.params)
    except TypeError as exc:
        raise ConfigurationError(
            f"bad parameters for fault {spec.kind!r}: {exc}"
        ) from exc


class ScenarioRunner:
    """Executes one :class:`ScenarioSpec` and records its trace."""

    def __init__(self, spec: ScenarioSpec) -> None:
        self.spec = spec

    # -- component assembly --------------------------------------------------
    def _build_assignment(self) -> BipartiteAssignment:
        try:
            scheme = create_scheme(self.spec.cluster.scheme, **self.spec.cluster.params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for scheme {self.spec.cluster.scheme!r}: {exc}"
            ) from exc
        return scheme.assignment

    def _build_topology(self, assignment: BipartiteAssignment) -> GroupTopology | None:
        section = self.spec.topology
        if section is None:
            return None
        return GroupTopology(
            assignment.num_workers,
            section.groups,
            q_group=section.q_group,
            q_root=section.q_root,
        )

    def _build_pipeline(
        self,
        assignment: BipartiteAssignment,
        topology: GroupTopology | None,
    ) -> AggregationPipeline:
        section = self.spec.pipeline
        max_q = 0
        if self.spec.attack is not None:
            max_q = AdversarySchedule(**self.spec.attack.schedule.to_dict()).max_q
        if section.kind == "draco":
            return DracoPipeline(
                assignment,
                num_byzantine=max_q,
                vote_tolerance=section.vote_tolerance,
                topology=topology,
                block_size=section.block_size,
            )
        try:
            aggregator = create_aggregator(section.aggregator, **section.aggregator_params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for aggregator {section.aggregator!r}: {exc}"
            ) from exc
        if section.kind == "byzshield":
            return ByzShieldPipeline(
                assignment,
                aggregator=aggregator,
                vote_tolerance=section.vote_tolerance,
                topology=topology,
                block_size=section.block_size,
            )
        if section.kind == "detox":
            return DetoxPipeline(
                assignment,
                aggregator=aggregator,
                vote_tolerance=section.vote_tolerance,
                topology=topology,
                block_size=section.block_size,
            )
        # Vanilla rejects both knobs itself with a pointed message, so a spec
        # that combines them surfaces as a ConfigurationError, not silence.
        return VanillaPipeline(
            assignment,
            aggregator=aggregator,
            topology=topology,
            block_size=section.block_size,
        )

    def _build_datasets(self) -> tuple[Dataset, Dataset]:
        data = self.spec.data
        total = data.num_train + data.num_test
        if data.kind == "gaussian":
            dataset = make_gaussian_mixture(
                num_samples=total,
                num_classes=data.num_classes,
                dim=data.dim,
                separation=data.separation,
                seed=self.spec.seed,
            )
        else:
            dataset = make_synthetic_images(
                num_samples=total,
                num_classes=data.num_classes,
                image_size=data.image_size,
                channels=data.channels,
                seed=self.spec.seed,
                flatten=True,
            )
        return train_test_split(
            dataset, test_fraction=data.num_test / total, seed=self.spec.seed + 1
        )

    def _build_file_partition(
        self, assignment: BipartiteAssignment, train_dataset: Dataset
    ):
        """Non-IID shards for the trainer, or ``None`` for the IID path.

        The partition seed is derived from the scenario seed and the
        partition kind, so it is decoupled from the batch-sampling and
        model-init streams — changing the skew kind re-deals the shards
        without perturbing any other randomness.
        """
        section = self.spec.data.partition
        if section is None:
            return None
        return build_file_partition(
            train_dataset,
            assignment.num_files,
            section.kind,
            alpha=section.alpha,
            seed=derive_seed(self.spec.seed, "partition", section.kind),
            min_per_shard=section.min_per_shard,
        )

    def _build_adversary(self) -> tuple[Attack | None, ScheduledSelector | None]:
        section = self.spec.attack
        if section is None:
            return None, None
        try:
            attack = create_attack(section.name, **section.params)
        except TypeError as exc:
            raise ConfigurationError(
                f"bad parameters for attack {section.name!r}: {exc}"
            ) from exc
        schedule = AdversarySchedule(**section.schedule.to_dict())
        selector = ScheduledSelector(
            schedule, selection=section.selection, seed=self.spec.seed
        )
        return attack, selector

    def build_trainer(self) -> DistributedTrainer:
        """Assemble a fresh trainer for this spec (no observer attached)."""
        return self._assemble(round_observer=None)

    def _assemble(self, round_observer) -> DistributedTrainer:
        spec = self.spec
        assignment = self._build_assignment()
        topology = self._build_topology(assignment)
        pipeline = self._build_pipeline(assignment, topology)
        train_dataset, test_dataset = self._build_datasets()
        model = build_mlp(
            train_dataset.flat_feature_dim,
            num_classes=spec.data.num_classes,
            hidden=spec.model.hidden,
            seed=spec.seed,
            dtype=spec.dtype,
        )
        gradient_computer = ModelGradientComputer(model)
        compressor = None
        if spec.compression is not None:
            try:
                compressor = create_compressor(
                    spec.compression.name, **spec.compression.params
                )
            except TypeError as exc:
                raise ConfigurationError(
                    f"bad parameters for compressor {spec.compression.name!r}: {exc}"
                ) from exc
        pool = WorkerPool(assignment, gradient_computer, compressor=compressor)
        attack, selector = self._build_adversary()
        runtime = None
        if spec.runtime.is_event:
            runtime = AsyncRuntime(
                deadline=(
                    float("inf")
                    if spec.runtime.deadline is None
                    else spec.runtime.deadline
                ),
                quorum=spec.runtime.quorum,
                partial=spec.runtime.partial,
            )
        cluster = TrainingCluster(
            assignment=assignment,
            worker_pool=pool,
            attack=attack,
            selector=selector,
            seed=spec.seed,
            fault_injectors=tuple(
                _build_fault_injector(f) for f in spec.faults
            ),
            runtime=runtime,
            topology=topology,
        )
        config = TrainingConfig(
            batch_size=spec.training.batch_size,
            num_iterations=spec.training.num_iterations,
            learning_rate=spec.training.learning_rate,
            lr_decay=spec.training.lr_decay,
            lr_period=spec.training.lr_period,
            momentum=spec.training.momentum,
            weight_decay=spec.training.weight_decay,
            eval_every=spec.training.eval_every,
            seed=spec.seed,
        )
        return DistributedTrainer(
            cluster=cluster,
            pipeline=pipeline,
            gradient_computer=gradient_computer,
            train_dataset=train_dataset,
            test_dataset=test_dataset,
            config=config,
            label=spec.name,
            round_observer=round_observer,
            file_partition=self._build_file_partition(assignment, train_dataset),
        )

    # -- execution -----------------------------------------------------------
    def run(self, verbose: bool = False) -> ScenarioResult:
        """Execute the scenario and return its trace + training history.

        Every component is assembled fresh from the spec and each round runs
        the vectorized engine end to end — the stacked per-file gradient
        pass, tensor-level attack and fault injection, the vectorized
        majority vote and the robust aggregator — while the attached round
        observer digests every stage into the :class:`RunTrace`.  Two calls
        with the same spec are bit-identical, in any process.
        """
        trace = RunTrace(scenario=self.spec.name, spec_digest=self.spec.digest())

        def observe(iteration, round_result, aggregate, server):
            tensor = round_result.vote_tensor
            # Recomputes the majority vote the aggregation just ran.  This is
            # deliberate: scenarios are tiny by design (the whole golden
            # matrix replays in ~1 s), normal training attaches no observer
            # and pays nothing, and caching winners on the pipeline would
            # risk serving stale results to callers that mutate the tensor
            # between calls.
            winners = trainer.pipeline.post_vote_matrix(
                tensor, round_result.aggregation_mask
            )
            trace.append(
                RoundTrace(
                    iteration=iteration,
                    q=len(round_result.byzantine_workers),
                    byzantine=tuple(round_result.byzantine_workers),
                    num_distorted=len(round_result.distorted_files),
                    votes_digest=array_digest(tensor.values),
                    winners_digest=array_digest(winners),
                    aggregate_digest=array_digest(aggregate),
                    params_digest=server.state_digest(),
                    mean_loss_hex=hex_float(round_result.mean_file_loss),
                    round_time_hex=hex_float(round_result.round_time),
                    faults=tuple(e.as_dict() for e in round_result.fault_events),
                )
            )

        trainer = self._assemble(round_observer=observe)
        history = trainer.train(verbose=verbose)
        trace.final_params_digest = trainer.server.state_digest()
        trace.final_accuracy_hex = hex_float(history.final_accuracy)
        return ScenarioResult(spec=self.spec, trace=trace, history=history)


def run_scenario(spec: ScenarioSpec, verbose: bool = False) -> ScenarioResult:
    """Convenience wrapper: build a runner and execute the spec once."""
    return ScenarioRunner(spec).run(verbose=verbose)
