"""Structured round traces and bit-exact comparison.

A :class:`RoundTrace` condenses one training round into digests of every
stage of the data path — the raw vote tensor, the post-vote matrix, the
aggregated gradient and the updated parameters — plus the realized adversary
and fault activity.  A :class:`RunTrace` is the per-run sequence of round
traces together with the spec digest and final metrics.

Digests are 16-hex-char SHA-256 prefixes over the raw float64 bytes (shape
included), so two runs match **iff** they are bit-identical at every stage of
every round; floats that travel through JSON are serialized with
``float.hex()`` to survive the round-trip exactly.  This is what makes the
golden-trace suite a refactoring safety net: any change that perturbs a
single bit anywhere in the round path shows up as a digest mismatch with a
precise (round, stage) location.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any, Mapping

from repro.exceptions import ReproError
from repro.utils.digest import array_digest

__all__ = ["array_digest", "hex_float", "RoundTrace", "RunTrace", "TraceMismatch"]


def hex_float(value: float) -> str:
    """Bit-exact JSON representation of a float (NaN-safe)."""
    value = float(value)
    return "nan" if value != value else value.hex()


def _unhex(text: str) -> float:
    return float("nan") if text == "nan" else float.fromhex(text)


class TraceMismatch(ReproError):
    """A replayed run diverged from its golden trace."""


@dataclass(frozen=True)
class RoundTrace:
    """Digest view of one training round.

    Attributes
    ----------
    iteration:
        Zero-based round index.
    q:
        Number of Byzantine workers this round.
    byzantine:
        The compromised worker set.
    num_distorted:
        Files whose majority was corrupted by the adversary.
    votes_digest, winners_digest, aggregate_digest, params_digest:
        Stage digests: the packed ``(f, r, d)`` vote tensor after attack and
        faults, the post-vote matrix, the aggregated gradient, and the
        global parameters after the optimizer step.
    mean_loss_hex:
        The round's mean file loss, hex-encoded for exact JSON round-trip.
    round_time_hex:
        Simulated round duration (straggler model), hex-encoded.
    faults:
        JSON-ready fault event records of the round.
    """

    iteration: int
    q: int
    byzantine: tuple[int, ...]
    num_distorted: int
    votes_digest: str
    winners_digest: str
    aggregate_digest: str
    params_digest: str
    mean_loss_hex: str
    round_time_hex: str = hex_float(0.0)
    faults: tuple[Mapping[str, Any], ...] = ()

    def to_dict(self) -> dict[str, Any]:
        return {
            "iteration": self.iteration,
            "q": self.q,
            "byzantine": list(self.byzantine),
            "num_distorted": self.num_distorted,
            "votes_digest": self.votes_digest,
            "winners_digest": self.winners_digest,
            "aggregate_digest": self.aggregate_digest,
            "params_digest": self.params_digest,
            "mean_loss_hex": self.mean_loss_hex,
            "round_time_hex": self.round_time_hex,
            "faults": [dict(f) for f in self.faults],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RoundTrace":
        return cls(
            iteration=int(data["iteration"]),
            q=int(data["q"]),
            byzantine=tuple(int(w) for w in data["byzantine"]),
            num_distorted=int(data["num_distorted"]),
            votes_digest=str(data["votes_digest"]),
            winners_digest=str(data["winners_digest"]),
            aggregate_digest=str(data["aggregate_digest"]),
            params_digest=str(data["params_digest"]),
            mean_loss_hex=str(data["mean_loss_hex"]),
            round_time_hex=str(data.get("round_time_hex", hex_float(0.0))),
            faults=tuple(dict(f) for f in data.get("faults", ())),
        )

    @property
    def mean_loss(self) -> float:
        return _unhex(self.mean_loss_hex)

    @property
    def round_time(self) -> float:
        return _unhex(self.round_time_hex)


@dataclass
class RunTrace:
    """The full trace of one scenario run.

    ``spec_digest`` ties the trace to the exact scenario definition;
    ``final_params_digest`` and ``final_accuracy_hex`` summarize where the
    run ended.
    """

    scenario: str
    spec_digest: str
    rounds: list[RoundTrace] = field(default_factory=list)
    final_params_digest: str = ""
    final_accuracy_hex: str = hex_float(float("nan"))

    def append(self, round_trace: RoundTrace) -> None:
        if self.rounds and round_trace.iteration <= self.rounds[-1].iteration:
            raise ReproError("round traces must be appended in increasing order")
        self.rounds.append(round_trace)

    @property
    def final_accuracy(self) -> float:
        return _unhex(self.final_accuracy_hex)

    @property
    def total_simulated_time(self) -> float:
        """Sum of the per-round simulated durations (straggler model)."""
        return float(sum(r.round_time for r in self.rounds))

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> dict[str, Any]:
        return {
            "scenario": self.scenario,
            "spec_digest": self.spec_digest,
            "final_params_digest": self.final_params_digest,
            "final_accuracy_hex": self.final_accuracy_hex,
            "rounds": [r.to_dict() for r in self.rounds],
        }

    def to_json(self, indent: int = 2) -> str:
        return json.dumps(self.to_dict(), indent=indent, sort_keys=True)

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "RunTrace":
        return cls(
            scenario=str(data["scenario"]),
            spec_digest=str(data["spec_digest"]),
            rounds=[RoundTrace.from_dict(r) for r in data["rounds"]],
            final_params_digest=str(data.get("final_params_digest", "")),
            final_accuracy_hex=str(data.get("final_accuracy_hex", hex_float(float("nan")))),
        )

    @classmethod
    def from_json_file(cls, path: "str | pathlib.Path") -> "RunTrace":
        path = pathlib.Path(path)
        try:
            return cls.from_dict(json.loads(path.read_text()))
        except (OSError, json.JSONDecodeError, KeyError) as exc:
            raise ReproError(f"cannot load trace {path}: {exc}") from exc

    def write_json_file(self, path: "str | pathlib.Path") -> None:
        path = pathlib.Path(path)
        try:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(self.to_json() + "\n")
        except OSError as exc:
            raise ReproError(f"cannot write trace {path}: {exc}") from exc

    # -- comparison ----------------------------------------------------------
    def assert_matches(self, golden: "RunTrace") -> None:
        """Raise :class:`TraceMismatch` at the first divergence from ``golden``.

        The error message names the round and the first differing stage so a
        regression points straight at the layer that changed behaviour.
        """
        if self.spec_digest != golden.spec_digest:
            raise TraceMismatch(
                f"scenario {self.scenario!r}: spec digest {self.spec_digest} != "
                f"golden {golden.spec_digest} — the scenario definition changed; "
                "re-record the golden trace if that was intentional"
            )
        if len(self.rounds) != len(golden.rounds):
            raise TraceMismatch(
                f"scenario {self.scenario!r}: {len(self.rounds)} rounds vs "
                f"golden {len(golden.rounds)}"
            )
        for mine, theirs in zip(self.rounds, golden.rounds):
            for stage in (
                "iteration",
                "q",
                "byzantine",
                "num_distorted",
                "votes_digest",
                "winners_digest",
                "aggregate_digest",
                "params_digest",
                "mean_loss_hex",
                "round_time_hex",
                "faults",
            ):
                if getattr(mine, stage) != getattr(theirs, stage):
                    raise TraceMismatch(
                        f"scenario {self.scenario!r} round {mine.iteration}: "
                        f"{stage} diverged ({getattr(mine, stage)!r} != golden "
                        f"{getattr(theirs, stage)!r})"
                    )
        if self.final_params_digest != golden.final_params_digest:
            raise TraceMismatch(
                f"scenario {self.scenario!r}: final params digest diverged"
            )
        if self.final_accuracy_hex != golden.final_accuracy_hex:
            raise TraceMismatch(
                f"scenario {self.scenario!r}: final accuracy diverged "
                f"({self.final_accuracy} != {golden.final_accuracy})"
            )
