"""Golden-trace capture and replay.

A golden trace is the serialized :class:`~repro.scenarios.trace.RunTrace` of
one catalog scenario, committed under ``tests/golden/``.  The regression
suite re-runs every scenario and requires a bit-exact digest match at every
round and stage; :func:`record_goldens` regenerates the files after an
*intentional* behaviour change (``repro scenario record``).
"""

from __future__ import annotations

import pathlib

from repro.exceptions import ReproError
from repro.scenarios.catalog import get_scenario, scenario_names
from repro.scenarios.runner import run_scenario
from repro.scenarios.trace import RunTrace

__all__ = ["default_golden_dir", "golden_path", "record_goldens", "replay_golden"]


def default_golden_dir() -> pathlib.Path:
    """``tests/golden/`` relative to the repository root (best effort)."""
    here = pathlib.Path(__file__).resolve()
    for parent in here.parents:
        candidate = parent / "tests" / "golden"
        if candidate.is_dir():
            return candidate
    return pathlib.Path("tests") / "golden"


def golden_path(name: str, golden_dir: "pathlib.Path | str | None" = None) -> pathlib.Path:
    """Path of the golden trace for a scenario name."""
    base = pathlib.Path(golden_dir) if golden_dir is not None else default_golden_dir()
    return base / f"{name}.json"


def record_goldens(
    names: "list[str] | None" = None,
    golden_dir: "pathlib.Path | str | None" = None,
) -> list[pathlib.Path]:
    """Run the named scenarios (default: whole catalog) and write their traces."""
    base = pathlib.Path(golden_dir) if golden_dir is not None else default_golden_dir()
    base.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    for name in names if names is not None else scenario_names():
        result = run_scenario(get_scenario(name))
        path = golden_path(name, base)
        result.trace.write_json_file(path)
        written.append(path)
    return written


def replay_golden(
    name: str, golden_dir: "pathlib.Path | str | None" = None
) -> RunTrace:
    """Re-run a catalog scenario and assert it matches its golden trace.

    Returns the freshly produced trace; raises
    :class:`~repro.scenarios.trace.TraceMismatch` on any divergence and
    :class:`~repro.exceptions.ReproError` when the golden file is missing.
    """
    path = golden_path(name, golden_dir)
    if not path.exists():
        raise ReproError(
            f"no golden trace for scenario {name!r} at {path}; run "
            f"'repro scenario record --name {name}' to create it"
        )
    golden = RunTrace.from_json_file(path)
    result = run_scenario(get_scenario(name))
    result.trace.assert_matches(golden)
    return result.trace
