"""Declarative scenario engine: specs, fault-injected runs, golden traces.

Public surface:

* :class:`~repro.scenarios.spec.ScenarioSpec` — the declarative run
  description (dict/JSON round-trip, stable digest);
* :class:`~repro.scenarios.runner.ScenarioRunner` /
  :func:`~repro.scenarios.runner.run_scenario` — execute a spec through the
  VoteTensor fast path and record a bit-exact trace;
* :mod:`~repro.scenarios.catalog` — the named scenario matrix;
* :mod:`~repro.scenarios.golden` — golden-trace capture and replay.
"""

from repro.scenarios.catalog import all_scenarios, get_scenario, scenario_names
from repro.scenarios.golden import (
    default_golden_dir,
    golden_path,
    record_goldens,
    replay_golden,
)
from repro.scenarios.runner import ScenarioResult, ScenarioRunner, run_scenario
from repro.scenarios.spec import (
    AttackSpec,
    ClusterSpec,
    CompressionSpec,
    DataSpec,
    FaultSpec,
    ModelSpec,
    PartitionSpec,
    PipelineSpec,
    RuntimeSpec,
    ScenarioSpec,
    ScheduleSpec,
    TrainingSpec,
)
from repro.scenarios.trace import RoundTrace, RunTrace, TraceMismatch, array_digest

__all__ = [
    "AttackSpec",
    "ClusterSpec",
    "CompressionSpec",
    "DataSpec",
    "FaultSpec",
    "ModelSpec",
    "PartitionSpec",
    "PipelineSpec",
    "RuntimeSpec",
    "ScenarioSpec",
    "ScheduleSpec",
    "TrainingSpec",
    "ScenarioResult",
    "ScenarioRunner",
    "run_scenario",
    "RoundTrace",
    "RunTrace",
    "TraceMismatch",
    "array_digest",
    "all_scenarios",
    "get_scenario",
    "scenario_names",
    "default_golden_dir",
    "golden_path",
    "record_goldens",
    "replay_golden",
]
