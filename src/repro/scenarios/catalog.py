"""The named scenario matrix pinned by the golden-trace suite.

Every entry is a complete :class:`~repro.scenarios.spec.ScenarioSpec` sized
to run in well under a second: a tiny Gaussian-mixture dataset, a small MLP,
and a handful of training rounds.  Jointly the matrix covers

* **schemes** — MOLS (K=15), Ramanujan Case 2 (K=25), FRC/DETOX, FRC/DRACO
  and the no-redundancy baseline;
* **attacks** — ALIE, constant, reversed gradient, Gaussian noise, uniform
  random, plus the adaptive zoo: inner-product manipulation, sign-flip
  collusion, Fang-style aggregator-aware payloads (median / trimmed-mean /
  Krum) and the AGR-agnostic min-max / min-sum attacks;
* **adversary schedules** — static, ramping ``q``, and a rotating
  compromised window;
* **data partitions** — the paper's IID batching (default) and non-IID
  file shards (Dirichlet label skew, quantity skew);
* **faults** — exponential/fixed stragglers (with and without timeouts),
  crash-stop churn, and message corruption (zero/scale/noise);
* **compression** — top-k and sign uplink compression;
* **runtimes** — the lockstep synchronous round (default) and the
  event-driven engine with deadline cutoffs, per-file quorums and
  partial (arrived-copies-only) aggregation;
* **topologies** — flat single-level aggregation (default) and
  hierarchical two-level rounds (:class:`~repro.cluster.topology.GroupTopology`)
  with per-level adversary budgets, including group-level quorum closing
  under the async runtime and blockwise (coordinate-sharded) vote kernels.

Names are stable identifiers: golden traces live at
``tests/golden/<name>.json`` and are regenerated with
``repro scenario record``.
"""

from __future__ import annotations

from typing import Any

from repro.exceptions import ConfigurationError
from repro.scenarios.spec import ScenarioSpec

__all__ = ["scenario_names", "get_scenario", "all_scenarios"]


def _spec(
    name: str,
    cluster: dict[str, Any],
    pipeline: dict[str, Any],
    attack: "dict[str, Any] | None" = None,
    faults: "list[dict[str, Any]] | None" = None,
    compression: "dict[str, Any] | None" = None,
    description: str = "",
    **overrides: Any,
) -> dict[str, Any]:
    data: dict[str, Any] = {
        "name": name,
        "seed": 0,
        "cluster": cluster,
        "pipeline": pipeline,
        "data": {"kind": "gaussian", "num_train": 300, "num_test": 100,
                 "num_classes": 4, "dim": 12, "separation": 3.0},
        "model": {"hidden": [16]},
        "training": {"batch_size": 75, "num_iterations": 4, "eval_every": 2},
        "description": description,
    }
    if attack is not None:
        data["attack"] = attack
    if faults:
        data["faults"] = faults
    if compression is not None:
        data["compression"] = compression
    data.update(overrides)
    return data


_MOLS = {"scheme": "mols", "params": {"load": 5, "replication": 3}}
_RAMANUJAN = {"scheme": "ramanujan", "params": {"m": 5, "s": 5}}
_FRC = {"scheme": "frc", "params": {"num_workers": 15, "replication": 3}}
_BASELINE = {"scheme": "baseline", "params": {"num_workers": 15}}

_BYZSHIELD_MEDIAN = {"kind": "byzshield", "aggregator": "median"}


def _catalog() -> dict[str, dict[str, Any]]:
    entries: list[dict[str, Any]] = [
        # -- MOLS (K=15, l=5, r=3) ------------------------------------------
        _spec(
            "mols-clean",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            description="Fault-free ByzShield/MOLS reference run",
        ),
        _spec(
            "mols-alie-omniscient",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            description="Paper threat model: omniscient ALIE at fixed q",
        ),
        _spec(
            "mols-constant-ramping",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "constant", "params": {"value": -1.0},
                    "selection": "omniscient",
                    "schedule": {"kind": "ramping", "q": 0, "q_end": 4, "period": 1}},
            description="Escalating compromise: q ramps 0 -> 4 over the run",
        ),
        _spec(
            "mols-revgrad-rotating",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "reversed_gradient", "params": {"scale": 100.0},
                    "selection": "rotating",
                    "schedule": {"kind": "rotating", "q": 3, "period": 1, "stride": 2}},
            description="Rotating compromised window, stride 2 per round",
        ),
        _spec(
            "mols-alie-stragglers",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 3, "delay_model": "exponential", "delay": 0.5}}],
            description="ALIE plus exponential stragglers (no timeout)",
        ),
        _spec(
            "mols-alie-straggler-timeout",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 3, "delay_model": "exponential",
                                "delay": 1.0, "timeout": 0.8}}],
            description="Slow workers abandoned at the PS timeout lose their votes",
        ),
        _spec(
            "mols-noise-dropout",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "gaussian_noise", "params": {"sigma": 50.0},
                    "selection": "random",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[{"kind": "dropout", "params": {"probability": 0.15, "down_for": 2}}],
            description="Random-selection noise attack under crash-stop churn",
        ),
        _spec(
            "mols-corruption-zero",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            faults=[{"kind": "corruption", "params": {"probability": 0.1, "mode": "zero"}}],
            description="No adversary; 10% of messages torn to zero in flight",
        ),
        _spec(
            "mols-alie-all-faults",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[
                {"kind": "stragglers",
                 "params": {"count": 2, "delay_model": "fixed", "delay": 0.3}},
                {"kind": "dropout", "params": {"probability": 0.1}},
                {"kind": "corruption",
                 "params": {"probability": 0.05, "mode": "scale", "factor": 10.0}},
            ],
            description="Kitchen sink: ALIE + stragglers + churn + corruption",
        ),
        _spec(
            "mols-constant-topk",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "constant", "params": {"value": -1.0},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            compression={"name": "topk", "params": {"fraction": 0.5}},
            description="Top-k compressed uplinks under the constant attack",
        ),
        _spec(
            "mols-uniform-trimmed-mean",
            _MOLS,
            {"kind": "byzshield", "aggregator": "trimmed_mean",
             "aggregator_params": {"trim": 3}},
            attack={"name": "uniform_random", "params": {"magnitude": 5.0},
                    "selection": "random",
                    "schedule": {"kind": "static", "q": 3}},
            description="Uniform-random attack vs trimmed-mean second stage",
        ),
        # -- Ramanujan (K=25, l=r=5) ----------------------------------------
        _spec(
            "ramanujan-clean",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            description="Fault-free K=25 Ramanujan Case-2 reference run",
        ),
        _spec(
            "ramanujan-alie-omniscient",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            description="Omniscient ALIE on the K=25 cluster",
        ),
        _spec(
            "ramanujan-constant-rotating",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "constant", "params": {"value": 2.0},
                    "selection": "rotating",
                    "schedule": {"kind": "rotating", "q": 5, "period": 2, "stride": 3}},
            description="Rotating q=5 window shifting by 3 every 2 rounds",
        ),
        _spec(
            "ramanujan-revgrad-stragglers",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "reversed_gradient", "params": {"scale": 100.0},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 5, "delay_model": "exponential",
                                "delay": 0.5, "timeout": 1.0}}],
            description="Reversed gradient with timeout-dropped stragglers",
        ),
        _spec(
            "ramanujan-uniform-signsgd",
            _RAMANUJAN,
            {"kind": "byzshield", "aggregator": "signsgd"},
            attack={"name": "uniform_random", "params": {"magnitude": 2.0},
                    "selection": "random",
                    "schedule": {"kind": "static", "q": 3}},
            description="signSGD second stage under uniform-random payloads",
        ),
        # -- DETOX / FRC (K=15, r=3, 5 groups) ------------------------------
        _spec(
            "detox-mom-alie",
            _FRC,
            {"kind": "detox", "aggregator": "median_of_means",
             "aggregator_params": {"num_groups": 3}},
            attack={"name": "alie", "selection": "random",
                    "schedule": {"kind": "static", "q": 2}},
            description="DETOX median-of-means under random-selection ALIE",
        ),
        _spec(
            "detox-multikrum-revgrad-dropout",
            _FRC,
            {"kind": "detox", "aggregator": "multi_krum",
             "aggregator_params": {"num_byzantine": 1}},
            attack={"name": "reversed_gradient", "params": {"scale": 100.0},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[{"kind": "dropout", "params": {"probability": 0.1, "down_for": 1}}],
            description="DETOX Multi-Krum with reversed gradient and churn",
        ),
        _spec(
            "detox-signsgd-constant-rotating",
            _FRC,
            {"kind": "detox", "aggregator": "signsgd"},
            attack={"name": "constant", "params": {"value": -1.0},
                    "selection": "rotating",
                    "schedule": {"kind": "rotating", "q": 3, "period": 1, "stride": 1}},
            description="DETOX signSGD against a rotating constant attack",
        ),
        # -- DRACO / FRC ----------------------------------------------------
        _spec(
            "draco-clean-stragglers",
            _FRC,
            {"kind": "draco"},
            faults=[{"kind": "stragglers",
                     "params": {"count": 4, "delay_model": "exponential", "delay": 0.4}}],
            description="DRACO exact recovery, perturbed only by stragglers",
        ),
        _spec(
            "draco-constant-q1",
            _FRC,
            {"kind": "draco"},
            attack={"name": "constant", "params": {"value": 5.0},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 1}},
            description="DRACO at its bound r=3 >= 2q+1 with q=1",
        ),
        # -- Vanilla baseline (K=15, no redundancy) -------------------------
        _spec(
            "vanilla-median-alie",
            _BASELINE,
            {"kind": "vanilla", "aggregator": "median"},
            attack={"name": "alie", "selection": "random",
                    "schedule": {"kind": "static", "q": 2}},
            description="No-redundancy coordinate-median baseline under ALIE",
        ),
        _spec(
            "vanilla-multikrum-revgrad-dropout",
            _BASELINE,
            {"kind": "vanilla", "aggregator": "multi_krum",
             "aggregator_params": {"num_byzantine": 2}},
            attack={"name": "reversed_gradient", "params": {"scale": 100.0},
                    "selection": "random",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[{"kind": "dropout", "params": {"probability": 0.1}}],
            description="Baseline Multi-Krum with churn on top of the attack",
        ),
        _spec(
            "vanilla-mean-sign-compression",
            _BASELINE,
            {"kind": "vanilla", "aggregator": "mean"},
            compression={"name": "sign", "params": {}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 2, "delay_model": "fixed", "delay": 0.25}}],
            description="Unattacked mean baseline with 1-bit sign uplinks",
        ),
        # -- Event-driven async runtime (deadline / quorum) -----------------
        _spec(
            "mols-async-deadline-stragglers",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            faults=[{"kind": "stragglers",
                     "params": {"count": 3, "delay_model": "exponential", "delay": 0.5}}],
            runtime={"deadline": 0.4},
            description="Event-driven PS abandons straggler messages at a 0.4s deadline",
        ),
        _spec(
            "mols-async-quorum",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 3, "delay_model": "exponential", "delay": 0.5}}],
            runtime={"quorum": 2},
            description="Files close at 2 of 3 arrived copies; straggler copies reject as late",
        ),
        _spec(
            "ramanujan-async-quorum-partial",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 5, "delay_model": "exponential", "delay": 0.5}}],
            runtime={"quorum": 3, "partial": True},
            description="K=25 quorum-3 rounds voting only over the arrived copies",
        ),
        _spec(
            "detox-async-deadline-quorum",
            _FRC,
            {"kind": "detox", "aggregator": "median_of_means",
             "aggregator_params": {"num_groups": 3}},
            attack={"name": "alie", "selection": "random",
                    "schedule": {"kind": "static", "q": 2}},
            faults=[{"kind": "dropout", "params": {"probability": 0.15, "down_for": 2}},
                    {"kind": "stragglers",
                     "params": {"count": 3, "delay_model": "exponential", "delay": 0.5}}],
            runtime={"deadline": 0.45, "quorum": 2},
            description="DETOX groups close at quorum 2 under churn, 0.45s deadline backstop",
        ),
        _spec(
            "vanilla-async-deadline-partial",
            _BASELINE,
            {"kind": "vanilla", "aggregator": "median"},
            faults=[{"kind": "stragglers",
                     "params": {"count": 4, "delay_model": "exponential", "delay": 0.5}}],
            runtime={"deadline": 0.4, "partial": True},
            description="Baseline median over only the workers that beat the deadline",
        ),
        # -- Hierarchical two-level aggregation -----------------------------
        _spec(
            "mols-hier-groups3-alie",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            topology={"groups": 3, "q_group": 1},
            description="Two-level ByzShield: 3 worker groups, q_group=1 budget, ALIE",
        ),
        _spec(
            "ramanujan-hier-groups5-revgrad",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "reversed_gradient", "params": {"scale": 100.0},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            topology={"groups": 5, "q_group": 1},
            description="K=25 hierarchical rounds: 5 groups of 5 under reversed gradient",
        ),
        _spec(
            "ramanujan-hier-async-group-quorum",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 5, "delay_model": "exponential", "delay": 0.5}}],
            runtime={"quorum": 2, "partial": True},
            topology={"groups": 3, "q_group": 1},
            description="Group-level quorum close: a group seals its share of a file at 2 copies and rejects the rest as late",
        ),
        _spec(
            "detox-hier-blockwise",
            _FRC,
            {"kind": "detox", "aggregator": "median_of_means",
             "aggregator_params": {"num_groups": 3},
             "block_size": 4},
            attack={"name": "alie", "selection": "random",
                    "schedule": {"kind": "static", "q": 2}},
            topology={"groups": 5},
            description="DETOX over 5 groups with coordinate-blockwise (block=4) vote kernels",
        ),
        # -- Adversary zoo (adaptive / collusive families) ------------------
        _spec(
            "mols-ipm-omniscient",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "inner_product", "params": {"epsilon": 0.5},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            description="Inner-product manipulation: collusive -eps*mean payload",
        ),
        _spec(
            "mols-signflip-rotating",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "sign_flip", "params": {"magnitude": 2.0},
                    "selection": "rotating",
                    "schedule": {"kind": "rotating", "q": 3, "period": 1, "stride": 2}},
            description="Sign-flip collusion from a rotating compromised window",
        ),
        _spec(
            "mols-fang-median",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "fang", "params": {"defense": "median"},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 4}},
            description="Fang adaptive attack optimized against the median defense it faces",
        ),
        _spec(
            "ramanujan-fang-trimmed-mean",
            _RAMANUJAN,
            {"kind": "byzshield", "aggregator": "trimmed_mean",
             "aggregator_params": {"trim": 3}},
            attack={"name": "fang", "params": {"defense": "trimmed_mean", "trim": 3},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 5}},
            description="Aggregator-aware Fang payload vs the K=25 trimmed-mean stage",
        ),
        _spec(
            "vanilla-fang-krum",
            _BASELINE,
            {"kind": "vanilla", "aggregator": "krum",
             "aggregator_params": {"num_byzantine": 2}},
            attack={"name": "fang", "params": {"defense": "krum"},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            description="Fang Krum attack: largest lambda whose payload Krum still selects",
        ),
        _spec(
            "mols-minmax-unit",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "min_max", "params": {"direction": "unit"},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            description="AGR-agnostic min-max: furthest payload within the honest spread",
        ),
        _spec(
            "ramanujan-minsum-std",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "min_sum", "params": {"direction": "std"},
                    "selection": "omniscient",
                    "schedule": {"kind": "ramping", "q": 1, "q_end": 5, "period": 1}},
            description="Min-sum deviation along the honest std axis, q ramping 1 -> 5",
        ),
        # -- Non-IID partitions (label / quantity skew) ---------------------
        _spec(
            "mols-alie-dirichlet03",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "alie", "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 2}},
            data={"kind": "gaussian", "num_train": 300, "num_test": 100,
                  "num_classes": 4, "dim": 12, "separation": 3.0,
                  "partition": {"kind": "dirichlet", "alpha": 0.3}},
            description="Omniscient ALIE over strongly label-skewed (alpha=0.3) file shards",
        ),
        _spec(
            "ramanujan-signflip-quantity-skew",
            _RAMANUJAN,
            _BYZSHIELD_MEDIAN,
            attack={"name": "sign_flip", "params": {"magnitude": 2.0},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            data={"kind": "gaussian", "num_train": 300, "num_test": 100,
                  "num_classes": 4, "dim": 12, "separation": 3.0,
                  "partition": {"kind": "quantity_skew", "alpha": 0.5}},
            description="Sign-flip collusion while file shard sizes follow a Dirichlet draw",
        ),
        _spec(
            "mols-fang-dirichlet-faults",
            _MOLS,
            _BYZSHIELD_MEDIAN,
            attack={"name": "fang", "params": {"defense": "median"},
                    "selection": "omniscient",
                    "schedule": {"kind": "static", "q": 3}},
            faults=[{"kind": "stragglers",
                     "params": {"count": 2, "delay_model": "fixed", "delay": 0.3}},
                    {"kind": "dropout", "params": {"probability": 0.1}}],
            data={"kind": "gaussian", "num_train": 300, "num_test": 100,
                  "num_classes": 4, "dim": 12, "separation": 3.0,
                  "partition": {"kind": "dirichlet", "alpha": 0.5}},
            description="Adaptive Fang attack on label-skewed shards under stragglers and churn",
        ),
    ]
    catalog: dict[str, dict[str, Any]] = {}
    for entry in entries:
        if entry["name"] in catalog:  # pragma: no cover - authoring guard
            raise ConfigurationError(f"duplicate scenario name {entry['name']!r}")
        catalog[entry["name"]] = entry
    return catalog


_CATALOG = _catalog()


def scenario_names() -> list[str]:
    """Sorted names of the golden scenario matrix."""
    return sorted(_CATALOG)


def get_scenario(name: str) -> ScenarioSpec:
    """Build the named scenario's spec (a fresh instance each call)."""
    if name not in _CATALOG:
        raise ConfigurationError(
            f"unknown scenario {name!r}; available: {scenario_names()}"
        )
    return ScenarioSpec.from_dict(_CATALOG[name])


def all_scenarios() -> list[ScenarioSpec]:
    """Every catalog scenario, in name order."""
    return [get_scenario(name) for name in scenario_names()]
