"""Exception hierarchy for the ByzShield reproduction library.

All library-raised errors derive from :class:`ReproError` so that callers can
catch everything coming out of the package with a single ``except`` clause
while still being able to discriminate configuration problems from runtime
failures.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class ConfigurationError(ReproError, ValueError):
    """A scheme / pipeline / trainer was constructed with invalid parameters.

    Examples include a replication factor that is even (majority voting needs
    an odd ``r``), a MOLS degree that is not prime, or a Byzantine count that
    exceeds the number of workers.
    """


class AssignmentError(ReproError):
    """The worker-to-file assignment graph violates a structural invariant."""


class AggregationError(ReproError):
    """A robust aggregator cannot produce an output for the given votes.

    Raised for instance when Bulyan or Multi-Krum receive fewer candidate
    gradients than their breakdown-point formulas require.
    """


class AttackError(ReproError):
    """An adversary was asked to do something inconsistent with its model."""


class TrainingError(ReproError):
    """The distributed training loop reached an unrecoverable state."""


class DataError(ReproError):
    """A dataset or batch request was malformed."""
