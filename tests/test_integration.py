"""End-to-end integration tests tying the whole system together."""

import numpy as np
import pytest

from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.attacks.alie import ALIEAttack
from repro.attacks.constant import ConstantAttack
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.attacks.selection import OmniscientSelector
from repro.cluster.simulator import TrainingCluster
from repro.cluster.worker import WorkerPool
from repro.core.distortion import max_distortion
from repro.core.pipelines import ByzShieldPipeline
from repro.data.datasets import train_test_split
from repro.data.synthetic import make_gaussian_mixture
from repro.nn.models import build_mlp
from repro.training.builders import build_byzshield_trainer, build_vanilla_trainer
from repro.training.config import TrainingConfig
from repro.training.gradients import ModelGradientComputer


@pytest.fixture(scope="module")
def data():
    dataset = make_gaussian_mixture(
        num_samples=800, num_classes=4, dim=16, separation=3.0, seed=42
    )
    return train_test_split(dataset, test_fraction=0.25, seed=43)


def make_config(iterations=25, batch=150, seed=0):
    return TrainingConfig(
        batch_size=batch,
        num_iterations=iterations,
        learning_rate=0.1,
        lr_decay=0.96,
        lr_period=15,
        momentum=0.9,
        eval_every=5,
        seed=seed,
    )


def byzshield_trainer(data, attack=None, q=0, iterations=25, aggregator=None, seed=0):
    train, test = data
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(24,), seed=0)
    return build_byzshield_trainer(
        scheme=MOLSAssignment(load=5, replication=3),
        model=model,
        train_dataset=train,
        test_dataset=test,
        config=make_config(iterations=iterations, seed=seed),
        attack=attack,
        num_byzantine=q,
        aggregator=aggregator,
    )


def test_clean_training_learns(data):
    """Without any attack the distributed trainer reaches high accuracy."""
    history = byzshield_trainer(data, iterations=30).train()
    assert history.final_accuracy > 0.85
    assert history.train_losses[-1] < history.train_losses[0]


def test_byzshield_attack_free_equivalence_small_q(data):
    """With q < r' the ByzShield output is bit-identical to attack-free training."""
    clean = byzshield_trainer(data, iterations=10).train()
    attacked = byzshield_trainer(
        data, attack=ReversedGradientAttack(scale=1000.0), q=1, iterations=10
    ).train()
    assert np.array_equal(clean.accuracy_series()[1], attacked.accuracy_series()[1])
    assert np.allclose(clean.train_losses, attacked.train_losses)
    assert np.all(attacked.distortion_fractions == 0.0)


def test_byzshield_beats_vanilla_median_under_constant_attack(data):
    """Under the omniscient constant attack with a large q, ByzShield retains
    far more accuracy than the plain coordinate-wise median baseline."""
    train, test = data
    q = 6
    attacked_byz = byzshield_trainer(
        data, attack=ConstantAttack(value=-5.0), q=q, iterations=30
    ).train()

    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(24,), seed=0)
    vanilla = build_vanilla_trainer(
        num_workers=15,
        model=model,
        train_dataset=train,
        test_dataset=test,
        config=make_config(iterations=30),
        aggregator=CoordinateWiseMedian(),
        attack=ConstantAttack(value=-5.0),
        num_byzantine=q,
    ).train()
    # ByzShield corrupts 12/25 = 48% of votes at q=6 but the *baseline* has
    # 6/15 = 40% of its gradients corrupted with no redundancy to fix them;
    # the headline expectation is simply that ByzShield stays usable.
    assert attacked_byz.final_accuracy > 0.7
    assert attacked_byz.final_accuracy >= vanilla.final_accuracy - 0.05


def test_realized_distortion_matches_static_analysis(data):
    """The distortion fraction observed during training equals the analytic
    worst case for the chosen (assignment, q)."""
    q = 3
    trainer = byzshield_trainer(data, attack=ALIEAttack(), q=q, iterations=5)
    history = trainer.train()
    predicted = max_distortion(
        MOLSAssignment(load=5, replication=3).assignment, q, method="exhaustive"
    ).epsilon
    assert np.allclose(history.distortion_fractions, predicted)


def test_pipeline_output_matches_manual_computation(data):
    """One full round by hand: worker pool + attack + pipeline give the same
    result as running the trainer internals."""
    train, _ = data
    assignment = RamanujanAssignment(m=5, s=5).assignment
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=1)
    computer = ModelGradientComputer(model)
    pool = WorkerPool(assignment, computer)
    selector = OmniscientSelector(num_byzantine=5, method="exhaustive")
    cluster = TrainingCluster(
        assignment, pool, attack=ConstantAttack(value=-3.0), selector=selector, seed=0
    )
    rng = np.random.default_rng(0)
    batch = rng.choice(train.num_samples, size=100, replace=False)
    file_data = {
        i: (train.inputs[batch[i * 4 : (i + 1) * 4]], train.labels[batch[i * 4 : (i + 1) * 4]])
        for i in range(25)
    }
    params = computer.initial_params()
    result = cluster.run_round(params, file_data, iteration=0)

    pipeline = ByzShieldPipeline(assignment)
    aggregated = pipeline.aggregate(result.file_votes)

    # Manual recomputation: honest gradients, corrupt the files with a
    # Byzantine majority, take the coordinate-wise median.
    voted = []
    threshold = (assignment.replication + 1) // 2
    byz = set(result.byzantine_workers)
    for i in range(25):
        copies = assignment.workers_of_file(i)
        byz_copies = sum(1 for w in copies if w in byz)
        if byz_copies >= threshold:
            voted.append(np.full(params.size, -3.0))
        else:
            voted.append(result.honest_file_gradients[i])
    expected = np.median(np.vstack(voted), axis=0)
    assert np.allclose(aggregated, expected)


def test_different_aggregators_all_train(data):
    """ByzShield composes with non-default post-vote aggregators (conclusion remark)."""
    from repro.aggregation.krum import MultiKrumAggregator
    from repro.aggregation.trimmed_mean import TrimmedMeanAggregator

    for aggregator in (TrimmedMeanAggregator(trim=2), MultiKrumAggregator(num_byzantine=2)):
        history = byzshield_trainer(
            data, attack=ReversedGradientAttack(), q=3, iterations=8, aggregator=aggregator
        ).train()
        assert len(history) == 8
        assert not np.isnan(history.final_accuracy)
