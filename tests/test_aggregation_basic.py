"""Tests for mean, median, trimmed mean and median-of-means aggregators."""

import numpy as np
import pytest

from repro.aggregation.mean import MeanAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.aggregation.median_of_means import MedianOfMeansAggregator
from repro.aggregation.trimmed_mean import TrimmedMeanAggregator
from repro.exceptions import AggregationError


def votes_with_outlier(num_honest=8, dim=5, outlier_value=1e6, seed=0):
    rng = np.random.default_rng(seed)
    honest = rng.standard_normal((num_honest, dim))
    outlier = np.full((1, dim), outlier_value)
    return np.vstack([honest, outlier]), honest


def test_mean_is_average():
    votes = np.array([[1.0, 2.0], [3.0, 4.0]])
    assert np.allclose(MeanAggregator()(votes), [2.0, 3.0])


def test_mean_is_not_robust():
    votes, honest = votes_with_outlier()
    result = MeanAggregator()(votes)
    assert np.linalg.norm(result - honest.mean(axis=0)) > 1e3


def test_median_matches_numpy():
    rng = np.random.default_rng(1)
    votes = rng.standard_normal((7, 10))
    assert np.allclose(CoordinateWiseMedian()(votes), np.median(votes, axis=0))


def test_median_is_robust_to_single_outlier():
    votes, honest = votes_with_outlier()
    result = CoordinateWiseMedian()(votes)
    assert np.linalg.norm(result - np.median(honest, axis=0)) < 1.0


def test_median_accepts_list_of_vectors():
    result = CoordinateWiseMedian()([np.array([1.0, 5.0]), np.array([3.0, 1.0]), np.array([2.0, 3.0])])
    assert np.allclose(result, [2.0, 3.0])


def test_aggregator_rejects_bad_shapes():
    with pytest.raises(AggregationError):
        CoordinateWiseMedian()(np.zeros((2, 3, 4)))
    with pytest.raises(AggregationError):
        CoordinateWiseMedian()(np.zeros((0, 3)))


def test_aggregator_handles_non_finite_votes():
    votes = np.array([[1.0, 2.0], [np.nan, np.inf], [1.0, 2.0]])
    result = CoordinateWiseMedian()(votes)
    assert np.all(np.isfinite(result))
    assert np.allclose(result, [1.0, 2.0])


def test_trimmed_mean_removes_extremes():
    votes = np.array([[0.0], [1.0], [2.0], [3.0], [100.0]])
    result = TrimmedMeanAggregator(trim=1)(votes)
    assert result[0] == pytest.approx(2.0)


def test_trimmed_mean_zero_trim_equals_mean():
    rng = np.random.default_rng(2)
    votes = rng.standard_normal((6, 4))
    assert np.allclose(TrimmedMeanAggregator(trim=0)(votes), votes.mean(axis=0))


def test_trimmed_mean_requires_enough_votes():
    with pytest.raises(AggregationError):
        TrimmedMeanAggregator(trim=2)(np.zeros((4, 3)))
    with pytest.raises(AggregationError):
        TrimmedMeanAggregator(trim=-1)
    assert TrimmedMeanAggregator(trim=2).minimum_votes(2) == 5


def test_trimmed_mean_is_robust():
    votes, honest = votes_with_outlier()
    result = TrimmedMeanAggregator(trim=1)(votes)
    assert np.linalg.norm(result - honest.mean(axis=0)) < 2.0


def test_median_of_means_single_group_is_mean():
    rng = np.random.default_rng(3)
    votes = rng.standard_normal((6, 4))
    assert np.allclose(MedianOfMeansAggregator(num_groups=1)(votes), votes.mean(axis=0))


def test_median_of_means_as_many_groups_as_votes_is_median():
    rng = np.random.default_rng(4)
    votes = rng.standard_normal((5, 4))
    result = MedianOfMeansAggregator(num_groups=5)(votes)
    assert np.allclose(result, np.median(votes, axis=0))


def test_median_of_means_more_groups_than_votes_degrades_gracefully():
    votes = np.array([[1.0], [3.0]])
    result = MedianOfMeansAggregator(num_groups=10)(votes)
    assert result[0] == pytest.approx(2.0)


def test_median_of_means_is_robust_with_enough_groups():
    votes, honest = votes_with_outlier(num_honest=11)
    result = MedianOfMeansAggregator(num_groups=4)(votes)
    assert np.linalg.norm(result - honest.mean(axis=0)) < 3.0
