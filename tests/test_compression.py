"""Tests for the gradient-compression extension (future-work direction)."""

import numpy as np
import pytest

from repro.compression import (
    ErrorFeedback,
    IdentityCompressor,
    QuantizedCompressor,
    RandomKCompressor,
    SignCompressor,
    TopKCompressor,
)
from repro.exceptions import ConfigurationError


def gradient(seed=0, dim=256):
    return np.random.default_rng(seed).standard_normal(dim)


def test_identity_compressor_is_lossless():
    g = gradient()
    out = IdentityCompressor()(g)
    assert np.array_equal(out.vector, g)
    assert out.compression_ratio == pytest.approx(1.0)


def test_empty_gradient_rejected():
    with pytest.raises(ConfigurationError):
        SignCompressor()(np.zeros(0))


def test_sign_compressor_properties():
    g = gradient()
    out = SignCompressor()(g)
    # Reconstruction has the right signs and a single magnitude.
    assert np.array_equal(np.sign(out.vector), np.sign(g))
    magnitudes = np.unique(np.abs(out.vector))
    assert magnitudes.size == 1
    assert magnitudes[0] == pytest.approx(np.abs(g).mean())
    # Roughly 64x fewer bits than dense float64.
    assert out.compression_ratio > 30


def test_topk_keeps_largest_coordinates():
    g = np.array([0.1, -5.0, 0.2, 3.0, -0.05])
    out = TopKCompressor(fraction=0.4)(g)
    assert np.count_nonzero(out.vector) == 2
    assert out.vector[1] == -5.0 and out.vector[3] == 3.0
    assert out.compression_ratio > 1.0


def test_topk_fraction_validation():
    with pytest.raises(ConfigurationError):
        TopKCompressor(fraction=0.0)
    with pytest.raises(ConfigurationError):
        TopKCompressor(fraction=1.5)


def test_topk_always_keeps_at_least_one():
    out = TopKCompressor(fraction=0.001)(gradient(dim=10))
    assert np.count_nonzero(out.vector) == 1


def test_randomk_is_unbiased_in_expectation():
    g = gradient(seed=1, dim=64)
    compressor = RandomKCompressor(fraction=0.25, seed=0)
    estimates = np.mean([compressor(g).vector for _ in range(3000)], axis=0)
    # The estimator is unbiased; with 3000 deterministic draws the Monte-Carlo
    # error per coordinate is ~0.1, so check both the worst coordinate and the
    # average deviation.
    assert np.max(np.abs(estimates - g)) < 0.4
    assert np.mean(np.abs(estimates - g)) < 0.1


def test_randomk_sparsity_and_validation():
    out = RandomKCompressor(fraction=0.25, seed=0)(gradient(dim=100))
    assert np.count_nonzero(out.vector) == 25
    with pytest.raises(ConfigurationError):
        RandomKCompressor(fraction=-0.1)


def test_quantized_compressor_bounded_error_and_unbiasedness():
    g = gradient(seed=2, dim=128)
    compressor = QuantizedCompressor(bits_per_coordinate=8, seed=0)
    out = compressor(g)
    levels = 2**8 - 1
    max_error = np.max(np.abs(g)) / levels
    assert np.all(np.abs(out.vector - g) <= max_error + 1e-12)
    # Stochastic rounding is unbiased.
    mean_estimate = np.mean(
        [QuantizedCompressor(bits_per_coordinate=2, seed=s)(g).vector for s in range(500)],
        axis=0,
    )
    assert np.allclose(mean_estimate, g, atol=0.05 * np.max(np.abs(g)))


def test_quantized_zero_gradient_and_validation():
    out = QuantizedCompressor(bits_per_coordinate=4)(np.zeros(8))
    assert np.array_equal(out.vector, np.zeros(8))
    with pytest.raises(ConfigurationError):
        QuantizedCompressor(bits_per_coordinate=0)
    with pytest.raises(ConfigurationError):
        QuantizedCompressor(bits_per_coordinate=32)


def test_quantized_fewer_bits_than_dense():
    out = QuantizedCompressor(bits_per_coordinate=4)(gradient())
    assert out.compression_ratio > 10


def test_error_feedback_accumulates_residual():
    compressor = TopKCompressor(fraction=0.5)
    feedback = ErrorFeedback(compressor)
    g = np.array([1.0, 0.1, -2.0, 0.2])
    first = feedback.compress("worker-0", g)
    residual = feedback.residual("worker-0")
    # The dropped coordinates live in the residual.
    assert np.allclose(first.vector + residual, g)
    # The residual is added back on the next round.
    second = feedback.compress("worker-0", g)
    assert np.allclose(
        second.vector + feedback.residual("worker-0"), g + residual
    )


def test_error_feedback_per_sender_isolation_and_reset():
    feedback = ErrorFeedback(SignCompressor())
    feedback.compress("a", gradient(seed=3, dim=16))
    assert feedback.residual("b") is None
    feedback.compress("b", gradient(seed=4, dim=16))
    assert feedback.residual("a") is not None
    feedback.reset()
    assert feedback.residual("a") is None


def test_error_feedback_recovers_sign_sgd_convergence():
    """EF-SGD sanity: compressed descent on a quadratic still converges."""
    rng = np.random.default_rng(0)
    target = rng.standard_normal(32)
    x_plain = np.zeros(32)
    x_ef = np.zeros(32)
    feedback = ErrorFeedback(TopKCompressor(fraction=0.125))
    for _ in range(400):
        grad_plain = x_plain - target
        x_plain -= 0.1 * TopKCompressor(fraction=0.125)(grad_plain).vector
        grad_ef = x_ef - target
        x_ef -= 0.1 * feedback.compress("w", grad_ef).vector
    # With error feedback the iterate reaches the target; without it, top-k
    # keeps ignoring the small coordinates and stalls further away.
    assert np.linalg.norm(x_ef - target) < 0.05
    assert np.linalg.norm(x_ef - target) <= np.linalg.norm(x_plain - target) + 1e-9


def test_error_feedback_requires_compressor():
    with pytest.raises(ConfigurationError):
        ErrorFeedback("not a compressor")  # type: ignore[arg-type]
