"""Tests for the training harness: config, history, gradient computer, trainer, builders."""

import numpy as np
import pytest

from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.mols import MOLSAssignment
from repro.attacks.constant import ConstantAttack
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.models import build_mlp
from repro.training.builders import (
    build_byzshield_trainer,
    build_detox_trainer,
    build_draco_trainer,
    build_vanilla_trainer,
    make_selector,
)
from repro.training.config import TrainingConfig
from repro.training.gradients import ModelGradientComputer
from repro.training.history import IterationRecord, TrainingHistory


# --------------------------------------------------------------------------- #
# Config
# --------------------------------------------------------------------------- #
def test_config_defaults_valid():
    config = TrainingConfig()
    assert config.batch_size > 0


@pytest.mark.parametrize(
    "kwargs",
    [
        {"batch_size": 0},
        {"num_iterations": 0},
        {"learning_rate": 0.0},
        {"lr_decay": 0.0},
        {"lr_period": 0},
        {"momentum": 1.0},
        {"weight_decay": -0.1},
        {"eval_every": 0},
    ],
)
def test_config_validation(kwargs):
    with pytest.raises(ConfigurationError):
        TrainingConfig(**kwargs)


# --------------------------------------------------------------------------- #
# History
# --------------------------------------------------------------------------- #
def test_history_series_and_summary():
    history = TrainingHistory(label="test")
    history.append(IterationRecord(0, train_loss=1.0, distortion_fraction=0.1))
    history.append(
        IterationRecord(1, train_loss=0.8, distortion_fraction=0.1, test_accuracy=0.5, test_loss=1.2)
    )
    history.append(
        IterationRecord(2, train_loss=0.6, distortion_fraction=0.2, test_accuracy=0.7, test_loss=1.0)
    )
    assert len(history) == 3
    iterations, accuracies = history.accuracy_series()
    assert list(iterations) == [1, 2]
    assert list(accuracies) == [0.5, 0.7]
    assert history.final_accuracy == 0.7
    assert history.best_accuracy == 0.7
    assert history.mean_accuracy() == pytest.approx(0.6)
    assert history.mean_accuracy(last_k=1) == pytest.approx(0.7)
    summary = history.summary()
    assert summary["iterations"] == 3
    assert summary["final_accuracy"] == 0.7
    assert np.allclose(history.train_losses, [1.0, 0.8, 0.6])


def test_history_empty():
    history = TrainingHistory()
    assert np.isnan(history.final_accuracy)
    assert np.isnan(history.mean_accuracy())
    assert history.summary()["iterations"] == 0


def test_history_rejects_out_of_order_records():
    history = TrainingHistory()
    history.append(IterationRecord(3, 1.0, 0.0))
    with pytest.raises(TrainingError):
        history.append(IterationRecord(3, 1.0, 0.0))


# --------------------------------------------------------------------------- #
# Gradient computer
# --------------------------------------------------------------------------- #
def test_gradient_computer(small_classification_data):
    train, _ = small_classification_data
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    computer = ModelGradientComputer(model)
    params = computer.initial_params()
    gradient, loss = computer(params, train.inputs[:16], train.labels[:16])
    assert gradient.shape == (computer.dim,)
    assert np.isfinite(loss)
    with pytest.raises(TrainingError):
        computer(params, train.inputs[:0], train.labels[:0])


# --------------------------------------------------------------------------- #
# Selectors / builders
# --------------------------------------------------------------------------- #
def test_make_selector():
    assert make_selector("omniscient", 0) is None
    assert make_selector("random", 3) is not None
    assert make_selector("omniscient", 3) is not None
    with pytest.raises(ConfigurationError):
        make_selector("psychic", 3)


def _small_config(num_files_multiple=75):
    return TrainingConfig(
        batch_size=num_files_multiple, num_iterations=4, learning_rate=0.05, eval_every=2, seed=0
    )


def test_build_byzshield_trainer_and_train(small_classification_data):
    train, test = small_classification_data
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    trainer = build_byzshield_trainer(
        scheme=MOLSAssignment(load=5, replication=3),
        model=model,
        train_dataset=train,
        test_dataset=test,
        config=_small_config(),
        attack=ConstantAttack(),
        num_byzantine=2,
    )
    history = trainer.train()
    assert len(history) == 4
    assert not np.isnan(history.final_accuracy)
    # With q=2 the omniscient adversary can corrupt exactly one of 25 files.
    assert np.allclose(history.distortion_fractions, 1 / 25)


def test_build_byzshield_trainer_no_attack(small_classification_data):
    train, test = small_classification_data
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    trainer = build_byzshield_trainer(
        scheme=MOLSAssignment(load=5, replication=3),
        model=model,
        train_dataset=train,
        test_dataset=test,
        config=_small_config(),
    )
    history = trainer.train()
    assert np.all(history.distortion_fractions == 0.0)


def test_builder_attack_consistency_checks(small_classification_data):
    train, test = small_classification_data
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    with pytest.raises(ConfigurationError):
        build_byzshield_trainer(
            scheme=MOLSAssignment(load=5, replication=3),
            model=model,
            train_dataset=train,
            test_dataset=test,
            config=_small_config(),
            attack=ConstantAttack(),
            num_byzantine=0,
        )
    with pytest.raises(ConfigurationError):
        build_vanilla_trainer(
            num_workers=15,
            model=model,
            train_dataset=train,
            test_dataset=test,
            config=_small_config(),
            aggregator=CoordinateWiseMedian(),
            num_byzantine=3,
        )


def test_batch_size_must_divide_files(small_classification_data):
    train, test = small_classification_data
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    bad_config = TrainingConfig(batch_size=77, num_iterations=2, seed=0)
    with pytest.raises(ConfigurationError):
        build_byzshield_trainer(
            scheme=MOLSAssignment(load=5, replication=3),
            model=model,
            train_dataset=train,
            test_dataset=test,
            config=bad_config,
        )


def test_build_detox_and_vanilla_trainers(small_classification_data):
    train, test = small_classification_data
    config = _small_config()
    model_a = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    detox = build_detox_trainer(
        num_workers=15,
        replication=3,
        model=model_a,
        train_dataset=train,
        test_dataset=test,
        config=config,
        aggregator=CoordinateWiseMedian(),
        attack=ReversedGradientAttack(),
        num_byzantine=2,
    )
    history = detox.train()
    assert len(history) == 4

    model_b = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    vanilla = build_vanilla_trainer(
        num_workers=15,
        model=model_b,
        train_dataset=train,
        test_dataset=test,
        config=config,
        aggregator=CoordinateWiseMedian(),
        attack=ReversedGradientAttack(),
        num_byzantine=2,
    )
    history = vanilla.train()
    # Baseline distortion fraction is q / K.
    assert np.allclose(history.distortion_fractions, 2 / 15)


def test_build_draco_trainer_applicability(small_classification_data):
    train, test = small_classification_data
    config = _small_config()
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    draco = build_draco_trainer(
        num_workers=15,
        replication=3,
        model=model,
        train_dataset=train,
        test_dataset=test,
        config=config,
        attack=ConstantAttack(),
        num_byzantine=1,
    )
    history = draco.train()
    assert len(history) == 4

    model_b = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
    violating = build_draco_trainer(
        num_workers=15,
        replication=3,
        model=model_b,
        train_dataset=train,
        test_dataset=test,
        config=config,
        attack=ConstantAttack(),
        num_byzantine=2,
    )
    from repro.exceptions import AggregationError

    with pytest.raises(AggregationError):
        violating.train()


def test_trainer_determinism(small_classification_data):
    """Same seed, same scheme, same attack => identical accuracy curves."""
    train, test = small_classification_data

    def run():
        model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(8,), seed=0)
        trainer = build_byzshield_trainer(
            scheme=MOLSAssignment(load=5, replication=3),
            model=model,
            train_dataset=train,
            test_dataset=test,
            config=_small_config(),
            attack=ConstantAttack(),
            num_byzantine=2,
        )
        return trainer.train()

    a, b = run(), run()
    assert np.array_equal(a.accuracy_series()[1], b.accuracy_series()[1])
    assert np.array_equal(a.train_losses, b.train_losses)
