"""Equivalence property tests: the VoteTensor path vs the legacy dict path.

The refactored round engine must be a pure data-layout change: for every
assignment scheme, registered attack, tolerance and pipeline, the tensor path
has to produce *bit-identical* votes and aggregates to the legacy
dict-of-dicts path.  These tests pin that contract at three levels: the
vectorized majority kernel vs the pure-Python reference implementations, one
simulated round (``run_round`` vs ``run_round_tensor``), and a full training
run (``use_tensor_path`` on vs off).
"""

import numpy as np
import pytest

from repro.aggregation import majority as majority_module
from repro.aggregation.majority import majority_vote_tensor
from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.attacks.registry import available_attacks, create_attack
from repro.attacks.selection import FixedSelector, RandomSelector
from repro.cluster.simulator import TrainingCluster
from repro.cluster.worker import WorkerPool
from repro.core.pipelines import (
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    VanillaPipeline,
)
from repro.core.vote_tensor import VoteTensor

DIM = 6


def gradient_fn(params, inputs, labels):
    """Deterministic per-file oracle: gradient depends on the file's data."""
    target = np.full(DIM, float(inputs.sum()) / (1.0 + abs(float(labels.sum()))))
    gradient = params - target
    return gradient, 0.5 * float(np.sum(gradient**2))


def make_file_data(num_files, seed=0):
    rng = np.random.default_rng(seed)
    return {
        i: (rng.standard_normal((3, 4)), rng.integers(0, 3, 3))
        for i in range(num_files)
    }


SCHEMES = {
    "mols": lambda: MOLSAssignment(load=5, replication=3).assignment,
    "ramanujan": lambda: RamanujanAssignment(m=3, s=5).assignment,
    "frc": lambda: FRCAssignment(num_workers=15, replication=3).assignment,
    "baseline": lambda: BaselineAssignment(num_workers=10).assignment,
}


def pipelines_for(name, assignment, tolerance):
    if name in ("mols", "ramanujan"):
        return [ByzShieldPipeline(assignment, vote_tolerance=tolerance)]
    if name == "frc":
        return [
            DetoxPipeline(assignment, vote_tolerance=tolerance),
            DracoPipeline(assignment, num_byzantine=1, vote_tolerance=tolerance),
        ]
    return [VanillaPipeline(assignment, aggregator=CoordinateWiseMedian())]


def run_both_paths(assignment, attack, selector, seed=11):
    def build():
        pool = WorkerPool(assignment, gradient_fn)
        return TrainingCluster(
            assignment, pool, attack=attack, selector=selector, seed=seed
        )

    data = make_file_data(assignment.num_files, seed=seed)
    params = np.linspace(-1.0, 1.0, DIM)
    legacy = build().run_round(params, data, iteration=2)
    tensor = build().run_round_tensor(params, data, iteration=2)
    return legacy, tensor


# --------------------------------------------------------------------------- #
# Kernel vs reference implementations
# --------------------------------------------------------------------------- #
def test_kernel_matches_reference_on_random_tensors():
    rng = np.random.default_rng(42)
    for trial in range(150):
        f, r, d = rng.integers(1, 7), rng.integers(1, 7), rng.integers(1, 9)
        values = rng.integers(-2, 3, (f, r, d)).astype(np.float64)
        if trial % 2 == 0:  # plant replicated-copy structure
            values[:, 1:] = values[:, :1]
            for _ in range(rng.integers(0, 5)):
                i, a, b = rng.integers(f), rng.integers(r), rng.integers(r)
                values[i, a] = values[i, b] + rng.integers(0, 2)
        for tolerance in (0.0, 1.5):
            winners, counts = majority_vote_tensor(values, tolerance)
            for i in range(f):
                if tolerance == 0.0:
                    ref_w, ref_c = majority_module._reference_exact_majority(
                        values[i]
                    )
                else:
                    ref_w, ref_c = majority_module._reference_clustered_majority(
                        values[i], tolerance
                    )
                assert np.array_equal(winners[i], ref_w), (trial, tolerance, i)
                assert counts[i] == ref_c, (trial, tolerance, i)


def test_kernel_survives_hash_collisions(monkeypatch):
    """Degenerate hash weights force every slot into one hash bucket; the
    verification step must detect it and fall back without changing results."""
    d = 5
    monkeypatch.setitem(
        majority_module._HASH_WEIGHTS, d, np.zeros(d, dtype=np.uint64)
    )
    rng = np.random.default_rng(3)
    for _ in range(60):
        f, r = rng.integers(1, 6), rng.integers(2, 7)
        values = rng.integers(-1, 2, (f, r, d)).astype(np.float64)
        for tolerance in (0.0, 1.2):
            winners, counts = majority_vote_tensor(values, tolerance)
            for i in range(f):
                if tolerance == 0.0:
                    ref_w, ref_c = majority_module._reference_exact_majority(
                        values[i]
                    )
                else:
                    ref_w, ref_c = majority_module._reference_clustered_majority(
                        values[i], tolerance
                    )
                assert np.array_equal(winners[i], ref_w)
                assert counts[i] == ref_c


def test_kernel_byte_equality_semantics():
    """NaN payloads with equal bits count as equal; -0.0 and +0.0 do not."""
    values = np.zeros((1, 3, 2))
    values[0, 0] = np.nan
    values[0, 1] = np.nan
    values[0, 2] = 1.0
    winners, counts = majority_vote_tensor(values)
    assert counts[0] == 2 and np.isnan(winners[0]).all()

    values = np.zeros((1, 3, 1))
    values[0, 0] = -0.0
    values[0, 1] = 0.0
    values[0, 2] = -0.0
    winners, counts = majority_vote_tensor(values)
    assert counts[0] == 2 and np.signbit(winners[0, 0])


# --------------------------------------------------------------------------- #
# One round: run_round vs run_round_tensor, all schemes x registered attacks
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@pytest.mark.parametrize("attack_name", available_attacks())
def test_round_and_aggregates_identical(scheme, attack_name):
    assignment = SCHEMES[scheme]()
    attack = create_attack(attack_name)
    selector = FixedSelector([0, min(5, assignment.num_workers - 1)])
    legacy, tensor = run_both_paths(assignment, attack, selector)

    assert legacy.byzantine_workers == tensor.byzantine_workers
    assert legacy.distorted_files == tensor.distorted_files
    assert legacy.mean_file_loss == tensor.mean_file_loss
    unpacked = tensor.vote_tensor.to_file_votes()
    for i in range(assignment.num_files):
        assert set(unpacked[i]) == set(legacy.file_votes[i])
        for w in unpacked[i]:
            assert np.array_equal(unpacked[i][w], legacy.file_votes[i][w])

    for tolerance in (0.0, 1e-9, 0.5):
        for pipeline in pipelines_for(scheme, assignment, tolerance):
            dict_result = pipeline.aggregate(legacy.file_votes)
            tensor_result = pipeline.aggregate_tensor(tensor.vote_tensor)
            assert np.array_equal(dict_result, tensor_result), (
                scheme,
                attack_name,
                tolerance,
                pipeline.pipeline_name,
            )


@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_round_identical_under_random_selection(scheme):
    """Stochastic selector + stochastic attack consume the RNG identically."""
    assignment = SCHEMES[scheme]()
    attack = create_attack("gaussian_noise", sigma=3.0)
    selector = RandomSelector(num_byzantine=2)
    legacy, tensor = run_both_paths(assignment, attack, selector, seed=19)
    unpacked = tensor.vote_tensor.to_file_votes()
    for i in range(assignment.num_files):
        for w in unpacked[i]:
            assert np.array_equal(unpacked[i][w], legacy.file_votes[i][w])


def test_tensor_round_result_adapter_matches_legacy(mols_assignment):
    attack = create_attack("constant")
    selector = FixedSelector([0, 5])
    legacy, tensor = run_both_paths(mols_assignment, attack, selector)
    adapted = tensor.to_round_result()
    assert adapted.byzantine_workers == legacy.byzantine_workers
    assert adapted.distorted_files == legacy.distorted_files
    assert adapted.distortion_fraction == legacy.distortion_fraction
    assert len(adapted.messages) == len(legacy.messages)
    by_key = {(m.worker, m.file): m for m in legacy.messages}
    for message in adapted.messages:
        reference = by_key[(message.worker, message.file)]
        assert message.is_byzantine == reference.is_byzantine
        assert np.array_equal(message.gradient, reference.gradient)


def test_byzantine_mask_matches_selection(mols_assignment):
    attack = create_attack("constant")
    selector = FixedSelector([0, 5])
    _, tensor = run_both_paths(mols_assignment, attack, selector)
    mask = tensor.vote_tensor.byzantine_mask
    expected = np.isin(tensor.vote_tensor.workers, [0, 5])
    assert np.array_equal(mask, expected)


def test_voted_gradients_tensor_matches_dict(mols_assignment):
    attack = create_attack("reversed_gradient")
    selector = FixedSelector([0, 5])
    legacy, tensor = run_both_paths(mols_assignment, attack, selector)
    pipeline = ByzShieldPipeline(mols_assignment)
    assert np.array_equal(
        pipeline.voted_gradients(legacy.file_votes),
        pipeline.voted_gradients_tensor(tensor.vote_tensor),
    )


def test_aggregate_tensor_validates_layout(mols_assignment, frc_15_3):
    pipeline = ByzShieldPipeline(mols_assignment)
    wrong = VoteTensor.from_honest(
        frc_15_3.assignment,
        np.zeros((frc_15_3.assignment.num_files, DIM)),
    )
    from repro.exceptions import AggregationError

    with pytest.raises(AggregationError):
        pipeline.aggregate_tensor(wrong)


# --------------------------------------------------------------------------- #
# Full training runs: tensor path vs legacy path
# --------------------------------------------------------------------------- #
def test_trainer_histories_identical_between_paths(small_classification_data):
    from repro.attacks.alie import ALIEAttack
    from repro.nn.models import build_mlp
    from repro.training.builders import build_byzshield_trainer
    from repro.training.config import TrainingConfig

    train, test = small_classification_data

    def build(use_tensor_path):
        trainer = build_byzshield_trainer(
            scheme=MOLSAssignment(load=5, replication=3),
            model=build_mlp(train.flat_feature_dim, 4, hidden=(8,), seed=5),
            train_dataset=train,
            test_dataset=test,
            config=TrainingConfig(
                batch_size=100, num_iterations=4, eval_every=2, seed=3
            ),
            attack=ALIEAttack(),
            num_byzantine=3,
        )
        trainer.use_tensor_path = use_tensor_path
        return trainer

    fast = build(True).train()
    slow = build(False).train()
    assert np.array_equal(fast.train_losses, slow.train_losses)
    assert np.array_equal(fast.distortion_fractions, slow.distortion_fractions)
    assert np.array_equal(fast.accuracy_series()[1], slow.accuracy_series()[1])
