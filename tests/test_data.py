"""Tests for datasets, synthetic generators and batching."""

import numpy as np
import pytest

from repro.data.batching import BatchSampler, partition_batch_into_files
from repro.data.datasets import Dataset, train_test_split
from repro.data.synthetic import make_gaussian_mixture, make_spirals, make_synthetic_images
from repro.exceptions import DataError


# --------------------------------------------------------------------------- #
# Dataset container
# --------------------------------------------------------------------------- #
def test_dataset_basic_properties():
    data = Dataset(np.zeros((10, 4)), np.arange(10) % 2, num_classes=2)
    assert data.num_samples == 10
    assert data.feature_shape == (4,)
    assert data.flat_feature_dim == 4
    assert np.array_equal(data.class_counts(), [5, 5])


def test_dataset_validation():
    with pytest.raises(DataError):
        Dataset(np.zeros((3, 2)), np.zeros(4, dtype=int), num_classes=2)
    with pytest.raises(DataError):
        Dataset(np.zeros((3, 2)), np.array([0, 1, 5]), num_classes=2)
    with pytest.raises(DataError):
        Dataset(np.zeros((0, 2)), np.zeros(0, dtype=int), num_classes=2)
    with pytest.raises(DataError):
        Dataset(np.zeros((3, 2)), np.zeros((3, 1), dtype=int), num_classes=2)


def test_dataset_subset_and_shuffle():
    data = Dataset(np.arange(20).reshape(10, 2), np.arange(10) % 2, num_classes=2)
    sub = data.subset(np.array([0, 2, 4]))
    assert sub.num_samples == 3
    assert np.array_equal(sub.inputs[1], [4, 5])
    shuffled = data.shuffled(seed=0)
    assert shuffled.num_samples == 10
    assert not np.array_equal(shuffled.inputs, data.inputs)
    with pytest.raises(DataError):
        data.subset(np.array([], dtype=int))
    with pytest.raises(DataError):
        data.subset(np.array([100]))


def test_dataset_flattened():
    data = Dataset(np.zeros((4, 2, 3, 3)), np.zeros(4, dtype=int), num_classes=1)
    flat = data.flattened()
    assert flat.feature_shape == (18,)


def test_train_test_split_sizes_and_disjointness():
    data = make_gaussian_mixture(num_samples=100, num_classes=2, dim=3, seed=0)
    train, test = train_test_split(data, test_fraction=0.25, seed=1)
    assert train.num_samples == 75
    assert test.num_samples == 25
    with pytest.raises(DataError):
        train_test_split(data, test_fraction=0.0)
    with pytest.raises(DataError):
        train_test_split(data, test_fraction=1.0)


# --------------------------------------------------------------------------- #
# Synthetic generators
# --------------------------------------------------------------------------- #
def test_synthetic_images_shapes_and_balance():
    data = make_synthetic_images(num_samples=100, num_classes=5, image_size=6, channels=2, seed=0)
    assert data.inputs.shape == (100, 2, 6, 6)
    assert data.num_classes == 5
    assert data.class_counts().min() >= 100 // 5
    flat = make_synthetic_images(num_samples=20, num_classes=4, image_size=4, flatten=True, seed=0)
    assert flat.inputs.shape == (20, 3 * 4 * 4)


def test_synthetic_images_deterministic():
    a = make_synthetic_images(num_samples=30, seed=3)
    b = make_synthetic_images(num_samples=30, seed=3)
    assert np.array_equal(a.inputs, b.inputs)
    assert np.array_equal(a.labels, b.labels)


def test_synthetic_images_classes_are_separable():
    """With low noise a nearest-template classifier should do far better than chance."""
    data = make_synthetic_images(
        num_samples=200, num_classes=4, image_size=6, noise_scale=0.2, max_shift=0, seed=0
    )
    flat = data.inputs.reshape(200, -1)
    centroids = np.vstack([flat[data.labels == c].mean(axis=0) for c in range(4)])
    distances = ((flat[:, None, :] - centroids[None, :, :]) ** 2).sum(axis=2)
    accuracy = (distances.argmin(axis=1) == data.labels).mean()
    assert accuracy > 0.9


def test_synthetic_images_validation():
    with pytest.raises(DataError):
        make_synthetic_images(num_samples=3, num_classes=10)
    with pytest.raises(DataError):
        make_synthetic_images(image_size=1)


def test_gaussian_mixture_properties():
    data = make_gaussian_mixture(num_samples=90, num_classes=3, dim=5, seed=0)
    assert data.inputs.shape == (90, 5)
    assert set(np.unique(data.labels)) == {0, 1, 2}
    with pytest.raises(DataError):
        make_gaussian_mixture(num_samples=2, num_classes=5)
    with pytest.raises(DataError):
        make_gaussian_mixture(separation=-1.0)


def test_spirals_properties():
    data = make_spirals(num_samples=99, num_classes=3, seed=0)
    assert data.inputs.shape == (99, 2)
    assert data.class_counts().sum() == 99
    # Points lie within the unit-ish disk.
    assert np.max(np.linalg.norm(data.inputs, axis=1)) < 2.0
    with pytest.raises(DataError):
        make_spirals(num_samples=2, num_classes=5)
    with pytest.raises(DataError):
        make_spirals(noise=-0.1)


# --------------------------------------------------------------------------- #
# Batching
# --------------------------------------------------------------------------- #
def test_partition_batch_into_files_even_split():
    files = partition_batch_into_files(np.arange(12), 4)
    assert len(files) == 4
    assert all(f.size == 3 for f in files)
    assert np.array_equal(np.concatenate(files), np.arange(12))


def test_partition_batch_into_files_validation():
    with pytest.raises(DataError):
        partition_batch_into_files(np.arange(10), 3)
    with pytest.raises(DataError):
        partition_batch_into_files(np.arange(10), 0)


def test_batch_sampler_epoch_coverage():
    data = make_gaussian_mixture(num_samples=40, num_classes=2, dim=3, seed=0)
    sampler = BatchSampler(dataset=data, batch_size=10, seed=0)
    seen = np.concatenate([sampler.next_batch() for _ in range(4)])
    assert np.array_equal(np.sort(seen), np.arange(40))


def test_batch_sampler_deterministic():
    data = make_gaussian_mixture(num_samples=40, num_classes=2, dim=3, seed=0)
    a = BatchSampler(dataset=data, batch_size=8, seed=5)
    b = BatchSampler(dataset=data, batch_size=8, seed=5)
    for _ in range(6):
        assert np.array_equal(a.next_batch(), b.next_batch())


def test_batch_sampler_with_replacement():
    data = make_gaussian_mixture(num_samples=30, num_classes=2, dim=3, seed=0)
    sampler = BatchSampler(dataset=data, batch_size=10, seed=0, with_replacement=True)
    batch = sampler.next_batch()
    assert batch.size == 10
    assert np.all((0 <= batch) & (batch < 30))


def test_batch_sampler_files_and_data():
    data = make_gaussian_mixture(num_samples=40, num_classes=2, dim=3, seed=0)
    sampler = BatchSampler(dataset=data, batch_size=12, seed=0)
    files = sampler.next_batch_files(4)
    assert len(files) == 4
    inputs, labels = sampler.batch_data(files[0])
    assert inputs.shape == (3, 3)
    assert labels.shape == (3,)


def test_batch_sampler_validation():
    data = make_gaussian_mixture(num_samples=10, num_classes=2, dim=3, seed=0)
    with pytest.raises(DataError):
        BatchSampler(dataset=data, batch_size=0)
    with pytest.raises(DataError):
        BatchSampler(dataset=data, batch_size=11)
