"""Tests for repro.graphs.bipartite."""

import numpy as np
import pytest

from repro.exceptions import AssignmentError, ConfigurationError
from repro.graphs.bipartite import BipartiteAssignment


def small_assignment() -> BipartiteAssignment:
    # 3 workers, 3 files, each worker stores 2 files, each file has 2 copies.
    H = np.array([[1, 1, 0], [0, 1, 1], [1, 0, 1]], dtype=np.int8)
    return BipartiteAssignment(H, name="triangle")


def test_basic_properties():
    a = small_assignment()
    assert a.num_workers == 3
    assert a.num_files == 3
    assert a.num_edges == 6
    assert a.computational_load == 2
    assert a.replication == 2
    assert np.array_equal(a.worker_degrees, [2, 2, 2])
    assert np.array_equal(a.file_degrees, [2, 2, 2])


def test_biadjacency_is_a_copy():
    a = small_assignment()
    H = a.biadjacency
    H[0, 0] = 0
    assert a.biadjacency[0, 0] == 1


def test_neighborhoods():
    a = small_assignment()
    assert a.files_of_worker(0) == (0, 1)
    assert a.workers_of_file(2) == (1, 2)
    assert a.files_of_workers([0, 1]) == {0, 1, 2}
    assert a.shared_files(0, 1) == {1}


def test_file_copy_counts():
    a = small_assignment()
    counts = a.file_copy_counts([0, 1])
    assert np.array_equal(counts, [1, 2, 1])
    assert np.array_equal(a.file_copy_counts([]), [0, 0, 0])


def test_file_copy_counts_rejects_duplicates_and_out_of_range():
    a = small_assignment()
    with pytest.raises(ConfigurationError):
        a.file_copy_counts([0, 0])
    with pytest.raises(ConfigurationError):
        a.file_copy_counts([7])


def test_index_validation():
    a = small_assignment()
    with pytest.raises(ConfigurationError):
        a.files_of_worker(3)
    with pytest.raises(ConfigurationError):
        a.workers_of_file(-1)


def test_rejects_non_binary_entries():
    with pytest.raises(ConfigurationError):
        BipartiteAssignment(np.array([[2, 0], [0, 1]]))


def test_rejects_empty_and_wrong_ndim():
    with pytest.raises(ConfigurationError):
        BipartiteAssignment(np.zeros((0, 3)))
    with pytest.raises(ConfigurationError):
        BipartiteAssignment(np.zeros(3))


def test_rejects_isolated_workers_or_files():
    with pytest.raises(AssignmentError):
        BipartiteAssignment(np.array([[1, 1], [0, 0]]))
    with pytest.raises(AssignmentError):
        BipartiteAssignment(np.array([[1, 0], [1, 0]]), validate_biregular=False)


def test_irregular_graph_rejected_unless_allowed():
    H = np.array([[1, 1, 1], [1, 0, 0], [0, 1, 1]])
    with pytest.raises(AssignmentError):
        BipartiteAssignment(H)
    a = BipartiteAssignment(H, validate_biregular=False)
    with pytest.raises(AssignmentError):
        _ = a.computational_load


def test_from_worker_files_round_trip():
    a = small_assignment()
    rebuilt = BipartiteAssignment.from_worker_files(
        [a.files_of_worker(j) for j in range(a.num_workers)], num_files=3
    )
    assert rebuilt == a
    assert hash(rebuilt) == hash(a)


def test_from_worker_files_mapping_and_errors():
    built = BipartiteAssignment.from_worker_files({0: [0, 1], 1: [1, 2], 2: [0, 2]})
    assert built.num_files == 3
    with pytest.raises(ConfigurationError):
        BipartiteAssignment.from_worker_files({0: [0], 2: [1]})
    with pytest.raises(AssignmentError):
        BipartiteAssignment.from_worker_files([[0, 0], [1, 0]])
    with pytest.raises(ConfigurationError):
        BipartiteAssignment.from_worker_files([[0, 5]], num_files=2)


def test_to_networkx_structure():
    a = small_assignment()
    g = a.to_networkx()
    assert g.number_of_nodes() == 6
    assert g.number_of_edges() == 6
    assert g.has_edge(("w", 0), ("f", 1))


def test_worker_file_table_matches_neighborhoods():
    a = small_assignment()
    table = a.worker_file_table()
    assert table[0] == (0, (0, 1))
    assert len(table) == a.num_workers


def test_equality_with_other_types():
    assert small_assignment() != "not an assignment"
