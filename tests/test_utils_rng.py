"""Tests for repro.utils.rng."""

import numpy as np
import pytest

from repro.utils.rng import as_generator, derive_seed, spawn_generators


def test_as_generator_from_int_is_deterministic():
    a = as_generator(123).integers(0, 1000, size=10)
    b = as_generator(123).integers(0, 1000, size=10)
    assert np.array_equal(a, b)


def test_as_generator_passthrough():
    gen = np.random.default_rng(5)
    assert as_generator(gen) is gen


def test_as_generator_none_gives_generator():
    assert isinstance(as_generator(None), np.random.Generator)


def test_spawn_generators_count_and_independence():
    children = spawn_generators(42, 4)
    assert len(children) == 4
    draws = [g.integers(0, 10**9) for g in children]
    # Statistically distinct streams: not all equal.
    assert len(set(int(d) for d in draws)) > 1


def test_spawn_generators_deterministic():
    a = [g.integers(0, 10**9) for g in spawn_generators(42, 3)]
    b = [g.integers(0, 10**9) for g in spawn_generators(42, 3)]
    assert a == b


def test_spawn_generators_zero_count():
    assert spawn_generators(0, 0) == []


def test_spawn_generators_negative_count_raises():
    with pytest.raises(ValueError):
        spawn_generators(0, -1)


def test_spawn_generators_from_generator():
    children = spawn_generators(np.random.default_rng(3), 2)
    assert len(children) == 2


def test_derive_seed_stable_and_distinct():
    assert derive_seed(1, "a", 2) == derive_seed(1, "a", 2)
    assert derive_seed(1, "a", 2) != derive_seed(1, "a", 3)
    assert derive_seed("x") != derive_seed("y")


def test_derive_seed_in_63_bit_range():
    value = derive_seed("anything", 12345)
    assert 0 <= value < 2**63
