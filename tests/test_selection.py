"""Tests for Byzantine worker selection policies."""

import numpy as np
import pytest

from repro.attacks.selection import FixedSelector, OmniscientSelector, RandomSelector
from repro.core.distortion import count_distorted, max_distortion_exhaustive
from repro.exceptions import AttackError


def test_fixed_selector_returns_given_set(mols_assignment, rng):
    selector = FixedSelector([1, 4, 7])
    assert selector.select(mols_assignment, 0, rng) == (1, 4, 7)
    assert selector.select(mols_assignment, 5, rng) == (1, 4, 7)


def test_fixed_selector_validation(mols_assignment, rng):
    with pytest.raises(AttackError):
        FixedSelector([1, 1])
    with pytest.raises(AttackError):
        FixedSelector([99]).select(mols_assignment, 0, rng)


def test_random_selector_size_and_range(mols_assignment, rng):
    selector = RandomSelector(num_byzantine=4)
    chosen = selector.select(mols_assignment, 0, rng)
    assert len(chosen) == 4
    assert len(set(chosen)) == 4
    assert all(0 <= w < 15 for w in chosen)


def test_random_selector_resampling_behaviour(mols_assignment):
    rng = np.random.default_rng(0)
    resampling = RandomSelector(num_byzantine=3, resample_every_iteration=True)
    draws = {resampling.select(mols_assignment, t, rng) for t in range(20)}
    assert len(draws) > 1  # changes across iterations

    rng = np.random.default_rng(0)
    sticky = RandomSelector(num_byzantine=3, resample_every_iteration=False)
    first = sticky.select(mols_assignment, 0, rng)
    assert all(sticky.select(mols_assignment, t, rng) == first for t in range(5))


def test_random_selector_validation(mols_assignment, rng):
    with pytest.raises(AttackError):
        RandomSelector(num_byzantine=-1)
    with pytest.raises(AttackError):
        RandomSelector(num_byzantine=99).select(mols_assignment, 0, rng)


def test_omniscient_selector_achieves_worst_case(mols_assignment, rng):
    for q in (2, 3, 4):
        selector = OmniscientSelector(num_byzantine=q, method="exhaustive")
        chosen = selector.select(mols_assignment, 0, rng)
        optimum = max_distortion_exhaustive(mols_assignment, q).c_max
        assert count_distorted(mols_assignment, chosen) == optimum


def test_omniscient_selector_is_stable_across_iterations(mols_assignment, rng):
    selector = OmniscientSelector(num_byzantine=3)
    first = selector.select(mols_assignment, 0, rng)
    assert selector.select(mols_assignment, 17, rng) == first


def test_omniscient_selector_caches_per_assignment(mols_assignment, ramanujan_case2, rng):
    selector = OmniscientSelector(num_byzantine=3)
    a = selector.select(mols_assignment, 0, rng)
    b = selector.select(ramanujan_case2.assignment, 0, rng)
    assert len(a) == len(b) == 3
    assert len(selector._cache) == 2


def test_omniscient_selector_validation():
    with pytest.raises(AttackError):
        OmniscientSelector(num_byzantine=-2)
