"""ScenarioSpec construction, validation and dict/JSON round-trips."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    AttackSpec,
    FaultSpec,
    PipelineSpec,
    ScenarioSpec,
    ScheduleSpec,
    get_scenario,
    scenario_names,
)


def minimal_dict(**overrides):
    data = {"name": "t", "cluster": {"scheme": "mols", "params": {"load": 5, "replication": 3}}}
    data.update(overrides)
    return data


class TestFromDict:
    def test_defaults_fill_unspecified_sections(self):
        spec = ScenarioSpec.from_dict(minimal_dict())
        assert spec.seed == 0
        assert spec.pipeline.kind == "byzshield"
        assert spec.attack is None
        assert spec.faults == ()
        assert spec.compression is None

    def test_requires_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            ScenarioSpec.from_dict({"seed": 3})

    def test_rejects_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            ScenarioSpec.from_dict(minimal_dict(typo_section={}))

    def test_rejects_unknown_nested_key(self):
        with pytest.raises(ConfigurationError, match="pipeline"):
            ScenarioSpec.from_dict(minimal_dict(pipeline={"kind": "byzshield", "agg": "x"}))

    def test_rejects_unknown_pipeline_kind(self):
        with pytest.raises(ConfigurationError, match="pipeline kind"):
            PipelineSpec(kind="magic")

    def test_rejects_unknown_fault_kind(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            FaultSpec(kind="gremlins")

    def test_rejects_unknown_selection(self):
        with pytest.raises(ConfigurationError, match="selection"):
            AttackSpec(name="alie", selection="psychic")

    def test_ramping_schedule_requires_q_end(self):
        spec = ScheduleSpec(kind="ramping", q=0, q_end=4)
        assert spec.q_end == 4


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = get_scenario("mols-alie-all-faults")
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_json_round_trip_is_identity(self):
        spec = get_scenario("detox-multikrum-revgrad-dropout")
        again = ScenarioSpec.from_dict(json.loads(spec.to_json()))
        assert again.digest() == spec.digest()

    def test_json_file_round_trip(self, tmp_path):
        spec = get_scenario("ramanujan-constant-rotating")
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert ScenarioSpec.from_json_file(path).digest() == spec.digest()

    def test_bad_json_file_raises_configuration_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="cannot load"):
            ScenarioSpec.from_json_file(path)


class TestDigest:
    def test_digest_is_stable_across_instances(self):
        assert (
            get_scenario("mols-clean").digest() == get_scenario("mols-clean").digest()
        )

    def test_digest_changes_with_any_field(self):
        base = get_scenario("mols-clean")
        data = base.to_dict()
        data["seed"] = 1
        assert ScenarioSpec.from_dict(data).digest() != base.digest()


class TestCatalog:
    def test_matrix_is_large_enough(self):
        assert len(scenario_names()) >= 20

    def test_matrix_covers_schemes_attacks_and_faults(self):
        specs = [get_scenario(name) for name in scenario_names()]
        schemes = {s.cluster.scheme for s in specs}
        attacks = {s.attack.name for s in specs if s.attack is not None}
        fault_kinds = {f.kind for s in specs for f in s.faults}
        schedules = {s.attack.schedule.kind for s in specs if s.attack is not None}
        assert {"mols", "ramanujan", "frc", "baseline"} <= schemes
        assert len(attacks) >= 3
        assert {"stragglers", "dropout", "corruption"} <= fault_kinds
        assert {"static", "ramping", "rotating"} <= schedules

    def test_unknown_scenario_name(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("not-a-scenario")
