"""ScenarioSpec construction, validation and dict/JSON round-trips."""

from __future__ import annotations

import json

import pytest

from repro.exceptions import ConfigurationError
from repro.scenarios import (
    AttackSpec,
    FaultSpec,
    PipelineSpec,
    RuntimeSpec,
    ScenarioSpec,
    ScheduleSpec,
    get_scenario,
    scenario_names,
)


def minimal_dict(**overrides):
    data = {"name": "t", "cluster": {"scheme": "mols", "params": {"load": 5, "replication": 3}}}
    data.update(overrides)
    return data


class TestFromDict:
    def test_defaults_fill_unspecified_sections(self):
        spec = ScenarioSpec.from_dict(minimal_dict())
        assert spec.seed == 0
        assert spec.pipeline.kind == "byzshield"
        assert spec.attack is None
        assert spec.faults == ()
        assert spec.compression is None

    def test_requires_name(self):
        with pytest.raises(ConfigurationError, match="name"):
            ScenarioSpec.from_dict({"seed": 3})

    def test_rejects_unknown_top_level_key(self):
        with pytest.raises(ConfigurationError, match="unknown key"):
            ScenarioSpec.from_dict(minimal_dict(typo_section={}))

    def test_rejects_unknown_nested_key(self):
        with pytest.raises(ConfigurationError, match="pipeline"):
            ScenarioSpec.from_dict(minimal_dict(pipeline={"kind": "byzshield", "agg": "x"}))

    def test_rejects_unknown_pipeline_kind(self):
        with pytest.raises(ConfigurationError, match="pipeline kind"):
            PipelineSpec(kind="magic")

    def test_rejects_unknown_fault_kind(self):
        with pytest.raises(ConfigurationError, match="fault kind"):
            FaultSpec(kind="gremlins")

    def test_rejects_unknown_selection(self):
        with pytest.raises(ConfigurationError, match="selection"):
            AttackSpec(name="alie", selection="psychic")

    def test_ramping_schedule_requires_q_end(self):
        spec = ScheduleSpec(kind="ramping", q=0, q_end=4)
        assert spec.q_end == 4


class TestRoundTrip:
    def test_dict_round_trip_is_identity(self):
        spec = get_scenario("mols-alie-all-faults")
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_json_round_trip_is_identity(self):
        spec = get_scenario("detox-multikrum-revgrad-dropout")
        again = ScenarioSpec.from_dict(json.loads(spec.to_json()))
        assert again.digest() == spec.digest()

    def test_json_file_round_trip(self, tmp_path):
        spec = get_scenario("ramanujan-constant-rotating")
        path = tmp_path / "spec.json"
        path.write_text(spec.to_json())
        assert ScenarioSpec.from_json_file(path).digest() == spec.digest()

    def test_bad_json_file_raises_configuration_error(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{not json")
        with pytest.raises(ConfigurationError, match="cannot load"):
            ScenarioSpec.from_json_file(path)


class TestRuntimeSpec:
    def test_default_is_synchronous_and_serializes_to_nothing(self):
        runtime = RuntimeSpec()
        assert not runtime.is_event
        assert runtime.to_dict() == {}
        # Synchronous specs carry no runtime section at all, so every spec
        # digest recorded before the event engine existed is unchanged.
        assert "runtime" not in get_scenario("mols-clean").to_dict()

    def test_event_scenarios_round_trip(self):
        spec = get_scenario("ramanujan-async-quorum-partial")
        assert spec.runtime.is_event
        again = ScenarioSpec.from_dict(spec.to_dict())
        assert again == spec
        assert again.digest() == spec.digest()

    def test_infinite_deadline_serializes_as_string(self):
        runtime = RuntimeSpec(deadline=float("inf"))
        assert runtime.to_dict() == {"deadline": "inf"}
        again = RuntimeSpec.from_dict(runtime.to_dict())
        assert again.deadline == float("inf")
        assert again == runtime

    def test_from_dict_parses_fields(self):
        runtime = RuntimeSpec.from_dict(
            {"deadline": 0.4, "quorum": 2, "partial": True}
        )
        assert runtime == RuntimeSpec(deadline=0.4, quorum=2, partial=True)

    def test_rejects_unknown_key(self):
        with pytest.raises(ConfigurationError, match="runtime"):
            RuntimeSpec.from_dict({"deadlnie": 0.4})

    def test_validation(self):
        with pytest.raises(ConfigurationError, match="deadline"):
            RuntimeSpec(deadline=0.0)
        with pytest.raises(ConfigurationError, match="quorum"):
            RuntimeSpec(quorum=0)
        with pytest.raises(ConfigurationError, match="partial"):
            RuntimeSpec(partial=True)

    def test_runtime_changes_the_spec_digest(self):
        base = get_scenario("mols-clean")
        data = base.to_dict()
        data["runtime"] = {"quorum": 2}
        assert ScenarioSpec.from_dict(data).digest() != base.digest()


class TestDigest:
    def test_digest_is_stable_across_instances(self):
        assert (
            get_scenario("mols-clean").digest() == get_scenario("mols-clean").digest()
        )

    def test_digest_changes_with_any_field(self):
        base = get_scenario("mols-clean")
        data = base.to_dict()
        data["seed"] = 1
        assert ScenarioSpec.from_dict(data).digest() != base.digest()


class TestCatalog:
    def test_matrix_is_large_enough(self):
        assert len(scenario_names()) >= 20

    def test_matrix_covers_schemes_attacks_and_faults(self):
        specs = [get_scenario(name) for name in scenario_names()]
        schemes = {s.cluster.scheme for s in specs}
        attacks = {s.attack.name for s in specs if s.attack is not None}
        fault_kinds = {f.kind for s in specs for f in s.faults}
        schedules = {s.attack.schedule.kind for s in specs if s.attack is not None}
        assert {"mols", "ramanujan", "frc", "baseline"} <= schemes
        assert len(attacks) >= 3
        assert {"stragglers", "dropout", "corruption"} <= fault_kinds
        assert {"static", "ramping", "rotating"} <= schedules

    def test_unknown_scenario_name(self):
        with pytest.raises(ConfigurationError, match="unknown scenario"):
            get_scenario("not-a-scenario")
