"""Unit tests for the dtype/backend seam (:mod:`repro.core.backend`)."""

import numpy as np
import pytest

from repro.core.backend import (
    DEFAULT_DTYPE,
    SUPPORTED_DTYPES,
    bit_view_dtype,
    dtype_name,
    ensure_float,
    is_supported_float,
    resolve_dtype,
)
from repro.exceptions import ConfigurationError


def test_default_dtype_is_float64():
    assert DEFAULT_DTYPE == np.dtype(np.float64)
    assert sorted(SUPPORTED_DTYPES) == ["float32", "float64"]


@pytest.mark.parametrize(
    "spec, expected",
    [
        (None, np.float64),
        ("float32", np.float32),
        ("float64", np.float64),
        (np.float32, np.float32),
        (np.float64, np.float64),
        (np.dtype(np.float32), np.float32),
        (np.dtype("<f8"), np.float64),
    ],
)
def test_resolve_dtype_accepted_specs(spec, expected):
    assert resolve_dtype(spec) == np.dtype(expected)


@pytest.mark.parametrize(
    "spec", ["float16", "f2", "int64", np.int32, np.float16, complex, object()]
)
def test_resolve_dtype_rejects_unsupported(spec):
    with pytest.raises(ConfigurationError):
        resolve_dtype(spec)


def test_dtype_name_canonical():
    assert dtype_name(None) == "float64"
    assert dtype_name("float32") == "float32"
    assert dtype_name(np.dtype(np.float64)) == "float64"


def test_is_supported_float():
    assert is_supported_float(np.float32)
    assert is_supported_float("float64")
    assert not is_supported_float(np.int64)
    assert not is_supported_float(np.float16)
    assert not is_supported_float("not-a-dtype")


def test_ensure_float_preserves_supported_dtypes_without_copy():
    for dtype in (np.float32, np.float64):
        arr = np.arange(5, dtype=dtype)
        out = ensure_float(arr)
        assert out is arr  # passthrough, no copy, no promotion


def test_ensure_float_coerces_unsupported_to_default():
    for source in ([1, 2, 3], np.arange(3, dtype=np.int64), np.ones(3, dtype=bool)):
        out = ensure_float(source)
        assert out.dtype == DEFAULT_DTYPE
    half = np.arange(3, dtype=np.float16)
    assert ensure_float(half).dtype == DEFAULT_DTYPE


def test_ensure_float_explicit_dtype_converts():
    arr = np.arange(4, dtype=np.float64)
    out = ensure_float(arr, dtype="float32")
    assert out.dtype == np.float32
    np.testing.assert_array_equal(out, arr.astype(np.float32))
    # explicit dtype equal to the input dtype is a no-copy passthrough
    assert ensure_float(out, dtype=np.float32) is out


def test_ensure_float_explicit_dtype_rejects_unsupported():
    with pytest.raises(ConfigurationError):
        ensure_float(np.arange(3), dtype="float16")


def test_bit_view_dtype_widths():
    assert bit_view_dtype(np.float64) == np.dtype(np.uint64)
    assert bit_view_dtype("float32") == np.dtype(np.uint32)
    with pytest.raises(ConfigurationError):
        bit_view_dtype(np.int32)


def test_bit_view_roundtrips_payload_bits():
    for dtype in (np.float32, np.float64):
        rng = np.random.default_rng(0)
        arr = rng.standard_normal(16).astype(dtype)
        view = arr.view(bit_view_dtype(dtype))
        back = view.view(dtype)
        assert np.array_equal(back, arr)


def test_core_package_reexports_backend_lazily():
    # repro.core uses PEP 562 lazy exports so repro.core.backend can be
    # imported from low-level modules without executing the pipeline stack.
    import repro.core as core

    assert core.DEFAULT_DTYPE == DEFAULT_DTYPE
    assert core.resolve_dtype("float32") == np.dtype(np.float32)
    assert core.ensure_float is ensure_float
    with pytest.raises(AttributeError):
        core.does_not_exist
    assert "VoteTensor" in dir(core)
