"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.data.datasets import train_test_split
from repro.data.synthetic import make_gaussian_mixture


@pytest.fixture(scope="session")
def mols_5_3():
    """The paper's Table 3 configuration: MOLS with l=5, r=3 (K=15, f=25)."""
    return MOLSAssignment(load=5, replication=3)


@pytest.fixture(scope="session")
def mols_assignment(mols_5_3):
    return mols_5_3.assignment


@pytest.fixture(scope="session")
def ramanujan_case1():
    """Ramanujan Case 1 with m=3 < s=5 (K=15, f=25, l=5, r=3)."""
    return RamanujanAssignment(m=3, s=5)


@pytest.fixture(scope="session")
def ramanujan_case2():
    """The paper's Table 4 / K=25 configuration: m=s=5 (K=25, f=25, l=r=5)."""
    return RamanujanAssignment(m=5, s=5)


@pytest.fixture(scope="session")
def frc_15_3():
    """FRC grouping with K=15, r=3 (5 groups)."""
    return FRCAssignment(num_workers=15, replication=3)


@pytest.fixture(scope="session")
def baseline_10():
    return BaselineAssignment(num_workers=10)


@pytest.fixture(scope="session")
def small_classification_data():
    """A small, well-separated Gaussian-mixture dataset (train, test)."""
    dataset = make_gaussian_mixture(
        num_samples=600, num_classes=4, dim=12, separation=3.0, seed=7
    )
    return train_test_split(dataset, test_fraction=0.25, seed=8)


@pytest.fixture
def rng():
    return np.random.default_rng(0)
