"""Tests for the MOLS assignment scheme, including the paper's Example 1 / Table 2."""

import numpy as np
import pytest

from repro.assignment.mols import MOLSAssignment
from repro.exceptions import ConfigurationError


def test_dimensions(mols_5_3, mols_assignment):
    assert mols_assignment.num_workers == 15
    assert mols_assignment.num_files == 25
    assert mols_assignment.computational_load == 5
    assert mols_assignment.replication == 3
    assert mols_5_3.describe()["scheme"] == "mols"


def test_matches_paper_table2():
    """The exact file placement of the paper's Example 1 (Table 2)."""
    expected = {
        0: [0, 9, 13, 17, 21],
        1: [1, 5, 14, 18, 22],
        2: [2, 6, 10, 19, 23],
        3: [3, 7, 11, 15, 24],
        4: [4, 8, 12, 16, 20],
        5: [0, 8, 11, 19, 22],
        6: [1, 9, 12, 15, 23],
        7: [2, 5, 13, 16, 24],
        8: [3, 6, 14, 17, 20],
        9: [4, 7, 10, 18, 21],
        10: [0, 7, 14, 16, 23],
        11: [1, 8, 10, 17, 24],
        12: [2, 9, 11, 18, 20],
        13: [3, 5, 12, 19, 21],
        14: [4, 6, 13, 15, 22],
    }
    scheme = MOLSAssignment(load=5, replication=3)
    for worker, files in enumerate(scheme.worker_files()):
        assert files == expected[worker], f"worker {worker}"


def test_same_parallel_class_workers_share_no_files(mols_5_3, mols_assignment):
    for k in range(3):
        workers = mols_5_3.workers_of_parallel_class(k)
        for i in range(len(workers)):
            for j in range(i + 1, len(workers)):
                assert mols_assignment.shared_files(workers[i], workers[j]) == set()


def test_different_parallel_class_workers_share_exactly_one_file(mols_5_3, mols_assignment):
    for a in range(15):
        for b in range(a + 1, 15):
            if mols_5_3.parallel_class_of_worker(a) != mols_5_3.parallel_class_of_worker(b):
                assert len(mols_assignment.shared_files(a, b)) == 1


def test_every_file_replicated_r_times(mols_assignment):
    assert np.all(mols_assignment.file_degrees == 3)


def test_parallel_class_helpers(mols_5_3):
    assert mols_5_3.parallel_class_of_worker(0) == 0
    assert mols_5_3.parallel_class_of_worker(14) == 2
    assert mols_5_3.workers_of_parallel_class(1) == list(range(5, 10))
    with pytest.raises(ConfigurationError):
        mols_5_3.parallel_class_of_worker(15)
    with pytest.raises(ConfigurationError):
        mols_5_3.workers_of_parallel_class(3)


def test_file_cell_mapping(mols_5_3):
    assert mols_5_3.file_cell(0) == (0, 0)
    assert mols_5_3.file_cell(9) == (1, 4)
    assert mols_5_3.file_cell(24) == (4, 4)
    with pytest.raises(ConfigurationError):
        mols_5_3.file_cell(25)


def test_invalid_parameters():
    with pytest.raises(ConfigurationError):
        MOLSAssignment(load=6, replication=3)  # non-prime load
    with pytest.raises(ConfigurationError):
        MOLSAssignment(load=5, replication=5)  # r > l - 1
    with pytest.raises(ConfigurationError):
        MOLSAssignment(load=5, replication=4)  # even replication
    with pytest.raises(ConfigurationError):
        MOLSAssignment(load=5, replication=1)  # no redundancy


def test_even_replication_allowed_for_structural_studies():
    scheme = MOLSAssignment(load=5, replication=4, require_odd_replication=False)
    assert scheme.assignment.replication == 4


def test_larger_configuration_7_5():
    scheme = MOLSAssignment(load=7, replication=5)
    assignment = scheme.assignment
    assert assignment.num_workers == 35
    assert assignment.num_files == 49
    assert assignment.computational_load == 7
    assert assignment.replication == 5


def test_assignment_caching(mols_5_3):
    assert mols_5_3.assignment is mols_5_3.assignment
