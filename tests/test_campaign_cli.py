"""The `repro campaign` subcommand: expand / run / status / report."""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.cli import build_parser, main

EXAMPLE = (
    pathlib.Path(__file__).resolve().parents[1]
    / "examples"
    / "campaign_accuracy_vs_q.json"
)


@pytest.fixture()
def campaign_file(tmp_path):
    """A 4-scenario campaign cheap enough for CLI round-trips."""
    path = tmp_path / "campaign.json"
    path.write_text(json.dumps({
        "name": "cli-mini",
        "base_scenario": "mols-alie-omniscient",
        "seed": 1,
        "grid": {
            "attack.schedule.q": [0, 2],
            "pipeline.aggregator": ["median", "mean"],
        },
    }))
    return path


def test_example_campaign_file_is_valid():
    from repro.campaigns import CampaignSpec

    campaign = CampaignSpec.from_json_file(EXAMPLE)
    assert len(campaign.expand()) == 10  # q in 0..4 x two aggregators


def test_campaign_expand(campaign_file, capsys):
    assert main(["campaign", "expand", str(campaign_file)]) == 0
    out = capsys.readouterr().out
    assert "cli-mini/q=0,aggregator=median" in out
    assert "cli-mini/q=2,aggregator=mean" in out
    assert "spec_digest" in out


def test_campaign_run_status_report_round_trip(campaign_file, tmp_path, capsys):
    store_root = tmp_path / "out"
    run_args = ["campaign", "run", str(campaign_file), "--out", str(store_root)]
    assert main(run_args) == 0
    out = capsys.readouterr().out
    assert "ran=4 skipped=0" in out

    # Resume: everything is served from the store.
    assert main(run_args) == 0
    assert "ran=0 skipped=4" in capsys.readouterr().out

    assert main(["campaign", "status", str(campaign_file), "--out", str(store_root)]) == 0
    assert "4/4 scenarios completed" in capsys.readouterr().out

    assert main(["campaign", "report", str(campaign_file), "--out", str(store_root)]) == 0
    out = capsys.readouterr().out
    assert "Final accuracy vs q" in out
    assert "q=0" in out and "q=2" in out


def test_campaign_status_before_any_run(campaign_file, tmp_path, capsys):
    assert main(["campaign", "status", str(campaign_file), "--out", str(tmp_path / "o")]) == 0
    out = capsys.readouterr().out
    assert "0/4 scenarios completed" in out
    assert "pending cli-mini/q=0,aggregator=median" in out


def test_campaign_report_without_records_notes_the_gap(campaign_file, tmp_path, capsys):
    assert main(["campaign", "report", str(campaign_file), "--out", str(tmp_path / "o")]) == 0
    assert "no stored record" in capsys.readouterr().out


def test_campaign_run_parallel_matches_serial_store(campaign_file, tmp_path, capsys):
    serial_root = tmp_path / "serial"
    parallel_root = tmp_path / "parallel"
    assert main(["campaign", "run", str(campaign_file), "--out", str(serial_root)]) == 0
    assert main([
        "campaign", "run", str(campaign_file),
        "--out", str(parallel_root), "--processes", "2",
    ]) == 0
    capsys.readouterr()
    serial_records = {
        p.name: json.loads(p.read_text())
        for p in (serial_root).glob("*/*.json")
        if p.name != "campaign.json"
    }
    parallel_records = {
        p.name: json.loads(p.read_text())
        for p in (parallel_root).glob("*/*.json")
        if p.name != "campaign.json"
    }
    assert serial_records == parallel_records
    assert len(serial_records) == 4


def test_campaign_run_csv(campaign_file, tmp_path, capsys):
    csv_path = tmp_path / "rows.csv"
    assert main([
        "--csv", str(csv_path),
        "campaign", "run", str(campaign_file), "--out", str(tmp_path / "o"),
    ]) == 0
    capsys.readouterr()
    header = csv_path.read_text().splitlines()[0]
    assert header.startswith("scenario,")
    assert "final_accuracy" in header


def test_campaign_missing_file_fails_cleanly(tmp_path, capsys):
    assert main(["campaign", "run", str(tmp_path / "nope.json")]) == 1
    assert "cannot load campaign" in capsys.readouterr().err


def test_campaign_requires_action_and_target():
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign"])
    with pytest.raises(SystemExit):
        build_parser().parse_args(["campaign", "run"])


def test_ablation_scenarios_with_processes(capsys, tmp_path):
    csv_path = tmp_path / "matrix.csv"
    names_args = ["--csv", str(csv_path), "ablation", "scenarios", "--processes", "2"]
    assert main(names_args) == 0
    out = capsys.readouterr().out
    assert "Fault-injection scenario matrix" in out
    assert "mols-alie-all-faults" in out
    assert csv_path.read_text().startswith("scenario,")
