"""Tests for the SGD optimizer, learning-rate schedules and metrics."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.losses import SoftmaxCrossEntropy
from repro.nn.metrics import cross_entropy_loss, evaluate_model, top1_accuracy
from repro.nn.models import build_mlp
from repro.nn.optim import SGD, ConstantSchedule, StepDecaySchedule


# --------------------------------------------------------------------------- #
# Schedules
# --------------------------------------------------------------------------- #
def test_constant_schedule():
    schedule = ConstantSchedule(0.1)
    assert schedule.rate(0) == 0.1
    assert schedule(1000) == 0.1
    with pytest.raises(ConfigurationError):
        ConstantSchedule(0.0)


def test_step_decay_schedule_matches_paper_notation():
    # (x, y, z) = (0.05, 0.96, 15): start at 0.05, multiply by 0.96 every 15 iters.
    schedule = StepDecaySchedule(0.05, 0.96, 15)
    assert schedule.rate(0) == pytest.approx(0.05)
    assert schedule.rate(14) == pytest.approx(0.05)
    assert schedule.rate(15) == pytest.approx(0.05 * 0.96)
    assert schedule.rate(45) == pytest.approx(0.05 * 0.96**3)


def test_step_decay_validation():
    with pytest.raises(ConfigurationError):
        StepDecaySchedule(0.0, 0.9, 10)
    with pytest.raises(ConfigurationError):
        StepDecaySchedule(0.1, -1.0, 10)
    with pytest.raises(ConfigurationError):
        StepDecaySchedule(0.1, 0.9, 0)
    with pytest.raises(ConfigurationError):
        StepDecaySchedule(0.1, 0.9, 10).rate(-1)


# --------------------------------------------------------------------------- #
# SGD
# --------------------------------------------------------------------------- #
def test_sgd_plain_step():
    optimizer = SGD(0.1)
    params = np.array([1.0, -2.0])
    gradient = np.array([1.0, 1.0])
    updated = optimizer.step_vector(params, gradient)
    assert np.allclose(updated, [0.9, -2.1])
    assert optimizer.iteration == 1


def test_sgd_momentum_accumulates():
    optimizer = SGD(0.1, momentum=0.9)
    params = np.zeros(1)
    gradient = np.ones(1)
    first = optimizer.step_vector(params, gradient)
    second = optimizer.step_vector(first, gradient)
    assert first[0] == pytest.approx(-0.1)
    # velocity = 0.9*1 + 1 = 1.9 => step 0.19
    assert second[0] == pytest.approx(-0.29)


def test_sgd_weight_decay():
    optimizer = SGD(0.1, weight_decay=0.5)
    updated = optimizer.step_vector(np.array([2.0]), np.array([0.0]))
    assert updated[0] == pytest.approx(2.0 - 0.1 * 1.0)


def test_sgd_schedule_is_followed():
    optimizer = SGD(StepDecaySchedule(1.0, 0.5, 1))
    params = np.zeros(1)
    params = optimizer.step_vector(params, np.ones(1))  # lr 1.0
    params = optimizer.step_vector(params, np.ones(1))  # lr 0.5
    assert params[0] == pytest.approx(-1.5)


def test_sgd_reset():
    optimizer = SGD(0.1, momentum=0.9)
    optimizer.step_vector(np.zeros(2), np.ones(2))
    optimizer.reset()
    assert optimizer.iteration == 0
    assert optimizer._velocity is None


def test_sgd_validation():
    with pytest.raises(ConfigurationError):
        SGD(0.1, momentum=1.5)
    with pytest.raises(ConfigurationError):
        SGD(0.1, weight_decay=-1.0)
    with pytest.raises(ConfigurationError):
        SGD(0.1).step_vector(np.zeros(3), np.zeros(2))


def test_sgd_step_model_reduces_loss():
    model = build_mlp(8, 3, hidden=(16,), seed=0)
    loss = SoftmaxCrossEntropy()
    rng = np.random.default_rng(0)
    x = rng.standard_normal((64, 8))
    y = rng.integers(0, 3, size=64)
    optimizer = SGD(0.5, momentum=0.9)
    initial, _ = model.loss_and_gradient(x, y, loss)
    for _ in range(30):
        value, gradient = model.loss_and_gradient(x, y, loss)
        optimizer.step_model(model, gradient)
    final, _ = model.loss_and_gradient(x, y, loss)
    assert final < initial * 0.7


# --------------------------------------------------------------------------- #
# Metrics
# --------------------------------------------------------------------------- #
def test_top1_accuracy():
    logits = np.array([[1.0, 5.0], [2.0, 0.0], [0.0, 3.0], [4.0, 1.0]])
    labels = np.array([1, 0, 0, 0])
    assert top1_accuracy(logits, labels) == pytest.approx(0.75)
    with pytest.raises(ConfigurationError):
        top1_accuracy(logits, labels[:2])


def test_cross_entropy_loss_metric_matches_loss_class():
    logits = np.random.default_rng(0).standard_normal((6, 4))
    labels = np.random.default_rng(1).integers(0, 4, size=6)
    assert cross_entropy_loss(logits, labels) == pytest.approx(
        SoftmaxCrossEntropy().value(logits, labels)
    )


def test_evaluate_model_batches(small_classification_data):
    train, test = small_classification_data
    model = build_mlp(train.flat_feature_dim, train.num_classes, hidden=(16,), seed=0)
    metrics = evaluate_model(model, test.inputs, test.labels, batch_size=32)
    assert 0.0 <= metrics["accuracy"] <= 1.0
    assert metrics["loss"] > 0.0
    with pytest.raises(ConfigurationError):
        evaluate_model(model, test.inputs[:0], test.labels[:0])
