"""Tests for losses, the Sequential container and model builders."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.nn.layers import Dense, ReLU
from repro.nn.losses import MeanSquaredError, SoftmaxCrossEntropy, softmax
from repro.nn.models import Sequential, build_cnn, build_mlp, build_resnet_lite


# --------------------------------------------------------------------------- #
# Losses
# --------------------------------------------------------------------------- #
def test_softmax_rows_sum_to_one():
    logits = np.random.default_rng(0).standard_normal((5, 7)) * 10
    probs = softmax(logits)
    assert np.allclose(probs.sum(axis=1), 1.0)
    assert np.all(probs > 0)


def test_softmax_is_shift_invariant():
    logits = np.array([[1.0, 2.0, 3.0]])
    assert np.allclose(softmax(logits), softmax(logits + 100.0))


def test_cross_entropy_perfect_prediction_is_near_zero():
    logits = np.array([[100.0, 0.0], [0.0, 100.0]])
    labels = np.array([0, 1])
    assert SoftmaxCrossEntropy().value(logits, labels) < 1e-6


def test_cross_entropy_uniform_prediction():
    logits = np.zeros((4, 10))
    labels = np.array([0, 3, 5, 9])
    assert SoftmaxCrossEntropy().value(logits, labels) == pytest.approx(np.log(10), abs=1e-9)


def test_cross_entropy_gradient_matches_numerical():
    rng = np.random.default_rng(0)
    logits = rng.standard_normal((4, 5))
    labels = rng.integers(0, 5, size=4)
    loss = SoftmaxCrossEntropy()
    analytic = loss.gradient(logits.copy(), labels)
    numeric = np.zeros_like(logits)
    epsilon = 1e-6
    for i in range(logits.shape[0]):
        for j in range(logits.shape[1]):
            plus = logits.copy()
            plus[i, j] += epsilon
            minus = logits.copy()
            minus[i, j] -= epsilon
            numeric[i, j] = (loss.value(plus, labels) - loss.value(minus, labels)) / (
                2 * epsilon
            )
    assert np.allclose(analytic, numeric, atol=1e-6)


def test_cross_entropy_validation():
    loss = SoftmaxCrossEntropy()
    with pytest.raises(ConfigurationError):
        loss.value(np.zeros(3), np.zeros(3, dtype=int))
    with pytest.raises(ConfigurationError):
        loss.value(np.zeros((2, 3)), np.array([0]))
    with pytest.raises(ConfigurationError):
        loss.value(np.zeros((2, 3)), np.array([0, 5]))


def test_mse_value_and_gradient():
    loss = MeanSquaredError()
    predictions = np.array([[1.0, 2.0]])
    targets = np.array([[0.0, 0.0]])
    assert loss.value(predictions, targets) == pytest.approx(2.5)
    assert np.allclose(loss.gradient(predictions, targets), [[1.0, 2.0]])
    with pytest.raises(ConfigurationError):
        loss.value(np.zeros((2, 2)), np.zeros((2, 3)))


# --------------------------------------------------------------------------- #
# Sequential container
# --------------------------------------------------------------------------- #
def make_tiny_model(seed=0):
    return Sequential([Dense(4, 8, rng=seed), ReLU(), Dense(8, 3, rng=seed + 1)], name="tiny")


def test_sequential_forward_shape():
    model = make_tiny_model()
    out = model.forward(np.ones((5, 4)))
    assert out.shape == (5, 3)
    assert model.predict(np.ones((2, 4))).shape == (2, 3)


def test_sequential_requires_layers():
    with pytest.raises(ConfigurationError):
        Sequential([])


def test_flat_params_roundtrip():
    model = make_tiny_model()
    flat = model.get_flat_params()
    assert flat.size == model.num_parameters() == 4 * 8 + 8 + 8 * 3 + 3
    new = np.arange(flat.size, dtype=np.float64)
    model.set_flat_params(new)
    assert np.allclose(model.get_flat_params(), new)
    with pytest.raises(ConfigurationError):
        model.set_flat_params(np.zeros(3))


def test_set_flat_params_is_in_place():
    """Composite layers keep references to parameter arrays; writes must be in place."""
    model = make_tiny_model()
    original_arrays = model.parameter_arrays()
    model.set_flat_params(np.zeros(model.num_parameters()))
    for before, after in zip(original_arrays, model.parameter_arrays()):
        assert before is after
        assert np.all(after == 0.0)


def test_loss_and_gradient_shapes():
    model = make_tiny_model()
    loss = SoftmaxCrossEntropy()
    x = np.random.default_rng(0).standard_normal((6, 4))
    y = np.random.default_rng(1).integers(0, 3, size=6)
    value, gradient = model.loss_and_gradient(x, y, loss)
    assert np.isfinite(value)
    assert gradient.shape == (model.num_parameters(),)
    assert np.any(gradient != 0.0)


def test_model_gradient_matches_numerical():
    model = make_tiny_model()
    loss = SoftmaxCrossEntropy()
    rng = np.random.default_rng(2)
    x = rng.standard_normal((5, 4))
    y = rng.integers(0, 3, size=5)
    _, analytic = model.loss_and_gradient(x, y, loss)
    params = model.get_flat_params()
    numeric = np.zeros_like(params)
    epsilon = 1e-6
    for idx in range(0, params.size, 7):  # spot-check every 7th parameter
        perturbed = params.copy()
        perturbed[idx] += epsilon
        model.set_flat_params(perturbed)
        plus = loss.value(model.forward(x), y)
        perturbed[idx] -= 2 * epsilon
        model.set_flat_params(perturbed)
        minus = loss.value(model.forward(x), y)
        numeric[idx] = (plus - minus) / (2 * epsilon)
    model.set_flat_params(params)
    mask = np.arange(params.size) % 7 == 0
    assert np.allclose(analytic[mask], numeric[mask], atol=1e-5)


def test_zero_grads():
    model = make_tiny_model()
    loss = SoftmaxCrossEntropy()
    model.loss_and_gradient(np.ones((2, 4)), np.array([0, 1]), loss)
    model.zero_grads()
    assert np.all(model.flat_gradient() == 0.0)


# --------------------------------------------------------------------------- #
# Builders
# --------------------------------------------------------------------------- #
def test_build_mlp_structure_and_determinism():
    a = build_mlp(10, 3, hidden=(8, 4), seed=5)
    b = build_mlp(10, 3, hidden=(8, 4), seed=5)
    c = build_mlp(10, 3, hidden=(8, 4), seed=6)
    assert a.forward(np.ones((1, 10))).shape == (1, 3)
    assert np.allclose(a.get_flat_params(), b.get_flat_params())
    assert not np.allclose(a.get_flat_params(), c.get_flat_params())


def test_build_mlp_with_batch_norm():
    model = build_mlp(6, 2, hidden=(5,), seed=0, batch_norm=True)
    out = model.forward(np.random.default_rng(0).standard_normal((8, 6)))
    assert out.shape == (8, 2)


def test_build_cnn_shapes():
    model = build_cnn((3, 8, 8), num_classes=4, channels=(4, 8), seed=0)
    x = np.random.default_rng(0).standard_normal((2, 3, 8, 8))
    assert model.forward(x).shape == (2, 4)


def test_build_cnn_too_many_blocks():
    with pytest.raises(ConfigurationError):
        build_cnn((1, 4, 4), num_classes=2, channels=(4, 8, 16), seed=0)


def test_build_resnet_lite_shapes():
    model = build_resnet_lite(12, 5, width=16, num_blocks=2, seed=0)
    out = model.forward(np.random.default_rng(0).standard_normal((3, 12)))
    assert out.shape == (3, 5)
    flat = model.get_flat_params()
    model.set_flat_params(flat * 0.5)
    assert np.allclose(model.get_flat_params(), flat * 0.5)
