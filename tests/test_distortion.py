"""Tests for repro.core.distortion — worst-case distortion versus paper tables."""

import pytest

from repro.core.distortion import (
    claim2_exact_c_max,
    count_distorted,
    distorted_files,
    distortion_comparison_table,
    epsilon_hat,
    majority_threshold,
    max_distortion,
    max_distortion_exhaustive,
    max_distortion_greedy,
    max_distortion_local_search,
)
from repro.exceptions import ConfigurationError
from repro.experiments.paper_reference import TABLE3, TABLE4


# --------------------------------------------------------------------------- #
# Basic pieces
# --------------------------------------------------------------------------- #
def test_majority_threshold():
    assert majority_threshold(1) == 1
    assert majority_threshold(3) == 2
    assert majority_threshold(5) == 3
    with pytest.raises(ConfigurationError):
        majority_threshold(4)
    with pytest.raises(ConfigurationError):
        majority_threshold(0)


def test_distorted_files_simple_cases(mols_assignment):
    # No Byzantines: nothing is distorted.
    assert distorted_files(mols_assignment, []).size == 0
    # One Byzantine cannot reach the threshold r' = 2.
    assert count_distorted(mols_assignment, [0]) == 0
    # Workers 0 and 5 share exactly one file (file 0 per Table 2).
    assert list(distorted_files(mols_assignment, [0, 5])) == [0]
    assert epsilon_hat(mols_assignment, [0, 5]) == pytest.approx(1 / 25)


def test_distorted_files_full_control(mols_assignment):
    # All workers Byzantine: everything is distorted.
    assert count_distorted(mols_assignment, range(15)) == 25


# --------------------------------------------------------------------------- #
# Exhaustive search versus the paper's Table 3 (MOLS l=5, r=3)
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("q", sorted(TABLE3))
def test_exhaustive_matches_paper_table3(mols_assignment, q):
    expected_c_max, expected_eps, _, _, expected_gamma = TABLE3[q]
    result = max_distortion_exhaustive(mols_assignment, q)
    assert result.c_max == expected_c_max
    assert result.epsilon == pytest.approx(expected_eps, abs=0.005)
    assert result.gamma == pytest.approx(expected_gamma, abs=0.01)
    assert result.exact is True
    # The returned Byzantine set actually achieves c_max.
    assert count_distorted(mols_assignment, result.byzantine_workers) == result.c_max


@pytest.mark.parametrize("q", [3, 4, 5, 6])
def test_exhaustive_matches_paper_table4(ramanujan_case2, q):
    expected_c_max = TABLE4[q][0]
    result = max_distortion_exhaustive(ramanujan_case2.assignment, q)
    assert result.c_max == expected_c_max


def test_exhaustive_zero_byzantine(mols_assignment):
    result = max_distortion_exhaustive(mols_assignment, 0)
    assert result.c_max == 0
    assert result.byzantine_workers == ()


def test_q_out_of_range(mols_assignment):
    with pytest.raises(ConfigurationError):
        max_distortion(mols_assignment, -1)
    with pytest.raises(ConfigurationError):
        max_distortion(mols_assignment, 16)


# --------------------------------------------------------------------------- #
# Heuristics agree with the exhaustive optimum on the paper's instances
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("q", [2, 3, 4, 5])
def test_local_search_matches_exhaustive(mols_assignment, q):
    exact = max_distortion_exhaustive(mols_assignment, q)
    heuristic = max_distortion_local_search(mols_assignment, q, seed=0)
    assert heuristic.c_max == exact.c_max


def test_greedy_is_a_lower_bound(mols_assignment):
    for q in (2, 3, 4, 5, 6):
        exact = max_distortion_exhaustive(mols_assignment, q)
        greedy = max_distortion_greedy(mols_assignment, q)
        assert greedy.c_max <= exact.c_max
        assert count_distorted(mols_assignment, greedy.byzantine_workers) == greedy.c_max


def test_local_search_zero_byzantine(mols_assignment):
    assert max_distortion_local_search(mols_assignment, 0).c_max == 0


# --------------------------------------------------------------------------- #
# Dispatcher
# --------------------------------------------------------------------------- #
def test_auto_uses_exhaustive_for_small_spaces(mols_assignment):
    result = max_distortion(mols_assignment, 3, method="auto")
    assert result.method == "exhaustive"
    assert result.exact


def test_auto_falls_back_to_heuristic(mols_assignment):
    result = max_distortion(mols_assignment, 7, method="auto", exhaustive_limit=10)
    assert result.method == "local_search"
    assert not result.exact
    # Still matches the known optimum for this instance.
    assert result.c_max == TABLE3[7][0]


def test_explicit_methods(mols_assignment):
    assert max_distortion(mols_assignment, 3, method="greedy").method == "greedy"
    assert max_distortion(mols_assignment, 3, method="exhaustive").method == "exhaustive"
    assert (
        max_distortion(mols_assignment, 3, method="local_search").method == "local_search"
    )
    with pytest.raises(ConfigurationError):
        max_distortion(mols_assignment, 3, method="quantum")


# --------------------------------------------------------------------------- #
# Claim 2 exact values
# --------------------------------------------------------------------------- #
def test_claim2_r3():
    assert claim2_exact_c_max(0, 3) == 0
    assert claim2_exact_c_max(1, 3) == 0
    assert claim2_exact_c_max(2, 3) == 1
    assert claim2_exact_c_max(3, 3) == 3


def test_claim2_r5():
    assert claim2_exact_c_max(2, 5) == 0
    assert claim2_exact_c_max(3, 5) == 1
    assert claim2_exact_c_max(4, 5) == 1
    assert claim2_exact_c_max(5, 5) == 2


def test_claim2_validation():
    with pytest.raises(ConfigurationError):
        claim2_exact_c_max(4, 3)  # q > r
    with pytest.raises(ConfigurationError):
        claim2_exact_c_max(2, 4)  # even r
    with pytest.raises(ConfigurationError):
        claim2_exact_c_max(-1, 3)


def test_claim2_matches_simulation_mols(mols_assignment):
    for q in range(0, 4):
        assert (
            max_distortion_exhaustive(mols_assignment, q).c_max
            == claim2_exact_c_max(q, 3)
        )


def test_claim2_matches_simulation_ramanujan_case2(ramanujan_case2):
    for q in range(0, 6):
        assert (
            max_distortion_exhaustive(ramanujan_case2.assignment, q).c_max
            == claim2_exact_c_max(q, 5)
        )


# --------------------------------------------------------------------------- #
# Comparison table
# --------------------------------------------------------------------------- #
def test_distortion_comparison_table_layout(mols_assignment):
    rows = distortion_comparison_table(mols_assignment, [2, 3])
    assert [row["q"] for row in rows] == [2, 3]
    for row in rows:
        for column in (
            "c_max",
            "epsilon_byzshield",
            "epsilon_baseline",
            "epsilon_frc",
            "gamma",
            "exact",
        ):
            assert column in row
    assert rows[0]["epsilon_baseline"] == pytest.approx(2 / 15)
    assert rows[0]["epsilon_frc"] == pytest.approx(0.2)
