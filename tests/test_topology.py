"""Hierarchical two-level aggregation: topology, bit-identity, composition."""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.majority import majority_vote_votetensor
from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.cluster.topology import GroupTopology, hierarchical_majority_vote
from repro.core.distortion import distorted_files
from repro.core.pipelines import (
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    VanillaPipeline,
)
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import AggregationError, ConfigurationError

DIM = 24


def make_round(assignment, byzantine_workers=(), seed=0, dense=False, dim=DIM):
    """One attacked round: replicated honest rows + per-worker payloads.

    Every Byzantine worker writes its own distinct payload into all of its
    slots (workers of the same parity share a payload so that multi-member
    adversarial classes exist and the tie-break logic is exercised).
    """
    rng = np.random.default_rng(seed)
    honest = rng.standard_normal((assignment.num_files, dim))
    tensor = VoteTensor.from_honest(assignment, honest)
    for w in byzantine_workers:
        payload = rng.standard_normal(dim) * 10.0 ** float(rng.integers(-2, 3))
        if w % 2 == 0:
            payload = np.full(dim, float(w % 4) - 7.5)
        for i in assignment.files_of_worker(w):
            tensor.set_vote(i, w, payload)
    if dense:
        tensor.values  # materializes; drops the COW structure
        assert not tensor.is_lazy
    return tensor, honest


# --------------------------------------------------------------------------- #
# GroupTopology
# --------------------------------------------------------------------------- #
class TestGroupTopology:
    def test_partition_is_contiguous_and_balanced(self):
        topo = GroupTopology(10, 3)
        sizes = [topo.workers_of_group(g).size for g in range(3)]
        assert sum(sizes) == 10
        assert max(sizes) - min(sizes) <= 1
        flat = np.concatenate([topo.workers_of_group(g) for g in range(3)])
        assert np.array_equal(flat, np.arange(10))

    def test_group_of_matches_membership(self):
        topo = GroupTopology(15, 4)
        for g in range(4):
            assert np.array_equal(
                np.nonzero(topo.group_of == g)[0], topo.workers_of_group(g)
            )

    @pytest.mark.parametrize("num_groups", [0, -1, 16])
    def test_rejects_bad_group_count(self, num_groups):
        with pytest.raises(ConfigurationError):
            GroupTopology(15, num_groups)

    def test_rejects_negative_budgets(self):
        with pytest.raises(ConfigurationError):
            GroupTopology(15, 3, q_group=-1)
        with pytest.raises(ConfigurationError):
            GroupTopology(15, 3, q_root=-1)

    def test_rejects_bad_group_index(self):
        with pytest.raises(ConfigurationError):
            GroupTopology(15, 3).workers_of_group(3)

    def test_q_total(self):
        assert GroupTopology(15, 3, q_group=2).q_total == 6

    def test_group_counts_and_admits(self):
        topo = GroupTopology(9, 3, q_group=1)  # groups {0,1,2},{3,4,5},{6,7,8}
        assert np.array_equal(topo.group_counts([0, 4]), [1, 1, 0])
        assert topo.admits([0, 4, 8])
        assert not topo.admits([0, 1])  # two adversaries in group 0
        with pytest.raises(ConfigurationError):
            topo.group_counts([9])

    def test_slot_groups_rejects_out_of_range_workers(self):
        with pytest.raises(ConfigurationError):
            GroupTopology(5, 2).slot_groups(np.array([[0, 5]]))

    def test_equality_and_describe(self):
        a = GroupTopology(15, 3, q_group=1)
        assert a == GroupTopology(15, 3, q_group=1)
        assert a != GroupTopology(15, 5, q_group=1)
        assert hash(a) == hash(GroupTopology(15, 3, q_group=1))
        assert a.describe() == {
            "num_workers": 15, "num_groups": 3,
            "q_group": 1, "q_root": 0, "q_total": 3,
        }


# --------------------------------------------------------------------------- #
# Bit-identity with the flat kernel
# --------------------------------------------------------------------------- #
SCHEMES = [
    ("mols", lambda: MOLSAssignment(load=5, replication=3).assignment),
    ("ramanujan", lambda: RamanujanAssignment(m=5, s=5).assignment),
    ("frc", lambda: FRCAssignment(num_workers=15, replication=3).assignment),
]


class TestHierarchicalBitIdentity:
    @pytest.mark.parametrize("scheme_name,make", SCHEMES, ids=[s[0] for s in SCHEMES])
    @pytest.mark.parametrize("dense", [False, True], ids=["lazy", "dense"])
    @pytest.mark.parametrize("num_groups", [2, 3, 5])
    def test_matches_flat_vote(self, scheme_name, make, dense, num_groups):
        assignment = make()
        for trial in range(4):
            rng = np.random.default_rng(1000 * num_groups + trial)
            q = int(rng.integers(0, assignment.num_workers // 2 + 1))
            byz = rng.choice(assignment.num_workers, size=q, replace=False)
            tensor, _ = make_round(assignment, byz, seed=trial, dense=dense)
            topo = GroupTopology(assignment.num_workers, num_groups)
            flat_w, flat_c = majority_vote_votetensor(tensor, 0.0)
            hier_w, hier_c = hierarchical_majority_vote(tensor, topo)
            assert np.array_equal(hier_w, flat_w)
            assert np.array_equal(hier_c, flat_c)

    @pytest.mark.parametrize("block_size", [1, 7, 10**6])
    def test_blockwise_matches_monolithic(self, mols_assignment, block_size):
        tensor, _ = make_round(mols_assignment, (0, 3, 7, 8), seed=5)
        topo = GroupTopology(mols_assignment.num_workers, 3)
        mono_w, mono_c = hierarchical_majority_vote(tensor, topo)
        blk_w, blk_c = hierarchical_majority_vote(tensor, topo, block_size=block_size)
        assert np.array_equal(blk_w, mono_w)
        assert np.array_equal(blk_c, mono_c)

    def test_one_group_is_the_flat_vote(self, mols_assignment):
        tensor, _ = make_round(mols_assignment, (1, 2), seed=3)
        topo = GroupTopology(mols_assignment.num_workers, 1)
        flat = majority_vote_votetensor(tensor, 0.0)
        hier = hierarchical_majority_vote(tensor, topo)
        assert np.array_equal(hier[0], flat[0])
        assert np.array_equal(hier[1], flat[1])

    def test_rejects_workers_outside_topology(self, mols_assignment):
        tensor, _ = make_round(mols_assignment, seed=0)
        with pytest.raises(ConfigurationError):
            hierarchical_majority_vote(tensor, GroupTopology(5, 2))

    def test_rejects_empty_replication(self, mols_assignment):
        tensor, _ = make_round(mols_assignment, seed=0)
        empty = tensor.slot_subset(
            np.arange(tensor.num_files), np.empty(0, dtype=np.int64)
        )
        with pytest.raises(AggregationError):
            hierarchical_majority_vote(empty, GroupTopology(15, 3))

    def test_honest_round_counts_full_replication(self, ramanujan_case2):
        assignment = ramanujan_case2.assignment
        tensor, honest = make_round(assignment, seed=9)
        topo = GroupTopology(assignment.num_workers, 5)
        winners, counts = hierarchical_majority_vote(tensor, topo)
        assert np.array_equal(winners, honest)
        assert np.array_equal(counts, np.full(assignment.num_files, assignment.replication))


# --------------------------------------------------------------------------- #
# Robustness composition: per-group budgets -> flat guarantee
# --------------------------------------------------------------------------- #
class TestRobustnessComposition:
    def test_admitted_placements_compose(self, mols_assignment):
        """Any admitted q_group-per-group placement aggregates like the flat
        path, and recovers the honest gradients whenever the flat majority
        bound holds (the file is not distorted)."""
        topo = GroupTopology(mols_assignment.num_workers, 3, q_group=1)
        rng = np.random.default_rng(42)
        for trial in range(10):
            # exactly q_group adversaries per group: q_total in all
            byz = np.array([
                rng.choice(topo.workers_of_group(g), size=topo.q_group, replace=False)
                for g in range(topo.num_groups)
            ]).ravel()
            assert topo.admits(byz)
            assert byz.size == topo.q_total
            tensor, honest = make_round(mols_assignment, byz, seed=100 + trial)
            flat_w, flat_c = majority_vote_votetensor(tensor, 0.0)
            hier_w, hier_c = hierarchical_majority_vote(tensor, topo)
            assert np.array_equal(hier_w, flat_w)
            assert np.array_equal(hier_c, flat_c)
            bad = set(distorted_files(mols_assignment, byz))
            for i in range(mols_assignment.num_files):
                if i not in bad:
                    assert np.array_equal(hier_w[i], honest[i])

    def test_unadmitted_placement_still_matches_flat(self, mols_assignment):
        """Exceeding q_group loses the guarantee, never the bit-identity."""
        topo = GroupTopology(mols_assignment.num_workers, 3, q_group=1)
        byz = tuple(topo.workers_of_group(0)[:3])  # 3 adversaries in one group
        assert not topo.admits(byz)
        tensor, _ = make_round(mols_assignment, byz, seed=7)
        flat = majority_vote_votetensor(tensor, 0.0)
        hier = hierarchical_majority_vote(tensor, topo)
        assert np.array_equal(hier[0], flat[0])
        assert np.array_equal(hier[1], flat[1])


# --------------------------------------------------------------------------- #
# Pipeline integration
# --------------------------------------------------------------------------- #
class TestPipelineTopology:
    def test_topology_pipeline_matches_flat_pipeline(self, mols_assignment):
        tensor, _ = make_round(mols_assignment, (0, 4, 9), seed=11)
        topo = GroupTopology(mols_assignment.num_workers, 3, q_group=1)
        flat = ByzShieldPipeline(mols_assignment)
        hier = ByzShieldPipeline(mols_assignment, topology=topo)
        assert np.array_equal(
            hier.aggregate_tensor(tensor), flat.aggregate_tensor(tensor)
        )

    def test_topology_pipeline_matches_flat_under_partial_mask(self, mols_assignment):
        tensor, _ = make_round(mols_assignment, (0, 4), seed=13)
        rng = np.random.default_rng(0)
        mask = rng.random(tensor.workers.shape) < 0.7
        mask[:, 0] = True  # keep every file aggregatable
        topo = GroupTopology(mols_assignment.num_workers, 5)
        flat = ByzShieldPipeline(mols_assignment)
        hier = ByzShieldPipeline(mols_assignment, topology=topo)
        assert np.array_equal(
            hier.aggregate_tensor(tensor, mask), flat.aggregate_tensor(tensor, mask)
        )

    def test_blockwise_pipeline_matches_monolithic(self, frc_15_3):
        assignment = frc_15_3.assignment
        tensor, _ = make_round(assignment, (2, 6), seed=17)
        topo = GroupTopology(assignment.num_workers, 5)
        mono = DetoxPipeline(assignment)
        blk = DetoxPipeline(assignment, topology=topo, block_size=5)
        assert np.array_equal(
            blk.aggregate_tensor(tensor), mono.aggregate_tensor(tensor)
        )

    def test_topology_with_tolerance_rejected(self, mols_assignment):
        topo = GroupTopology(mols_assignment.num_workers, 3)
        with pytest.raises(ConfigurationError):
            ByzShieldPipeline(mols_assignment, vote_tolerance=1e-6, topology=topo)
        with pytest.raises(ConfigurationError):
            DetoxPipeline(
                FRCAssignment(num_workers=15, replication=3).assignment,
                vote_tolerance=1e-6,
                topology=GroupTopology(15, 3),
            )

    def test_topology_worker_count_mismatch_rejected(self, mols_assignment):
        with pytest.raises(ConfigurationError):
            ByzShieldPipeline(mols_assignment, topology=GroupTopology(10, 2))

    def test_vanilla_rejects_topology_and_block_size(self, baseline_10):
        assignment = baseline_10.assignment
        with pytest.raises(ConfigurationError):
            VanillaPipeline(
                assignment,
                aggregator=CoordinateWiseMedian(),
                topology=GroupTopology(assignment.num_workers, 2),
            )
        with pytest.raises(ConfigurationError):
            VanillaPipeline(
                assignment, aggregator=CoordinateWiseMedian(), block_size=8
            )

    def test_draco_accepts_topology(self, frc_15_3):
        assignment = frc_15_3.assignment
        tensor, _ = make_round(assignment, (1,), seed=19)
        topo = GroupTopology(assignment.num_workers, 3)
        flat = DracoPipeline(assignment, num_byzantine=1)
        hier = DracoPipeline(assignment, num_byzantine=1, topology=topo)
        assert np.array_equal(
            hier.aggregate_tensor(tensor), flat.aggregate_tensor(tensor)
        )

    def test_describe_mentions_topology(self, mols_assignment):
        topo = GroupTopology(mols_assignment.num_workers, 3, q_group=1, q_root=1)
        desc = ByzShieldPipeline(mols_assignment, topology=topo).describe()
        assert "topology" in desc
        assert "groups=3" in desc["topology"]
