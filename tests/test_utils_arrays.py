"""Tests for repro.utils.arrays."""

import numpy as np
import pytest

from repro.utils.arrays import (
    flatten_arrays,
    pairwise_squared_distances,
    stack_vectors,
    unflatten_vector,
)


def test_flatten_and_unflatten_roundtrip():
    arrays = [np.arange(6).reshape(2, 3).astype(float), np.array([1.5, -2.0]), np.ones((2, 2, 2))]
    flat = flatten_arrays(arrays)
    assert flat.shape == (6 + 2 + 8,)
    restored = unflatten_vector(flat, [a.shape for a in arrays])
    for original, back in zip(arrays, restored):
        assert np.allclose(original, back)


def test_flatten_empty():
    assert flatten_arrays([]).size == 0


def test_unflatten_size_mismatch_raises():
    with pytest.raises(ValueError):
        unflatten_vector(np.zeros(5), [(2, 3)])


def test_stack_vectors_shapes():
    stacked = stack_vectors([np.zeros(4), np.ones(4), 2 * np.ones(4)])
    assert stacked.shape == (3, 4)
    assert np.allclose(stacked[2], 2.0)


def test_stack_vectors_dimension_mismatch():
    with pytest.raises(ValueError):
        stack_vectors([np.zeros(3), np.zeros(4)])


def test_stack_vectors_empty():
    with pytest.raises(ValueError):
        stack_vectors([])


def test_pairwise_squared_distances_matches_naive():
    rng = np.random.default_rng(0)
    X = rng.standard_normal((6, 5))
    fast = pairwise_squared_distances(X)
    naive = np.array(
        [[np.sum((X[i] - X[j]) ** 2) for j in range(6)] for i in range(6)]
    )
    assert np.allclose(fast, naive, atol=1e-10)
    assert np.all(np.diag(fast) == 0.0)
    assert np.all(fast >= 0.0)


def test_pairwise_squared_distances_requires_matrix():
    with pytest.raises(ValueError):
        pairwise_squared_distances(np.zeros(5))
