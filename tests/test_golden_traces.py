"""The golden-trace regression matrix.

Every catalog scenario is re-run and compared digest-by-digest against its
committed trace under ``tests/golden/``.  A failure here means some layer of
the round data path — worker compute, attack, fault injection, majority
voting, robust aggregation or the optimizer — changed behaviour at the bit
level.  If the change was intentional, regenerate with::

    PYTHONPATH=src python -m repro.cli scenario record
"""

from __future__ import annotations

import json

import pytest

from repro.scenarios import (
    default_golden_dir,
    get_scenario,
    golden_path,
    replay_golden,
    run_scenario,
    scenario_names,
)
from repro.scenarios.trace import RunTrace

NAMES = scenario_names()


def test_matrix_covers_acceptance_envelope():
    """≥ 20 scenarios spanning ≥ 3 schemes, ≥ 3 attacks, stragglers, dropout
    and a rotating adversary (the ISSUE's acceptance floor)."""
    specs = [get_scenario(name) for name in NAMES]
    assert len(specs) >= 20
    assert len({s.cluster.scheme for s in specs}) >= 3
    assert len({s.attack.name for s in specs if s.attack}) >= 3
    fault_kinds = {f.kind for s in specs for f in s.faults}
    assert {"stragglers", "dropout"} <= fault_kinds
    assert any(
        s.attack is not None and s.attack.schedule.kind == "rotating" for s in specs
    )


def test_every_scenario_has_a_golden_trace():
    missing = [name for name in NAMES if not golden_path(name).exists()]
    assert not missing, (
        f"missing golden traces for {missing}; run 'repro scenario record'"
    )


def test_no_orphan_golden_traces():
    orphans = [
        path.stem
        for path in sorted(default_golden_dir().glob("*.json"))
        if path.stem not in NAMES
    ]
    assert not orphans, f"golden traces without catalog scenarios: {orphans}"


@pytest.mark.parametrize("name", NAMES)
def test_scenario_replays_bit_exactly(name):
    replay_golden(name)


@pytest.mark.parametrize("name", NAMES[:3])
def test_golden_files_are_valid_self_describing_json(name):
    data = json.loads(golden_path(name).read_text())
    trace = RunTrace.from_dict(data)
    assert trace.scenario == name
    assert trace.spec_digest == get_scenario(name).digest()
    assert len(trace.rounds) == get_scenario(name).training.num_iterations


def test_spec_digest_guards_against_silent_catalog_edits():
    """If a catalog scenario definition drifts, the replay must fail on the
    spec digest (not silently compare different runs)."""
    name = NAMES[0]
    golden = RunTrace.from_json_file(golden_path(name))
    result = run_scenario(get_scenario(name))
    assert result.trace.spec_digest == golden.spec_digest
