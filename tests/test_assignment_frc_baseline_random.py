"""Tests for FRC, baseline and random assignment schemes."""

import numpy as np
import pytest

from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.assignment.random_scheme import RandomAssignment
from repro.exceptions import ConfigurationError


# --------------------------------------------------------------------------- #
# FRC
# --------------------------------------------------------------------------- #
def test_frc_structure(frc_15_3):
    assignment = frc_15_3.assignment
    assert assignment.num_workers == 15
    assert assignment.num_files == 5
    assert assignment.computational_load == 1
    assert assignment.replication == 3
    assert frc_15_3.num_groups == 5


def test_frc_groups_are_consecutive(frc_15_3):
    assert frc_15_3.workers_of_group(0) == [0, 1, 2]
    assert frc_15_3.workers_of_group(4) == [12, 13, 14]
    assert frc_15_3.group_of_worker(7) == 2
    assignment = frc_15_3.assignment
    for worker in range(15):
        assert assignment.files_of_worker(worker) == (worker // 3,)


def test_frc_validation():
    with pytest.raises(ConfigurationError):
        FRCAssignment(num_workers=16, replication=3)  # not divisible
    with pytest.raises(ConfigurationError):
        FRCAssignment(num_workers=16, replication=4)  # even group size
    f = FRCAssignment(num_workers=15, replication=3)
    with pytest.raises(ConfigurationError):
        f.group_of_worker(15)
    with pytest.raises(ConfigurationError):
        f.workers_of_group(5)


@pytest.mark.parametrize(
    "q,expected",
    [(0, 0.0), (1, 0.0), (2, 0.2), (3, 0.2), (4, 0.4), (5, 0.4), (6, 0.6), (7, 0.6)],
)
def test_frc_worst_case_epsilon_matches_paper_table3(q, expected):
    assert FRCAssignment.worst_case_epsilon(q, 15, 3) == pytest.approx(expected)


def test_frc_worst_case_epsilon_table4_column():
    expected = {3: 0.2, 4: 0.2, 5: 0.2, 6: 0.4, 9: 0.6, 12: 0.8}
    for q, value in expected.items():
        assert FRCAssignment.worst_case_epsilon(q, 25, 5) == pytest.approx(value)


def test_frc_worst_case_epsilon_negative_q():
    with pytest.raises(ConfigurationError):
        FRCAssignment.worst_case_epsilon(-1, 15, 3)


# --------------------------------------------------------------------------- #
# Baseline
# --------------------------------------------------------------------------- #
def test_baseline_structure(baseline_10):
    assignment = baseline_10.assignment
    assert assignment.num_workers == 10
    assert assignment.num_files == 10
    assert assignment.computational_load == 1
    assert assignment.replication == 1
    assert np.array_equal(assignment.biadjacency, np.eye(10))


def test_baseline_epsilon():
    assert BaselineAssignment.worst_case_epsilon(3, 25) == pytest.approx(0.12)
    assert BaselineAssignment.worst_case_epsilon(0, 25) == 0.0


# --------------------------------------------------------------------------- #
# Random
# --------------------------------------------------------------------------- #
def test_random_assignment_is_biregular():
    scheme = RandomAssignment(num_workers=15, num_files=25, replication=3, seed=0)
    assignment = scheme.assignment
    assert assignment.num_workers == 15
    assert assignment.num_files == 25
    assert assignment.computational_load == 5
    assert assignment.replication == 3


def test_random_assignment_deterministic_per_seed():
    a = RandomAssignment(15, 25, 3, seed=3).build()
    b = RandomAssignment(15, 25, 3, seed=3).build()
    c = RandomAssignment(15, 25, 3, seed=4).build()
    assert a == b
    assert a != c


def test_random_assignment_validation():
    with pytest.raises(ConfigurationError):
        RandomAssignment(num_workers=15, num_files=24, replication=3)  # K does not divide f*r
    with pytest.raises(ConfigurationError):
        RandomAssignment(num_workers=2, num_files=1, replication=4)  # load > f


def test_random_assignment_load_exceeding_files_rejected():
    # A single worker would have to hold every copy of every file, giving it
    # duplicate copies of the same file; the constructor rejects this upfront.
    with pytest.raises(ConfigurationError):
        RandomAssignment(num_workers=1, num_files=2, replication=2, max_attempts=3)
