"""Copy-on-write replication property tests.

:meth:`VoteTensor.from_honest` builds a *lazy* tensor — one shared ``(f, d)``
base plus per-(file, slot) overrides — instead of materializing the dense
``(f, r, d)`` cube.  These tests pin the contract that makes that safe: for
every pipeline, registered attack and fault injector, the lazy tensor is
**bit-identical** to a fully materialized one, and the ``q = 0`` fast path
never copies a single replica.
"""

import numpy as np
import pytest

from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.baseline import BaselineAssignment
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.assignment.ramanujan import RamanujanAssignment
from repro.attacks.base import Attack, AttackContext
from repro.attacks.registry import available_attacks, create_attack
from repro.cluster.faults import (
    DropoutInjector,
    FaultContext,
    MessageCorruptionInjector,
    StragglerInjector,
)
from repro.core.pipelines import (
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    VanillaPipeline,
)
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import ConfigurationError

DIM = 7

SCHEMES = {
    "mols": lambda: MOLSAssignment(load=5, replication=3).assignment,
    "ramanujan": lambda: RamanujanAssignment(m=3, s=5).assignment,
    "frc": lambda: FRCAssignment(num_workers=15, replication=3).assignment,
    "baseline": lambda: BaselineAssignment(num_workers=10).assignment,
}


def pipelines_for(name, assignment):
    if name in ("mols", "ramanujan"):
        return [ByzShieldPipeline(assignment)]
    if name == "frc":
        return [
            DetoxPipeline(assignment),
            DracoPipeline(assignment, num_byzantine=1),
        ]
    return [VanillaPipeline(assignment, aggregator=CoordinateWiseMedian())]


def honest_matrix_for(assignment, seed=0):
    rng = np.random.default_rng(seed)
    return rng.standard_normal((assignment.num_files, DIM))


def make_pair(assignment, seed=0):
    """(lazy, dense) tensors of the same honest round."""
    matrix = honest_matrix_for(assignment, seed)
    lazy = VoteTensor.from_honest(assignment, matrix)
    r = assignment.worker_slot_matrix().shape[1]
    dense = VoteTensor(
        np.repeat(matrix[:, None, :], r, axis=1), assignment.worker_slot_matrix()
    )
    assert lazy.is_lazy and not dense.is_lazy
    return lazy, dense, matrix


def make_context(assignment, matrix, byzantine, seed=0):
    return AttackContext(
        assignment=assignment,
        byzantine_workers=tuple(byzantine),
        honest_file_gradients={i: matrix[i] for i in range(matrix.shape[0])},
        iteration=1,
        rng=np.random.default_rng(seed),
        honest_matrix=matrix,
    )


def assert_tensors_identical(lazy, dense):
    """Densify the lazy tensor and compare bit-for-bit."""
    assert np.array_equal(
        lazy.materialize_files(np.arange(lazy.num_files)), dense.values
    )


# --------------------------------------------------------------------------- #
# q = 0 fast path: a clean round never copies a replica
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_q0_round_never_materializes(scheme):
    assignment = SCHEMES[scheme]()
    lazy, dense, _ = make_pair(assignment)
    for lazy_pipe, dense_pipe in zip(
        pipelines_for(scheme, assignment), pipelines_for(scheme, assignment)
    ):
        lazy_clone = lazy.copy()
        out_lazy = lazy_pipe.aggregate_tensor(lazy_clone)
        out_dense = dense_pipe.aggregate_tensor(dense.copy())
        assert np.array_equal(out_lazy, out_dense), lazy_pipe.pipeline_name
        # aggregation of a clean round must not densify nor allocate overrides
        assert lazy_clone.is_lazy
        assert lazy_clone.num_overridden_slots == 0


def test_q0_attack_application_stays_lazy(mols_assignment):
    lazy, _, matrix = make_pair(mols_assignment)
    for name in available_attacks():
        attack = create_attack(name)
        context = make_context(mols_assignment, matrix, byzantine=())
        attack.apply_tensor(context, lazy)
    assert lazy.is_lazy and lazy.num_overridden_slots == 0


# --------------------------------------------------------------------------- #
# COW vs materialized: every registered attack, every scheme
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
@pytest.mark.parametrize("attack_name", available_attacks())
def test_cow_matches_materialized_under_attack(scheme, attack_name):
    assignment = SCHEMES[scheme]()
    lazy, dense, matrix = make_pair(assignment, seed=3)
    byzantine = (0, min(5, assignment.num_workers - 1))
    attack = create_attack(attack_name)
    for tensor in (lazy, dense):
        tensor.mark_byzantine(byzantine)
        context = make_context(assignment, matrix, byzantine, seed=11)
        attack.apply_tensor(context, tensor)
    assert lazy.is_lazy  # attacks go through the slot API, never .values
    assert lazy.num_overridden_slots > 0
    assert_tensors_identical(lazy, dense)
    for lazy_pipe, dense_pipe in zip(
        pipelines_for(scheme, assignment), pipelines_for(scheme, assignment)
    ):
        assert np.array_equal(
            lazy_pipe.aggregate_tensor(lazy.copy()),
            dense_pipe.aggregate_tensor(dense.copy()),
        ), (attack_name, lazy_pipe.pipeline_name)


# --------------------------------------------------------------------------- #
# COW vs materialized: fault injectors
# --------------------------------------------------------------------------- #
INJECTORS = {
    "straggler_timeout": lambda: StragglerInjector(
        count=4, delay_model="exponential", delay=2.0, timeout=1.0
    ),
    "dropout": lambda: DropoutInjector(probability=0.4, down_for=2),
    "corruption_zero": lambda: MessageCorruptionInjector(probability=0.3, mode="zero"),
    "corruption_scale": lambda: MessageCorruptionInjector(
        probability=0.3, mode="scale", factor=5.0
    ),
    "corruption_noise": lambda: MessageCorruptionInjector(
        probability=0.3, mode="noise", factor=2.0
    ),
}


@pytest.mark.parametrize("injector_name", sorted(INJECTORS))
def test_cow_matches_materialized_under_faults(mols_assignment, injector_name):
    lazy, dense, _ = make_pair(mols_assignment, seed=5)
    events = []
    for tensor in (lazy, dense):
        injector = INJECTORS[injector_name]()
        context = FaultContext(
            assignment=mols_assignment, iteration=2, rng=np.random.default_rng(7)
        )
        events.append(injector.inject(tensor, context))
    assert [e.as_dict() for e in events[0]] == [e.as_dict() for e in events[1]]
    assert lazy.is_lazy
    assert_tensors_identical(lazy, dense)


def test_cow_matches_materialized_attack_then_faults(mols_assignment):
    """The full hot-path sequence: attack writes, then every injector."""
    lazy, dense, matrix = make_pair(mols_assignment, seed=9)
    byzantine = (1, 4, 8)
    attack = create_attack("gaussian_noise", sigma=3.0)
    for tensor in (lazy, dense):
        tensor.mark_byzantine(byzantine)
        attack.apply_tensor(
            context=make_context(mols_assignment, matrix, byzantine, seed=13),
            tensor=tensor,
        )
        for injector_name in sorted(INJECTORS):
            INJECTORS[injector_name]().inject(
                tensor,
                FaultContext(
                    assignment=mols_assignment,
                    iteration=0,
                    rng=np.random.default_rng(17),
                ),
            )
    assert lazy.is_lazy
    assert_tensors_identical(lazy, dense)
    pipeline = ByzShieldPipeline(mols_assignment)
    assert np.array_equal(
        pipeline.aggregate_tensor(lazy), pipeline.aggregate_tensor(dense)
    )


# --------------------------------------------------------------------------- #
# Vectorized noise attacks vs the dict-based adapter fallback
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize(
    "attack_factory",
    [
        lambda: create_attack("gaussian_noise", sigma=2.5),
        lambda: create_attack("gaussian_noise", sigma=1.0, around_true_gradient=True),
        lambda: create_attack("uniform_random", magnitude=4.0),
    ],
    ids=["gaussian", "gaussian_around_true", "uniform"],
)
@pytest.mark.parametrize("scheme", sorted(SCHEMES))
def test_vectorized_noise_attacks_match_adapter(scheme, attack_factory):
    """One stacked (m, d) draw must consume the RNG stream exactly as the
    adapter's m successive (d,) draws do — bit-identical payloads."""
    assignment = SCHEMES[scheme]()
    byzantine = (0, 2, min(6, assignment.num_workers - 1))
    lazy, dense, matrix = make_pair(assignment, seed=21)
    attack = attack_factory()
    lazy.mark_byzantine(byzantine)
    dense.mark_byzantine(byzantine)
    # vectorized override on the lazy tensor
    attack.apply_tensor(make_context(assignment, matrix, byzantine, seed=23), lazy)
    # base-class adapter (dict apply + per-slot scatter) on the dense tensor
    Attack.apply_tensor(
        attack, make_context(assignment, matrix, byzantine, seed=23), dense
    )
    assert lazy.is_lazy
    assert_tensors_identical(lazy, dense)


# --------------------------------------------------------------------------- #
# Slot-API unit tests
# --------------------------------------------------------------------------- #
def test_write_and_read_slots_broadcast(mols_assignment):
    lazy, dense, _ = make_pair(mols_assignment, seed=1)
    files = np.array([0, 3, 3], dtype=np.int64)
    slots = np.array([1, 0, 2], dtype=np.int64)
    payload = np.arange(3 * DIM, dtype=np.float64).reshape(3, DIM)
    for tensor in (lazy, dense):
        tensor.write_slots(files, slots, payload)  # (m, d) rows
        tensor.write_slots([5], [1], 2.5)  # scalar fill
        tensor.write_slots([6], [2], np.full(DIM, -1.0))  # (d,) vector
        assert np.array_equal(tensor.read_slots(files, slots), payload)
        assert np.all(tensor.read_slots([5], [1]) == 2.5)
    assert lazy.is_lazy and lazy.num_overridden_slots == 5
    assert_tensors_identical(lazy, dense)


def test_add_scale_zero_slots(mols_assignment):
    lazy, dense, matrix = make_pair(mols_assignment, seed=2)
    files = np.array([1, 2, 4], dtype=np.int64)
    slots = np.array([0, 1, 2], dtype=np.int64)
    delta = np.random.default_rng(3).standard_normal((3, DIM))
    for tensor in (lazy, dense):
        tensor.add_to_slots(files, slots, delta)
        tensor.scale_slots(files[:2], slots[:2], 0.5)
        tensor.zero_slots(files[2:], slots[2:])
    assert_tensors_identical(lazy, dense)
    # untouched replicas of a touched file still read the honest row
    untouched_slot = 2 if 2 != slots[0] else 1
    assert np.array_equal(lazy.read_slots([1], [untouched_slot])[0], matrix[1])


def test_slot_rows_untouched_column_is_shared_readonly_base(mols_assignment):
    lazy, _, matrix = make_pair(mols_assignment)
    rows = lazy.slot_rows(0)
    assert np.array_equal(rows, matrix)
    assert not rows.flags.writeable
    assert lazy.is_lazy  # slot_rows never densifies
    # touching a slot in column 0 switches that column to a patched copy
    lazy.write_slots([2], [0], 9.0)
    patched = lazy.slot_rows(0)
    assert patched.flags.writeable  # a copy now, not the shared base
    assert np.all(patched[2] == 9.0)
    assert np.array_equal(patched[0], matrix[0])


def test_touched_files_and_materialize_files(mols_assignment):
    lazy, _, matrix = make_pair(mols_assignment)
    assert lazy.touched_files().size == 0
    lazy.write_slots([4, 7], [1, 2], 1.5)
    assert lazy.touched_files().tolist() == [4, 7]
    sub = lazy.materialize_files([4, 7])
    assert sub.shape == (2, lazy.replication, DIM)
    assert np.all(sub[0, 1] == 1.5) and np.all(sub[1, 2] == 1.5)
    assert np.array_equal(sub[0, 0], matrix[4])
    assert lazy.is_lazy  # materialize_files is a per-file copy, not a switch


def test_base_rows_only_defined_for_lazy(mols_assignment):
    lazy, dense, matrix = make_pair(mols_assignment)
    base = lazy.base_rows()
    assert np.array_equal(base, matrix)
    assert not base.flags.writeable
    with pytest.raises(ConfigurationError):
        dense.base_rows()


def test_values_densifies_permanently_and_keeps_writes(mols_assignment):
    lazy, _, matrix = make_pair(mols_assignment)
    lazy.write_slots([3], [1], 7.0)
    cube = lazy.values
    assert not lazy.is_lazy
    assert lazy.num_overridden_slots == 0  # dense tensors report zero
    assert np.all(cube[3, 1] == 7.0)
    # in-place writes through the dense cube are never lost
    cube[0, 0] = -3.0
    assert np.all(lazy.values[0, 0] == -3.0)
    assert np.array_equal(lazy.values[0, 1], matrix[0])


def test_lazy_copy_is_independent_and_cheap(mols_assignment):
    lazy, _, matrix = make_pair(mols_assignment)
    lazy.write_slots([2], [0], 4.0)
    clone = lazy.copy()
    assert clone.is_lazy
    assert clone.base_rows() is not None
    # the immutable honest base is shared, the override bookkeeping is not
    assert clone.read_slots([2], [0])[0][0] == 4.0
    clone.write_slots([5], [1], -2.0)
    assert lazy.num_overridden_slots == 1
    assert clone.num_overridden_slots == 2
    assert np.array_equal(lazy.read_slots([5], [1])[0], matrix[5])
    # writing to the original does not leak into the clone either
    lazy.write_slots([2], [0], 8.0)
    assert clone.read_slots([2], [0])[0][0] == 4.0


def test_set_vote_routes_through_cow(mols_assignment):
    lazy, dense, _ = make_pair(mols_assignment)
    worker = int(lazy.workers[0, 1])
    vec = np.full(DIM, 3.25)
    lazy.set_vote(0, worker, vec)
    dense.set_vote(0, worker, vec)
    assert lazy.is_lazy and lazy.num_overridden_slots == 1
    assert_tensors_identical(lazy, dense)


def test_float32_round_stays_float32_through_cow(mols_assignment):
    matrix = (
        np.random.default_rng(0)
        .standard_normal((mols_assignment.num_files, DIM))
        .astype(np.float32)
    )
    lazy = VoteTensor.from_honest(mols_assignment, matrix)
    assert lazy.dtype == np.float32
    lazy.write_slots([1], [0], 2.0)
    assert lazy.read_slots([1], [0]).dtype == np.float32
    assert lazy.values.dtype == np.float32


def test_lazy_majority_survives_hash_collisions(monkeypatch, mols_assignment):
    """Degenerate hash weights throw every override into one bucket; the lazy
    kernel's collision fallback must still match the dense kernel bit-for-bit."""
    from repro.aggregation import majority as majority_module
    from repro.aggregation.majority import (
        majority_vote_tensor,
        majority_vote_votetensor,
    )

    monkeypatch.setitem(
        majority_module._HASH_WEIGHTS, DIM, np.zeros(DIM, dtype=np.uint64)
    )
    f = mols_assignment.num_files
    rng = np.random.default_rng(11)
    for _ in range(40):
        lazy, _, _ = make_pair(mols_assignment, seed=int(rng.integers(1 << 30)))
        for _ in range(int(rng.integers(0, 2 * f))):
            i, k = int(rng.integers(f)), int(rng.integers(3))
            payload = float(rng.integers(-1, 2))  # small alphabet: real dupes
            lazy.write_slots([i], [k], payload)
        dense_values = lazy.materialize_files(np.arange(f)).copy()
        lw, lc = majority_vote_votetensor(lazy)
        dw, dc = majority_vote_tensor(dense_values)
        np.testing.assert_array_equal(lw, dw)
        np.testing.assert_array_equal(lc, dc)
