"""Tests for Krum, Multi-Krum and Bulyan."""

import numpy as np
import pytest

from repro.aggregation.bulyan import BulyanAggregator
from repro.aggregation.krum import KrumAggregator, MultiKrumAggregator, krum_scores
from repro.exceptions import AggregationError


def clustered_votes(num_honest=10, num_byzantine=2, dim=6, offset=50.0, seed=0):
    rng = np.random.default_rng(seed)
    honest = rng.standard_normal((num_honest, dim)) * 0.1 + 1.0
    byzantine = rng.standard_normal((num_byzantine, dim)) * 0.1 + offset
    return np.vstack([honest, byzantine]), honest


def test_krum_scores_shape_and_requirement():
    votes, _ = clustered_votes()
    scores = krum_scores(votes, num_byzantine=2)
    assert scores.shape == (12,)
    with pytest.raises(AggregationError):
        krum_scores(votes[:5], num_byzantine=2)  # needs 2q+3 = 7 votes
    with pytest.raises(AggregationError):
        krum_scores(votes, num_byzantine=-1)


def test_krum_selects_an_honest_vote():
    votes, honest = clustered_votes()
    result = KrumAggregator(num_byzantine=2)(votes)
    distances_to_honest = np.linalg.norm(honest - result, axis=1)
    assert distances_to_honest.min() < 1e-9  # Krum returns one of the inputs
    assert np.linalg.norm(result - honest.mean(axis=0)) < 1.0


def test_krum_minimum_votes():
    assert KrumAggregator(num_byzantine=3).minimum_votes() == 9
    assert KrumAggregator(num_byzantine=3).minimum_votes(1) == 5
    with pytest.raises(AggregationError):
        KrumAggregator(num_byzantine=-1)


def test_multi_krum_averages_honest_votes():
    votes, honest = clustered_votes()
    result = MultiKrumAggregator(num_byzantine=2)(votes)
    assert np.linalg.norm(result - honest.mean(axis=0)) < 0.5


def test_multi_krum_explicit_k():
    votes, honest = clustered_votes()
    result = MultiKrumAggregator(num_byzantine=2, multi_k=3)(votes)
    assert np.linalg.norm(result - honest.mean(axis=0)) < 0.5
    with pytest.raises(AggregationError):
        MultiKrumAggregator(num_byzantine=1, multi_k=0)


def test_multi_krum_insufficient_votes():
    votes, _ = clustered_votes(num_honest=4, num_byzantine=1)
    with pytest.raises(AggregationError):
        MultiKrumAggregator(num_byzantine=3)(votes)


def test_bulyan_requires_4q_plus_3():
    votes, _ = clustered_votes(num_honest=8, num_byzantine=2)  # 10 votes
    with pytest.raises(AggregationError):
        BulyanAggregator(num_byzantine=2)(votes)  # needs 11
    assert BulyanAggregator(num_byzantine=2).minimum_votes() == 11
    with pytest.raises(AggregationError):
        BulyanAggregator(num_byzantine=-1)


def test_bulyan_filters_byzantine_cluster():
    votes, honest = clustered_votes(num_honest=13, num_byzantine=2)
    result = BulyanAggregator(num_byzantine=2)(votes)
    assert np.linalg.norm(result - honest.mean(axis=0)) < 0.5


def test_bulyan_defends_single_coordinate_attack():
    """The 'hidden vulnerability' scenario: one coordinate blown up slightly."""
    rng = np.random.default_rng(1)
    honest = rng.standard_normal((13, 8)) * 0.05
    byzantine = rng.standard_normal((2, 8)) * 0.05
    byzantine[:, 3] += 5.0  # large change in one coordinate only
    votes = np.vstack([honest, byzantine])
    result = BulyanAggregator(num_byzantine=2)(votes)
    assert abs(result[3] - honest[:, 3].mean()) < 0.5


def test_krum_identical_votes():
    votes = np.ones((9, 4))
    assert np.allclose(KrumAggregator(num_byzantine=2)(votes), 1.0)
    assert np.allclose(BulyanAggregator(num_byzantine=1)(votes[:7]), 1.0)
