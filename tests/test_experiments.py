"""Tests for the experiment generators (tables, figures, bounds, ablations, report)."""

import numpy as np
import pytest

from repro.exceptions import ConfigurationError
from repro.experiments.accuracy import (
    SCALE_PRESETS,
    available_figures,
    figure_spec,
    run_accuracy_figure,
)
from repro.experiments.bounds import bound_tightness_table, claim2_verification_table
from repro.experiments.paper_reference import TABLE3, TABLE4, TABLE5, TABLE6
from repro.experiments.report import format_rows, format_series, rows_to_csv
from repro.experiments.tables import generate_table3, generate_table6
from repro.experiments.timing import generate_figure12


# --------------------------------------------------------------------------- #
# Tables
# --------------------------------------------------------------------------- #
def test_generate_table3_matches_paper():
    rows = generate_table3()
    assert [row["q"] for row in rows] == list(range(2, 8))
    for row in rows:
        c_max, eps, eps_base, eps_frc, gamma = TABLE3[row["q"]]
        assert row["c_max"] == c_max
        assert row["epsilon_byzshield"] == pytest.approx(eps, abs=0.005)
        assert row["epsilon_frc"] == pytest.approx(eps_frc, abs=0.005)
        assert row["gamma"] == pytest.approx(gamma, abs=0.01)
        assert row["exact"]


def test_generate_table6_small_q_matches_paper():
    rows = generate_table6(method="local_search")
    by_q = {row["q"]: row for row in rows}
    # Heuristic values must match the paper for the small-q rows and never
    # exceed the expansion bound anywhere.
    for q in (2, 3, 4, 5):
        assert by_q[q]["c_max"] == TABLE6[q][0]
    for row in rows:
        assert row["c_max"] <= row["gamma"] + 1e-9


def test_paper_reference_tables_are_consistent():
    """Published ε̂ equals published c_max / f for every row of every table."""
    for table, f in ((TABLE3, 25), (TABLE4, 25), (TABLE5, 49), (TABLE6, 49)):
        for q, (c_max, eps, _, _, gamma) in table.items():
            assert eps == pytest.approx(c_max / f, abs=0.006)
            assert c_max <= gamma + 1e-9


# --------------------------------------------------------------------------- #
# Bounds
# --------------------------------------------------------------------------- #
def test_bound_tightness_table_default():
    rows = bound_tightness_table(q_values=range(2, 6))
    for row in rows:
        assert row["bound_satisfied"]
        assert row["gamma_over_f"] == pytest.approx(row["closed_form_epsilon_bound"], rel=1e-6)
        assert row["epsilon"] <= row["gamma_over_f"] + 1e-9


def test_claim2_verification_table():
    rows = claim2_verification_table()
    assert all(row["match"] for row in rows)
    assert [row["q"] for row in rows] == [0, 1, 2, 3]


# --------------------------------------------------------------------------- #
# Accuracy figures
# --------------------------------------------------------------------------- #
def test_available_figures_and_specs():
    figures = available_figures()
    for expected in ("fig2", "fig5", "fig8", "fig11"):
        assert expected in figures
    spec = figure_spec("fig2")
    assert spec.cluster == "k25"
    assert len(spec.runs) == 6
    labels = [run.label for run in spec.runs]
    assert "ByzShield, q=5" in labels
    with pytest.raises(ConfigurationError):
        figure_spec("fig99")


def test_figure_specs_have_unique_labels():
    for figure_id in available_figures():
        labels = [run.label for run in figure_spec(figure_id).runs]
        assert len(labels) == len(set(labels)), figure_id


def test_run_accuracy_figure_tiny_subset():
    histories = run_accuracy_figure(
        "fig2", scale="tiny", seed=0, run_filter=["ByzShield, q=3", "Median, q=3"]
    )
    assert set(histories) == {"ByzShield, q=3", "Median, q=3"}
    for history in histories.values():
        assert len(history) == SCALE_PRESETS["tiny"].num_iterations
        assert not np.isnan(history.final_accuracy)
    # ByzShield's realized distortion is far below the baseline's q/K.
    assert (
        histories["ByzShield, q=3"].distortion_fractions.mean()
        < histories["Median, q=3"].distortion_fractions.mean()
    )


def test_run_accuracy_figure_k15_cluster():
    histories = run_accuracy_figure(
        "fig9", scale="tiny", seed=0, run_filter=["ByzShield, q=2"]
    )
    history = histories["ByzShield, q=2"]
    # MOLS (l=5, r=3) with q=2 corrupts exactly 1/25 of the files.
    assert np.allclose(history.distortion_fractions, 1 / 25)


def test_run_accuracy_figure_unknown_scale():
    with pytest.raises(ConfigurationError):
        run_accuracy_figure("fig2", scale="galactic")


# --------------------------------------------------------------------------- #
# Timing figure
# --------------------------------------------------------------------------- #
def test_generate_figure12_shape_and_ordering():
    rows = generate_figure12(model_dim=100_000)
    schemes = [row["scheme"] for row in rows]
    assert schemes == ["Median", "ByzShield", "DETOX-MoM"]
    by_scheme = {row["scheme"]: row for row in rows}
    # ByzShield pays the largest communication and total cost (Figure 12 shape).
    assert by_scheme["ByzShield"]["communication"] > by_scheme["Median"]["communication"]
    assert by_scheme["ByzShield"]["communication"] > by_scheme["DETOX-MoM"]["communication"]
    assert by_scheme["ByzShield"]["total"] > by_scheme["Median"]["total"]
    # Redundancy schemes pay r x the baseline computation.
    assert by_scheme["ByzShield"]["computation"] == pytest.approx(
        5 * by_scheme["Median"]["computation"], rel=1e-6
    )
    assert by_scheme["DETOX-MoM"]["computation"] == pytest.approx(
        by_scheme["ByzShield"]["computation"], rel=1e-6
    )


# --------------------------------------------------------------------------- #
# Report rendering
# --------------------------------------------------------------------------- #
def test_format_rows_and_csv():
    rows = [{"q": 2, "eps": 0.04, "exact": True}, {"q": 3, "eps": 0.12, "exact": False}]
    text = format_rows(rows, title="demo")
    assert "demo" in text
    assert "0.040" in text
    assert "yes" in text and "no" in text
    csv = rows_to_csv(rows)
    assert csv.splitlines()[0] == "q,eps,exact"
    assert len(csv.splitlines()) == 3
    assert format_rows([]) == "(empty table)"
    assert rows_to_csv([]) == ""


def test_format_series():
    series = {
        "a": (np.array([1, 2]), np.array([0.5, 0.6])),
        "b": (np.array([2]), np.array([0.4])),
    }
    text = format_series(series, title="accuracy")
    assert "accuracy" in text
    assert "iteration" in text
    lines = text.splitlines()
    assert len(lines) == 5  # title, header, separator, two iteration rows
    assert format_series({}) == "(no series)"
