"""VoteTensor edge cases: degenerate shapes and over-budget adversaries.

The paper's tolerance bound says majority voting recovers a file whenever
fewer than ``r' = ceil((r+1)/2)`` of its copies are adversarial.  Above the
bound there is no correctness guarantee — but the implementation must still
*degrade gracefully* (return the colluding payload, report the distortion)
rather than crash.  Alongside that, the packed representation has to work at
the degenerate extremes: a single file, one-dimensional gradients, and a
round where every single worker is compromised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.aggregation.majority import majority_vote_tensor
from repro.assignment.frc import FRCAssignment
from repro.core.pipelines import ByzShieldPipeline, DetoxPipeline
from repro.core.vote_tensor import VoteTensor
from repro.exceptions import ConfigurationError
from repro.scenarios import ScenarioSpec, get_scenario, run_scenario


class TestSingleFile:
    """f = 1: FRC with one group is a one-file assignment."""

    @pytest.fixture
    def assignment(self):
        return FRCAssignment(num_workers=3, replication=3).assignment

    def test_from_honest_single_file(self, assignment):
        assert assignment.num_files == 1
        tensor = VoteTensor.from_honest(assignment, np.array([[1.0, 2.0, 3.0]]))
        assert tensor.shape == (1, 3, 3)
        winners, counts = majority_vote_tensor(tensor.values)
        np.testing.assert_array_equal(winners, [[1.0, 2.0, 3.0]])
        assert counts.tolist() == [3]

    def test_single_file_round_aggregates(self, assignment):
        tensor = VoteTensor.from_honest(assignment, np.array([[1.0, 2.0, 3.0]]))
        tensor.set_vote(0, 2, np.array([9.0, 9.0, 9.0]))  # one corrupted copy
        pipeline = DetoxPipeline(assignment)
        np.testing.assert_array_equal(
            pipeline.aggregate_tensor(tensor), [1.0, 2.0, 3.0]
        )


class TestScalarGradients:
    """d = 1: one-parameter models must flow through the whole kernel."""

    def test_majority_with_d1(self, mols_assignment):
        honest = np.arange(mols_assignment.num_files, dtype=np.float64)[:, None]
        tensor = VoteTensor.from_honest(mols_assignment, honest)
        winners, counts = majority_vote_tensor(tensor.values)
        np.testing.assert_array_equal(winners, honest)
        assert np.all(counts == mols_assignment.replication)

    def test_d1_with_minority_corruption(self, mols_assignment):
        honest = np.ones((mols_assignment.num_files, 1))
        tensor = VoteTensor.from_honest(mols_assignment, honest)
        worker = int(tensor.workers[0, 0])
        for file_index in range(tensor.num_files):
            row = tensor.workers[file_index]
            if worker in row:
                tensor.set_vote(file_index, worker, np.array([-5.0]))
        winners, _ = majority_vote_tensor(tensor.values)
        np.testing.assert_array_equal(winners, honest)  # r=3 outvotes 1 copy

    def test_d1_tolerance_path(self, mols_assignment):
        honest = np.full((mols_assignment.num_files, 1), 2.0)
        tensor = VoteTensor.from_honest(mols_assignment, honest)
        winners, counts = majority_vote_tensor(tensor.values, 0.5)
        np.testing.assert_allclose(winners, honest)
        assert np.all(counts == mols_assignment.replication)


class TestAllAdversarialFiles:
    """Every copy of every file is Byzantine: the vote must yield the
    colluding payload (no honest copies remain) without raising."""

    def test_unanimous_payload_wins(self, mols_assignment):
        f = mols_assignment.num_files
        honest = np.ones((f, 4))
        tensor = VoteTensor.from_honest(mols_assignment, honest)
        tensor.mark_byzantine(tuple(range(mols_assignment.num_workers)))
        payload = np.full(4, -7.0)
        tensor.values[tensor.byzantine_mask] = payload
        assert bool(tensor.byzantine_mask.all())
        winners, counts = majority_vote_tensor(tensor.values)
        np.testing.assert_array_equal(winners, np.tile(payload, (f, 1)))
        assert np.all(counts == mols_assignment.replication)

    def test_pipeline_returns_payload_not_error(self, mols_assignment):
        tensor = VoteTensor.from_honest(
            mols_assignment, np.ones((mols_assignment.num_files, 4))
        )
        tensor.values[:] = -7.0
        result = ByzShieldPipeline(mols_assignment).aggregate_tensor(tensor)
        np.testing.assert_array_equal(result, np.full(4, -7.0))


class TestOverBudgetAdversary:
    """q above the paper's tolerance bound degrades gracefully."""

    def test_scenario_with_all_workers_byzantine_completes(self):
        data = get_scenario("mols-clean").to_dict()
        data["name"] = "edge-all-byzantine"
        data["attack"] = {
            "name": "constant",
            "params": {"value": -1.0},
            "selection": "random",
            "schedule": {"kind": "static", "q": 15},  # every worker, K = 15
        }
        result = run_scenario(ScenarioSpec.from_dict(data))
        assert len(result.trace.rounds) == 4
        # Every file's majority is corrupted every round.
        assert all(
            r.num_distorted == 25 and r.q == 15 for r in result.trace.rounds
        )
        assert float(result.history.distortion_fractions.mean()) == 1.0

    def test_omniscient_q_above_bound_completes(self):
        data = get_scenario("mols-alie-omniscient").to_dict()
        data["name"] = "edge-q-over-bound"
        # MOLS l=5, r=3 tolerates few Byzantines; q=9 of K=15 is far above.
        data["attack"]["schedule"] = {"kind": "static", "q": 9}
        result = run_scenario(ScenarioSpec.from_dict(data))
        assert len(result.trace.rounds) == 4
        assert all(r.num_distorted > 0 for r in result.trace.rounds)

    def test_schedule_rejects_q_above_cluster_size(self):
        data = get_scenario("mols-clean").to_dict()
        data["attack"] = {
            "name": "constant",
            "selection": "random",
            "schedule": {"kind": "static", "q": 16},  # K = 15
        }
        from repro.exceptions import AttackError

        with pytest.raises(AttackError, match="q=16"):
            run_scenario(ScenarioSpec.from_dict(data))


class TestShapeValidation:
    def test_empty_values_rejected(self, mols_assignment):
        with pytest.raises(ConfigurationError, match=r"\(f, r, d\)"):
            VoteTensor(np.zeros((2, 3)), np.zeros((2, 3), dtype=np.int64))

    def test_honest_matrix_row_count_must_match_files(self, mols_assignment):
        with pytest.raises(ConfigurationError, match="rows"):
            VoteTensor.from_honest(mols_assignment, np.ones((3, 4)))
