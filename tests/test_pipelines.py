"""Tests for the aggregation pipelines (ByzShield, DETOX, DRACO, vanilla)."""

import numpy as np
import pytest

from repro.aggregation.mean import MeanAggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.mols import MOLSAssignment
from repro.core.pipelines import (
    ByzShieldPipeline,
    DetoxPipeline,
    DracoPipeline,
    VanillaPipeline,
)
from repro.exceptions import AggregationError, ConfigurationError


DIM = 4


def honest_votes(assignment, gradient_of_file):
    """Build file_votes where every worker returns the true file gradient."""
    return {
        i: {w: gradient_of_file(i) for w in assignment.workers_of_file(i)}
        for i in range(assignment.num_files)
    }


def constant_gradient(value):
    return lambda i: np.full(DIM, float(value))


def indexed_gradient(i):
    return np.full(DIM, float(i))


def corrupt(file_votes, assignment, byzantine_workers, payload):
    """Replace the returns of the Byzantine workers by ``payload``."""
    for i, votes in file_votes.items():
        for w in votes:
            if w in byzantine_workers:
                votes[w] = payload.copy()
    return file_votes


# --------------------------------------------------------------------------- #
# ByzShield
# --------------------------------------------------------------------------- #
def test_byzshield_no_attack_equals_median_of_true_gradients(mols_assignment):
    votes = honest_votes(mols_assignment, indexed_gradient)
    pipeline = ByzShieldPipeline(mols_assignment)
    result = pipeline.aggregate(votes)
    expected = np.median(
        np.vstack([indexed_gradient(i) for i in range(25)]), axis=0
    )
    assert np.allclose(result, expected)


def test_byzshield_corrects_minority_corruption(mols_assignment):
    """With q < r' no file majority can be corrupted: output is attack-free."""
    votes = honest_votes(mols_assignment, constant_gradient(1.0))
    corrupt(votes, mols_assignment, {0}, np.full(DIM, -100.0))
    result = ByzShieldPipeline(mols_assignment).aggregate(votes)
    assert np.allclose(result, 1.0)


def test_byzshield_vote_majority_flips_with_enough_byzantines(mols_assignment):
    """Workers 0 and 5 share file 0; corrupting both flips that file's vote."""
    votes = honest_votes(mols_assignment, constant_gradient(1.0))
    corrupt(votes, mols_assignment, {0, 5}, np.full(DIM, -100.0))
    pipeline = ByzShieldPipeline(mols_assignment)
    voted = pipeline.voted_gradients(votes)
    assert np.allclose(voted[0], -100.0)
    # But the median across the 25 files still resists a single corrupted file.
    assert np.allclose(pipeline.aggregate(votes), 1.0)


def test_byzshield_requires_odd_replication():
    even = MOLSAssignment(load=5, replication=4, require_odd_replication=False).assignment
    with pytest.raises(ConfigurationError):
        ByzShieldPipeline(even)


def test_byzshield_validates_votes(mols_assignment):
    votes = honest_votes(mols_assignment, constant_gradient(1.0))
    del votes[0]
    with pytest.raises(AggregationError):
        ByzShieldPipeline(mols_assignment).aggregate(votes)

    votes = honest_votes(mols_assignment, constant_gradient(1.0))
    votes[0][99] = np.zeros(DIM)  # vote from a worker not assigned the file
    with pytest.raises(AggregationError):
        ByzShieldPipeline(mols_assignment).aggregate(votes)


def test_byzshield_custom_aggregator(mols_assignment):
    votes = honest_votes(mols_assignment, indexed_gradient)
    pipeline = ByzShieldPipeline(mols_assignment, aggregator=MeanAggregator())
    assert np.allclose(pipeline.aggregate(votes), np.mean(range(25)))


def test_byzshield_describe(mols_assignment):
    info = ByzShieldPipeline(mols_assignment).describe()
    assert info["pipeline"] == "byzshield"


# --------------------------------------------------------------------------- #
# DETOX
# --------------------------------------------------------------------------- #
def test_detox_majority_then_robust(frc_15_3):
    assignment = frc_15_3.assignment
    votes = honest_votes(assignment, indexed_gradient)
    result = DetoxPipeline(assignment, aggregator=CoordinateWiseMedian()).aggregate(votes)
    assert np.allclose(result, np.median(np.arange(5)))


def test_detox_group_corruption(frc_15_3):
    assignment = frc_15_3.assignment
    votes = honest_votes(assignment, constant_gradient(1.0))
    # Corrupt 2 of the 3 workers of group 0: its vote flips.
    corrupt(votes, assignment, {0, 1}, np.full(DIM, -50.0))
    pipeline = DetoxPipeline(assignment, aggregator=CoordinateWiseMedian())
    result = pipeline.aggregate(votes)
    # Median over [−50, 1, 1, 1, 1] is still 1.
    assert np.allclose(result, 1.0)


def test_detox_requires_frc_like_assignment(mols_assignment):
    with pytest.raises(ConfigurationError):
        DetoxPipeline(mols_assignment)


def test_detox_requires_odd_groups():
    # FRCAssignment itself rejects even r, so build a raw graph instead.
    import numpy as np
    from repro.graphs.bipartite import BipartiteAssignment

    H = np.zeros((4, 2), dtype=np.int8)
    H[[0, 1], 0] = 1
    H[[2, 3], 1] = 1
    with pytest.raises(ConfigurationError):
        DetoxPipeline(BipartiteAssignment(H))


# --------------------------------------------------------------------------- #
# DRACO
# --------------------------------------------------------------------------- #
def test_draco_exact_recovery_when_bound_satisfied(frc_15_3):
    assignment = frc_15_3.assignment
    votes = honest_votes(assignment, indexed_gradient)
    corrupt(votes, assignment, {0}, np.full(DIM, 1e6))  # q=1, r=3 >= 2q+1
    pipeline = DracoPipeline(assignment, num_byzantine=1)
    assert pipeline.is_applicable
    result = pipeline.aggregate(votes)
    assert np.allclose(result, np.mean(np.arange(5)))


def test_draco_refuses_when_bound_violated(frc_15_3):
    assignment = frc_15_3.assignment
    votes = honest_votes(assignment, constant_gradient(1.0))
    pipeline = DracoPipeline(assignment, num_byzantine=2)  # r=3 < 2*2+1
    assert not pipeline.is_applicable
    with pytest.raises(AggregationError):
        pipeline.aggregate(votes)


def test_draco_validation(mols_assignment, frc_15_3):
    with pytest.raises(ConfigurationError):
        DracoPipeline(mols_assignment, num_byzantine=1)
    with pytest.raises(ConfigurationError):
        DracoPipeline(frc_15_3.assignment, num_byzantine=-1)


# --------------------------------------------------------------------------- #
# Vanilla
# --------------------------------------------------------------------------- #
def test_vanilla_applies_aggregator_to_worker_gradients(baseline_10):
    assignment = baseline_10.assignment
    votes = honest_votes(assignment, indexed_gradient)
    result = VanillaPipeline(assignment, aggregator=CoordinateWiseMedian()).aggregate(votes)
    assert np.allclose(result, np.median(np.arange(10)))


def test_vanilla_rejects_redundant_assignment(mols_assignment):
    with pytest.raises(ConfigurationError):
        VanillaPipeline(mols_assignment, aggregator=CoordinateWiseMedian())


def test_vanilla_mean_is_vulnerable(baseline_10):
    assignment = baseline_10.assignment
    votes = honest_votes(assignment, constant_gradient(1.0))
    corrupt(votes, assignment, {0}, np.full(DIM, 1e6))
    result = VanillaPipeline(assignment, aggregator=MeanAggregator()).aggregate(votes)
    assert result[0] > 1e3
