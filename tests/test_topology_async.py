"""Hierarchical rounds under the event-driven runtime: group-level quorum."""

from __future__ import annotations

import numpy as np
import pytest

from repro.assignment.frc import FRCAssignment
from repro.cluster.events import LATE_KIND, AsyncRuntime, EventDrivenRound
from repro.cluster.topology import GroupTopology
from repro.core.vote_tensor import VoteTensor
from repro.scenarios.catalog import get_scenario
from repro.scenarios.runner import run_scenario
from repro.scenarios.spec import ScenarioSpec


@pytest.fixture(scope="module")
def frc_6():
    """Six workers, r=3: two files whose three copies share one FRC group —
    with a 2-group topology each file is one 3-slot cell plus nothing else."""
    return FRCAssignment(num_workers=6, replication=3).assignment


def one_round(assignment, dim=4, seed=0):
    rng = np.random.default_rng(seed)
    honest = rng.standard_normal((assignment.num_files, dim))
    return VoteTensor.from_honest(assignment, honest), honest


def collect(tensor, arrivals, topology, **runtime_kwargs):
    runtime = AsyncRuntime(**runtime_kwargs)
    return EventDrivenRound(runtime).collect(
        tensor, np.asarray(arrivals, dtype=np.float64), topology=topology
    )


class TestGroupQuorumCells:
    def test_cell_closes_at_group_quorum_and_rejects_late(self, frc_6):
        # FRC(6, 3): file 0 -> workers {0,1,2} (group 0 of a 2-group split),
        # file 1 -> workers {3,4,5} (group 1).  Quorum 2 closes each file's
        # single non-empty cell at its 2nd copy; the 3rd is group-level late.
        tensor, _ = one_round(frc_6)
        topo = GroupTopology(6, 2)
        arrivals = [[0.1, 0.2, 0.3], [0.1, 0.2, 0.3]]
        out = collect(tensor, arrivals, topo, quorum=2)
        assert out.accepted.sum() == 4
        assert len(out.late_events) == 2
        assert all(e.kind == LATE_KIND for e in out.late_events)
        assert out.group_close_times.shape == (2, 2)
        # file 0 lives entirely in group 0, file 1 entirely in group 1
        assert out.group_close_times[0, 0] == pytest.approx(0.2)
        assert np.isinf(out.group_close_times[0, 1])  # empty cell never closes
        assert out.group_close_times[1, 1] == pytest.approx(0.2)
        assert np.isinf(out.group_close_times[1, 0])

    def test_quorum_clamps_to_local_slot_count(self, frc_6):
        # With 6 groups every cell holds one slot: quorum 3 clamps to 1 per
        # cell, so a file closes only when all of its groups delivered —
        # and nothing is ever late.
        tensor, _ = one_round(frc_6)
        topo = GroupTopology(6, 6)
        out = collect(tensor, [[0.1, 0.2, 0.3], [0.1, 0.2, 0.3]], topo, quorum=3)
        assert out.accepted.all()
        assert not out.late_events
        assert out.file_close_times[0] == pytest.approx(0.3)

    def test_other_groups_stay_open_after_one_cell_closes(self):
        # 5 workers, r=5 (one file), split 3|2.  Quorum 1: each cell closes
        # on its first copy.  Copies 2 and 3 of group 0 are late even though
        # group 1 has not closed yet; group 1's second copy is late too.
        assignment = FRCAssignment(num_workers=5, replication=5).assignment
        tensor, _ = one_round(assignment)
        topo = GroupTopology(5, 2)
        out = collect(tensor, [[0.1, 0.2, 0.3, 0.9, 1.0]], topo, quorum=1)
        assert [e.slot for e in out.late_events] == [1, 2, 4]
        assert out.accepted.tolist() == [[True, False, False, True, False]]
        assert out.group_close_times[0].tolist() == [0.1, 0.9]
        assert out.file_close_times[0] == pytest.approx(0.9)

    def test_late_slots_are_zeroed_in_tensor(self, frc_6):
        tensor, honest = one_round(frc_6)
        topo = GroupTopology(6, 2)
        collect(tensor, [[0.1, 0.2, 0.3], [0.1, 0.2, 0.3]], topo, quorum=2)
        assert np.array_equal(tensor.read_slots(np.array([0]), np.array([2]))[0],
                              np.zeros(tensor.dim))
        # accepted copies keep the honest payload
        assert np.array_equal(tensor.read_slots(np.array([0]), np.array([0]))[0],
                              honest[0])

    def test_flat_round_has_no_group_close_times(self, frc_6):
        tensor, _ = one_round(frc_6)
        out = collect(tensor, [[0.1, 0.2, 0.3], [0.1, 0.2, 0.3]], None, quorum=2)
        assert out.group_close_times is None

    def test_no_quorum_waits_for_every_copy(self, frc_6):
        tensor, _ = one_round(frc_6)
        topo = GroupTopology(6, 2)
        out = collect(tensor, [[0.1, 0.2, 0.3], [0.1, 0.2, 0.3]], topo)
        assert out.accepted.all()
        assert not out.late_events


class TestHierarchicalSyncEquivalence:
    """deadline=inf + no quorum must reproduce the sync round bit-exactly,
    with or without a topology."""

    @pytest.mark.parametrize(
        "name", ["mols-hier-groups3-alie", "ramanujan-hier-groups5-revgrad"]
    )
    def test_deadline_inf_matches_sync_hierarchical(self, name):
        sync = run_scenario(get_scenario(name))
        data = get_scenario(name).to_dict()
        data["name"] += "-async-inf"
        # RuntimeSpec(deadline=None, quorum=None) is not an event runtime;
        # force the event engine with an explicit huge deadline instead.
        data["runtime"] = {"deadline": 1e30}
        event = run_scenario(ScenarioSpec.from_dict(data))
        assert event.trace.final_params_digest == sync.trace.final_params_digest
        for a, b in zip(sync.trace.rounds, event.trace.rounds):
            assert a.votes_digest == b.votes_digest
            assert a.winners_digest == b.winners_digest
            assert a.aggregate_digest == b.aggregate_digest

    def test_group_quorum_partial_scenario_records_group_lates(self):
        result = run_scenario(get_scenario("ramanujan-hier-async-group-quorum"))
        lates = [
            f for r in result.trace.rounds for f in r.faults
            if f.get("kind") == LATE_KIND
        ]
        assert lates  # group-level rejections actually happen
        # Group cells reject far fewer copies than the flat per-file quorum
        # (only cells holding more than `quorum` slots ever reject).
        data = get_scenario("ramanujan-hier-async-group-quorum").to_dict()
        data.pop("topology")
        data["name"] += "-flat"
        flat = run_scenario(ScenarioSpec.from_dict(data))
        flat_lates = [
            f for r in flat.trace.rounds for f in r.faults
            if f.get("kind") == LATE_KIND
        ]
        assert len(lates) < len(flat_lates)
        assert flat.trace.final_params_digest != result.trace.final_params_digest
