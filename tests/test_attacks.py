"""Tests for the attack payloads (ALIE, constant, reversed gradient, noise)."""

import numpy as np
import pytest

from repro.attacks.alie import ALIEAttack, alie_z_max
from repro.attacks.base import AttackContext
from repro.attacks.constant import ConstantAttack
from repro.attacks.noise import GaussianNoiseAttack, UniformRandomAttack
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.exceptions import AttackError


DIM = 6


def make_context(assignment, byzantine, seed=0, gradient_scale=1.0):
    rng = np.random.default_rng(seed)
    honest = {
        i: gradient_scale * rng.standard_normal(DIM)
        for i in range(assignment.num_files)
    }
    return AttackContext(
        assignment=assignment,
        byzantine_workers=tuple(byzantine),
        honest_file_gradients=honest,
        iteration=0,
        rng=np.random.default_rng(seed + 1),
    )


def test_context_properties(mols_assignment):
    context = make_context(mols_assignment, (0, 5))
    assert context.num_byzantine == 2
    assert context.gradient_dim == DIM
    assert context.stacked_honest_gradients().shape == (25, DIM)


def test_context_without_gradients_raises(mols_assignment):
    context = AttackContext(
        assignment=mols_assignment, byzantine_workers=(0,), honest_file_gradients={}
    )
    with pytest.raises(AttackError):
        _ = context.gradient_dim


def test_apply_covers_all_byzantine_files(mols_assignment):
    context = make_context(mols_assignment, (0, 5))
    crafted = ReversedGradientAttack().apply(context)
    expected_keys = {
        (w, f) for w in (0, 5) for f in mols_assignment.files_of_worker(w)
    }
    assert set(crafted) == expected_keys


def test_apply_empty_byzantine_set(mols_assignment):
    context = make_context(mols_assignment, ())
    assert ReversedGradientAttack().apply(context) == {}


def test_reversed_gradient_payload(mols_assignment):
    context = make_context(mols_assignment, (0,))
    attack = ReversedGradientAttack(scale=10.0)
    crafted = attack.apply(context)
    for (worker, file), payload in crafted.items():
        assert np.allclose(payload, -10.0 * context.honest_file_gradients[file])


def test_reversed_gradient_validation():
    with pytest.raises(AttackError):
        ReversedGradientAttack(scale=0.0)
    with pytest.raises(AttackError):
        ReversedGradientAttack(scale=float("inf"))


def test_constant_attack_payload(mols_assignment):
    context = make_context(mols_assignment, (3,))
    crafted = ConstantAttack(value=-2.0).apply(context)
    for payload in crafted.values():
        assert np.allclose(payload, -2.0)
    with pytest.raises(AttackError):
        ConstantAttack(value=float("nan"))


def test_alie_z_max_values():
    # With many voters and few Byzantines the deflection is moderate and positive.
    z = alie_z_max(25, 3)
    assert 0.0 < z < 3.0
    # More Byzantines need fewer honest "supporters", so they can afford a
    # larger deflection while still hiding inside the honest distribution.
    assert alie_z_max(25, 11) >= alie_z_max(25, 3)
    # Degenerate regimes fall back to safe values.
    assert alie_z_max(4, 4) == 1.0
    with pytest.raises(AttackError):
        alie_z_max(0, 0)
    with pytest.raises(AttackError):
        alie_z_max(5, 9)


def test_alie_payload_is_mean_shifted(mols_assignment):
    context = make_context(mols_assignment, (0, 5), gradient_scale=2.0)
    attack = ALIEAttack(z=1.5)
    crafted = attack.apply(context)
    honest = context.stacked_honest_gradients()
    expected = honest.mean(axis=0) - 1.5 * honest.std(axis=0)
    for payload in crafted.values():
        assert np.allclose(payload, expected)


def test_alie_positive_direction(mols_assignment):
    context = make_context(mols_assignment, (0,))
    attack = ALIEAttack(z=1.0, negative_direction=False)
    crafted = attack.apply(context)
    honest = context.stacked_honest_gradients()
    expected = honest.mean(axis=0) + honest.std(axis=0)
    assert np.allclose(next(iter(crafted.values())), expected)


def test_alie_all_payloads_identical_collusion(mols_assignment):
    context = make_context(mols_assignment, (0, 5, 10))
    crafted = ALIEAttack().apply(context)
    payloads = list(crafted.values())
    for p in payloads[1:]:
        assert np.array_equal(p, payloads[0])


def test_alie_requires_prepare(mols_assignment):
    context = make_context(mols_assignment, (0,))
    attack = ALIEAttack()
    with pytest.raises(AttackError):
        attack.craft(context, 0, 0)


def test_alie_invalid_z():
    with pytest.raises(AttackError):
        ALIEAttack(z=-1.0)


def test_gaussian_noise_attack(mols_assignment):
    context = make_context(mols_assignment, (0,))
    crafted = GaussianNoiseAttack(sigma=5.0).apply(context)
    payload = next(iter(crafted.values()))
    assert payload.shape == (DIM,)
    assert np.std(payload) > 0
    with pytest.raises(AttackError):
        GaussianNoiseAttack(sigma=0.0)


def test_gaussian_noise_around_true_gradient(mols_assignment):
    context = make_context(mols_assignment, (0,))
    crafted = GaussianNoiseAttack(sigma=1e-6, around_true_gradient=True).apply(context)
    for (worker, file), payload in crafted.items():
        assert np.allclose(payload, context.honest_file_gradients[file], atol=1e-4)


def test_uniform_random_attack(mols_assignment):
    context = make_context(mols_assignment, (1,))
    crafted = UniformRandomAttack(magnitude=2.0).apply(context)
    for payload in crafted.values():
        assert np.all(np.abs(payload) <= 2.0)
    with pytest.raises(AttackError):
        UniformRandomAttack(magnitude=-1.0)


def test_attack_dimension_check(mols_assignment):
    class BadAttack(ReversedGradientAttack):
        def craft(self, context, worker, file):
            return np.zeros(3)  # wrong dimension

    context = make_context(mols_assignment, (0,))
    with pytest.raises(AttackError):
        BadAttack().apply(context)
