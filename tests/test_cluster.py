"""Tests for the cluster simulation: worker pool, PS, round simulator, timing."""

import numpy as np
import pytest

from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment.frc import FRCAssignment
from repro.assignment.mols import MOLSAssignment
from repro.attacks.constant import ConstantAttack
from repro.attacks.reversed_gradient import ReversedGradientAttack
from repro.attacks.selection import FixedSelector, OmniscientSelector
from repro.cluster.server import ParameterServer
from repro.cluster.simulator import TrainingCluster
from repro.cluster.timing import CostModel, estimate_iteration_timing
from repro.cluster.worker import WorkerPool
from repro.core.pipelines import ByzShieldPipeline
from repro.exceptions import ConfigurationError, TrainingError
from repro.nn.optim import SGD


DIM = 3


def quadratic_gradient_fn(params, inputs, labels):
    """Gradient of 0.5*||params - mean(inputs row-sum direction)||^2 — simple test oracle."""
    target = np.full(DIM, float(inputs.sum()))
    gradient = params - target
    loss = 0.5 * float(np.sum(gradient**2))
    return gradient, loss


def make_file_data(num_files, samples_per_file=2, seed=0):
    rng = np.random.default_rng(seed)
    return {
        i: (rng.standard_normal((samples_per_file, 4)), rng.integers(0, 2, samples_per_file))
        for i in range(num_files)
    }


# --------------------------------------------------------------------------- #
# WorkerPool
# --------------------------------------------------------------------------- #
def test_worker_pool_computes_all_files(mols_assignment):
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    file_data = make_file_data(25)
    gradients, losses = pool.compute_file_gradients(np.zeros(DIM), file_data)
    assert set(gradients) == set(range(25))
    assert all(g.shape == (DIM,) for g in gradients.values())
    assert all(np.isfinite(v) for v in losses.values())


def test_worker_pool_requires_complete_file_data(mols_assignment):
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    with pytest.raises(TrainingError):
        pool.compute_file_gradients(np.zeros(DIM), make_file_data(24))


def test_worker_pool_honest_returns_structure(mols_assignment):
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    file_votes, honest, losses = pool.honest_returns(np.zeros(DIM), make_file_data(25))
    assert set(file_votes) == set(range(25))
    for file_index, votes in file_votes.items():
        assert set(votes) == set(mols_assignment.workers_of_file(file_index))
        for gradient in votes.values():
            assert np.array_equal(gradient, honest[file_index])


def test_worker_pool_shared_vs_recomputed_identical(mols_assignment):
    shared = WorkerPool(mols_assignment, quadratic_gradient_fn, shared_computation=True)
    recomputed = WorkerPool(mols_assignment, quadratic_gradient_fn, shared_computation=False)
    data = make_file_data(25)
    votes_a, _, _ = shared.honest_returns(np.ones(DIM), data)
    votes_b, _, _ = recomputed.honest_returns(np.ones(DIM), data)
    for i in range(25):
        for w in votes_a[i]:
            assert np.allclose(votes_a[i][w], votes_b[i][w])


# --------------------------------------------------------------------------- #
# ParameterServer
# --------------------------------------------------------------------------- #
def test_parameter_server_update(mols_assignment):
    pipeline = ByzShieldPipeline(mols_assignment, aggregator=CoordinateWiseMedian())
    server = ParameterServer(np.zeros(DIM), pipeline, SGD(0.5))
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    file_votes, honest, _ = pool.honest_returns(server.broadcast(), make_file_data(25))
    gradient = server.update(file_votes)
    expected = np.median(np.vstack(list(honest.values())), axis=0)
    assert np.allclose(gradient, expected)
    assert np.allclose(server.params, -0.5 * expected)
    assert server.iteration == 1


def test_parameter_server_validation(mols_assignment):
    pipeline = ByzShieldPipeline(mols_assignment)
    with pytest.raises(TrainingError):
        ParameterServer(np.zeros(0), pipeline, SGD(0.1))


# --------------------------------------------------------------------------- #
# TrainingCluster
# --------------------------------------------------------------------------- #
def test_cluster_round_without_attack(mols_assignment):
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    cluster = TrainingCluster(mols_assignment, pool)
    result = cluster.run_round(np.zeros(DIM), make_file_data(25), iteration=0)
    assert result.byzantine_workers == ()
    assert result.distorted_files == ()
    assert result.distortion_fraction == 0.0
    assert len(result.messages) == 25 * 3
    assert not any(m.is_byzantine for m in result.messages)
    assert np.isfinite(result.mean_file_loss)


def test_cluster_round_with_attack_marks_byzantine_messages(mols_assignment):
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    cluster = TrainingCluster(
        mols_assignment,
        pool,
        attack=ConstantAttack(value=-9.0),
        selector=FixedSelector([0, 5]),
        seed=0,
    )
    result = cluster.run_round(np.zeros(DIM), make_file_data(25), iteration=0)
    assert result.byzantine_workers == (0, 5)
    # Workers 0 and 5 share exactly file 0: its majority flips.
    assert result.distorted_files == (0,)
    assert result.distortion_fraction == pytest.approx(1 / 25)
    byzantine_messages = [m for m in result.messages if m.is_byzantine]
    assert all(np.allclose(m.gradient, -9.0) for m in byzantine_messages)
    assert len(byzantine_messages) == 10  # 2 workers x 5 files each


def test_cluster_round_omniscient_matches_worst_case(mols_assignment):
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    cluster = TrainingCluster(
        mols_assignment,
        pool,
        attack=ReversedGradientAttack(),
        selector=OmniscientSelector(num_byzantine=3, method="exhaustive"),
        seed=0,
    )
    result = cluster.run_round(np.ones(DIM), make_file_data(25), iteration=0)
    assert len(result.distorted_files) == 3  # c_max for q=3 on this graph
    assert result.distortion_fraction == pytest.approx(0.12)


def test_cluster_round_deterministic_given_seed(mols_assignment):
    def build():
        pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
        return TrainingCluster(
            mols_assignment,
            pool,
            attack=ConstantAttack(),
            selector=FixedSelector([0]),
            seed=11,
        )

    data = make_file_data(25)
    a = build().run_round(np.zeros(DIM), data, iteration=2)
    b = build().run_round(np.zeros(DIM), data, iteration=2)
    for i in range(25):
        for w in a.file_votes[i]:
            assert np.array_equal(a.file_votes[i][w], b.file_votes[i][w])


def test_cluster_requires_attack_and_selector_together(mols_assignment):
    pool = WorkerPool(mols_assignment, quadratic_gradient_fn)
    with pytest.raises(TrainingError):
        TrainingCluster(mols_assignment, pool, attack=ConstantAttack(), selector=None)
    with pytest.raises(TrainingError):
        TrainingCluster(mols_assignment, pool, attack=None, selector=FixedSelector([0]))


# --------------------------------------------------------------------------- #
# Timing / cost model
# --------------------------------------------------------------------------- #
def test_timing_redundancy_costs_more_compute_and_communication():
    from repro.assignment.baseline import BaselineAssignment

    baseline = BaselineAssignment(25).assignment
    byzshield = MOLSAssignment(load=5, replication=3).assignment
    base = estimate_iteration_timing(baseline, 750, 10_000, "median", uses_majority_vote=False)
    byz = estimate_iteration_timing(byzshield, 750, 10_000, "median", uses_majority_vote=True)
    assert byz.computation > base.computation
    assert byz.communication > base.communication
    assert byz.aggregation > base.aggregation
    assert byz.total > base.total
    assert base.as_dict()["total"] == pytest.approx(base.total)


def test_timing_detox_communication_less_than_byzshield():
    byzshield = MOLSAssignment(load=5, replication=3).assignment
    detox = FRCAssignment(num_workers=15, replication=3).assignment
    byz = estimate_iteration_timing(byzshield, 750, 10_000, "median")
    det = estimate_iteration_timing(detox, 750, 10_000, "median_of_means")
    assert det.communication < byz.communication


def test_timing_validation_and_cost_model():
    byzshield = MOLSAssignment(load=5, replication=3).assignment
    with pytest.raises(ConfigurationError):
        estimate_iteration_timing(byzshield, 0, 100)
    with pytest.raises(ConfigurationError):
        CostModel(network_per_float=-1.0)
    custom = CostModel(network_latency_per_message=0.0)
    timing = estimate_iteration_timing(byzshield, 750, 1000, cost_model=custom)
    assert timing.communication == pytest.approx(5 * 1000 * custom.network_per_float)


def test_timing_unknown_aggregator_defaults():
    byzshield = MOLSAssignment(load=5, replication=3).assignment
    timing = estimate_iteration_timing(byzshield, 750, 1000, aggregator_name="mystery")
    assert timing.aggregation > 0.0


def test_worker_pool_rejects_compressor_without_shared_computation(mols_assignment):
    """Stochastic compressors would compress each copy differently in
    per-worker recomputation mode, breaking exact majority voting."""
    import pytest as _pytest

    from repro.compression.compressors import RandomKCompressor
    from repro.exceptions import TrainingError as _TrainingError

    def fn(params, inputs, labels):
        return np.zeros(4), 0.0

    with _pytest.raises(_TrainingError, match="shared_computation"):
        WorkerPool(
            mols_assignment,
            fn,
            shared_computation=False,
            compressor=RandomKCompressor(0.5),
        )


def test_fault_streams_independent_with_generator_seed(mols_assignment):
    """Even when the cluster is seeded with a live Generator, toggling fault
    injection must not change the adversary's draws (the fault base seed is
    derived once at construction)."""
    from repro.attacks.constant import ConstantAttack
    from repro.attacks.selection import RandomSelector
    from repro.cluster.faults import MessageCorruptionInjector

    def fn(params, inputs, labels):
        return np.asarray(inputs).sum(axis=0)[:4], 0.5

    file_data = {
        i: (np.ones((2, 4)) * (i + 1), np.zeros(2))
        for i in range(mols_assignment.num_files)
    }
    params = np.zeros(4)

    def byzantine_sets(with_faults: bool):
        pool = WorkerPool(mols_assignment, fn)
        injectors = (
            (MessageCorruptionInjector(probability=0.3, mode="zero"),)
            if with_faults
            else ()
        )
        cluster = TrainingCluster(
            assignment=mols_assignment,
            worker_pool=pool,
            attack=ConstantAttack(value=-1.0),
            selector=RandomSelector(num_byzantine=3),
            seed=np.random.default_rng(42),
            fault_injectors=injectors,
        )
        return [
            cluster.run_round_tensor(params, file_data, t).byzantine_workers
            for t in range(3)
        ]

    assert byzantine_sets(False) == byzantine_sets(True)
