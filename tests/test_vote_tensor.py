"""Unit tests for the VoteTensor round representation and its adapters."""

import numpy as np
import pytest

from repro.core.vote_tensor import VoteTensor
from repro.exceptions import AggregationError, ConfigurationError, TrainingError
from repro.nn.models import build_mlp
from repro.training.gradients import ModelGradientComputer


def honest_matrix(num_files, dim, seed=0):
    return np.random.default_rng(seed).standard_normal((num_files, dim))


# --------------------------------------------------------------------------- #
# Construction and validation
# --------------------------------------------------------------------------- #
def test_from_honest_broadcasts_rows(mols_assignment):
    matrix = honest_matrix(25, 4)
    tensor = VoteTensor.from_honest(mols_assignment, matrix)
    assert tensor.shape == (25, 3, 4)
    for i in range(25):
        for k in range(3):
            assert np.array_equal(tensor.values[i, k], matrix[i])
    assert not tensor.byzantine_mask.any()


def test_worker_slot_matrix_rows_are_sorted_neighborhoods(mols_assignment):
    slots = mols_assignment.worker_slot_matrix()
    assert slots.shape == (25, 3)
    for i in range(25):
        assert tuple(slots[i]) == mols_assignment.workers_of_file(i)
    # cached and read-only
    assert mols_assignment.worker_slot_matrix() is slots
    with pytest.raises(ValueError):
        slots[0, 0] = 99


def test_constructor_rejects_bad_shapes(mols_assignment):
    matrix = honest_matrix(25, 4)
    tensor = VoteTensor.from_honest(mols_assignment, matrix)
    with pytest.raises(ConfigurationError):
        VoteTensor(tensor.values[0], tensor.workers)  # 2-D values
    with pytest.raises(ConfigurationError):
        VoteTensor(tensor.values, tensor.workers[:, :2])  # shape mismatch
    with pytest.raises(ConfigurationError):
        VoteTensor(tensor.values, tensor.workers[:, ::-1])  # not increasing
    with pytest.raises(ConfigurationError):
        VoteTensor(tensor.values, tensor.workers, np.zeros((2, 2), dtype=bool))


def test_from_honest_validates_matrix(mols_assignment):
    with pytest.raises(ConfigurationError):
        VoteTensor.from_honest(mols_assignment, honest_matrix(24, 4))
    with pytest.raises(ConfigurationError):
        VoteTensor.from_honest(mols_assignment, np.zeros(4))


# --------------------------------------------------------------------------- #
# Dict adapters
# --------------------------------------------------------------------------- #
def test_file_votes_round_trip(mols_assignment):
    matrix = honest_matrix(25, 4)
    tensor = VoteTensor.from_honest(mols_assignment, matrix)
    tensor.set_vote(0, 0, np.full(4, -5.0))
    file_votes = tensor.to_file_votes()
    assert set(file_votes) == set(range(25))
    for i in range(25):
        assert set(file_votes[i]) == set(mols_assignment.workers_of_file(i))
    back = VoteTensor.from_file_votes(mols_assignment, file_votes)
    assert np.array_equal(back.values, tensor.values)
    assert np.array_equal(back.workers, tensor.workers)


def test_from_file_votes_validates_coverage(mols_assignment):
    tensor = VoteTensor.from_honest(mols_assignment, honest_matrix(25, 4))
    votes = tensor.to_file_votes()
    del votes[0]
    with pytest.raises(AggregationError):
        VoteTensor.from_file_votes(mols_assignment, votes)

    votes = tensor.to_file_votes()
    votes[0][99] = np.zeros(4)  # worker not assigned the file
    with pytest.raises(AggregationError):
        VoteTensor.from_file_votes(mols_assignment, votes)

    votes = tensor.to_file_votes()
    votes[1][mols_assignment.workers_of_file(1)[0]] = np.zeros(3)  # wrong dim
    with pytest.raises(AggregationError):
        VoteTensor.from_file_votes(mols_assignment, votes)


def test_from_file_votes_marks_byzantine(mols_assignment):
    tensor = VoteTensor.from_honest(mols_assignment, honest_matrix(25, 4))
    votes = tensor.to_file_votes()
    packed = VoteTensor.from_file_votes(
        mols_assignment, votes, byzantine_workers=(0, 5)
    )
    expected = np.isin(packed.workers, [0, 5])
    assert np.array_equal(packed.byzantine_mask, expected)


# --------------------------------------------------------------------------- #
# Mutation helpers
# --------------------------------------------------------------------------- #
def test_set_vote_and_slot_lookup(mols_assignment):
    tensor = VoteTensor.from_honest(mols_assignment, honest_matrix(25, 4))
    workers = mols_assignment.workers_of_file(3)
    payload = np.arange(4, dtype=np.float64)
    tensor.set_vote(3, workers[1], payload)
    assert np.array_equal(tensor.values[3, 1], payload)
    assert tensor.slot_of(3, workers[-1]) == len(workers) - 1
    with pytest.raises(ConfigurationError):
        tensor.set_vote(3, 999, payload)
    with pytest.raises(ConfigurationError):
        tensor.set_vote(3, workers[0], np.zeros(5))


def test_mark_byzantine(mols_assignment):
    tensor = VoteTensor.from_honest(mols_assignment, honest_matrix(25, 4))
    tensor.mark_byzantine([0, 5])
    assert np.array_equal(tensor.byzantine_mask, np.isin(tensor.workers, [0, 5]))
    tensor.mark_byzantine([])
    assert not tensor.byzantine_mask.any()


def test_copy_is_independent(mols_assignment):
    tensor = VoteTensor.from_honest(mols_assignment, honest_matrix(25, 4))
    clone = tensor.copy()
    clone.values[0, 0, 0] = 123.0
    clone.byzantine_mask[0, 0] = True
    assert tensor.values[0, 0, 0] != 123.0
    assert not tensor.byzantine_mask[0, 0]


# --------------------------------------------------------------------------- #
# Batched gradient computation
# --------------------------------------------------------------------------- #
def test_batched_gradients_match_per_file_calls(rng):
    model = build_mlp(6, 3, hidden=(8,), seed=0)
    computer = ModelGradientComputer(model)
    params = computer.initial_params()
    files = [
        (rng.standard_normal((4, 6)), rng.integers(0, 3, 4)) for _ in range(5)
    ]
    stacked_grads, stacked_losses = computer.batched(params, files)
    assert stacked_grads.shape == (5, computer.dim)
    for i, (x, y) in enumerate(files):
        gradient, loss = computer(params, x, y)
        assert np.array_equal(stacked_grads[i], gradient)
        assert stacked_losses[i] == loss


def test_batched_accepts_stacked_arrays(rng):
    model = build_mlp(6, 3, hidden=(8,), seed=0)
    computer = ModelGradientComputer(model)
    params = computer.initial_params()
    inputs = rng.standard_normal((5, 4, 6))
    labels = rng.integers(0, 3, (5, 4))
    a, la = computer.batched(params, (inputs, labels))
    b, lb = computer.batched(params, list(zip(inputs, labels)))
    assert np.array_equal(a, b)
    assert np.array_equal(la, lb)


def test_batched_rejects_empty(rng):
    model = build_mlp(6, 3, hidden=(8,), seed=0)
    computer = ModelGradientComputer(model)
    params = computer.initial_params()
    with pytest.raises(TrainingError):
        computer.batched(params, [])
    with pytest.raises(TrainingError):
        computer.batched(params, [(np.zeros((0, 6)), np.zeros(0, dtype=int))])
