"""Adversary schedules: static, ramping and rotating selection over time."""

from __future__ import annotations

import numpy as np
import pytest

from repro.attacks.schedules import AdversarySchedule, ScheduledSelector
from repro.exceptions import AttackError, ConfigurationError


class TestAdversarySchedule:
    def test_static_is_constant(self):
        schedule = AdversarySchedule(kind="static", q=3)
        assert [schedule.q_at(t) for t in range(5)] == [3, 3, 3, 3, 3]
        assert schedule.max_q == 3

    def test_ramping_up(self):
        schedule = AdversarySchedule(kind="ramping", q=0, q_end=4, period=2)
        assert [schedule.q_at(t) for t in range(10)] == [0, 0, 1, 1, 2, 2, 3, 3, 4, 4]
        assert schedule.max_q == 4

    def test_ramping_down(self):
        schedule = AdversarySchedule(kind="ramping", q=3, q_end=1, period=1)
        assert [schedule.q_at(t) for t in range(5)] == [3, 2, 1, 1, 1]
        assert schedule.max_q == 3

    def test_ramping_requires_q_end(self):
        with pytest.raises(ConfigurationError, match="q_end"):
            AdversarySchedule(kind="ramping", q=2)

    def test_rotating_window_offset(self):
        schedule = AdversarySchedule(kind="rotating", q=3, period=2, stride=4)
        assert [schedule.window_offset(t) for t in range(6)] == [0, 0, 4, 4, 8, 8]

    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigurationError, match="schedule kind"):
            AdversarySchedule(kind="chaotic", q=1)

    def test_rejects_negative_iteration(self):
        with pytest.raises(AttackError, match="non-negative"):
            AdversarySchedule(kind="static", q=1).q_at(-1)


class TestScheduledSelector:
    def test_rotating_selection_wraps_modulo_K(self, mols_assignment):
        schedule = AdversarySchedule(kind="rotating", q=3, period=1, stride=7)
        selector = ScheduledSelector(schedule, selection="rotating")
        rng = np.random.default_rng(0)
        assert mols_assignment.num_workers == 15
        assert selector.select(mols_assignment, 0, rng) == (0, 1, 2)
        assert selector.select(mols_assignment, 1, rng) == (7, 8, 9)
        # offset 14: window {14, 15 % 15, 16 % 15} wraps around.
        assert selector.select(mols_assignment, 2, rng) == (0, 1, 14)

    def test_zero_budget_rounds_select_nobody(self, mols_assignment):
        schedule = AdversarySchedule(kind="ramping", q=0, q_end=2, period=2)
        selector = ScheduledSelector(schedule, selection="random")
        rng = np.random.default_rng(0)
        assert selector.select(mols_assignment, 0, rng) == ()
        assert len(selector.select(mols_assignment, 2, rng)) == 1

    def test_random_selection_is_deterministic_per_rng(self, mols_assignment):
        schedule = AdversarySchedule(kind="static", q=4)
        selector = ScheduledSelector(schedule, selection="random")
        one = selector.select(mols_assignment, 0, np.random.default_rng(5))
        two = selector.select(mols_assignment, 0, np.random.default_rng(5))
        assert one == two
        assert len(one) == 4

    def test_omniscient_caches_per_budget(self, mols_assignment):
        schedule = AdversarySchedule(kind="ramping", q=1, q_end=2, period=1)
        selector = ScheduledSelector(schedule, selection="omniscient")
        rng = np.random.default_rng(0)
        first = selector.select(mols_assignment, 0, rng)
        second = selector.select(mols_assignment, 1, rng)
        assert len(first) == 1 and len(second) == 2
        # Same budgets later return identical (cached) sets.
        assert selector.select(mols_assignment, 2, rng) == second
        selector.reset()
        assert selector.select(mols_assignment, 0, rng) == first

    def test_budget_above_K_raises(self, baseline_10):
        schedule = AdversarySchedule(kind="static", q=99)
        selector = ScheduledSelector(schedule, selection="random")
        with pytest.raises(AttackError, match="q=99"):
            selector.select(baseline_10.assignment, 0, np.random.default_rng(0))

    def test_rotating_selection_requires_rotating_schedule(self):
        with pytest.raises(ConfigurationError, match="rotating"):
            ScheduledSelector(AdversarySchedule(kind="static", q=2), selection="rotating")

    def test_rotating_schedule_rejects_other_selections(self):
        """A rotating schedule defines the compromised set itself; pairing it
        with omniscient/random selection must fail loudly, not silently win."""
        schedule = AdversarySchedule(kind="rotating", q=2)
        with pytest.raises(ConfigurationError, match="selection='rotating'"):
            ScheduledSelector(schedule, selection="omniscient")
        with pytest.raises(ConfigurationError, match="selection='rotating'"):
            ScheduledSelector(schedule, selection="random")
