"""Tests for the assignment and aggregation registries."""

import pytest

from repro.aggregation import available_aggregators, create_aggregator, get_aggregator
from repro.aggregation import register_aggregator
from repro.aggregation.median import CoordinateWiseMedian
from repro.assignment import available_schemes, get_scheme, register_scheme
from repro.assignment.mols import MOLSAssignment
from repro.assignment.registry import create_scheme
from repro.attacks import available_attacks, create_attack, get_attack, register_attack
from repro.attacks.constant import ConstantAttack
from repro.exceptions import ConfigurationError


def test_builtin_schemes_registered():
    names = available_schemes()
    for expected in ("mols", "ramanujan", "frc", "baseline", "random"):
        assert expected in names


def test_get_and_create_scheme():
    assert get_scheme("MOLS") is MOLSAssignment
    scheme = create_scheme("mols", load=5, replication=3)
    assert scheme.assignment.num_workers == 15


def test_unknown_scheme_raises():
    with pytest.raises(ConfigurationError):
        get_scheme("does-not-exist")


def test_register_scheme_duplicate_and_overwrite():
    class Dummy(MOLSAssignment):
        scheme_name = "dummy"

    register_scheme("dummy-scheme-test", Dummy)
    with pytest.raises(ConfigurationError):
        register_scheme("dummy-scheme-test", Dummy)
    register_scheme("dummy-scheme-test", Dummy, overwrite=True)
    assert get_scheme("dummy-scheme-test") is Dummy


def test_register_scheme_rejects_non_scheme():
    with pytest.raises(ConfigurationError):
        register_scheme("not-a-scheme", dict)  # type: ignore[arg-type]


def test_builtin_aggregators_registered():
    names = available_aggregators()
    for expected in (
        "mean",
        "median",
        "trimmed_mean",
        "median_of_means",
        "krum",
        "multi_krum",
        "bulyan",
        "geometric_median",
        "signsgd",
        "auror",
    ):
        assert expected in names


def test_create_aggregator_with_kwargs():
    aggregator = create_aggregator("trimmed_mean", trim=1)
    assert aggregator.trim == 1
    assert isinstance(create_aggregator("median"), CoordinateWiseMedian)


def test_unknown_aggregator_raises():
    with pytest.raises(ConfigurationError):
        get_aggregator("nope")


def test_register_aggregator_rejects_non_aggregator():
    with pytest.raises(ConfigurationError):
        register_aggregator("bad", int)  # type: ignore[arg-type]


def test_builtin_attacks_registered():
    names = available_attacks()
    for expected in ("alie", "constant", "reversed_gradient", "gaussian_noise", "uniform_random"):
        assert expected in names


def test_create_attack_with_kwargs():
    attack = create_attack("constant", value=-2.5)
    assert isinstance(attack, ConstantAttack)
    assert attack.value == -2.5


def test_unknown_attack_raises():
    with pytest.raises(ConfigurationError):
        get_attack("nope")


def test_register_attack_rejects_non_attack():
    with pytest.raises(ConfigurationError):
        register_attack("bad", str)  # type: ignore[arg-type]
