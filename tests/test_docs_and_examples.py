"""Guard rails for the documentation and the example scripts.

These tests keep README.md, DESIGN.md, EXPERIMENTS.md and the runnable
examples in sync with the code: the documented API calls must exist and the
example scripts must at least parse and expose a ``main`` entry point.
"""

from __future__ import annotations

import ast
import os
import pathlib
import subprocess
import sys

import pytest

import repro

REPO_ROOT = pathlib.Path(__file__).resolve().parents[1]


def test_readme_quickstart_snippet_runs():
    """The first README code block (distortion quickstart) works as written."""
    from repro import MOLSAssignment, distortion_comparison_table, max_distortion

    scheme = MOLSAssignment(load=5, replication=3)
    assignment = scheme.assignment
    result = max_distortion(assignment, num_byzantine=3)
    assert result.c_max == 3
    assert result.epsilon == pytest.approx(0.12)
    rows = distortion_comparison_table(assignment, range(2, 8))
    assert len(rows) == 6


def test_readme_training_snippet_runs_scaled_down():
    """The second README code block works (scaled down to a few iterations)."""
    from repro import (
        ALIEAttack,
        RamanujanAssignment,
        TrainingConfig,
        build_byzshield_trainer,
        build_mlp,
        make_synthetic_images,
    )
    from repro.data import train_test_split

    data = make_synthetic_images(num_samples=400, num_classes=10, flatten=True, seed=0)
    train, test = train_test_split(data, test_fraction=0.2, seed=1)
    trainer = build_byzshield_trainer(
        scheme=RamanujanAssignment(m=5, s=5),
        model=build_mlp(train.flat_feature_dim, 10, hidden=(16,), seed=0),
        train_dataset=train,
        test_dataset=test,
        config=TrainingConfig(batch_size=150, num_iterations=3, eval_every=3, seed=0),
        attack=ALIEAttack(),
        num_byzantine=5,
    )
    history = trainer.train()
    assert history.distortion_fractions.mean() == pytest.approx(0.08)


def test_top_level_exports_exist():
    """Everything listed in repro.__all__ is actually importable."""
    for name in repro.__all__:
        assert hasattr(repro, name), name


def test_documentation_files_exist_and_mention_key_sections():
    readme = (REPO_ROOT / "README.md").read_text()
    design = (REPO_ROOT / "DESIGN.md").read_text()
    experiments = (REPO_ROOT / "EXPERIMENTS.md").read_text()
    assert "ByzShield" in readme and "pip install -e ." in readme
    assert "Experiment index" in design or "experiment index" in design.lower()
    for table in ("Table 3", "Table 4", "Table 5", "Table 6"):
        assert table in experiments
    for figure in ("Figure 5", "Figure 12"):
        assert figure in experiments


@pytest.mark.parametrize(
    "script",
    sorted(p.name for p in (REPO_ROOT / "examples").glob("*.py")),
)
def test_example_scripts_parse_and_define_main(script):
    path = REPO_ROOT / "examples" / script
    tree = ast.parse(path.read_text())
    function_names = {node.name for node in ast.walk(tree) if isinstance(node, ast.FunctionDef)}
    assert "main" in function_names, f"{script} must define a main() entry point"
    # Every example is documented with a module docstring explaining the scenario.
    assert ast.get_docstring(tree), f"{script} must have a module docstring"


def test_examples_directory_has_at_least_three_scenarios():
    scripts = list((REPO_ROOT / "examples").glob("*.py"))
    assert len(scripts) >= 3
    assert any(p.name == "quickstart.py" for p in scripts)


def _run_tool(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = os.pathsep.join(
        [str(REPO_ROOT / "src")] + ([env["PYTHONPATH"]] if env.get("PYTHONPATH") else [])
    )
    return subprocess.run(
        [sys.executable, *args], cwd=REPO_ROOT, env=env,
        capture_output=True, text=True,
    )


def test_api_reference_is_fresh():
    """docs/API.md is generated; any drift from the code fails here (and in
    CI's docs job) until `tools/gen_api_docs.py` is re-run."""
    result = _run_tool("tools/gen_api_docs.py", "--check")
    assert result.returncode == 0, result.stderr


def test_doc_links_and_anchors_resolve():
    result = _run_tool("tools/check_doc_links.py")
    assert result.returncode == 0, result.stderr


def test_benchmarks_cover_every_table_and_figure():
    """There is a benchmark file for every table and figure of the evaluation."""
    names = {p.name for p in (REPO_ROOT / "benchmarks").glob("test_bench_*.py")}
    for expected in (
        "test_bench_table3.py",
        "test_bench_table4.py",
        "test_bench_table5.py",
        "test_bench_table6.py",
        "test_bench_fig2.py",
        "test_bench_fig3.py",
        "test_bench_fig4.py",
        "test_bench_fig5.py",
        "test_bench_fig6.py",
        "test_bench_fig7.py",
        "test_bench_fig8.py",
        "test_bench_fig9_11.py",
        "test_bench_fig12.py",
        "test_bench_bounds.py",
        "test_bench_ablations.py",
    ):
        assert expected in names, expected
